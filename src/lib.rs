//! Workspace root crate for `cusan-rs`.
//!
//! This crate exists to host the cross-crate integration tests in `tests/`
//! and the runnable examples in `examples/`. The actual library surface
//! lives in the workspace member crates; the most convenient entry points
//! are re-exported here.

pub use cusan;
pub use cusan_apps as apps;
pub use must_rt as must;
