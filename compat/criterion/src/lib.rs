//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the criterion API surface its benches use: `Criterion`,
//! `BenchmarkGroup`, `Bencher::{iter, iter_batched}`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop: calibrate an iteration count
//! targeting ~`measure_ms` per sample, take the best of three samples
//! (minimum is robust against scheduler noise), and print `ns/iter` plus
//! derived throughput. `--test` / `--quick` on the command line (as passed
//! by `cargo bench -- --test`) switches to a single-iteration smoke run so
//! CI can validate benches cheaply.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export used by benches (`criterion::black_box` predates
/// `std::hint::black_box` but forwards to it these days).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How a batched iteration sizes its batches. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Id carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Timing loop driver handed to bench closures.
pub struct Bencher {
    quick: bool,
    measure_ms: u64,
    /// Measured nanoseconds per iteration (best sample).
    ns_per_iter: f64,
}

impl Bencher {
    /// Measure `f` repeatedly.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        if self.quick {
            std_black_box(f());
            self.ns_per_iter = 0.0;
            return;
        }
        // Calibrate: grow the iteration count until one sample is long
        // enough to time reliably.
        let mut iters: u64 = 1;
        let target = Duration::from_millis(self.measure_ms);
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            let el = t.elapsed();
            if el >= target || iters >= 1 << 30 {
                break;
            }
            let grow = if el.is_zero() {
                16
            } else {
                ((target.as_secs_f64() / el.as_secs_f64()).ceil() as u64).clamp(2, 16)
            };
            iters = iters.saturating_mul(grow);
        }
        // Best of three samples.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t = Instant::now();
            for _ in 0..iters {
                std_black_box(f());
            }
            best = best.min(t.elapsed().as_secs_f64() / iters as f64);
        }
        self.ns_per_iter = best * 1e9;
    }

    /// Measure `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.quick {
            std_black_box(routine(setup()));
            self.ns_per_iter = 0.0;
            return;
        }
        let mut iters: u64 = 1;
        let target = Duration::from_millis(self.measure_ms);
        let mut measured;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t = Instant::now();
            for i in inputs {
                std_black_box(routine(i));
            }
            measured = t.elapsed();
            if measured >= target || iters >= 1 << 22 {
                break;
            }
            iters = iters.saturating_mul(4);
        }
        self.ns_per_iter = measured.as_secs_f64() * 1e9 / iters as f64;
    }
}

/// The benchmark harness.
pub struct Criterion {
    quick: bool,
    measure_ms: u64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: false,
            measure_ms: 50,
            filter: None,
        }
    }
}

impl Criterion {
    /// Build from `cargo bench` command-line arguments: `--test` /
    /// `--quick` run each bench once (smoke mode); a bare string filters
    /// benchmarks by substring. Other criterion flags are ignored.
    pub fn from_args() -> Criterion {
        let mut c = Criterion::default();
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" | "--quick" => c.quick = true,
                s if !s.starts_with('-') => c.filter = Some(s.to_string()),
                _ => {}
            }
        }
        c
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        f: &mut dyn FnMut(&mut Bencher),
    ) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            quick: self.quick,
            measure_ms: self.measure_ms,
            ns_per_iter: 0.0,
        };
        f(&mut b);
        if self.quick {
            println!("{name:<50} ok (smoke)");
            return;
        }
        let per_iter = b.ns_per_iter;
        match throughput {
            Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
                let mbps = n as f64 / per_iter * 1e9 / 1e6;
                println!("{name:<50} {per_iter:>12.1} ns/iter {mbps:>12.1} MB/s");
            }
            Some(Throughput::Elements(n)) if per_iter > 0.0 => {
                let eps = n as f64 / per_iter * 1e9;
                println!("{name:<50} {per_iter:>12.1} ns/iter {eps:>12.0} elem/s");
            }
            _ => println!("{name:<50} {per_iter:>12.1} ns/iter"),
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        self.run_one(name, None, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benches with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark with an explicit id and input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        let throughput = self.throughput;
        self.c.run_one(&name, throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark by name within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let throughput = self.throughput;
        self.c.run_one(&name, throughput, &mut f);
        self
    }

    /// Finish the group (formatting no-op).
    pub fn finish(self) {}
}

/// Define a group function running the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $($target(&mut c);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion {
            quick: true,
            ..Criterion::default()
        };
        let mut calls = 0;
        c.bench_function("t", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn measured_mode_reports_nanos() {
        let mut c = Criterion {
            measure_ms: 1,
            ..Criterion::default()
        };
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Bytes(8));
        g.bench_with_input(BenchmarkId::from_parameter(8u64), &8u64, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher {
            quick: true,
            measure_ms: 1,
            ns_per_iter: 0.0,
        };
        b.iter_batched(|| vec![1u8, 2], |v| v.len(), BatchSize::SmallInput);
    }
}
