//! Offline stand-in for the `parking_lot` crate, built on `std::sync`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: panic-free `Mutex` /
//! `RwLock` (poisoning is swallowed — a poisoned lock continues, matching
//! parking_lot's no-poisoning semantics), a `Condvar` that takes `&mut
//! MutexGuard`, and mappable `RwLock` guards
//! (`RwLockReadGuard::map` / `RwLockWriteGuard::map`).
//!
//! Semantics intentionally mirror `parking_lot` 0.12 for the subset used;
//! fairness/eventual-fairness details differ (std locks underneath) but no
//! caller in this workspace depends on them.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

// ---- Mutex -----------------------------------------------------------------

/// A mutual-exclusion lock without poisoning.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(|e| e.into_inner())))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(Some(e.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` is only `None` transiently
/// while a [`Condvar`] wait re-acquires the lock.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard active")
    }
}

// ---- Condvar ---------------------------------------------------------------

/// Result of a timed wait: whether the timeout elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable operating on [`MutexGuard`]s by mutable reference
/// (parking_lot style — the guard stays owned by the caller).
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake all waiting threads; returns the number woken (always 0 here —
    /// std does not report it, and no caller uses the value).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Block until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.0.take().expect("guard active");
        guard.0 = Some(self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or the timeout elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.0.take().expect("guard active");
        let (g, res) = self
            .0
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.0 = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---- RwLock ----------------------------------------------------------------

/// Reader-writer lock with mappable guards. The payload lives in an
/// `UnsafeCell` beside a `std::sync::RwLock<()>` that provides the actual
/// exclusion; guards hold the raw `()` guard plus a reference into the
/// cell, which is what makes `map` expressible on stable Rust.
pub struct RwLock<T: ?Sized> {
    lock: std::sync::RwLock<()>,
    data: UnsafeCell<T>,
}

// Safety: access to `data` is serialized by `lock` exactly like a normal
// RwLock — shared via read guards, exclusive via the write guard.
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            lock: std::sync::RwLock::new(()),
            data: UnsafeCell::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let raw = self.lock.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard {
            _raw: raw,
            data: unsafe { &*self.data.get() },
        }
    }

    /// Try to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        let raw = match self.lock.try_write() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockWriteGuard {
            _raw: raw,
            data: unsafe { &mut *self.data.get() },
        })
    }

    /// Try to acquire exclusive write access, waiting up to `timeout` for
    /// other threads to release their guards (parking_lot's
    /// `try_write_for`). Implemented as a yielding spin over
    /// [`Self::try_write`]; contention from a live holder resolves in
    /// microseconds, so the deadline is only reached when a guard is
    /// never released (e.g. held by the calling thread itself).
    pub fn try_write_for(&self, timeout: std::time::Duration) -> Option<RwLockWriteGuard<'_, T>> {
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(g) = self.try_write() {
                return Some(g);
            }
            if std::time::Instant::now() >= deadline {
                return None;
            }
            std::thread::yield_now();
        }
    }

    /// Try to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        let raw = match self.lock.try_read() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        Some(RwLockReadGuard {
            _raw: raw,
            data: unsafe { &*self.data.get() },
        })
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let raw = self.lock.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard {
            _raw: raw,
            data: unsafe { &mut *self.data.get() },
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockReadGuard<'a, ()>,
    data: &'a T,
}

impl<'a, T: ?Sized> RwLockReadGuard<'a, T> {
    /// Map the guard to a component of the protected data.
    pub fn map<U: ?Sized>(s: Self, f: impl FnOnce(&T) -> &U) -> MappedRwLockReadGuard<'a, U> {
        MappedRwLockReadGuard {
            _raw: s._raw,
            data: f(s.data),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

/// Read guard mapped to a component of the protected data.
pub struct MappedRwLockReadGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockReadGuard<'a, ()>,
    data: &'a T,
}

impl<'a, T: ?Sized> MappedRwLockReadGuard<'a, T> {
    /// Map further into the data.
    pub fn map<U: ?Sized>(s: Self, f: impl FnOnce(&T) -> &U) -> MappedRwLockReadGuard<'a, U> {
        MappedRwLockReadGuard {
            _raw: s._raw,
            data: f(s.data),
        }
    }
}

impl<T: ?Sized> Deref for MappedRwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockWriteGuard<'a, ()>,
    data: &'a mut T,
}

impl<'a, T: ?Sized> RwLockWriteGuard<'a, T> {
    /// Map the guard to a component of the protected data.
    pub fn map<U: ?Sized>(
        s: Self,
        f: impl FnOnce(&mut T) -> &mut U,
    ) -> MappedRwLockWriteGuard<'a, U> {
        let RwLockWriteGuard { _raw, data } = s;
        MappedRwLockWriteGuard {
            _raw,
            data: f(data),
        }
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data
    }
}

/// Write guard mapped to a component of the protected data.
pub struct MappedRwLockWriteGuard<'a, T: ?Sized> {
    _raw: std::sync::RwLockWriteGuard<'a, ()>,
    data: &'a mut T,
}

impl<'a, T: ?Sized> MappedRwLockWriteGuard<'a, T> {
    /// Map further into the data.
    pub fn map<U: ?Sized>(
        s: Self,
        f: impl FnOnce(&mut T) -> &mut U,
    ) -> MappedRwLockWriteGuard<'a, U> {
        let MappedRwLockWriteGuard { _raw, data } = s;
        MappedRwLockWriteGuard {
            _raw,
            data: f(data),
        }
    }
}

impl<T: ?Sized> Deref for MappedRwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.data
    }
}

impl<T: ?Sized> DerefMut for MappedRwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_map_read_and_write() {
        let l = RwLock::new(vec![1u8, 2, 3]);
        {
            let g = l.write();
            let mut m = RwLockWriteGuard::map(g, |v| &mut v[1]);
            *m = 9;
        }
        let g = l.read();
        let m = RwLockReadGuard::map(g, |v| &v[1]);
        assert_eq!(*m, 9);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notify_wakes() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                cv2.wait(&mut g);
            }
        });
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
