//! Offline stand-in for the `rtrb` crate: a bounded, wait-free SPSC ring
//! buffer (the API subset the workspace uses).
//!
//! The build environment has no registry access, so — like the other
//! `compat/` crates — this vendors a from-scratch implementation of the
//! upstream interface: [`RingBuffer::new`] splits into a [`Producer`] /
//! [`Consumer`] pair, `push` fails with [`PushError::Full`] when the buffer
//! is full (handing the value back), `pop` fails with [`PopError::Empty`]
//! when it is empty. Exactly one thread may own each endpoint.
//!
//! The design is the classic Lamport queue with cached counterpart indices:
//! monotonically increasing `head`/`tail` sequence numbers (wrapping u64,
//! masked into a power-of-two slot array), each endpoint keeping a local
//! copy of the other side's index so the common case touches a single
//! shared atomic. Release/Acquire pairs on `tail` (push → pop) and `head`
//! (pop → push) order slot contents with index publication.
//!
//! **Consumer handoff.** "Exactly one thread may own each endpoint" is a
//! *at-any-instant* requirement, not a for-all-time one: both endpoints
//! are `Send`, and the consumer's non-atomic fields (`head`,
//! `cached_tail`) travel with the struct, so a [`Consumer`] may be handed
//! from thread to thread as long as the handoff itself synchronizes (e.g.
//! a mutex acquiring the previous holder's release). This is what the
//! work-stealing checker pool does: workers claim a rank's consumer under
//! a per-rank lock, drain a batch with [`Consumer::pop_batch`], and
//! release the claim — at most one live consumer at every instant.

use std::cell::UnsafeCell;
use std::fmt;
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Error returned by [`Producer::push`] when the ring is full.
///
/// Carries the rejected value so the caller can retry without cloning.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    Full(T),
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full(_) => write!(f, "ring buffer is full"),
        }
    }
}

/// Error returned by [`Consumer::pop`] when the ring is empty.
#[derive(Debug, PartialEq, Eq)]
pub enum PopError {
    Empty,
}

impl fmt::Display for PopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PopError::Empty => write!(f, "ring buffer is empty"),
        }
    }
}

impl std::error::Error for PopError {}

#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Next sequence number to be consumed. Written by the consumer
    /// (Release), read by the producer (Acquire).
    head: CachePadded<AtomicU64>,
    /// Next sequence number to be produced. Written by the producer
    /// (Release), read by the consumer (Acquire).
    tail: CachePadded<AtomicU64>,
    /// Power-of-two slot array; slot for sequence `s` is `s & mask`.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: u64,
}

// Endpoints hand `T` values across threads; nothing in `Shared` itself is
// accessed without the head/tail protocol, so `T: Send` is the only bound.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone; drop any items still in flight.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        let mut seq = head;
        while seq != tail {
            let slot = &self.slots[(seq & self.mask) as usize];
            unsafe { (*slot.get()).assume_init_drop() };
            seq = seq.wrapping_add(1);
        }
    }
}

/// A bounded single-producer single-consumer ring buffer.
pub struct RingBuffer<T> {
    _marker: PhantomData<T>,
}

impl<T> RingBuffer<T> {
    /// Creates a ring with room for at least `capacity` items and returns
    /// the two endpoints. Capacity is rounded up to a power of two.
    /// (Named for parity with upstream `rtrb`, whose `new` also returns
    /// the endpoint pair rather than `Self`.)
    #[allow(clippy::new_ret_no_self)]
    pub fn new(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "ring capacity must be non-zero");
        let cap = capacity.next_power_of_two();
        let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        let shared = Arc::new(Shared {
            head: CachePadded(AtomicU64::new(0)),
            tail: CachePadded(AtomicU64::new(0)),
            slots,
            mask: cap as u64 - 1,
        });
        (
            Producer {
                shared: Arc::clone(&shared),
                cached_head: 0,
                tail: 0,
            },
            Consumer {
                shared,
                cached_tail: 0,
                head: 0,
            },
        )
    }
}

/// The write endpoint of a [`RingBuffer`]. Not `Clone`: exactly one
/// producer thread.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of the consumer's head; refreshed only when full.
    cached_head: u64,
    /// Local copy of our own tail (authoritative; the atomic mirrors it).
    tail: u64,
}

impl<T> Producer<T> {
    /// Appends `value`, or returns it inside [`PushError::Full`].
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        let cap = self.shared.mask + 1;
        if self.tail.wrapping_sub(self.cached_head) == cap {
            // Looks full; refresh the consumer's real position.
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail.wrapping_sub(self.cached_head) == cap {
                return Err(PushError::Full(value));
            }
        }
        let slot = &self.shared.slots[(self.tail & self.shared.mask) as usize];
        unsafe { (*slot.get()).write(value) };
        self.tail = self.tail.wrapping_add(1);
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of items currently in the ring (approximate from the
    /// producer's point of view: may over-count by in-flight pops).
    pub fn slots_used(&self) -> usize {
        let head = self.shared.head.0.load(Ordering::Acquire);
        self.tail.wrapping_sub(head) as usize
    }

    /// True when the ring looks full from the producer side.
    pub fn is_full(&self) -> bool {
        self.slots_used() == (self.shared.mask + 1) as usize
    }

    /// Total capacity in items.
    pub fn capacity(&self) -> usize {
        (self.shared.mask + 1) as usize
    }
}

// The endpoint owns its position; moving it to another thread is fine.
unsafe impl<T: Send> Send for Producer<T> {}

/// The read endpoint of a [`RingBuffer`]. Not `Clone`: exactly one
/// consumer thread.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Local copy of the producer's tail; refreshed only when empty.
    cached_tail: u64,
    /// Local copy of our own head (authoritative; the atomic mirrors it).
    head: u64,
}

impl<T> Consumer<T> {
    /// Removes and returns the oldest item, or [`PopError::Empty`].
    pub fn pop(&mut self) -> Result<T, PopError> {
        if self.head == self.cached_tail {
            // Looks empty; refresh the producer's real position.
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return Err(PopError::Empty);
            }
        }
        let slot = &self.shared.slots[(self.head & self.shared.mask) as usize];
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head = self.head.wrapping_add(1);
        self.shared.head.0.store(self.head, Ordering::Release);
        Ok(value)
    }

    /// Removes up to `max` items in FIFO order, appending them to `out`.
    /// Returns how many were moved.
    ///
    /// One `Acquire` load of `tail` and one `Release` store of `head`
    /// cover the whole batch, amortizing the two shared-cache-line
    /// touches `pop` pays per item — this is the batch-stealing fast
    /// path. The head is published only after every value has been moved
    /// out (the `reserve` up front keeps the copy loop panic-free), so a
    /// producer can never observe a slot as free while its value is still
    /// being read.
    pub fn pop_batch(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut available = self.cached_tail.wrapping_sub(self.head);
        if (available as usize) < max {
            // The cached view can't satisfy the request; refresh the
            // producer's real position before settling for less.
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            available = self.cached_tail.wrapping_sub(self.head);
            if available == 0 {
                return 0;
            }
        }
        let n = (available as usize).min(max);
        out.reserve(n);
        for k in 0..n as u64 {
            let seq = self.head.wrapping_add(k);
            let slot = &self.shared.slots[(seq & self.shared.mask) as usize];
            out.push(unsafe { (*slot.get()).assume_init_read() });
        }
        self.head = self.head.wrapping_add(n as u64);
        self.shared.head.0.store(self.head, Ordering::Release);
        n
    }

    /// Number of items currently in the ring (approximate from the
    /// consumer's point of view: may under-count in-flight pushes).
    pub fn slots_used(&self) -> usize {
        let tail = self.shared.tail.0.load(Ordering::Acquire);
        tail.wrapping_sub(self.head) as usize
    }

    /// True when the ring looks empty from the consumer side.
    pub fn is_empty(&self) -> bool {
        self.slots_used() == 0
    }

    /// Total capacity in items.
    pub fn capacity(&self) -> usize {
        (self.shared.mask + 1) as usize
    }
}

unsafe impl<T: Send> Send for Consumer<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_full_empty() {
        let (mut tx, mut rx) = RingBuffer::new(4);
        assert_eq!(rx.pop(), Err(PopError::Empty));
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(PushError::Full(99)));
        assert!(tx.is_full());
        for i in 0..4 {
            assert_eq!(rx.pop(), Ok(i));
        }
        assert!(rx.is_empty());
        // Interleaved reuse across the wrap-around boundary.
        for round in 0..10 {
            tx.push(round * 2).unwrap();
            tx.push(round * 2 + 1).unwrap();
            assert_eq!(rx.pop(), Ok(round * 2));
            assert_eq!(rx.pop(), Ok(round * 2 + 1));
        }
    }

    #[test]
    fn pop_batch_moves_fifo_prefix_and_frees_slots() {
        let (mut tx, mut rx) = RingBuffer::new(8);
        let mut out = Vec::new();
        assert_eq!(rx.pop_batch(&mut out, 4), 0);
        for i in 0..8 {
            tx.push(i).unwrap();
        }
        assert_eq!(rx.pop_batch(&mut out, 3), 3);
        assert_eq!(out, vec![0, 1, 2]);
        // The batch pop must free slots for the producer immediately.
        tx.push(8).unwrap();
        tx.push(9).unwrap();
        // `max` larger than the backlog drains what's there, in order,
        // across the wrap-around boundary.
        assert_eq!(rx.pop_batch(&mut out, 100), 7);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(rx.is_empty());
    }

    #[test]
    fn pop_batch_interleaves_with_pop_across_threads() {
        const N: u64 = 50_000;
        let (mut tx, mut rx) = RingBuffer::new(32);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut got = Vec::new();
        while (got.len() as u64) < N {
            if rx.pop_batch(&mut got, 7) == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
        assert_eq!(got, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = RingBuffer::<u8>::new(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = RingBuffer::<u8>::new(1);
        assert_eq!(tx.capacity(), 1);
    }

    #[test]
    fn drops_in_flight_items() {
        use std::rc::Rc;
        let probe = Rc::new(());
        {
            let (mut tx, rx) = RingBuffer::new(8);
            tx.push(Rc::clone(&probe)).unwrap();
            tx.push(Rc::clone(&probe)).unwrap();
            drop(tx);
            drop(rx);
        }
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn threaded_handoff_preserves_order() {
        const N: u64 = 100_000;
        let (mut tx, mut rx) = RingBuffer::new(64);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(PushError::Full(back)) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expected = 0;
        while expected < N {
            match rx.pop() {
                Ok(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                Err(PopError::Empty) => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
    }
}
