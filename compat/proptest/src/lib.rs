//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the subset of proptest it uses: the [`strategy::Strategy`] trait with
//! `prop_map`/`boxed`, range and tuple strategies, [`strategy::Just`],
//! `any::<T>()`, `prop_oneof!`, `proptest::collection::vec`, and the
//! `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, and why they are acceptable here:
//!
//! * **No shrinking** — failures print the generated inputs instead.
//!   Tests in this workspace assert algorithmic invariants on small
//!   value domains, so raw counterexamples stay readable.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test's module path and name (override the stream with
//!   `PROPTEST_SEED`), so failures reproduce across runs by default.
//! * **Case count** — honors `ProptestConfig::with_cases` and the
//!   `PROPTEST_CASES` environment variable; the default is 256 cases,
//!   like upstream.

pub mod arbitrary;
pub mod collection;
mod macros;
pub mod strategy;
pub mod test_runner;

/// The glob import used by tests: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    // Macros are exported at the crate root via #[macro_export]; re-export
    // them here so `use proptest::prelude::*` brings them in scope like
    // upstream does.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let v = (3u64..17).generate(&mut rng);
            assert!((3..17).contains(&v));
            let w = (5i64..=9).generate(&mut rng);
            assert!((5..=9).contains(&w));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_respects_size_range() {
        let mut rng = TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::collection::vec(0u8..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = crate::collection::vec(0u8..10, 7).generate(&mut rng);
            assert_eq!(exact.len(), 7);
        }
    }

    #[test]
    fn oneof_covers_all_options() {
        let mut rng = TestRng::from_name("oneof");
        let s = prop_oneof![Just(1u32), Just(2u32), Just(3u32)];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(s.generate(&mut rng) - 1) as usize] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn deterministic_given_same_name() {
        let a: Vec<u64> = (0..50)
            .map(|_| 0u64..1000)
            .map(|s| s.generate(&mut TestRng::from_name("same")))
            .collect();
        let b: Vec<u64> = (0..50)
            .map(|_| 0u64..1000)
            .map(|s| s.generate(&mut TestRng::from_name("same")))
            .collect();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            if flag {
                prop_assert_eq!(x + 1, x + 1);
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn mapped_tuple_strategies(v in crate::collection::vec((0u8..4, any::<bool>()), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (n, _) in v {
                prop_assert!(n < 4);
            }
        }
    }
}
