//! Test-runner plumbing: configuration, RNG, and case errors.

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Maximum rejected cases (via `prop_assume!`) before giving up,
    /// expressed as a multiple of `cases`.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Configuration with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig {
            cases,
            max_global_rejects: 64,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is re-drawn.
    Reject(String),
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic splitmix64 RNG. Quality is ample for test-input
/// generation and the state is a single word, which keeps seeding and
/// reproduction trivial.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed from a test name (stable across runs); `PROPTEST_SEED`
    /// perturbs the stream globally for exploratory fuzzing.
    pub fn from_name(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(seed) = std::env::var("PROPTEST_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                h ^= s.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            }
        }
        TestRng(h)
    }

    /// Seed directly.
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng(seed)
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
