//! The [`Strategy`] trait and the combinators used by this workspace.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values. Unlike real proptest there is no value
/// tree and no shrinking — `generate` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Strategies are used by shared reference inside tuples.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased strategies (what `prop_oneof!`
/// builds).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed options; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// ---- integer / float ranges ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let off = (rng.next_u64() as u128 % span as u128) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ---- tuples ----------------------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// `prop_oneof![s1, s2, ...]` — uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
