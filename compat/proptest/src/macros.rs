//! The `proptest!`, `prop_assert*`, and `prop_assume!` macros.

/// Define property tests. Supports the subset of upstream syntax used in
/// this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(any::<bool>(), 1..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// Each argument is `ident in strategy-expr`. The body runs once per
/// generated case; `prop_assert*` failures abort with the inputs printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal: expand each `fn` item of a `proptest!` block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            let reject_budget = config.cases.saturating_mul(config.max_global_rejects).max(256);
            while passed < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < reject_budget,
                            "proptest '{}': too many prop_assume! rejections ({} for {} passes)",
                            stringify!($name), rejected, passed
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed after {} passing case(s)\n  inputs: {}\n  {}",
                            stringify!($name), passed, inputs, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_fns! { config = ($cfg); $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left:  {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} — {}\n  left:  {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), l, r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case (re-draw inputs) unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
