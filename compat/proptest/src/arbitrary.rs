//! `any::<T>()` — default strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draw a uniformly distributed value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Full-domain floats (NaN/inf) break numeric test oracles; real
        // proptest's default f64 strategy is also finite-biased. Uniform
        // in [-1e6, 1e6] covers what the workspace needs.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps generated labels debuggable.
        (b' ' + (rng.below(95)) as u8) as char
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
