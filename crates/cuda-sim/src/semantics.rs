//! Host-synchronization semantics of CUDA memory operations.
//!
//! This module is the single source of truth for the rules of paper
//! §III-B2/§III-C, with the paper's **pessimistic** interpretation: when
//! the CUDA documentation says an operation *may be* (a)synchronous, we
//! assume it does **not** synchronize with the host — fewer happens-before
//! edges means the race detector errs toward reporting, never toward
//! missing a race.
//!
//! | operation            | condition                          | host behaviour |
//! |----------------------|------------------------------------|----------------|
//! | `cudaMemcpy`         | H2D / D2H (any host kind)          | blocking       |
//! | `cudaMemcpy`         | H2H                                | blocking       |
//! | `cudaMemcpy`         | D2D                                | *may be async* → stream-ordered |
//! | `cudaMemcpyAsync`    | any                                | stream-ordered |
//! | `cudaMemset`         | pinned host target                 | blocking       |
//! | `cudaMemset`         | any other target                   | stream-ordered |
//! | `cudaMemsetAsync`    | any                                | stream-ordered |
//! | `cudaFree`           | —                                  | device-wide sync |
//! | `cudaFreeAsync`      | —                                  | stream-ordered |

use crate::error::CudaError;
use sim_mem::MemKind;

/// Direction declared at a `cudaMemcpy` call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKind {
    /// Host → device.
    HostToDevice,
    /// Device → host.
    DeviceToHost,
    /// Device → device.
    DeviceToDevice,
    /// Host → host.
    HostToHost,
    /// `cudaMemcpyDefault`: infer from UVA pointer attributes.
    Default,
}

/// Whether an operation blocks the calling host thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostSync {
    /// The call returns only after the operation (and the stream work it
    /// is ordered behind) completed — a host synchronization point.
    Blocking,
    /// The call returns immediately; the operation is ordered only within
    /// its stream.
    StreamOrdered,
}

/// Classify a memory kind as a host or device side for direction checking.
/// Managed and pinned memory are reachable from both sides.
fn side_matches(kind: MemKind, want_device: bool) -> bool {
    match kind {
        MemKind::HostPageable => !want_device,
        MemKind::HostPinned | MemKind::Managed => true,
        MemKind::Device(_) => want_device,
    }
}

/// Validate a declared copy direction against actual pointer kinds and
/// resolve `CopyKind::Default` from UVA attributes.
pub fn resolve_copy_kind(
    declared: CopyKind,
    dst: MemKind,
    src: MemKind,
) -> Result<CopyKind, CudaError> {
    let resolved = match declared {
        CopyKind::Default => match (dst.is_device(), src.is_device()) {
            (true, true) => CopyKind::DeviceToDevice,
            (true, false) => CopyKind::HostToDevice,
            (false, true) => CopyKind::DeviceToHost,
            (false, false) => CopyKind::HostToHost,
        },
        k => k,
    };
    let (dst_dev, src_dev) = match resolved {
        CopyKind::HostToDevice => (true, false),
        CopyKind::DeviceToHost => (false, true),
        CopyKind::DeviceToDevice => (true, true),
        CopyKind::HostToHost => (false, false),
        CopyKind::Default => unreachable!("resolved above"),
    };
    if !side_matches(dst, dst_dev) || !side_matches(src, src_dev) {
        return Err(CudaError::InvalidCopyKind {
            detail: format!("declared {resolved:?} but dst is {dst} and src is {src}"),
        });
    }
    Ok(resolved)
}

/// Host-synchronization behaviour of a memcpy.
pub fn memcpy_host_sync(resolved: CopyKind, is_async: bool) -> HostSync {
    if is_async {
        // cudaMemcpyAsync with pageable host memory "may be synchronous";
        // pessimistically: no host synchronization edge.
        return HostSync::StreamOrdered;
    }
    match resolved {
        CopyKind::HostToDevice | CopyKind::DeviceToHost | CopyKind::HostToHost => {
            HostSync::Blocking
        }
        // D2D copies "may be asynchronous with respect to the host".
        CopyKind::DeviceToDevice => HostSync::StreamOrdered,
        CopyKind::Default => unreachable!("resolve before querying semantics"),
    }
}

/// Host-synchronization behaviour of a memset on memory of `target` kind
/// (paper §III-C: pinned targets synchronize, pageable/device do not).
pub fn memset_host_sync(target: MemKind, is_async: bool) -> HostSync {
    if is_async {
        return HostSync::StreamOrdered;
    }
    match target {
        MemKind::HostPinned => HostSync::Blocking,
        MemKind::HostPageable | MemKind::Managed | MemKind::Device(_) => HostSync::StreamOrdered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::DeviceId;

    const DEV: MemKind = MemKind::Device(DeviceId(0));

    #[test]
    fn resolve_default_infers_direction() {
        assert_eq!(
            resolve_copy_kind(CopyKind::Default, DEV, MemKind::HostPageable).unwrap(),
            CopyKind::HostToDevice
        );
        assert_eq!(
            resolve_copy_kind(CopyKind::Default, MemKind::HostPageable, DEV).unwrap(),
            CopyKind::DeviceToHost
        );
        assert_eq!(
            resolve_copy_kind(CopyKind::Default, DEV, DEV).unwrap(),
            CopyKind::DeviceToDevice
        );
        assert_eq!(
            resolve_copy_kind(
                CopyKind::Default,
                MemKind::HostPinned,
                MemKind::HostPageable
            )
            .unwrap(),
            CopyKind::HostToHost
        );
    }

    #[test]
    fn declared_direction_validated() {
        assert!(resolve_copy_kind(CopyKind::HostToDevice, DEV, MemKind::HostPageable).is_ok());
        assert!(matches!(
            resolve_copy_kind(CopyKind::HostToDevice, MemKind::HostPageable, DEV),
            Err(CudaError::InvalidCopyKind { .. })
        ));
        assert!(matches!(
            resolve_copy_kind(CopyKind::DeviceToDevice, DEV, MemKind::HostPageable),
            Err(CudaError::InvalidCopyKind { .. })
        ));
    }

    #[test]
    fn pinned_and_managed_match_both_sides() {
        // Pinned memory is device-accessible: H2D from pinned, D2H into
        // pinned, even "D2D" against managed are all accepted.
        assert!(resolve_copy_kind(CopyKind::HostToDevice, DEV, MemKind::HostPinned).is_ok());
        assert!(resolve_copy_kind(CopyKind::DeviceToHost, MemKind::HostPinned, DEV).is_ok());
        assert!(resolve_copy_kind(CopyKind::DeviceToDevice, MemKind::Managed, DEV).is_ok());
    }

    #[test]
    fn sync_memcpy_h2d_d2h_blocking() {
        assert_eq!(
            memcpy_host_sync(CopyKind::HostToDevice, false),
            HostSync::Blocking
        );
        assert_eq!(
            memcpy_host_sync(CopyKind::DeviceToHost, false),
            HostSync::Blocking
        );
        assert_eq!(
            memcpy_host_sync(CopyKind::HostToHost, false),
            HostSync::Blocking
        );
    }

    #[test]
    fn d2d_pessimistically_stream_ordered() {
        assert_eq!(
            memcpy_host_sync(CopyKind::DeviceToDevice, false),
            HostSync::StreamOrdered
        );
    }

    #[test]
    fn async_memcpy_never_blocks() {
        for k in [
            CopyKind::HostToDevice,
            CopyKind::DeviceToHost,
            CopyKind::DeviceToDevice,
            CopyKind::HostToHost,
        ] {
            assert_eq!(memcpy_host_sync(k, true), HostSync::StreamOrdered);
        }
    }

    #[test]
    fn memset_pinned_blocks_others_do_not() {
        assert_eq!(
            memset_host_sync(MemKind::HostPinned, false),
            HostSync::Blocking
        );
        assert_eq!(
            memset_host_sync(MemKind::HostPageable, false),
            HostSync::StreamOrdered
        );
        assert_eq!(memset_host_sync(DEV, false), HostSync::StreamOrdered);
        assert_eq!(
            memset_host_sync(MemKind::Managed, false),
            HostSync::StreamOrdered
        );
        assert_eq!(
            memset_host_sync(MemKind::HostPinned, true),
            HostSync::StreamOrdered
        );
    }
}
