//! The simulated CUDA device: stream queues, deferred forcing, and the
//! CUDA-like API surface.
//!
//! One `CudaDevice` corresponds to one GPU owned by one MPI rank (the
//! paper's setup gives each process its own V100). The device shares the
//! global [`AddressSpace`] so CUDA-aware MPI can address its memory.

use crate::error::CudaError;
use crate::exec;
use crate::semantics::{self, CopyKind, HostSync};
use crate::stream::{
    DefaultStreamMode, Dep, EventId, EventState, Op, OpKind, StreamFlags, StreamId, StreamState,
};
use explore::{ChoiceKind, ScheduleController};
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use sim_mem::{AddressSpace, AllocationInfo, DeviceId, MemKind, Pod, PointerAttr, Ptr};
use std::sync::Arc;

/// CUDA-call counters for one device — the "CUDA" section of Table I.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CudaCounters {
    /// Streams in use (default stream + user streams created).
    pub streams: u64,
    /// `cudaMemset(+Async)` calls.
    pub memset_calls: u64,
    /// `cudaMemcpy(+Async)` calls.
    pub memcpy_calls: u64,
    /// Explicit synchronization calls (device/stream/event sync,
    /// stream query, stream-wait-event).
    pub sync_calls: u64,
    /// Kernel launches.
    pub kernel_calls: u64,
    /// Events created.
    pub events: u64,
    /// Device operations actually executed (diagnostics).
    pub ops_executed: u64,
}

/// A simulated CUDA device. See module docs.
pub struct CudaDevice {
    id: DeviceId,
    space: Arc<AddressSpace>,
    registry: Arc<KernelRegistry>,
    streams: Vec<StreamState>,
    events: Vec<EventState>,
    counters: CudaCounters,
    default_mode: DefaultStreamMode,
    /// Schedule controller plus the lane (rank) it is consulted on for
    /// full-device drain order. `None`: the default schedule.
    sched: Option<(Arc<dyn ScheduleController>, usize)>,
}

impl CudaDevice {
    /// Create a device with its implicit default stream.
    pub fn new(id: DeviceId, space: Arc<AddressSpace>, registry: Arc<KernelRegistry>) -> Self {
        CudaDevice {
            id,
            space,
            registry,
            streams: vec![StreamState::new(StreamFlags::Default)],
            events: Vec::new(),
            counters: CudaCounters {
                streams: 1,
                ..CudaCounters::default()
            },
            default_mode: DefaultStreamMode::Legacy,
            sched: None,
        }
    }

    /// Install a schedule controller consulted (on `lane`) for the
    /// completion order of independent queued ops during full-device
    /// drains ([`CudaDevice::force_all`] sites: `cudaDeviceSynchronize`,
    /// `cudaFree`, teardown flush). Targeted syncs
    /// (`cudaStreamSynchronize` etc.) keep their mandated order.
    pub fn set_schedule_controller(&mut self, sched: Arc<dyn ScheduleController>, lane: usize) {
        self.sched = Some((sched, lane));
    }

    /// Select legacy vs per-thread default-stream semantics (the
    /// `--default-stream per-thread` compile flag). Must be chosen before
    /// work is enqueued.
    pub fn set_default_stream_mode(&mut self, mode: DefaultStreamMode) {
        assert!(
            self.streams.iter().all(|s| s.enqueued == 0),
            "default-stream mode must be set before any work is enqueued"
        );
        self.default_mode = mode;
    }

    /// The active default-stream mode.
    pub fn default_stream_mode(&self) -> DefaultStreamMode {
        self.default_mode
    }

    /// The device id.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The shared address space.
    pub fn space(&self) -> &Arc<AddressSpace> {
        &self.space
    }

    /// The kernel registry.
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        &self.registry
    }

    /// Counter snapshot.
    pub fn counters(&self) -> CudaCounters {
        self.counters
    }

    // ---- memory management --------------------------------------------------

    /// `cudaMalloc`: device-resident allocation.
    pub fn malloc(&mut self, bytes: u64) -> Result<Ptr, CudaError> {
        Ok(self.space.alloc(MemKind::Device(self.id), bytes)?)
    }

    /// `cudaMalloc` sized in elements of `T`.
    pub fn malloc_array<T: Pod>(&mut self, n: u64) -> Result<Ptr, CudaError> {
        Ok(self.space.alloc_array::<T>(MemKind::Device(self.id), n)?)
    }

    /// `cudaMallocManaged`.
    pub fn malloc_managed(&mut self, bytes: u64) -> Result<Ptr, CudaError> {
        Ok(self
            .space
            .alloc_in_shard(MemKind::Managed, self.id.0, bytes)?)
    }

    /// `cudaHostAlloc`: pinned host memory.
    pub fn host_alloc(&mut self, bytes: u64) -> Result<Ptr, CudaError> {
        Ok(self
            .space
            .alloc_in_shard(MemKind::HostPinned, self.id.0, bytes)?)
    }

    /// Plain `malloc`: pageable host memory (tracked so that UVA queries
    /// and TypeART callbacks work for host buffers as well).
    pub fn host_malloc(&mut self, bytes: u64) -> Result<Ptr, CudaError> {
        Ok(self
            .space
            .alloc_in_shard(MemKind::HostPageable, self.id.0, bytes)?)
    }

    /// `cudaFree`: synchronizes the whole device, then releases.
    /// (Paper §III-B2: "memory management calls like cudaFree synchronize
    /// with the host across all streams".)
    pub fn free(&mut self, ptr: Ptr) -> Result<AllocationInfo, CudaError> {
        self.force_all()?;
        Ok(self.space.free(ptr)?)
    }

    /// Validate a `free` target without freeing it (see
    /// [`AddressSpace::free_validate`]).
    pub fn free_validate(&self, ptr: Ptr) -> Result<(), CudaError> {
        Ok(self.space.free_validate(ptr)?)
    }

    /// `cudaFreeAsync`: stream-ordered release — waits only for the given
    /// stream's prior work.
    pub fn free_async(&mut self, ptr: Ptr, stream: StreamId) -> Result<AllocationInfo, CudaError> {
        let target = self.check_stream(stream)?.enqueued;
        self.complete_through(stream, target)?;
        Ok(self.space.free(ptr)?)
    }

    /// `cuPointerGetAttribute` analogue.
    pub fn pointer_attributes(&self, ptr: Ptr) -> Result<PointerAttr, CudaError> {
        Ok(self.space.attributes(ptr)?)
    }

    // ---- streams -------------------------------------------------------------

    /// `cudaStreamCreate(WithFlags)`.
    pub fn stream_create(&mut self, flags: StreamFlags) -> StreamId {
        self.counters.streams += 1;
        self.streams.push(StreamState::new(flags));
        StreamId(self.streams.len() as u32 - 1)
    }

    /// `cudaStreamDestroy`: completes outstanding work, then retires the
    /// handle.
    pub fn stream_destroy(&mut self, s: StreamId) -> Result<(), CudaError> {
        if s.is_default() {
            return Err(CudaError::InvalidStream(0));
        }
        let target = self.check_stream(s)?.enqueued;
        self.complete_through(s, target)?;
        self.streams[s.0 as usize].alive = false;
        Ok(())
    }

    /// Stream flags (for the checker's non-blocking bookkeeping).
    pub fn stream_flags(&self, s: StreamId) -> Result<StreamFlags, CudaError> {
        Ok(self.check_stream(s)?.flags)
    }

    /// Ids of all live streams (default first).
    pub fn live_streams(&self) -> Vec<StreamId> {
        self.streams
            .iter()
            .enumerate()
            .filter(|(_, st)| st.alive)
            .map(|(i, _)| StreamId(i as u32))
            .collect()
    }

    fn check_stream(&self, s: StreamId) -> Result<&StreamState, CudaError> {
        let st = self
            .streams
            .get(s.0 as usize)
            .ok_or(CudaError::InvalidStream(s.0))?;
        if !st.alive {
            return Err(CudaError::StreamDestroyed(s.0));
        }
        Ok(st)
    }

    // ---- enqueue / force machinery --------------------------------------------

    /// Build the dependency set for an op about to be enqueued on `s`,
    /// implementing the legacy default-stream logical barriers (Fig. 3).
    fn barrier_deps(&mut self, s: StreamId) -> Vec<Dep> {
        let mut deps = std::mem::take(&mut self.streams[s.0 as usize].pending_deps);
        if self.default_mode == DefaultStreamMode::PerThread {
            // Per-thread default stream: no implicit barriers (§VI-B).
            return deps;
        }
        if s.is_default() {
            // Default-stream work waits for all previously enqueued work on
            // every blocking user stream.
            for (i, st) in self.streams.iter().enumerate().skip(1) {
                if st.alive && st.is_blocking() && st.enqueued > st.completed {
                    deps.push(Dep {
                        stream: StreamId(i as u32),
                        seq: st.enqueued,
                    });
                }
            }
        } else if self.streams[s.0 as usize].is_blocking() {
            // Blocking user-stream work waits for prior default-stream work.
            let d = &self.streams[0];
            if d.enqueued > d.completed {
                deps.push(Dep {
                    stream: StreamId::DEFAULT,
                    seq: d.enqueued,
                });
            }
        }
        deps
    }

    fn enqueue(&mut self, s: StreamId, kind: OpKind) -> Result<u64, CudaError> {
        self.check_stream(s)?;
        let deps = self.barrier_deps(s);
        let st = &mut self.streams[s.0 as usize];
        st.queue.push_back(Op { kind, deps });
        st.enqueued += 1;
        Ok(st.enqueued)
    }

    /// Force completion of the first `seq` operations enqueued on `s`.
    fn complete_through(&mut self, s: StreamId, seq: u64) -> Result<(), CudaError> {
        loop {
            let st = &self.streams[s.0 as usize];
            if st.completed >= seq.min(st.enqueued) {
                return Ok(());
            }
            let op = self.streams[s.0 as usize]
                .queue
                .pop_front()
                .expect("completed < enqueued implies non-empty queue");
            // Count the op as completed *before* executing so a device
            // fault cannot wedge the queue.
            self.streams[s.0 as usize].completed += 1;
            for dep in &op.deps {
                self.complete_through(dep.stream, dep.seq)?;
            }
            self.execute(op.kind)?;
        }
    }

    fn execute(&mut self, kind: OpKind) -> Result<(), CudaError> {
        self.counters.ops_executed += 1;
        match kind {
            OpKind::Kernel { kernel, grid, args } => {
                exec::execute_kernel(&self.space, &self.registry, kernel, grid, &args)
            }
            OpKind::Copy { dst, src, len } => Ok(self.space.copy(dst, src, len)?),
            OpKind::Copy2D {
                dst,
                dpitch,
                src,
                spitch,
                width,
                height,
            } => {
                for row in 0..height {
                    self.space
                        .copy(dst.offset(row * dpitch), src.offset(row * spitch), width)?;
                }
                Ok(())
            }
            OpKind::Memset { ptr, value, len } => Ok(self.space.fill(ptr, len, value)?),
            OpKind::EventRecord { .. } => Ok(()),
        }
    }

    /// True when the first `seq` ops of the dep's stream have executed
    /// (clamped like [`CudaDevice::complete_through`]'s target).
    fn dep_satisfied(&self, d: Dep) -> bool {
        let st = &self.streams[d.stream.0 as usize];
        st.completed >= d.seq.min(st.enqueued)
    }

    /// The stream whose front op the *uncontrolled* recursive drain
    /// would execute next: start at the lowest-index live non-idle
    /// stream and follow each front op's first unsatisfied dependency.
    /// Terminates because the dep graph is acyclic — a dep's seq only
    /// references work enqueued before the depending op.
    fn default_next(&self) -> Option<u32> {
        let mut cur = (0..self.streams.len())
            .find(|&i| self.streams[i].alive && !self.streams[i].queue.is_empty())?
            as u32;
        loop {
            let op = self.streams[cur as usize]
                .queue
                .front()
                .expect("an unsatisfied dep implies a non-empty queue");
            match op.deps.iter().find(|d| !self.dep_satisfied(**d)) {
                Some(d) => cur = d.stream.0,
                None => return Some(cur),
            }
        }
    }

    fn force_all(&mut self) -> Result<(), CudaError> {
        if self.sched.is_none() {
            for i in 0..self.streams.len() {
                if self.streams[i].alive {
                    let target = self.streams[i].enqueued;
                    self.complete_through(StreamId(i as u32), target)?;
                }
            }
            return Ok(());
        }
        // Controlled drain: independent queued ops genuinely commute at
        // a full-device sync, so complete ONE ready front op at a time
        // and let the controller pick among them. Candidate 0 is the op
        // the recursive drain above would execute next, so all-default
        // choices reproduce the uncontrolled schedule exactly.
        loop {
            let Some(first) = self.default_next() else {
                return Ok(());
            };
            let mut cands: Vec<u32> = vec![first];
            for (i, st) in self.streams.iter().enumerate() {
                if i as u32 == first || !st.alive {
                    continue;
                }
                let Some(op) = st.queue.front() else {
                    continue;
                };
                if op.deps.iter().all(|d| self.dep_satisfied(*d)) {
                    cands.push(i as u32);
                }
            }
            let pick = if cands.len() > 1 {
                let (ctrl, lane) = self.sched.as_ref().expect("controlled path");
                let sigs: Vec<u64> = cands
                    .iter()
                    .map(|&s| {
                        self.streams[s as usize]
                            .queue
                            .front()
                            .expect("candidates have front ops")
                            .kind
                            .drain_sig()
                    })
                    .collect();
                ctrl.choose(*lane, ChoiceKind::StreamDrain, &sigs)
                    .min(cands.len() - 1)
            } else {
                0
            };
            let s = cands[pick] as usize;
            let op = self.streams[s]
                .queue
                .pop_front()
                .expect("candidates have front ops");
            self.streams[s].completed += 1;
            // Candidates are ready by construction: execute directly.
            self.execute(op.kind)?;
        }
    }

    // ---- kernel launch ----------------------------------------------------------

    /// `<<<grid>>>` kernel launch on a stream.
    pub fn launch(
        &mut self,
        kernel: KernelId,
        grid: LaunchGrid,
        stream: StreamId,
        args: Vec<LaunchArg>,
    ) -> Result<(), CudaError> {
        self.counters.kernel_calls += 1;
        exec::validate_launch(&self.space, self.registry.def(kernel), &args)?;
        self.enqueue(stream, OpKind::Kernel { kernel, grid, args })?;
        Ok(())
    }

    // ---- memory operations ---------------------------------------------------------

    /// `cudaMemcpy`: enqueued on the default stream; blocks the host when
    /// the semantics table says so.
    pub fn memcpy(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
    ) -> Result<(), CudaError> {
        self.memcpy_impl(dst, src, len, kind, StreamId::DEFAULT, false)
    }

    /// `cudaMemcpyAsync` on a stream.
    pub fn memcpy_async(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memcpy_impl(dst, src, len, kind, stream, true)
    }

    fn memcpy_impl(
        &mut self,
        dst: Ptr,
        src: Ptr,
        len: u64,
        kind: CopyKind,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        self.counters.memcpy_calls += 1;
        let dk = self.space.attributes(dst)?.kind;
        let sk = self.space.attributes(src)?.kind;
        let resolved = semantics::resolve_copy_kind(kind, dk, sk)?;
        let seq = self.enqueue(stream, OpKind::Copy { dst, src, len })?;
        if semantics::memcpy_host_sync(resolved, is_async) == HostSync::Blocking {
            self.complete_through(stream, seq)?;
        }
        Ok(())
    }

    /// `cudaMemcpy2D`: pitched copy of `height` rows of `width` bytes
    /// (strided sub-matrix transfer — column halos, tiles). Host-sync
    /// semantics follow the plain memcpy rules for the resolved direction.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_2d(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
    ) -> Result<(), CudaError> {
        self.memcpy_2d_impl(
            dst,
            dpitch,
            src,
            spitch,
            width,
            height,
            kind,
            StreamId::DEFAULT,
            false,
        )
    }

    /// `cudaMemcpy2DAsync` on a stream.
    #[allow(clippy::too_many_arguments)]
    pub fn memcpy_2d_async(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memcpy_2d_impl(dst, dpitch, src, spitch, width, height, kind, stream, true)
    }

    #[allow(clippy::too_many_arguments)]
    fn memcpy_2d_impl(
        &mut self,
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
        kind: CopyKind,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        if width > dpitch || width > spitch {
            return Err(CudaError::InvalidCopyKind {
                detail: format!("width {width} exceeds pitch (dpitch {dpitch}, spitch {spitch})"),
            });
        }
        self.counters.memcpy_calls += 1;
        let dk = self.space.attributes(dst)?.kind;
        let sk = self.space.attributes(src)?.kind;
        let resolved = semantics::resolve_copy_kind(kind, dk, sk)?;
        // Validate the full strided footprint up front so a fault surfaces
        // at the call site, not mid-execution.
        if height > 0 {
            let span = (height - 1) * dpitch + width;
            self.space.find_range(dst, span)?;
            let span = (height - 1) * spitch + width;
            self.space.find_range(src, span)?;
        }
        let seq = self.enqueue(
            stream,
            OpKind::Copy2D {
                dst,
                dpitch,
                src,
                spitch,
                width,
                height,
            },
        )?;
        if semantics::memcpy_host_sync(resolved, is_async) == HostSync::Blocking {
            self.complete_through(stream, seq)?;
        }
        Ok(())
    }

    /// `cudaMemset`: enqueued on the default stream.
    pub fn memset(&mut self, ptr: Ptr, value: u8, len: u64) -> Result<(), CudaError> {
        self.memset_impl(ptr, value, len, StreamId::DEFAULT, false)
    }

    /// `cudaMemsetAsync` on a stream.
    pub fn memset_async(
        &mut self,
        ptr: Ptr,
        value: u8,
        len: u64,
        stream: StreamId,
    ) -> Result<(), CudaError> {
        self.memset_impl(ptr, value, len, stream, true)
    }

    fn memset_impl(
        &mut self,
        ptr: Ptr,
        value: u8,
        len: u64,
        stream: StreamId,
        is_async: bool,
    ) -> Result<(), CudaError> {
        self.counters.memset_calls += 1;
        let kind = self.space.attributes(ptr)?.kind;
        let seq = self.enqueue(stream, OpKind::Memset { ptr, value, len })?;
        if semantics::memset_host_sync(kind, is_async) == HostSync::Blocking {
            self.complete_through(stream, seq)?;
        }
        Ok(())
    }

    // ---- synchronization --------------------------------------------------------------

    /// `cudaDeviceSynchronize`.
    pub fn device_synchronize(&mut self) -> Result<(), CudaError> {
        self.counters.sync_calls += 1;
        self.force_all()
    }

    /// `cudaStreamSynchronize`.
    pub fn stream_synchronize(&mut self, s: StreamId) -> Result<(), CudaError> {
        self.counters.sync_calls += 1;
        let target = self.check_stream(s)?.enqueued;
        self.complete_through(s, target)
    }

    /// `cudaStreamQuery`, modeled as the busy-wait synchronization the
    /// paper describes (§III-B1): the simulated device makes progress only
    /// when forced, so the query forces completion and reports success.
    pub fn stream_query(&mut self, s: StreamId) -> Result<bool, CudaError> {
        self.counters.sync_calls += 1;
        let target = self.check_stream(s)?.enqueued;
        self.complete_through(s, target)?;
        Ok(true)
    }

    /// Non-forcing idleness check (diagnostics; not part of the modeled
    /// CUDA API).
    pub fn is_stream_idle(&self, s: StreamId) -> Result<bool, CudaError> {
        Ok(self.check_stream(s)?.is_idle())
    }

    // ---- events -----------------------------------------------------------------------

    /// `cudaEventCreate`.
    pub fn event_create(&mut self) -> EventId {
        self.counters.events += 1;
        self.events.push(EventState {
            alive: true,
            recorded: None,
        });
        EventId(self.events.len() as u32 - 1)
    }

    fn check_event(&self, e: EventId) -> Result<EventState, CudaError> {
        let st = self
            .events
            .get(e.0 as usize)
            .ok_or(CudaError::InvalidEvent(e.0))?;
        if !st.alive {
            return Err(CudaError::InvalidEvent(e.0));
        }
        Ok(*st)
    }

    /// Validate an event handle without touching it. Checker-side
    /// precondition: a record that will fail must not leave annotations
    /// behind, so the handle is checked before any emission.
    pub fn event_validate(&self, e: EventId) -> Result<(), CudaError> {
        self.check_event(e).map(|_| ())
    }

    /// `cudaEventRecord`: places a completion marker on `stream`.
    pub fn event_record(&mut self, e: EventId, stream: StreamId) -> Result<(), CudaError> {
        self.check_event(e)?;
        let seq = self.enqueue(stream, OpKind::EventRecord { event: e })?;
        self.events[e.0 as usize].recorded = Some(Dep { stream, seq });
        Ok(())
    }

    /// `cudaEventSynchronize`: blocks until the marker completes.
    pub fn event_synchronize(&mut self, e: EventId) -> Result<(), CudaError> {
        self.counters.sync_calls += 1;
        let rec = self
            .check_event(e)?
            .recorded
            .ok_or(CudaError::EventNotRecorded(e.0))?;
        self.complete_through(rec.stream, rec.seq)
    }

    /// `cudaEventQuery` (non-forcing).
    pub fn event_query(&mut self, e: EventId) -> Result<bool, CudaError> {
        match self.check_event(e)?.recorded {
            None => Err(CudaError::EventNotRecorded(e.0)),
            Some(rec) => Ok(self.streams[rec.stream.0 as usize].completed >= rec.seq),
        }
    }

    /// `cudaEventDestroy`.
    pub fn event_destroy(&mut self, e: EventId) -> Result<(), CudaError> {
        self.check_event(e)?;
        self.events[e.0 as usize].alive = false;
        Ok(())
    }

    /// `cudaStreamWaitEvent`: all *future* work on `stream` waits for the
    /// event's recorded position.
    pub fn stream_wait_event(&mut self, stream: StreamId, e: EventId) -> Result<(), CudaError> {
        self.counters.sync_calls += 1;
        let rec = self
            .check_event(e)?
            .recorded
            .ok_or(CudaError::EventNotRecorded(e.0))?;
        self.check_stream(stream)?;
        self.streams[stream.0 as usize].pending_deps.push(rec);
        Ok(())
    }

    /// Where the event was recorded (for the checker's event→stream map).
    pub fn event_stream(&self, e: EventId) -> Result<Option<StreamId>, CudaError> {
        Ok(self.check_event(e)?.recorded.map(|d| d.stream))
    }

    /// Flush all outstanding work (program teardown).
    pub fn flush(&mut self) -> Result<(), CudaError> {
        self.force_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::ast::ScalarTy;
    use kernel_ir::builder::*;

    struct Fixture {
        dev: CudaDevice,
        fill: KernelId,
        copy: KernelId,
    }

    /// fill(p, v, n): p[tid] = v; copy(dst, src, n): dst[tid] = src[tid].
    fn fixture() -> Fixture {
        let space = Arc::new(AddressSpace::new());
        let mut reg = KernelRegistry::new();
        let mut b = KernelBuilder::new("fill");
        let p = b.ptr_param("p", ScalarTy::F64);
        let v = b.scalar_param("v", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |bb| bb.store(p, tid(), v.get()));
        let fill = reg.register_ir(b.finish()).unwrap();

        let mut b = KernelBuilder::new("copy");
        let dst = b.ptr_param("dst", ScalarTy::F64);
        let src = b.ptr_param("src", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |bb| {
            bb.store(dst, tid(), load(src, tid()))
        });
        let copy = reg.register_ir(b.finish()).unwrap();

        Fixture {
            dev: CudaDevice::new(DeviceId(0), space, Arc::new(reg)),
            fill,
            copy,
        }
    }

    fn launch_fill(f: &mut Fixture, p: Ptr, v: f64, n: u64, s: StreamId) {
        let (fill, _) = (f.fill, ());
        f.dev
            .launch(
                fill,
                LaunchGrid::cover(n, 32),
                s,
                vec![
                    LaunchArg::Ptr(p),
                    LaunchArg::F64(v),
                    LaunchArg::I64(n as i64),
                ],
            )
            .unwrap();
    }

    fn launch_copy(f: &mut Fixture, dst: Ptr, src: Ptr, n: u64, s: StreamId) {
        let copy = f.copy;
        f.dev
            .launch(
                copy,
                LaunchGrid::cover(n, 32),
                s,
                vec![
                    LaunchArg::Ptr(dst),
                    LaunchArg::Ptr(src),
                    LaunchArg::I64(n as i64),
                ],
            )
            .unwrap();
    }

    #[test]
    fn kernel_effects_deferred_until_sync() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(4).unwrap();
        launch_fill(&mut f, p, 9.0, 4, StreamId::DEFAULT);
        // Effects are NOT visible before synchronization: the stale-data
        // failure mode of a missing cudaDeviceSynchronize.
        assert_eq!(f.dev.space().read_vec::<f64>(p, 4).unwrap(), vec![0.0; 4]);
        f.dev.device_synchronize().unwrap();
        assert_eq!(f.dev.space().read_vec::<f64>(p, 4).unwrap(), vec![9.0; 4]);
    }

    #[test]
    fn stream_fifo_order() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(4).unwrap();
        launch_fill(&mut f, p, 1.0, 4, StreamId::DEFAULT);
        launch_fill(&mut f, p, 2.0, 4, StreamId::DEFAULT);
        f.dev.stream_synchronize(StreamId::DEFAULT).unwrap();
        assert_eq!(f.dev.space().read_vec::<f64>(p, 4).unwrap(), vec![2.0; 4]);
    }

    #[test]
    fn fig3_default_stream_barriers() {
        // K1 on stream1; K0 on default; K2 on stream2. Synchronizing
        // stream2 must execute K1 and K0 first (Fig. 3).
        let mut f = fixture();
        let s1 = f.dev.stream_create(StreamFlags::Default);
        let s2 = f.dev.stream_create(StreamFlags::Default);
        let a = f.dev.malloc_array::<f64>(1).unwrap();
        let b = f.dev.malloc_array::<f64>(1).unwrap();
        let c = f.dev.malloc_array::<f64>(1).unwrap();
        launch_fill(&mut f, a, 1.0, 1, s1); // K1: a = 1
        launch_copy(&mut f, b, a, 1, StreamId::DEFAULT); // K0: b = a
        launch_copy(&mut f, c, b, 1, s2); // K2: c = b
        f.dev.stream_synchronize(s2).unwrap();
        assert_eq!(f.dev.space().read_at::<f64>(c).unwrap(), 1.0);
        // All three streams drained by the chain.
        assert!(f.dev.is_stream_idle(StreamId::DEFAULT).unwrap());
        assert!(f.dev.is_stream_idle(s1).unwrap());
    }

    #[test]
    fn non_blocking_stream_escapes_barriers() {
        let mut f = fixture();
        let nb = f.dev.stream_create(StreamFlags::NonBlocking);
        let a = f.dev.malloc_array::<f64>(1).unwrap();
        let b = f.dev.malloc_array::<f64>(1).unwrap();
        launch_fill(&mut f, a, 5.0, 1, nb); // on non-blocking stream
        launch_copy(&mut f, b, a, 1, StreamId::DEFAULT); // default does NOT wait
        f.dev.stream_synchronize(StreamId::DEFAULT).unwrap();
        // K on nb never ran: default stream saw stale a == 0.
        assert_eq!(f.dev.space().read_at::<f64>(b).unwrap(), 0.0);
        assert!(!f.dev.is_stream_idle(nb).unwrap());
        f.dev.stream_synchronize(nb).unwrap();
        assert_eq!(f.dev.space().read_at::<f64>(a).unwrap(), 5.0);
    }

    #[test]
    fn sync_memcpy_forces_prior_stream_work() {
        let mut f = fixture();
        let d = f.dev.malloc_array::<f64>(4).unwrap();
        let h = f.dev.host_malloc(32).unwrap();
        launch_fill(&mut f, d, 3.0, 4, StreamId::DEFAULT);
        // Blocking D2H memcpy on the default stream: runs the kernel first.
        f.dev.memcpy(h, d, 32, CopyKind::DeviceToHost).unwrap();
        assert_eq!(f.dev.space().read_vec::<f64>(h, 4).unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn async_memcpy_defers() {
        let mut f = fixture();
        let d = f.dev.malloc_array::<f64>(4).unwrap();
        let h = f.dev.host_alloc(32).unwrap(); // pinned
        launch_fill(&mut f, d, 3.0, 4, StreamId::DEFAULT);
        f.dev
            .memcpy_async(h, d, 32, CopyKind::DeviceToHost, StreamId::DEFAULT)
            .unwrap();
        // Nothing forced yet.
        assert_eq!(f.dev.space().read_vec::<f64>(h, 4).unwrap(), vec![0.0; 4]);
        f.dev.device_synchronize().unwrap();
        assert_eq!(f.dev.space().read_vec::<f64>(h, 4).unwrap(), vec![3.0; 4]);
    }

    #[test]
    fn memset_on_pinned_blocks_on_device_defers() {
        let mut f = fixture();
        let pinned = f.dev.host_alloc(16).unwrap();
        let dev = f.dev.malloc(16).unwrap();
        f.dev.memset(pinned, 0xFF, 16).unwrap();
        assert_eq!(
            f.dev.space().read_at::<u8>(pinned).unwrap(),
            0xFF,
            "pinned memset blocks"
        );
        f.dev.memset(dev, 0xAA, 16).unwrap();
        assert_eq!(
            f.dev.space().read_at::<u8>(dev).unwrap(),
            0x00,
            "device memset deferred"
        );
        f.dev.device_synchronize().unwrap();
        assert_eq!(f.dev.space().read_at::<u8>(dev).unwrap(), 0xAA);
    }

    #[test]
    fn event_record_synchronize() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(2).unwrap();
        let e = f.dev.event_create();
        launch_fill(&mut f, p, 4.0, 2, StreamId::DEFAULT);
        f.dev.event_record(e, StreamId::DEFAULT).unwrap();
        launch_fill(&mut f, p, 6.0, 2, StreamId::DEFAULT);
        // Event sync completes work up to the marker only.
        f.dev.event_synchronize(e).unwrap();
        assert_eq!(f.dev.space().read_vec::<f64>(p, 2).unwrap(), vec![4.0; 2]);
        assert!(f.dev.event_query(e).unwrap());
        assert!(!f.dev.is_stream_idle(StreamId::DEFAULT).unwrap());
    }

    #[test]
    fn stream_wait_event_orders_across_streams() {
        let mut f = fixture();
        let s1 = f.dev.stream_create(StreamFlags::NonBlocking);
        let s2 = f.dev.stream_create(StreamFlags::NonBlocking);
        let a = f.dev.malloc_array::<f64>(1).unwrap();
        let b = f.dev.malloc_array::<f64>(1).unwrap();
        let e = f.dev.event_create();
        launch_fill(&mut f, a, 8.0, 1, s1);
        f.dev.event_record(e, s1).unwrap();
        f.dev.stream_wait_event(s2, e).unwrap();
        launch_copy(&mut f, b, a, 1, s2);
        f.dev.stream_synchronize(s2).unwrap();
        assert_eq!(f.dev.space().read_at::<f64>(b).unwrap(), 8.0);
    }

    #[test]
    fn event_errors() {
        let mut f = fixture();
        let e = f.dev.event_create();
        assert!(matches!(
            f.dev.event_synchronize(e),
            Err(CudaError::EventNotRecorded(_))
        ));
        f.dev.event_destroy(e).unwrap();
        assert!(matches!(
            f.dev.event_record(e, StreamId::DEFAULT),
            Err(CudaError::InvalidEvent(_))
        ));
        assert!(matches!(
            f.dev.event_synchronize(EventId(99)),
            Err(CudaError::InvalidEvent(99))
        ));
    }

    #[test]
    fn stream_errors() {
        let mut f = fixture();
        assert!(matches!(
            f.dev.stream_synchronize(StreamId(9)),
            Err(CudaError::InvalidStream(9))
        ));
        let s = f.dev.stream_create(StreamFlags::Default);
        f.dev.stream_destroy(s).unwrap();
        let p = f.dev.malloc_array::<f64>(1).unwrap();
        assert!(matches!(
            f.dev.launch(
                f.fill,
                LaunchGrid::linear(1),
                s,
                vec![LaunchArg::Ptr(p), LaunchArg::F64(0.0), LaunchArg::I64(1)]
            ),
            Err(CudaError::StreamDestroyed(_))
        ));
        assert!(matches!(
            f.dev.stream_destroy(StreamId::DEFAULT),
            Err(CudaError::InvalidStream(0))
        ));
    }

    #[test]
    fn free_forces_device_and_releases() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(4).unwrap();
        let q = f.dev.malloc_array::<f64>(4).unwrap();
        launch_copy(&mut f, q, p, 4, StreamId::DEFAULT);
        f.dev.free(p).unwrap(); // must execute the pending kernel first
        assert_eq!(f.dev.counters().ops_executed, 1);
        assert!(f.dev.space().attributes(p).is_err());
    }

    #[test]
    fn stream_query_forces() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(2).unwrap();
        launch_fill(&mut f, p, 1.5, 2, StreamId::DEFAULT);
        assert!(f.dev.stream_query(StreamId::DEFAULT).unwrap());
        assert_eq!(f.dev.space().read_vec::<f64>(p, 2).unwrap(), vec![1.5; 2]);
    }

    #[test]
    fn counters_accumulate() {
        let mut f = fixture();
        let p = f.dev.malloc_array::<f64>(2).unwrap();
        let h = f.dev.host_malloc(16).unwrap();
        let s = f.dev.stream_create(StreamFlags::Default);
        launch_fill(&mut f, p, 1.0, 2, s);
        f.dev.memcpy(h, p, 16, CopyKind::DeviceToHost).unwrap();
        f.dev.memset(p, 0, 16).unwrap();
        f.dev.device_synchronize().unwrap();
        f.dev.stream_synchronize(s).unwrap();
        let c = f.dev.counters();
        assert_eq!(c.streams, 2);
        assert_eq!(c.kernel_calls, 1);
        assert_eq!(c.memcpy_calls, 1);
        assert_eq!(c.memset_calls, 1);
        assert_eq!(c.sync_calls, 2);
    }

    #[test]
    fn pointer_attributes_roundtrip() {
        let mut f = fixture();
        let p = f.dev.malloc(64).unwrap();
        let attr = f.dev.pointer_attributes(p.offset(8)).unwrap();
        assert_eq!(attr.kind, MemKind::Device(DeviceId(0)));
        assert_eq!(attr.offset, 8);
    }

    /// The controlled drain with an all-defaults plan must reproduce
    /// the uncontrolled drain exactly — even when a lower-index stream
    /// is blocked on a dependency while others are ready.
    #[test]
    fn controlled_drain_default_plan_matches_uncontrolled() {
        use explore::SchedulePlan;
        let run = |controlled: bool| {
            let mut f = fixture();
            if controlled {
                f.dev.set_schedule_controller(SchedulePlan::defaults(0), 0);
            }
            let p = f.dev.malloc_array::<f64>(4).unwrap();
            let q = f.dev.malloc_array::<f64>(4).unwrap();
            let s1 = f.dev.stream_create(StreamFlags::NonBlocking);
            let s2 = f.dev.stream_create(StreamFlags::NonBlocking);
            let e = f.dev.event_create();
            // s2 fills p; s1 waits on the event, then copies p -> q.
            launch_fill(&mut f, p, 3.0, 4, s2);
            f.dev.event_record(e, s2).unwrap();
            f.dev.stream_wait_event(s1, e).unwrap();
            launch_copy(&mut f, q, p, 4, s1);
            f.dev.device_synchronize().unwrap();
            (
                f.dev.space().read_vec::<f64>(q, 4).unwrap(),
                f.dev.counters().ops_executed,
            )
        };
        assert_eq!(run(false), run(true));
    }

    /// A plan choosing the alternative drain order genuinely reorders
    /// independent ops: last writer wins flips with the schedule.
    #[test]
    fn controlled_drain_explores_alternate_orders() {
        use explore::SchedulePlan;
        let run = |choices: Vec<u32>| {
            let mut f = fixture();
            f.dev
                .set_schedule_controller(SchedulePlan::with_choices(vec![choices]), 0);
            let p = f.dev.malloc_array::<f64>(2).unwrap();
            let s1 = f.dev.stream_create(StreamFlags::NonBlocking);
            let s2 = f.dev.stream_create(StreamFlags::NonBlocking);
            launch_fill(&mut f, p, 1.0, 2, s1);
            launch_fill(&mut f, p, 2.0, 2, s2);
            f.dev.device_synchronize().unwrap();
            f.dev.space().read_at::<f64>(p).unwrap()
        };
        assert_eq!(run(vec![]), 2.0, "default: s1 drains before s2");
        assert_eq!(run(vec![1]), 1.0, "alternate: s2's op fires first");
    }
}
