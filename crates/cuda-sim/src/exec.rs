//! Kernel argument binding and device-side execution.
//!
//! At execution time each pointer argument is resolved through the UVA
//! address space to `(allocation, offset, remaining elements)` and bound
//! **mutably or shared according to the compiler pass's access attribute**
//! — a write-attributed argument gets an exclusive view, a read-only one a
//! shared view. A native kernel that mutates a read-bound argument panics,
//! turning any unsoundness of the analysis into an immediate test failure.
//!
//! If a kernel has no native closure, the reference interpreter runs over
//! the same bound views.

use crate::error::CudaError;
use kernel_ir::ast::{KernelDef, ParamTy, ScalarTy};
use kernel_ir::interp::{self, KValue, KernelMemory, RunArg};
use kernel_ir::registry::{NativeArg, NativeCtx};
use kernel_ir::{AccessAttr, KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use parking_lot::{MappedRwLockReadGuard, MappedRwLockWriteGuard};
use sim_mem::space::Allocation;
use sim_mem::AddressSpace;
use std::sync::Arc;

/// Validate launch arguments against the kernel signature (done at enqueue
/// time, so misuse fails at the call site like a CUDA launch error).
pub(crate) fn validate_launch(
    space: &AddressSpace,
    def: &KernelDef,
    args: &[LaunchArg],
) -> Result<(), CudaError> {
    if def.params.len() != args.len() {
        return Err(CudaError::BadKernelArity {
            kernel: def.name.clone(),
            expected: def.params.len(),
            got: args.len(),
        });
    }
    for (i, (p, a)) in def.params.iter().zip(args).enumerate() {
        match (p.ty, a) {
            (ParamTy::Ptr(_), LaunchArg::Ptr(ptr)) => {
                let attr = space.attributes(*ptr).map_err(CudaError::Mem)?;
                if !attr.kind.device_accessible() {
                    return Err(CudaError::BadKernelArg {
                        kernel: def.name.clone(),
                        index: i,
                        expected: format!("device-accessible pointer, got {} memory", attr.kind),
                    });
                }
            }
            (ParamTy::Scalar(t), LaunchArg::F64(_)) if t.is_float() => {}
            (ParamTy::Scalar(t), LaunchArg::I64(_)) if !t.is_float() => {}
            _ => {
                return Err(CudaError::BadKernelArg {
                    kernel: def.name.clone(),
                    index: i,
                    expected: format!("{:?}", p.ty),
                });
            }
        }
    }
    Ok(())
}

/// A pointer argument bound to its allocation.
struct Binding {
    alloc: Arc<Allocation>,
    byte_off: u64,
    elems: u64,
    ty: ScalarTy,
    writable: bool,
}

enum BoundBuf<'a> {
    WF64(MappedRwLockWriteGuard<'a, [f64]>),
    RF64(MappedRwLockReadGuard<'a, [f64]>),
    WF32(MappedRwLockWriteGuard<'a, [f32]>),
    RF32(MappedRwLockReadGuard<'a, [f32]>),
    WI64(MappedRwLockWriteGuard<'a, [i64]>),
    RI64(MappedRwLockReadGuard<'a, [i64]>),
    WI32(MappedRwLockWriteGuard<'a, [i32]>),
    RI32(MappedRwLockReadGuard<'a, [i32]>),
}

impl BoundBuf<'_> {
    fn len(&self) -> u64 {
        match self {
            BoundBuf::WF64(g) => g.len() as u64,
            BoundBuf::RF64(g) => g.len() as u64,
            BoundBuf::WF32(g) => g.len() as u64,
            BoundBuf::RF32(g) => g.len() as u64,
            BoundBuf::WI64(g) => g.len() as u64,
            BoundBuf::RI64(g) => g.len() as u64,
            BoundBuf::WI32(g) => g.len() as u64,
            BoundBuf::RI32(g) => g.len() as u64,
        }
    }
}

struct GuardMemory<'a> {
    bufs: Vec<BoundBuf<'a>>,
    /// First slot the kernel stored into without a write binding (the
    /// access analysis failed to mark a written argument). The trait's
    /// `store` cannot fail, so the violation is recorded here — the store
    /// is dropped — and surfaced as a typed error after the run.
    bad_store: Option<usize>,
}

impl KernelMemory for GuardMemory<'_> {
    fn len(&self, slot: usize) -> u64 {
        self.bufs[slot].len()
    }

    fn load(&self, slot: usize, idx: u64) -> KValue {
        let i = idx as usize;
        match &self.bufs[slot] {
            BoundBuf::WF64(g) => KValue::F(g[i]),
            BoundBuf::RF64(g) => KValue::F(g[i]),
            BoundBuf::WF32(g) => KValue::F(f64::from(g[i])),
            BoundBuf::RF32(g) => KValue::F(f64::from(g[i])),
            BoundBuf::WI64(g) => KValue::I(g[i]),
            BoundBuf::RI64(g) => KValue::I(g[i]),
            BoundBuf::WI32(g) => KValue::I(i64::from(g[i])),
            BoundBuf::RI32(g) => KValue::I(i64::from(g[i])),
        }
    }

    fn store(&mut self, slot: usize, idx: u64, v: KValue) {
        let i = idx as usize;
        match (&mut self.bufs[slot], v) {
            (BoundBuf::WF64(g), KValue::F(x)) => g[i] = x,
            (BoundBuf::WF32(g), KValue::F(x)) => g[i] = x as f32,
            (BoundBuf::WI64(g), KValue::I(x)) => g[i] = x,
            (BoundBuf::WI32(g), KValue::I(x)) => g[i] = x as i32,
            _ => {
                self.bad_store.get_or_insert(slot);
            }
        }
    }
}

/// Signature/argument mismatch that survived past enqueue-time validation
/// (registry swapped between enqueue and drain, or an internal binding
/// bug): surfaced as the same typed error the enqueue check raises instead
/// of a panic.
fn bad_arg(def: &KernelDef, index: usize) -> CudaError {
    CudaError::BadKernelArg {
        kernel: def.name.clone(),
        index,
        expected: "argument consistent with the signature validated at enqueue".to_string(),
    }
}

/// Execute one kernel launch. See module docs.
pub(crate) fn execute_kernel(
    space: &AddressSpace,
    registry: &KernelRegistry,
    kernel: KernelId,
    grid: LaunchGrid,
    args: &[LaunchArg],
) -> Result<(), CudaError> {
    let def = registry.def(kernel);
    let attrs = registry.attrs(kernel);
    debug_assert_eq!(def.params.len(), args.len(), "validated at enqueue");

    // Resolve pointer arguments.
    let mut bindings: Vec<Option<Binding>> = Vec::with_capacity(args.len());
    for (i, (p, a)) in def.params.iter().zip(args).enumerate() {
        match (p.ty, a) {
            (ParamTy::Ptr(ty), LaunchArg::Ptr(ptr)) => {
                let alloc = space.find(*ptr).map_err(CudaError::Mem)?;
                let byte_off = ptr.0 - alloc.base().0;
                let elems = (alloc.len() - byte_off) / ty.size();
                bindings.push(Some(Binding {
                    alloc,
                    byte_off,
                    elems,
                    ty,
                    writable: attrs
                        .get(i)
                        .copied()
                        .unwrap_or(AccessAttr::READ_WRITE)
                        .write,
                }));
            }
            _ => bindings.push(None),
        }
    }

    // Take guards according to access attributes.
    let mut bufs: Vec<BoundBuf<'_>> = Vec::new();
    let mut slot_of_param: Vec<Option<usize>> = vec![None; args.len()];
    for (i, b) in bindings.iter().enumerate() {
        let Some(b) = b else { continue };
        let g = match (b.ty, b.writable) {
            (ScalarTy::F64, true) => BoundBuf::WF64(b.alloc.write_slice(b.byte_off, b.elems)),
            (ScalarTy::F64, false) => BoundBuf::RF64(b.alloc.read_slice(b.byte_off, b.elems)),
            (ScalarTy::F32, true) => BoundBuf::WF32(b.alloc.write_slice(b.byte_off, b.elems)),
            (ScalarTy::F32, false) => BoundBuf::RF32(b.alloc.read_slice(b.byte_off, b.elems)),
            (ScalarTy::I64, true) => BoundBuf::WI64(b.alloc.write_slice(b.byte_off, b.elems)),
            (ScalarTy::I64, false) => BoundBuf::RI64(b.alloc.read_slice(b.byte_off, b.elems)),
            (ScalarTy::I32, true) => BoundBuf::WI32(b.alloc.write_slice(b.byte_off, b.elems)),
            (ScalarTy::I32, false) => BoundBuf::RI32(b.alloc.read_slice(b.byte_off, b.elems)),
        };
        slot_of_param[i] = Some(bufs.len());
        bufs.push(g);
    }

    if let Some(native) = registry.native(kernel) {
        // Native path: hand slices to the closure.
        let mut native_args: Vec<NativeArg<'_>> = Vec::with_capacity(args.len());
        // Build in reverse-safe order: drain bufs into an indexable pool of
        // &mut; simplest is to consume `bufs` into per-param args directly.
        let mut buf_iter = bufs.iter_mut();
        for (i, (p, a)) in def.params.iter().zip(args).enumerate() {
            match (p.ty, a) {
                (ParamTy::Ptr(_), LaunchArg::Ptr(_)) => {
                    let buf = buf_iter.next().ok_or_else(|| bad_arg(def, i))?;
                    native_args.push(match buf {
                        BoundBuf::WF64(g) => NativeArg::MutF64(g),
                        BoundBuf::RF64(g) => NativeArg::RefF64(g),
                        BoundBuf::WF32(g) => NativeArg::MutF32(g),
                        BoundBuf::RF32(g) => NativeArg::RefF32(g),
                        BoundBuf::WI64(g) => NativeArg::MutI64(g),
                        BoundBuf::RI64(g) => NativeArg::RefI64(g),
                        BoundBuf::WI32(g) => NativeArg::MutI32(g),
                        BoundBuf::RI32(g) => NativeArg::RefI32(g),
                    });
                }
                (_, LaunchArg::F64(v)) => native_args.push(NativeArg::F64(*v)),
                (_, LaunchArg::I64(v)) => native_args.push(NativeArg::I64(*v)),
                _ => return Err(bad_arg(def, i)),
            }
        }
        let mut ctx = NativeCtx::new(&def.name, grid.total(), native_args);
        native(&mut ctx);
        Ok(())
    } else {
        // Interpreter path over the same bound views.
        let mut run_args: Vec<RunArg> = Vec::with_capacity(args.len());
        for (i, (p, a)) in def.params.iter().zip(args).enumerate() {
            run_args.push(match (p.ty, a) {
                (ParamTy::Ptr(_), LaunchArg::Ptr(_)) => {
                    RunArg::Slot(slot_of_param[i].ok_or_else(|| bad_arg(def, i))?)
                }
                (_, LaunchArg::F64(v)) => RunArg::Val(KValue::F(*v)),
                (_, LaunchArg::I64(v)) => RunArg::Val(KValue::I(*v)),
                _ => return Err(bad_arg(def, i)),
            });
        }
        let mut mem = GuardMemory {
            bufs,
            bad_store: None,
        };
        let run = interp::run(registry.defs(), kernel, grid.total(), &run_args, &mut mem)
            .map_err(CudaError::Kernel);
        if let Some(slot) = mem.bad_store {
            let index = slot_of_param
                .iter()
                .position(|s| *s == Some(slot))
                .unwrap_or(slot);
            return Err(CudaError::BadKernelArg {
                kernel: def.name.clone(),
                index,
                expected: "write access attribute (kernel stored into a read-bound argument)"
                    .to_string(),
            });
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::builder::*;
    use sim_mem::{DeviceId, MemKind};

    fn setup() -> (Arc<AddressSpace>, KernelRegistry) {
        (Arc::new(AddressSpace::new()), KernelRegistry::new())
    }

    const DEV: MemKind = MemKind::Device(DeviceId(0));

    fn scale_kernel(reg: &mut KernelRegistry) -> KernelId {
        let mut b = KernelBuilder::new("scale");
        let out = b.ptr_param("out", ScalarTy::F64);
        let inp = b.ptr_param("in", ScalarTy::F64);
        let f = b.scalar_param("f", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| {
            b.store(out, tid(), load(inp, tid()) * f.get());
        });
        reg.register_ir(b.finish()).unwrap()
    }

    #[test]
    fn interpreter_execution_through_space() {
        let (space, mut reg) = setup();
        let k = scale_kernel(&mut reg);
        let a = space.alloc_array::<f64>(DEV, 4).unwrap();
        let b = space.alloc_array::<f64>(DEV, 4).unwrap();
        space
            .write_slice_data::<f64>(b, &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        execute_kernel(
            &space,
            &reg,
            k,
            LaunchGrid::cover(4, 2),
            &[
                LaunchArg::Ptr(a),
                LaunchArg::Ptr(b),
                LaunchArg::F64(3.0),
                LaunchArg::I64(4),
            ],
        )
        .unwrap();
        assert_eq!(
            space.read_vec::<f64>(a, 4).unwrap(),
            vec![3.0, 6.0, 9.0, 12.0]
        );
    }

    #[test]
    fn native_execution_preferred() {
        let (space, mut reg) = setup();
        let mut b = KernelBuilder::new("fill7");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.if_(tid().lt(grid_size()), |b| b.store(p, tid(), cf(0.0))); // IR says 0...
        let native: kernel_ir::NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
            for v in ctx.f64s_mut(0) {
                *v = 7.0; // ...native says 7, proving native ran
            }
        });
        let k = reg.register(b.finish(), Some(native)).unwrap();
        let p = space.alloc_array::<f64>(DEV, 3).unwrap();
        execute_kernel(
            &space,
            &reg,
            k,
            LaunchGrid::cover(3, 3),
            &[LaunchArg::Ptr(p)],
        )
        .unwrap();
        assert_eq!(space.read_vec::<f64>(p, 3).unwrap(), vec![7.0; 3]);
    }

    #[test]
    fn offset_pointer_binds_suffix() {
        let (space, mut reg) = setup();
        let k = scale_kernel(&mut reg);
        let a = space.alloc_array::<f64>(DEV, 8).unwrap();
        let b = space.alloc_array::<f64>(DEV, 8).unwrap();
        space.write_slice_data::<f64>(b, &[1.0; 8]).unwrap();
        // Bind the second half of `a` as output.
        execute_kernel(
            &space,
            &reg,
            k,
            LaunchGrid::cover(4, 4),
            &[
                LaunchArg::Ptr(a.offset(32)),
                LaunchArg::Ptr(b),
                LaunchArg::F64(5.0),
                LaunchArg::I64(4),
            ],
        )
        .unwrap();
        let v = space.read_vec::<f64>(a, 8).unwrap();
        assert_eq!(&v[..4], &[0.0; 4]);
        assert_eq!(&v[4..], &[5.0; 4]);
    }

    #[test]
    fn validate_rejects_pageable_host_pointer() {
        let (space, mut reg) = setup();
        let k = scale_kernel(&mut reg);
        let h = space.alloc_array::<f64>(MemKind::HostPageable, 4).unwrap();
        let d = space.alloc_array::<f64>(DEV, 4).unwrap();
        let err = validate_launch(
            &space,
            reg.def(k),
            &[
                LaunchArg::Ptr(h),
                LaunchArg::Ptr(d),
                LaunchArg::F64(1.0),
                LaunchArg::I64(4),
            ],
        )
        .unwrap_err();
        assert!(
            matches!(err, CudaError::BadKernelArg { index: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn validate_accepts_managed_and_pinned() {
        let (space, mut reg) = setup();
        let k = scale_kernel(&mut reg);
        let m = space.alloc_array::<f64>(MemKind::Managed, 4).unwrap();
        let p = space.alloc_array::<f64>(MemKind::HostPinned, 4).unwrap();
        validate_launch(
            &space,
            reg.def(k),
            &[
                LaunchArg::Ptr(m),
                LaunchArg::Ptr(p),
                LaunchArg::F64(1.0),
                LaunchArg::I64(4),
            ],
        )
        .unwrap();
    }

    #[test]
    fn validate_rejects_wrong_arity_and_scalar_class() {
        let (space, mut reg) = setup();
        let k = scale_kernel(&mut reg);
        let d = space.alloc_array::<f64>(DEV, 4).unwrap();
        assert!(matches!(
            validate_launch(&space, reg.def(k), &[LaunchArg::Ptr(d)]),
            Err(CudaError::BadKernelArity {
                expected: 4,
                got: 1,
                ..
            })
        ));
        assert!(matches!(
            validate_launch(
                &space,
                reg.def(k),
                &[
                    LaunchArg::Ptr(d),
                    LaunchArg::Ptr(d),
                    LaunchArg::I64(1), // f64 scalar expected
                    LaunchArg::I64(4)
                ]
            ),
            Err(CudaError::BadKernelArg { index: 2, .. })
        ));
    }

    #[test]
    fn device_fault_surfaces_as_error() {
        let (space, mut reg) = setup();
        let mut b = KernelBuilder::new("unguarded");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, tid(), cf(1.0));
        let k = reg.register_ir(b.finish()).unwrap();
        let d = space.alloc_array::<f64>(DEV, 2).unwrap();
        let err = execute_kernel(
            &space,
            &reg,
            k,
            LaunchGrid::cover(8, 8),
            &[LaunchArg::Ptr(d)],
        )
        .unwrap_err();
        assert!(matches!(err, CudaError::Kernel(_)), "{err}");
    }

    #[test]
    fn two_read_args_may_alias() {
        let (space, mut reg) = setup();
        let mut b = KernelBuilder::new("dot_partial");
        let out = b.ptr_param("out", ScalarTy::F64);
        let x = b.ptr_param("x", ScalarTy::F64);
        let y = b.ptr_param("y", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| {
            b.store(out, tid(), load(x, tid()) * load(y, tid()));
        });
        let k = reg.register_ir(b.finish()).unwrap();
        let o = space.alloc_array::<f64>(DEV, 4).unwrap();
        let v = space.alloc_array::<f64>(DEV, 4).unwrap();
        space
            .write_slice_data::<f64>(v, &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        // x and y alias the same allocation — both read-only: allowed.
        execute_kernel(
            &space,
            &reg,
            k,
            LaunchGrid::cover(4, 4),
            &[
                LaunchArg::Ptr(o),
                LaunchArg::Ptr(v),
                LaunchArg::Ptr(v),
                LaunchArg::I64(4),
            ],
        )
        .unwrap();
        assert_eq!(
            space.read_vec::<f64>(o, 4).unwrap(),
            vec![1.0, 4.0, 9.0, 16.0]
        );
    }
}
