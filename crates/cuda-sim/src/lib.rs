//! # cuda-sim — a deterministic CUDA runtime simulator
//!
//! The substrate standing in for the CUDA runtime + GPU in `cusan-rs`
//! (paper §III). It implements the *semantics* relevant to data-race
//! analysis of CUDA-aware MPI programs; no GPU silicon is modeled.
//!
//! ## Execution model
//!
//! Device operations (kernel launches, memcpy/memset, event records) are
//! enqueued on **streams** (FIFO) and execute **deferred**: an operation's
//! memory effects apply only when its completion is *forced* — by stream
//! order, an explicit synchronization call, a host-blocking memory
//! operation, or a legacy default-stream barrier. Consequently a program
//! that omits a required synchronization genuinely observes stale data,
//! exactly the failure mode the race detector exists to flag.
//!
//! ## Legacy default-stream semantics (paper §III-A, Fig. 3)
//!
//! Stream 0 is the legacy default stream. Operations enqueued on it depend
//! on all previously enqueued work of every *blocking* user stream, and
//! operations enqueued on blocking user streams depend on all previously
//! enqueued default-stream work. Streams created with
//! [`StreamFlags::NonBlocking`] opt out of both directions.
//!
//! ## Implicit synchronization (paper §III-B2, §III-C)
//!
//! Whether `cudaMemcpy`/`cudaMemset` block the host depends on the variant,
//! the transfer direction, and the memory kinds involved; the rules are
//! centralized in [`semantics`] with the paper's pessimistic reading of
//! "may be asynchronous".
//!
//! ## Modules
//!
//! * [`stream`] — stream/event identities and queue state
//! * [`semantics`] — host-synchronization rule tables
//! * [`exec`] — kernel argument binding and execution (native + interpreter)
//! * [`device`] — the device: queues, forcing, the full CUDA-like API

pub mod device;
pub mod error;
pub mod exec;
pub mod semantics;
pub mod stream;

pub use device::{CudaCounters, CudaDevice};
pub use error::CudaError;
pub use semantics::{CopyKind, HostSync};
pub use stream::{DefaultStreamMode, EventId, StreamFlags, StreamId};
