//! CUDA simulator errors.

use kernel_ir::InterpError;
use sim_mem::MemError;
use std::fmt;

/// Errors returned by the simulated CUDA API.
#[derive(Debug, Clone, PartialEq)]
pub enum CudaError {
    /// Unknown or destroyed stream handle.
    InvalidStream(u32),
    /// Unknown or destroyed event handle.
    InvalidEvent(u32),
    /// Underlying memory error (unmapped pointer, overrun, …).
    Mem(MemError),
    /// Kernel launch argument mismatch.
    BadKernelArg {
        /// Kernel name.
        kernel: String,
        /// Argument position.
        index: usize,
        /// Human-readable expectation.
        expected: String,
    },
    /// Kernel launch arity mismatch.
    BadKernelArity {
        /// Kernel name.
        kernel: String,
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// `cudaMemcpy` kind does not match the actual pointer locations.
    InvalidCopyKind {
        /// Human-readable detail.
        detail: String,
    },
    /// Device-side execution fault (out-of-bounds, …) from the interpreter.
    Kernel(InterpError),
    /// Operation on a destroyed stream.
    StreamDestroyed(u32),
    /// Event used before being recorded.
    EventNotRecorded(u32),
    /// Failure injected by a fault plan (see `cusan::fault`); the
    /// operation was not performed.
    FaultInjected {
        /// Name of the intercepted call that was made to fail.
        call: &'static str,
    },
}

impl fmt::Display for CudaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CudaError::InvalidStream(s) => write!(f, "invalid stream handle {s}"),
            CudaError::InvalidEvent(e) => write!(f, "invalid event handle {e}"),
            CudaError::Mem(e) => write!(f, "memory error: {e}"),
            CudaError::BadKernelArg {
                kernel,
                index,
                expected,
            } => {
                write!(f, "kernel {kernel}: argument {index}: expected {expected}")
            }
            CudaError::BadKernelArity {
                kernel,
                expected,
                got,
            } => {
                write!(
                    f,
                    "kernel {kernel}: expected {expected} arguments, got {got}"
                )
            }
            CudaError::InvalidCopyKind { detail } => write!(f, "invalid memcpy kind: {detail}"),
            CudaError::Kernel(e) => write!(f, "device fault: {e}"),
            CudaError::StreamDestroyed(s) => write!(f, "stream {s} already destroyed"),
            CudaError::EventNotRecorded(e) => write!(f, "event {e} has not been recorded"),
            CudaError::FaultInjected { call } => write!(f, "injected fault in {call}"),
        }
    }
}

impl std::error::Error for CudaError {}

impl From<MemError> for CudaError {
    fn from(e: MemError) -> Self {
        CudaError::Mem(e)
    }
}

impl From<InterpError> for CudaError {
    fn from(e: InterpError) -> Self {
        CudaError::Kernel(e)
    }
}
