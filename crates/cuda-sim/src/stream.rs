//! Stream and event identities and per-stream queue state.

use kernel_ir::{KernelId, LaunchArg, LaunchGrid};
use sim_mem::Ptr;
use std::collections::VecDeque;

/// Handle of a CUDA stream. Stream 0 is the legacy default stream and
/// always exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u32);

impl StreamId {
    /// The legacy default stream.
    pub const DEFAULT: StreamId = StreamId(0);

    /// True for the legacy default stream.
    pub fn is_default(self) -> bool {
        self.0 == 0
    }
}

/// Handle of a CUDA event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// How the default stream behaves (paper §VI-B).
///
/// * [`DefaultStreamMode::Legacy`] — the classic semantics of §III-A:
///   default-stream work and blocking user-stream work form logical
///   barriers against each other (Fig. 3).
/// * [`DefaultStreamMode::PerThread`] — `--default-stream per-thread`:
///   the default stream behaves like an ordinary (blocking-exempt)
///   stream; no implicit barriers exist. Programs relying on legacy
///   ordering race under this mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DefaultStreamMode {
    /// Legacy default-stream semantics (implicit logical barriers).
    #[default]
    Legacy,
    /// Per-thread default stream: no implicit barriers.
    PerThread,
}

/// Stream creation flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StreamFlags {
    /// Participates in legacy default-stream barriers.
    #[default]
    Default,
    /// `cudaStreamNonBlocking`: exempt from default-stream barriers.
    NonBlocking,
}

/// A queued device operation's payload.
#[derive(Debug, Clone)]
pub(crate) enum OpKind {
    /// Kernel execution.
    Kernel {
        kernel: KernelId,
        grid: LaunchGrid,
        args: Vec<LaunchArg>,
    },
    /// Byte copy (any direction; UVA pointers).
    Copy { dst: Ptr, src: Ptr, len: u64 },
    /// Pitched 2-D copy: `height` rows of `width` bytes.
    Copy2D {
        dst: Ptr,
        dpitch: u64,
        src: Ptr,
        spitch: u64,
        width: u64,
        height: u64,
    },
    /// Byte fill.
    Memset { ptr: Ptr, value: u8, len: u64 },
    /// Event completion marker (the id is carried for Debug/tracing).
    EventRecord {
        #[allow(dead_code)]
        event: EventId,
    },
}

impl OpKind {
    /// Stable signature for schedule exploration: ops with equal
    /// signatures are treated as interchangeable drain candidates (the
    /// sleep-set cut), so the signature folds in the op's kind and its
    /// primary memory footprint — two candidates only alias if swapping
    /// them provably cannot change what the detector observes.
    pub(crate) fn drain_sig(&self) -> u64 {
        let mut h = explore::Fnv::new();
        match self {
            OpKind::Kernel { kernel, args, .. } => {
                h.write_u64(1).write_u64(u64::from(kernel.0));
                for a in args {
                    if let LaunchArg::Ptr(p) = a {
                        h.write_u64(p.addr());
                    }
                }
            }
            OpKind::Copy { dst, src, len } => {
                h.write_u64(2)
                    .write_u64(dst.addr())
                    .write_u64(src.addr())
                    .write_u64(*len);
            }
            OpKind::Copy2D {
                dst,
                src,
                width,
                height,
                ..
            } => {
                h.write_u64(3)
                    .write_u64(dst.addr())
                    .write_u64(src.addr())
                    .write_u64(width * height);
            }
            OpKind::Memset { ptr, len, .. } => {
                h.write_u64(4).write_u64(ptr.addr()).write_u64(*len);
            }
            OpKind::EventRecord { .. } => {
                h.write_u64(5);
            }
        }
        h.finish()
    }
}

/// A dependency on another stream's progress: "the first `seq` operations
/// enqueued on `stream` must have completed".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Dep {
    pub stream: StreamId,
    pub seq: u64,
}

#[derive(Debug)]
pub(crate) struct Op {
    pub kind: OpKind,
    pub deps: Vec<Dep>,
}

/// Per-stream queue state.
#[derive(Debug)]
pub(crate) struct StreamState {
    pub flags: StreamFlags,
    pub alive: bool,
    /// Operations enqueued but not yet executed.
    pub queue: VecDeque<Op>,
    /// Count of operations ever enqueued.
    pub enqueued: u64,
    /// Count of operations executed (`enqueued - queue.len()`).
    pub completed: u64,
    /// Dependencies to attach to the next enqueued operation
    /// (`cudaStreamWaitEvent`).
    pub pending_deps: Vec<Dep>,
}

impl StreamState {
    pub fn new(flags: StreamFlags) -> Self {
        StreamState {
            flags,
            alive: true,
            queue: VecDeque::new(),
            enqueued: 0,
            completed: 0,
            pending_deps: Vec::new(),
        }
    }

    /// True if this stream participates in legacy default-stream barriers.
    pub fn is_blocking(&self) -> bool {
        matches!(self.flags, StreamFlags::Default)
    }

    /// True if all enqueued work has executed.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

/// Per-event state.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EventState {
    pub alive: bool,
    /// Stream + sequence number of the most recent record, if any.
    pub recorded: Option<Dep>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stream_identity() {
        assert!(StreamId::DEFAULT.is_default());
        assert!(!StreamId(3).is_default());
    }

    #[test]
    fn stream_state_flags() {
        let s = StreamState::new(StreamFlags::Default);
        assert!(s.is_blocking());
        assert!(s.is_idle());
        let n = StreamState::new(StreamFlags::NonBlocking);
        assert!(!n.is_blocking());
    }
}
