//! Tests for the pitched 2-D copy (`cudaMemcpy2D`), the §VI-A API
//! extension used for column-halo and tile transfers.

use cuda_sim::{CopyKind, CudaDevice, CudaError, StreamId};
use kernel_ir::KernelRegistry;
use sim_mem::{AddressSpace, DeviceId, Ptr};
use std::sync::Arc;

fn device() -> CudaDevice {
    CudaDevice::new(
        DeviceId(0),
        Arc::new(AddressSpace::new()),
        Arc::new(KernelRegistry::new()),
    )
}

/// Write an `rows x cols` f64 matrix with value `f(r, c)`.
fn fill_matrix(dev: &CudaDevice, p: Ptr, rows: u64, cols: u64, f: impl Fn(u64, u64) -> f64) {
    for r in 0..rows {
        let row: Vec<f64> = (0..cols).map(|c| f(r, c)).collect();
        dev.space()
            .write_slice_data::<f64>(p.offset(r * cols * 8), &row)
            .unwrap();
    }
}

#[test]
fn strided_submatrix_copy() {
    let mut dev = device();
    // Source: 4x8 matrix; copy a 3x2 tile starting at (1, 2) into a
    // tightly-packed 3x2 destination.
    let src = dev.host_malloc(4 * 8 * 8).unwrap();
    let dst = dev.host_malloc(3 * 2 * 8).unwrap();
    fill_matrix(&dev, src, 4, 8, |r, c| (r * 10 + c) as f64);
    dev.memcpy_2d(
        dst,
        2 * 8,                   // dpitch: packed rows of 2 elements
        src.offset((8 + 2) * 8), // (row 1, col 2)
        8 * 8,                   // spitch: full 8-element rows
        2 * 8,                   // width: 2 elements
        3,                       // height: 3 rows
        CopyKind::HostToHost,
    )
    .unwrap();
    let got = dev.space().read_vec::<f64>(dst, 6).unwrap();
    assert_eq!(got, vec![12.0, 13.0, 22.0, 23.0, 32.0, 33.0]);
}

#[test]
fn column_halo_extraction_d2d() {
    let mut dev = device();
    // Extract column 0 of a 4x4 device matrix into a contiguous buffer —
    // the column-halo pack a 2-D-decomposed stencil needs.
    let m = dev.malloc(4 * 4 * 8).unwrap();
    let col = dev.malloc(4 * 8).unwrap();
    fill_matrix(&dev, m, 4, 4, |r, c| (r * 4 + c) as f64);
    dev.memcpy_2d(col, 8, m, 4 * 8, 8, 4, CopyKind::DeviceToDevice)
        .unwrap();
    dev.device_synchronize().unwrap(); // D2D is stream-ordered
    assert_eq!(
        dev.space().read_vec::<f64>(col, 4).unwrap(),
        vec![0.0, 4.0, 8.0, 12.0]
    );
}

#[test]
fn d2d_defers_h2h_blocks() {
    let mut dev = device();
    let a = dev.malloc(64).unwrap();
    let b = dev.malloc(64).unwrap();
    dev.space().fill(a, 64, 7).unwrap();
    dev.memcpy_2d(b, 16, a, 16, 8, 4, CopyKind::DeviceToDevice)
        .unwrap();
    // Stream-ordered: nothing moved yet.
    assert_eq!(dev.space().read_at::<u8>(b).unwrap(), 0);
    dev.device_synchronize().unwrap();
    assert_eq!(dev.space().read_at::<u8>(b).unwrap(), 7);
}

#[test]
fn width_exceeding_pitch_rejected() {
    let mut dev = device();
    let a = dev.host_malloc(256).unwrap();
    let b = dev.host_malloc(256).unwrap();
    let err = dev
        .memcpy_2d(b, 8, a, 32, 16, 2, CopyKind::HostToHost)
        .unwrap_err();
    assert!(matches!(err, CudaError::InvalidCopyKind { .. }), "{err}");
}

#[test]
fn footprint_overrun_rejected_up_front() {
    let mut dev = device();
    let a = dev.host_malloc(64).unwrap();
    let b = dev.host_malloc(1024).unwrap();
    // 4 rows with pitch 32 need (4-1)*32+16 = 112 bytes > 64.
    let err = dev
        .memcpy_2d(b, 32, a, 32, 16, 4, CopyKind::HostToHost)
        .unwrap_err();
    assert!(matches!(err, CudaError::Mem(_)), "{err}");
    // Nothing was enqueued or partially copied.
    assert!(dev.is_stream_idle(StreamId::DEFAULT).unwrap());
}

#[test]
fn zero_height_is_noop() {
    let mut dev = device();
    let a = dev.host_malloc(64).unwrap();
    let b = dev.host_malloc(64).unwrap();
    dev.memcpy_2d(b, 16, a, 16, 8, 0, CopyKind::HostToHost)
        .unwrap();
    assert_eq!(dev.space().read_at::<u8>(b).unwrap(), 0);
}
