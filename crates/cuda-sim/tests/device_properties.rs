//! Property tests for the deferred device-execution engine.
//!
//! * **Default-stream-only programs are sequential**: a random schedule of
//!   memsets/copies on the default stream, once synchronized, produces
//!   exactly the state of an immediate sequential replay.
//! * **Deferral is real**: with no forcing call, stream-ordered operations
//!   have no observable effect.
//! * **Legal-order equivalence with legacy barriers**: a mixed
//!   default/user-stream schedule, fully synchronized, equals the
//!   sequential replay in enqueue order — because legacy barriers make
//!   any legal execution order equivalent to enqueue order for programs
//!   whose conflicting ops are all cross-barrier ordered.

use cuda_sim::{CopyKind, CudaDevice, StreamFlags, StreamId};
use kernel_ir::KernelRegistry;
use proptest::prelude::*;
use sim_mem::{AddressSpace, DeviceId, Ptr};
use std::sync::Arc;

const N_BUFS: usize = 4;
const BUF_LEN: u64 = 64;

#[derive(Debug, Clone)]
enum DevOp {
    Memset { buf: usize, value: u8, len: u64 },
    Copy { dst: usize, src: usize, len: u64 },
}

fn op_strategy() -> impl Strategy<Value = DevOp> {
    prop_oneof![
        (0..N_BUFS, any::<u8>(), 1u64..=BUF_LEN).prop_map(|(buf, value, len)| DevOp::Memset {
            buf,
            value,
            len
        }),
        (0..N_BUFS, 0..N_BUFS, 1u64..=BUF_LEN).prop_map(|(dst, src, len)| DevOp::Copy {
            dst,
            src,
            len
        }),
    ]
}

fn make_device() -> (CudaDevice, Vec<Ptr>) {
    let space = Arc::new(AddressSpace::new());
    let mut dev = CudaDevice::new(DeviceId(0), space, Arc::new(KernelRegistry::new()));
    let bufs: Vec<Ptr> = (0..N_BUFS)
        .map(|i| {
            let p = dev.malloc(BUF_LEN).unwrap();
            // Distinct deterministic initial contents.
            dev.space().fill(p, BUF_LEN, i as u8).unwrap();
            p
        })
        .collect();
    (dev, bufs)
}

/// Reference: apply the ops immediately, in order, to plain vectors.
fn reference_replay(ops: &[DevOp]) -> Vec<Vec<u8>> {
    let mut bufs: Vec<Vec<u8>> = (0..N_BUFS)
        .map(|i| vec![i as u8; BUF_LEN as usize])
        .collect();
    for op in ops {
        match *op {
            DevOp::Memset { buf, value, len } => {
                bufs[buf][..len as usize].fill(value);
            }
            DevOp::Copy { dst, src, len } => {
                let data: Vec<u8> = bufs[src][..len as usize].to_vec();
                bufs[dst][..len as usize].copy_from_slice(&data);
            }
        }
    }
    bufs
}

fn read_all(dev: &CudaDevice, bufs: &[Ptr]) -> Vec<Vec<u8>> {
    bufs.iter()
        .map(|p| dev.space().read_vec::<u8>(*p, BUF_LEN).unwrap())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default-stream programs are FIFO: deferred execution + sync equals
    /// immediate sequential execution.
    #[test]
    fn default_stream_equals_sequential_replay(
        ops in proptest::collection::vec(op_strategy(), 1..30)
    ) {
        let (mut dev, bufs) = make_device();
        for op in &ops {
            match *op {
                DevOp::Memset { buf, value, len } => {
                    dev.memset_async(bufs[buf], value, len, StreamId::DEFAULT).unwrap();
                }
                DevOp::Copy { dst, src, len } => {
                    dev.memcpy_async(bufs[dst], bufs[src], len, CopyKind::DeviceToDevice, StreamId::DEFAULT)
                        .unwrap();
                }
            }
        }
        dev.device_synchronize().unwrap();
        prop_assert_eq!(read_all(&dev, &bufs), reference_replay(&ops));
    }

    /// Without any forcing call, stream-ordered ops have no effect at all.
    #[test]
    fn unforced_ops_have_no_effect(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let (mut dev, bufs) = make_device();
        let before = read_all(&dev, &bufs);
        for op in &ops {
            match *op {
                DevOp::Memset { buf, value, len } => {
                    dev.memset_async(bufs[buf], value, len, StreamId::DEFAULT).unwrap();
                }
                DevOp::Copy { dst, src, len } => {
                    dev.memcpy_async(bufs[dst], bufs[src], len, CopyKind::DeviceToDevice, StreamId::DEFAULT)
                        .unwrap();
                }
            }
        }
        prop_assert_eq!(read_all(&dev, &bufs), before, "no op may run before forcing");
        dev.flush().unwrap();
    }

    /// Legacy barriers make a round-robin spread of the SAME schedule over
    /// default + blocking user streams equivalent to the sequential
    /// replay: every pair of ops is ordered whenever one of them is on the
    /// default stream, and our spread alternates through the default
    /// stream so the enqueue order is fully enforced.
    #[test]
    fn legacy_spread_over_blocking_streams_equals_replay(
        ops in proptest::collection::vec(op_strategy(), 1..24)
    ) {
        let (mut dev, bufs) = make_device();
        let s1 = dev.stream_create(StreamFlags::Default);
        let s2 = dev.stream_create(StreamFlags::Default);
        // Alternate user, default, user, default, ... — each user-stream op
        // is sandwiched between default-stream ops, so the legacy barriers
        // enforce the enqueue order end-to-end.
        let streams = [s1, StreamId::DEFAULT, s2, StreamId::DEFAULT];
        for (i, op) in ops.iter().enumerate() {
            let stream = streams[i % streams.len()];
            match *op {
                DevOp::Memset { buf, value, len } => {
                    dev.memset_async(bufs[buf], value, len, stream).unwrap();
                }
                DevOp::Copy { dst, src, len } => {
                    dev.memcpy_async(bufs[dst], bufs[src], len, CopyKind::DeviceToDevice, stream)
                        .unwrap();
                }
            }
        }
        dev.device_synchronize().unwrap();
        prop_assert_eq!(read_all(&dev, &bufs), reference_replay(&ops));
    }

    /// Forcing a single stream executes exactly that stream's prefix (plus
    /// its dependencies) — synchronizing an unrelated non-blocking stream
    /// runs nothing.
    #[test]
    fn sync_of_unrelated_nonblocking_stream_forces_nothing(
        ops in proptest::collection::vec(op_strategy(), 1..16)
    ) {
        let (mut dev, bufs) = make_device();
        let nb = dev.stream_create(StreamFlags::NonBlocking);
        let idle = dev.stream_create(StreamFlags::NonBlocking);
        let before = read_all(&dev, &bufs);
        for op in &ops {
            match *op {
                DevOp::Memset { buf, value, len } => {
                    dev.memset_async(bufs[buf], value, len, nb).unwrap();
                }
                DevOp::Copy { dst, src, len } => {
                    dev.memcpy_async(bufs[dst], bufs[src], len, CopyKind::DeviceToDevice, nb)
                        .unwrap();
                }
            }
        }
        dev.stream_synchronize(idle).unwrap();
        prop_assert_eq!(read_all(&dev, &bufs), before);
        dev.stream_synchronize(nb).unwrap();
        prop_assert_eq!(read_all(&dev, &bufs), reference_replay(&ops));
    }
}
