//! Soundness property for the compiler pass: on randomly generated
//! kernels, the static per-argument access attributes must **cover**
//! every access the interpreter actually performs, and every argument
//! the analysis calls *tid-bounded* must only be accessed at indices
//! below the grid size — exactly the guarantee CuSan's bounded access
//! tracking (§VI-D) relies on.
//!
//! An under-approximating analysis would make the checker skip
//! annotations and miss races; this test hunts for such gaps.

use kernel_ir::analysis;
use kernel_ir::ast::KernelDef;
use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::interp::{self, KValue, KernelMemory, RunArg};
use kernel_ir::KernelId;
use proptest::prelude::*;
use std::cell::RefCell;

const N_ELEMS: u64 = 16;

/// Memory that records, per slot: did reads/writes happen, and the
/// maximum element index touched.
struct Recorder {
    data: Vec<Vec<f64>>,
    log: RefCell<Vec<(bool, bool, u64)>>, // (read, write, max_idx)
}

impl Recorder {
    fn new(slots: usize) -> Self {
        Recorder {
            data: vec![vec![0.5; N_ELEMS as usize]; slots],
            log: RefCell::new(vec![(false, false, 0); slots]),
        }
    }
}

impl KernelMemory for Recorder {
    fn len(&self, slot: usize) -> u64 {
        self.data[slot].len() as u64
    }

    fn load(&self, slot: usize, idx: u64) -> KValue {
        let mut log = self.log.borrow_mut();
        log[slot].0 = true;
        log[slot].2 = log[slot].2.max(idx);
        KValue::F(self.data[slot][idx as usize])
    }

    fn store(&mut self, slot: usize, idx: u64, v: KValue) {
        {
            let mut log = self.log.borrow_mut();
            log[slot].1 = true;
            log[slot].2 = log[slot].2.max(idx);
        }
        if let KValue::F(x) = v {
            self.data[slot][idx as usize] = x;
        }
    }
}

/// A tiny random-program generator over the builder API. Two f64 pointer
/// params (a, b) and one i64 scalar (n = N_ELEMS); indices are clamped so
/// execution never faults and the interpreter can run the whole grid.
#[derive(Debug, Clone)]
enum GenStmt {
    /// `a[tid] = c`
    StoreTidA,
    /// `b[tid] = c`
    StoreTidB,
    /// `a[const] = c`
    StoreConstA(u8),
    /// `local = a[tid] + b[min(tid, n-1)]`
    LoadMixAb,
    /// `for i in 0..k { acc += b[i] }`
    LoopReadB(u8),
    /// `if tid < n { a[tid] = c }`
    IfGuardedStoreA,
    /// nothing
    Nothing,
}

fn gen_stmt() -> impl Strategy<Value = GenStmt> {
    prop_oneof![
        Just(GenStmt::StoreTidA),
        Just(GenStmt::StoreTidB),
        (0u8..N_ELEMS as u8).prop_map(GenStmt::StoreConstA),
        Just(GenStmt::LoadMixAb),
        (1u8..N_ELEMS as u8).prop_map(GenStmt::LoopReadB),
        Just(GenStmt::IfGuardedStoreA),
        Just(GenStmt::Nothing),
    ]
}

fn build_kernel(stmts: &[GenStmt]) -> KernelDef {
    let mut b = KernelBuilder::new("generated");
    let a = b.ptr_param("a", ScalarTy::F64);
    let pb = b.ptr_param("b", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    for s in stmts {
        match s {
            GenStmt::StoreTidA => b.store(a, tid(), cf(1.25)),
            GenStmt::StoreTidB => b.store(pb, tid(), cf(-0.5)),
            GenStmt::StoreConstA(c) => b.store(a, ci(i64::from(*c)), cf(2.0)),
            GenStmt::LoadMixAb => {
                let idx = tid().min(n.get() - ci(1));
                let _l = b.let_(load(a, tid()) + load(pb, idx));
            }
            GenStmt::LoopReadB(k) => {
                let acc = b.let_(cf(0.0));
                b.for_(ci(0), ci(i64::from(*k)), |b, i| {
                    b.set(acc, acc.get() + load(pb, i.get()));
                });
            }
            GenStmt::IfGuardedStoreA => {
                b.if_(tid().lt(n.get()), |b| b.store(a, tid(), cf(3.0)));
            }
            GenStmt::Nothing => {}
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    #[test]
    fn analysis_covers_dynamic_accesses(
        stmts in proptest::collection::vec(gen_stmt(), 0..8),
        grid in 1u64..=N_ELEMS,
    ) {
        let kernels = vec![build_kernel(&stmts)];
        let result = analysis::analyze(&kernels);
        let kid = KernelId(0);

        let mut mem = Recorder::new(2);
        interp::run(
            &kernels,
            kid,
            grid,
            &[RunArg::Slot(0), RunArg::Slot(1), RunArg::Val(KValue::I(N_ELEMS as i64))],
            &mut mem,
        )
        .expect("generated kernels never fault");

        let log = mem.log.borrow();
        for (slot, param) in [(0usize, 0usize), (1, 1)] {
            let attr = result.param(kid, param);
            let (read, write, max_idx) = log[slot];
            prop_assert!(
                !read || attr.read,
                "slot {slot}: dynamic read not covered by static attr {attr}"
            );
            prop_assert!(
                !write || attr.write,
                "slot {slot}: dynamic write not covered by static attr {attr}"
            );
            // The §VI-D contract: a tid-bounded argument is only touched at
            // indices below the grid size.
            if result.tid_bounded(kid, param) && (read || write) {
                prop_assert!(
                    max_idx < grid,
                    "slot {slot}: claimed tid-bounded but index {max_idx} >= grid {grid}"
                );
            }
        }
    }
}

/// Sanity: the generator produces both bounded and unbounded shapes, so
/// the property above is not vacuous.
#[test]
fn generator_produces_both_bounded_and_unbounded() {
    let bounded = build_kernel(&[GenStmt::StoreTidA, GenStmt::StoreTidB]);
    let r = analysis::analyze(std::slice::from_ref(&bounded));
    assert!(r.tid_bounded(KernelId(0), 0));

    let unbounded = build_kernel(&[GenStmt::StoreConstA(3)]);
    let r = analysis::analyze(std::slice::from_ref(&unbounded));
    assert!(!r.tid_bounded(KernelId(0), 0));

    let loopy = build_kernel(&[GenStmt::LoopReadB(4)]);
    let r = analysis::analyze(std::slice::from_ref(&loopy));
    assert!(!r.tid_bounded(KernelId(0), 1));
    assert_eq!(r.param(KernelId(0), 1), kernel_ir::AccessAttr::READ);
}

#[test]
fn unused_params_stay_none() {
    let def = build_kernel(&[GenStmt::Nothing]);
    let r = analysis::analyze(std::slice::from_ref(&def));
    assert_eq!(r.param(KernelId(0), 0), kernel_ir::AccessAttr::NONE);
    assert_eq!(r.param(KernelId(0), 1), kernel_ir::AccessAttr::NONE);
}
