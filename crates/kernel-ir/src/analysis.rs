//! The "compiler pass": interprocedural kernel-argument access analysis.
//!
//! For every kernel pointer argument, determine conservatively whether the
//! kernel may **read** and/or **write** through it (paper §IV-B1). The
//! analysis is a forward dataflow over the IR:
//!
//! * `Load { ptr, .. }` marks `ptr` read; `Store { ptr, .. }` marks it
//!   written — regardless of the branch it occurs in (conservative: a
//!   *may*-access is enough to require race checking).
//! * A nested `Call` folds the callee's summary into the caller through the
//!   pointer-argument binding, which is exactly the Fig. 8 case: a pointer
//!   passed as the callee's first argument inherits whatever the callee
//!   does with its first parameter.
//! * Recursive (and mutually recursive) kernels are handled by iterating
//!   to a fixpoint; attributes only ever grow, and the lattice
//!   (`none ⊑ read/write ⊑ read-write`) is finite, so termination is
//!   guaranteed.

use crate::ast::{CallArg, Expr, KernelDef, KernelId, Stmt};
use std::fmt;

/// May-access attribute of one kernel argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessAttr {
    /// The kernel may read through the argument.
    pub read: bool,
    /// The kernel may write through the argument.
    pub write: bool,
}

impl AccessAttr {
    /// No access.
    pub const NONE: AccessAttr = AccessAttr {
        read: false,
        write: false,
    };
    /// Read-only.
    pub const READ: AccessAttr = AccessAttr {
        read: true,
        write: false,
    };
    /// Write-only.
    pub const WRITE: AccessAttr = AccessAttr {
        read: false,
        write: true,
    };
    /// Read and write.
    pub const READ_WRITE: AccessAttr = AccessAttr {
        read: true,
        write: true,
    };

    /// Lattice join.
    pub fn merge(&mut self, other: AccessAttr) -> bool {
        let before = *self;
        self.read |= other.read;
        self.write |= other.write;
        *self != before
    }

    /// True if any access may occur.
    pub fn any(self) -> bool {
        self.read || self.write
    }
}

impl fmt::Display for AccessAttr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match (self.read, self.write) {
            (false, false) => "none",
            (true, false) => "read",
            (false, true) => "write",
            (true, true) => "read-write",
        };
        f.write_str(s)
    }
}

/// Result of analyzing a set of kernels: per-kernel, per-parameter
/// attributes (scalar parameters are always [`AccessAttr::NONE`]), plus
/// the *tid-boundedness* refinement used by bounded access tracking
/// (paper §VI-D future work): a pointer parameter is tid-bounded when
/// every access through it uses the thread index itself as the element
/// index, so the range a launch can touch is `grid size × element size`
/// rather than the whole allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResult {
    attrs: Vec<Vec<AccessAttr>>,
    tid_bounded: Vec<Vec<bool>>,
}

impl AnalysisResult {
    /// Attributes for all parameters of `k`.
    pub fn kernel(&self, k: KernelId) -> &[AccessAttr] {
        &self.attrs[k.0 as usize]
    }

    /// Attribute of one parameter.
    pub fn param(&self, k: KernelId, param: usize) -> AccessAttr {
        self.attrs[k.0 as usize][param]
    }

    /// True if every access through parameter `param` of `k` indexes with
    /// the thread id itself (see struct docs). Scalar parameters are
    /// vacuously bounded.
    pub fn tid_bounded(&self, k: KernelId, param: usize) -> bool {
        self.tid_bounded[k.0 as usize][param]
    }

    /// Number of analyzed kernels.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no kernels were analyzed.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

/// Analyze all kernels (indexed by [`KernelId`] = position).
pub fn analyze(kernels: &[KernelDef]) -> AnalysisResult {
    let mut attrs: Vec<Vec<AccessAttr>> = kernels
        .iter()
        .map(|k| vec![AccessAttr::NONE; k.params.len()])
        .collect();
    // Tid-boundedness starts at true (vacuous: no accesses) and only
    // decreases; the access attributes only grow. Both lattices are
    // finite, so the joint fixpoint terminates.
    let mut bounded: Vec<Vec<bool>> = kernels.iter().map(|k| vec![true; k.params.len()]).collect();
    loop {
        let mut changed = false;
        for (i, k) in kernels.iter().enumerate() {
            let mut cur = attrs[i].clone();
            let mut cur_b = bounded[i].clone();
            walk_stmts(&k.body, &attrs, &bounded, &mut cur, &mut cur_b);
            if cur != attrs[i] || cur_b != bounded[i] {
                attrs[i] = cur;
                bounded[i] = cur_b;
                changed = true;
            }
        }
        if !changed {
            return AnalysisResult {
                attrs,
                tid_bounded: bounded,
            };
        }
    }
}

fn walk_stmts(
    stmts: &[Stmt],
    all: &[Vec<AccessAttr>],
    all_bounded: &[Vec<bool>],
    cur: &mut [AccessAttr],
    cur_b: &mut [bool],
) {
    for s in stmts {
        match s {
            Stmt::Let(_, e) => walk_expr(e, cur, cur_b),
            Stmt::Store { ptr, idx, val } => {
                cur[*ptr].merge(AccessAttr::WRITE);
                cur_b[*ptr] &= matches!(idx, Expr::Tid);
                walk_expr(idx, cur, cur_b);
                walk_expr(val, cur, cur_b);
            }
            Stmt::If { cond, then_, else_ } => {
                walk_expr(cond, cur, cur_b);
                walk_stmts(then_, all, all_bounded, cur, cur_b);
                walk_stmts(else_, all, all_bounded, cur, cur_b);
            }
            Stmt::For {
                start, end, body, ..
            } => {
                walk_expr(start, cur, cur_b);
                walk_expr(end, cur, cur_b);
                walk_stmts(body, all, all_bounded, cur, cur_b);
            }
            Stmt::Call { callee, args } => {
                let callee_attrs = &all[callee.0 as usize];
                let callee_bounded = &all_bounded[callee.0 as usize];
                for (pos, arg) in args.iter().enumerate() {
                    match arg {
                        CallArg::Ptr(p) => {
                            let a = callee_attrs.get(pos).copied().unwrap_or(AccessAttr::NONE);
                            cur[*p].merge(a);
                            // The callee runs on the same thread (same tid),
                            // so its boundedness carries over directly.
                            cur_b[*p] &= callee_bounded.get(pos).copied().unwrap_or(true);
                        }
                        CallArg::Scalar(e) => walk_expr(e, cur, cur_b),
                    }
                }
            }
        }
    }
}

fn walk_expr(e: &Expr, cur: &mut [AccessAttr], cur_b: &mut [bool]) {
    match e {
        Expr::ConstF(_)
        | Expr::ConstI(_)
        | Expr::Tid
        | Expr::GridSize
        | Expr::Param(_)
        | Expr::Local(_) => {}
        Expr::Bin(_, a, b) => {
            walk_expr(a, cur, cur_b);
            walk_expr(b, cur, cur_b);
        }
        Expr::Un(_, a) => walk_expr(a, cur, cur_b),
        Expr::Load { ptr, idx } => {
            cur[*ptr].merge(AccessAttr::READ);
            cur_b[*ptr] &= matches!(**idx, Expr::Tid);
            walk_expr(idx, cur, cur_b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ScalarTy;
    use crate::builder::*;

    #[test]
    fn attr_lattice_merge() {
        let mut a = AccessAttr::NONE;
        assert!(a.merge(AccessAttr::READ));
        assert!(!a.merge(AccessAttr::READ), "idempotent");
        assert!(a.merge(AccessAttr::WRITE));
        assert_eq!(a, AccessAttr::READ_WRITE);
        assert_eq!(a.to_string(), "read-write");
        assert_eq!(AccessAttr::NONE.to_string(), "none");
        assert!(!AccessAttr::NONE.any());
    }

    #[test]
    fn direct_read_write_detected() {
        // copy(dst, src): dst[tid] = src[tid]
        let mut b = KernelBuilder::new("copy");
        let dst = b.ptr_param("dst", ScalarTy::F64);
        let src = b.ptr_param("src", ScalarTy::F64);
        b.store(dst, tid(), load(src, tid()));
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::WRITE);
        assert_eq!(r.param(KernelId(0), 1), AccessAttr::READ);
    }

    #[test]
    fn read_modify_write_is_read_write() {
        let mut b = KernelBuilder::new("scale");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, tid(), load(p, tid()) * cf(2.0));
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::READ_WRITE);
    }

    #[test]
    fn scalar_params_are_none() {
        let mut b = KernelBuilder::new("set");
        let p = b.ptr_param("p", ScalarTy::F64);
        let v = b.scalar_param("v", ScalarTy::F64);
        b.store(p, tid(), v.get());
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 1), AccessAttr::NONE);
    }

    #[test]
    fn conditional_store_still_counts() {
        let mut b = KernelBuilder::new("guarded");
        let p = b.ptr_param("p", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| b.store(p, tid(), cf(1.0)));
        let r = analyze(&[b.finish()]);
        assert_eq!(
            r.param(KernelId(0), 0),
            AccessAttr::WRITE,
            "may-write is write"
        );
    }

    #[test]
    fn loads_in_index_and_condition_detected() {
        // p[map[tid]] = 1.0 — map is read even though it only appears in an
        // index expression.
        let mut b = KernelBuilder::new("scatter");
        let p = b.ptr_param("p", ScalarTy::F64);
        let map = b.ptr_param("map", ScalarTy::I64);
        b.store(p, load(map, tid()), cf(1.0));
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 1), AccessAttr::READ);
    }

    /// The paper's Fig. 8: `kernel(d_a, d_b)` calls
    /// `kernel_nested(y=d_a, x=d_b)` which does `y[tid] = x[tid]`.
    /// Expected: `d_a` write, `d_b` read, `y` write, `x` read.
    #[test]
    fn fig8_interprocedural_aliasing() {
        let mut nb = KernelBuilder::new("kernel_nested");
        let y = nb.ptr_param("y", ScalarTy::F32);
        let x = nb.ptr_param("x", ScalarTy::F32);
        let t = nb.scalar_param("tid", ScalarTy::I64);
        nb.store(y, t.get(), load(x, t.get()));
        let nested = nb.finish();

        let mut kb = KernelBuilder::new("kernel");
        let d_a = kb.ptr_param("d_a", ScalarTy::F32);
        let d_b = kb.ptr_param("d_b", ScalarTy::F32);
        kb.call(
            KernelId(0),
            [Arg::from(d_a), Arg::from(d_b), Arg::from(tid())],
        );
        let outer = kb.finish();

        let r = analyze(&[nested, outer]);
        // kernel_nested: y write, x read.
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::WRITE);
        assert_eq!(r.param(KernelId(0), 1), AccessAttr::READ);
        // kernel: attributes propagate through the call.
        assert_eq!(r.param(KernelId(1), 0), AccessAttr::WRITE);
        assert_eq!(r.param(KernelId(1), 1), AccessAttr::READ);
    }

    #[test]
    fn swapped_forwarding_swaps_attributes() {
        // callee(w, r): w[tid] = r[tid]; caller forwards (b, a): so a is
        // read, b is written.
        let mut cb = KernelBuilder::new("callee");
        let w = cb.ptr_param("w", ScalarTy::F64);
        let r_ = cb.ptr_param("r", ScalarTy::F64);
        cb.store(w, tid(), load(r_, tid()));
        let callee = cb.finish();

        let mut ob = KernelBuilder::new("caller");
        let a = ob.ptr_param("a", ScalarTy::F64);
        let b2 = ob.ptr_param("b", ScalarTy::F64);
        ob.call(KernelId(0), [Arg::from(b2), Arg::from(a)]);
        let caller = ob.finish();

        let r = analyze(&[callee, caller]);
        assert_eq!(
            r.param(KernelId(1), 0),
            AccessAttr::READ,
            "a forwarded as r"
        );
        assert_eq!(
            r.param(KernelId(1), 1),
            AccessAttr::WRITE,
            "b forwarded as w"
        );
    }

    #[test]
    fn same_pointer_forwarded_twice_merges() {
        // callee(w, r): caller passes (p, p): p becomes read-write.
        let mut cb = KernelBuilder::new("callee");
        let w = cb.ptr_param("w", ScalarTy::F64);
        let r_ = cb.ptr_param("r", ScalarTy::F64);
        cb.store(w, tid(), load(r_, tid()));
        let callee = cb.finish();

        let mut ob = KernelBuilder::new("caller");
        let p = ob.ptr_param("p", ScalarTy::F64);
        ob.call(KernelId(0), [Arg::from(p), Arg::from(p)]);
        let caller = ob.finish();

        let r = analyze(&[callee, caller]);
        assert_eq!(r.param(KernelId(1), 0), AccessAttr::READ_WRITE);
    }

    #[test]
    fn two_level_call_chain_propagates() {
        // leaf writes; mid forwards to leaf; top forwards to mid.
        let mut lb = KernelBuilder::new("leaf");
        let p = lb.ptr_param("p", ScalarTy::F64);
        lb.store(p, tid(), cf(0.0));
        let leaf = lb.finish();

        let mut mb = KernelBuilder::new("mid");
        let q = mb.ptr_param("q", ScalarTy::F64);
        mb.call(KernelId(0), [Arg::from(q)]);
        let mid = mb.finish();

        let mut tb = KernelBuilder::new("top");
        let s = tb.ptr_param("s", ScalarTy::F64);
        tb.call(KernelId(1), [Arg::from(s)]);
        let top = tb.finish();

        let r = analyze(&[leaf, mid, top]);
        assert_eq!(r.param(KernelId(2), 0), AccessAttr::WRITE);
    }

    #[test]
    fn recursive_kernel_terminates_with_sound_result() {
        // rec(p, n): if n > 0 { p[tid] = p[tid] + 1; rec(p, n - 1) }
        let mut b = KernelBuilder::new("rec");
        let p = b.ptr_param("p", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(n.get().gt(ci(0)), |b| {
            b.store(p, tid(), load(p, tid()) + cf(1.0));
            b.call(KernelId(0), [Arg::from(p), Arg::from(n.get() - ci(1))]);
        });
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::READ_WRITE);
    }

    #[test]
    fn mutually_recursive_kernels_terminate() {
        // a(p) calls b(p); b(q) reads q and calls a(q).
        let mut ab = KernelBuilder::new("a");
        let p = ab.ptr_param("p", ScalarTy::F64);
        ab.call(KernelId(1), [Arg::from(p)]);
        let a = ab.finish();

        let mut bb = KernelBuilder::new("b");
        let q = bb.ptr_param("q", ScalarTy::F64);
        let l = bb.let_(load(q, tid()));
        bb.store(q, tid(), l.get());
        bb.call(KernelId(0), [Arg::from(q)]);
        let b = bb.finish();

        let r = analyze(&[a, b]);
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::READ_WRITE);
        assert_eq!(r.param(KernelId(1), 0), AccessAttr::READ_WRITE);
    }

    #[test]
    fn untouched_pointer_is_none() {
        let mut b = KernelBuilder::new("noop");
        let _p = b.ptr_param("p", ScalarTy::F64);
        let r = analyze(&[b.finish()]);
        assert_eq!(r.param(KernelId(0), 0), AccessAttr::NONE);
        assert_eq!(r.len(), 1);
    }
}
