//! # kernel-ir — a miniature device-kernel IR and "compiler pass"
//!
//! The paper's CuSan compiler extension analyzes the LLVM IR of CUDA device
//! code to derive, for every kernel pointer argument, whether the kernel
//! **reads**, **writes**, or **reads and writes** through it (paper §IV-B1,
//! Fig. 8). That per-argument access attribute is consumed at kernel-launch
//! time to annotate the argument's whole allocation in TSan.
//!
//! `cusan-rs` cannot run an LLVM pass, so this crate supplies the closest
//! synthetic equivalent: kernels are written in a small IR
//! ([`ast::KernelDef`]) with expressions, stores, conditionals, loops, and
//! **nested kernel calls** that forward pointer parameters — the exact
//! feature the paper's interprocedural analysis exists for. The
//! [`analysis`] module implements the conservative interprocedural
//! forward-dataflow analysis over that IR.
//!
//! Kernels also carry an optional **native closure** (the "fat binary"):
//! the fast Rust implementation the simulated device actually executes.
//! The [`interp`] module is the reference interpreter for the IR; property
//! tests in the workspace assert `interpreter(IR) ≡ native closure`,
//! mirroring how the real pass's analysis target and the executed SASS both
//! derive from one CUDA source.
//!
//! ## Modules
//!
//! * [`ast`] — IR types and validation
//! * [`builder`] — ergonomic kernel construction with operator overloading
//! * [`analysis`] — per-argument access attributes (the compiler pass)
//! * [`interp`] — reference interpreter with bounds checking
//! * [`pretty`] — pseudo-CUDA pretty-printer (diagnostics)
//! * [`registry`] — kernel registry, launch grids, native execution contexts

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod interp;
pub mod pretty;
pub mod registry;

pub use analysis::{AccessAttr, AnalysisResult};
pub use ast::{
    BinOp, CallArg, Expr, KernelDef, KernelId, ParamDecl, ParamTy, ScalarTy, Stmt, UnOp,
    ValidationError,
};
pub use interp::{InterpError, KValue, KernelMemory, VecMemory};
pub use registry::{KernelRegistry, LaunchArg, LaunchGrid, NativeCtx, NativeKernel};
