//! Kernel registry: IR definitions + native closures + cached analysis.
//!
//! A registry is the analogue of the compiled program: the IR definitions
//! are what the "compiler pass" ([`crate::analysis`]) sees, the native
//! closures are the "fat binary" the simulated device executes, and the
//! cached [`AnalysisResult`] is the kernel-analysis data the pass hands to
//! the host-side instrumentation (paper Fig. 7, steps 2 and 4).

use crate::analysis::{self, AccessAttr, AnalysisResult};
use crate::ast::{KernelDef, KernelId, ValidationError};
use sim_mem::Ptr;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, RwLock};

/// Launch geometry: `<<<blocks, threads_per_block>>>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchGrid {
    /// Number of blocks.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u64,
}

impl LaunchGrid {
    /// Grid covering at least `n` threads with the given block size.
    pub fn cover(n: u64, threads_per_block: u64) -> LaunchGrid {
        assert!(threads_per_block > 0, "block size must be positive");
        LaunchGrid {
            blocks: n.div_ceil(threads_per_block).max(1),
            threads_per_block,
        }
    }

    /// Grid covering at least `n` threads with 256-thread blocks.
    pub fn linear(n: u64) -> LaunchGrid {
        Self::cover(n, 256)
    }

    /// Total number of launched threads.
    pub fn total(&self) -> u64 {
        self.blocks * self.threads_per_block
    }
}

/// A kernel-launch argument, as passed at the call site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaunchArg {
    /// Device pointer (UVA).
    Ptr(Ptr),
    /// `f64` scalar.
    F64(f64),
    /// `i64` scalar.
    I64(i64),
}

/// A bound native argument: scalars by value, buffers as slices. The
/// launcher binds write-attributed arguments mutably and read-only
/// arguments shared — a runtime cross-check of the dataflow analysis.
#[derive(Debug)]
pub enum NativeArg<'a> {
    /// Scalar `f64`.
    F64(f64),
    /// Scalar `i64`.
    I64(i64),
    /// Writable `f64` buffer.
    MutF64(&'a mut [f64]),
    /// Read-only `f64` buffer.
    RefF64(&'a [f64]),
    /// Writable `f32` buffer.
    MutF32(&'a mut [f32]),
    /// Read-only `f32` buffer.
    RefF32(&'a [f32]),
    /// Writable `i64` buffer.
    MutI64(&'a mut [i64]),
    /// Read-only `i64` buffer.
    RefI64(&'a [i64]),
    /// Writable `i32` buffer.
    MutI32(&'a mut [i32]),
    /// Read-only `i32` buffer.
    RefI32(&'a [i32]),
}

/// Execution context handed to a native kernel closure.
#[derive(Debug)]
pub struct NativeCtx<'a> {
    /// Total launched threads (`gridDim.x * blockDim.x`).
    pub grid: u64,
    kernel: &'a str,
    args: Vec<NativeArg<'a>>,
}

/// Split a mutable slice into disjoint `&mut` element references at the
/// given (distinct) indices, returned in the order requested.
fn disjoint_muts<'s, 'a>(
    args: &'s mut [NativeArg<'a>],
    idxs: &[usize],
) -> Vec<&'s mut NativeArg<'a>> {
    let mut order: Vec<(usize, usize)> = idxs.iter().copied().enumerate().collect();
    order.sort_by_key(|&(_, i)| i);
    for w in order.windows(2) {
        assert_ne!(w[0].1, w[1].1, "duplicate argument index in split");
    }
    let mut out: Vec<Option<&'s mut NativeArg<'a>>> = idxs.iter().map(|_| None).collect();
    let mut rest: &'s mut [NativeArg<'a>] = args;
    let mut consumed = 0usize;
    for (pos, idx) in order {
        let tmp = rest;
        let (_, right) = tmp.split_at_mut(idx - consumed);
        let (item, right) = right.split_first_mut().expect("index in range");
        out[pos] = Some(item);
        rest = right;
        consumed = idx + 1;
    }
    out.into_iter().map(|o| o.expect("filled")).collect()
}

macro_rules! ctx_accessors {
    ($shared:ident, $muta:ident, $split:ident, $t:ty, $Mut:ident, $Ref:ident) => {
        /// Read-only view of a buffer argument.
        pub fn $shared(&self, i: usize) -> &[$t] {
            match &self.args[i] {
                NativeArg::$Mut(b) => b,
                NativeArg::$Ref(b) => b,
                other => panic!(
                    "{}: argument {i} is not a {} buffer: {other:?}",
                    self.kernel,
                    stringify!($t)
                ),
            }
        }

        /// Mutable view of a buffer argument; panics if the launcher bound
        /// it read-only (i.e. the pass did not mark it written).
        pub fn $muta(&mut self, i: usize) -> &mut [$t] {
            match &mut self.args[i] {
                NativeArg::$Mut(b) => b,
                NativeArg::$Ref(_) => panic!(
                    "{}: argument {i} bound read-only; the access analysis \
                     did not mark it written but the native kernel mutates it",
                    self.kernel
                ),
                other => panic!(
                    "{}: argument {i} is not a {} buffer: {other:?}",
                    self.kernel,
                    stringify!($t)
                ),
            }
        }

        /// Disjoint mutable + shared views: `writes` borrowed mutably,
        /// `reads` shared; all indices must be distinct.
        pub fn $split<'s>(
            &'s mut self,
            writes: &[usize],
            reads: &[usize],
        ) -> (Vec<&'s mut [$t]>, Vec<&'s [$t]>) {
            let kernel = self.kernel;
            let all: Vec<usize> = writes.iter().chain(reads.iter()).copied().collect();
            let parts = disjoint_muts(&mut self.args, &all);
            let mut ws = Vec::with_capacity(writes.len());
            let mut rs = Vec::with_capacity(reads.len());
            for (k, part) in parts.into_iter().enumerate() {
                if k < writes.len() {
                    match part {
                        NativeArg::$Mut(b) => ws.push(&mut **b),
                        NativeArg::$Ref(_) => {
                            panic!("{kernel}: write-split of read-only argument {}", all[k])
                        }
                        other => panic!("{kernel}: argument {} type mismatch: {other:?}", all[k]),
                    }
                } else {
                    match part {
                        NativeArg::$Mut(b) => rs.push(&**b),
                        NativeArg::$Ref(b) => rs.push(*b),
                        other => panic!("{kernel}: argument {} type mismatch: {other:?}", all[k]),
                    }
                }
            }
            (ws, rs)
        }
    };
}

impl<'a> NativeCtx<'a> {
    /// Build a context (used by the device executor).
    pub fn new(kernel: &'a str, grid: u64, args: Vec<NativeArg<'a>>) -> Self {
        NativeCtx { grid, kernel, args }
    }

    /// Kernel name (diagnostics).
    pub fn kernel_name(&self) -> &str {
        self.kernel
    }

    /// Number of bound arguments.
    pub fn arg_count(&self) -> usize {
        self.args.len()
    }

    /// Scalar `f64` argument.
    pub fn f64_arg(&self, i: usize) -> f64 {
        match self.args[i] {
            NativeArg::F64(v) => v,
            ref other => panic!("{}: argument {i} is not f64: {other:?}", self.kernel),
        }
    }

    /// Scalar `i64` argument.
    pub fn i64_arg(&self, i: usize) -> i64 {
        match self.args[i] {
            NativeArg::I64(v) => v,
            ref other => panic!("{}: argument {i} is not i64: {other:?}", self.kernel),
        }
    }

    ctx_accessors!(f64s, f64s_mut, split_f64, f64, MutF64, RefF64);
    ctx_accessors!(f32s, f32s_mut, split_f32, f32, MutF32, RefF32);
    ctx_accessors!(i64s, i64s_mut, split_i64, i64, MutI64, RefI64);
    ctx_accessors!(i32s, i32s_mut, split_i32, i32, MutI32, RefI32);
}

/// A native kernel implementation (the "fat binary" body).
pub type NativeKernel = Arc<dyn Fn(&mut NativeCtx<'_>) + Send + Sync>;

/// Registration errors.
#[derive(Debug)]
pub enum RegistryError {
    /// A kernel with this name is already registered.
    DuplicateName(String),
    /// Structural validation failed.
    Invalid(ValidationError),
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::DuplicateName(n) => write!(f, "kernel {n:?} already registered"),
            RegistryError::Invalid(e) => write!(f, "invalid kernel: {e}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<ValidationError> for RegistryError {
    fn from(e: ValidationError) -> Self {
        RegistryError::Invalid(e)
    }
}

/// The kernel registry. Shared read-only (`Arc`) across simulated ranks
/// after construction.
pub struct KernelRegistry {
    defs: Vec<KernelDef>,
    natives: Vec<Option<NativeKernel>>,
    by_name: HashMap<String, KernelId>,
    analysis: RwLock<Option<Arc<AnalysisResult>>>,
}

impl Default for KernelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for KernelRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelRegistry")
            .field(
                "kernels",
                &self.defs.iter().map(|d| &d.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

struct DefsLookup<'a>(&'a [KernelDef]);

impl crate::ast::KernelLookup for DefsLookup<'_> {
    fn lookup(&self, id: KernelId) -> Option<&KernelDef> {
        self.0.get(id.0 as usize)
    }
}

impl KernelRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        KernelRegistry {
            defs: Vec::new(),
            natives: Vec::new(),
            by_name: HashMap::new(),
            analysis: RwLock::new(None),
        }
    }

    /// Register a kernel, validating its structure. Callees must be
    /// registered before callers (self-recursion excepted).
    pub fn register(
        &mut self,
        def: KernelDef,
        native: Option<NativeKernel>,
    ) -> Result<KernelId, RegistryError> {
        if self.by_name.contains_key(&def.name) {
            return Err(RegistryError::DuplicateName(def.name.clone()));
        }
        let id = KernelId(self.defs.len() as u32);
        def.validate(&DefsLookup(&self.defs), id)?;
        self.by_name.insert(def.name.clone(), id);
        self.defs.push(def);
        self.natives.push(native);
        *self.analysis.write().expect("analysis lock") = None;
        Ok(id)
    }

    /// Register an IR-only kernel (executed via the interpreter).
    pub fn register_ir(&mut self, def: KernelDef) -> Result<KernelId, RegistryError> {
        self.register(def, None)
    }

    /// The definition of a kernel.
    pub fn def(&self, id: KernelId) -> &KernelDef {
        &self.defs[id.0 as usize]
    }

    /// All definitions, indexed by [`KernelId`] (for the interpreter).
    pub fn defs(&self) -> &[KernelDef] {
        &self.defs
    }

    /// Native implementation, if registered.
    pub fn native(&self, id: KernelId) -> Option<NativeKernel> {
        self.natives[id.0 as usize].clone()
    }

    /// Lookup by name.
    pub fn id_of(&self, name: &str) -> Option<KernelId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered kernels.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True if no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The (cached) interprocedural access analysis over all kernels —
    /// the "kernel analysis data" of paper Fig. 7.
    pub fn analysis(&self) -> Arc<AnalysisResult> {
        if let Some(a) = self.analysis.read().expect("analysis lock").as_ref() {
            return Arc::clone(a);
        }
        let mut guard = self.analysis.write().expect("analysis lock");
        if let Some(a) = guard.as_ref() {
            return Arc::clone(a);
        }
        let a = Arc::new(analysis::analyze(&self.defs));
        *guard = Some(Arc::clone(&a));
        a
    }

    /// Access attributes of one kernel's parameters.
    pub fn attrs(&self, id: KernelId) -> Vec<AccessAttr> {
        self.analysis().kernel(id).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ScalarTy;
    use crate::builder::*;

    fn copy_kernel() -> KernelDef {
        let mut b = KernelBuilder::new("copy");
        let dst = b.ptr_param("dst", ScalarTy::F64);
        let src = b.ptr_param("src", ScalarTy::F64);
        b.store(dst, tid(), load(src, tid()));
        b.finish()
    }

    #[test]
    fn grid_cover_and_total() {
        let g = LaunchGrid::cover(1000, 256);
        assert_eq!(g.blocks, 4);
        assert_eq!(g.total(), 1024);
        assert_eq!(LaunchGrid::cover(0, 128).blocks, 1);
        assert_eq!(LaunchGrid::linear(256).total(), 256);
    }

    #[test]
    fn register_and_lookup() {
        let mut r = KernelRegistry::new();
        let id = r.register_ir(copy_kernel()).unwrap();
        assert_eq!(r.id_of("copy"), Some(id));
        assert_eq!(r.def(id).name, "copy");
        assert_eq!(r.len(), 1);
        assert!(r.native(id).is_none());
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut r = KernelRegistry::new();
        r.register_ir(copy_kernel()).unwrap();
        assert!(matches!(
            r.register_ir(copy_kernel()),
            Err(RegistryError::DuplicateName(_))
        ));
    }

    #[test]
    fn invalid_kernel_rejected() {
        let mut b = KernelBuilder::new("bad");
        let _p = b.ptr_param("p", ScalarTy::F64);
        let mut def = b.finish();
        def.body = vec![crate::ast::Stmt::Let(0, crate::ast::Expr::ConstI(0))];
        let mut r = KernelRegistry::new();
        assert!(matches!(r.register_ir(def), Err(RegistryError::Invalid(_))));
    }

    #[test]
    fn analysis_cached_and_invalidated() {
        let mut r = KernelRegistry::new();
        let id = r.register_ir(copy_kernel()).unwrap();
        let a1 = r.analysis();
        let a2 = r.analysis();
        assert!(Arc::ptr_eq(&a1, &a2), "second call hits the cache");
        assert_eq!(a1.param(id, 0), AccessAttr::WRITE);
        assert_eq!(a1.param(id, 1), AccessAttr::READ);
        // Registering invalidates.
        let mut b = KernelBuilder::new("other");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, tid(), cf(0.0));
        r.register_ir(b.finish()).unwrap();
        let a3 = r.analysis();
        assert!(!Arc::ptr_eq(&a1, &a3));
        assert_eq!(a3.len(), 2);
    }

    #[test]
    fn native_kernel_stored_and_invocable() {
        let mut r = KernelRegistry::new();
        let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
            let v = ctx.f64_arg(1);
            let grid = ctx.grid;
            let out = ctx.f64s_mut(0);
            for t in 0..grid.min(out.len() as u64) {
                out[t as usize] = v;
            }
        });
        let mut b = KernelBuilder::new("fill");
        let p = b.ptr_param("p", ScalarTy::F64);
        let v = b.scalar_param("v", ScalarTy::F64);
        b.if_(tid().lt(grid_size()), |b| b.store(p, tid(), v.get()));
        let id = r.register(b.finish(), Some(native)).unwrap();
        let f = r.native(id).unwrap();
        let mut buf = vec![0.0f64; 4];
        let mut ctx = NativeCtx::new(
            "fill",
            4,
            vec![NativeArg::MutF64(&mut buf), NativeArg::F64(7.0)],
        );
        f(&mut ctx);
        assert_eq!(buf, vec![7.0; 4]);
    }

    #[test]
    fn split_yields_disjoint_views() {
        let mut out = vec![0.0f64; 4];
        let inp = vec![1.0f64, 2.0, 3.0, 4.0];
        let mut ctx = NativeCtx::new(
            "k",
            4,
            vec![
                NativeArg::MutF64(&mut out),
                NativeArg::RefF64(&inp),
                NativeArg::F64(2.0),
            ],
        );
        let a = ctx.f64_arg(2);
        let (mut ws, rs) = ctx.split_f64(&[0], &[1]);
        for (o, i) in ws[0].iter_mut().zip(rs[0]) {
            *o = a * i;
        }
        drop((ws, rs));
        assert_eq!(out, vec![2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn split_order_independent_of_index_order() {
        let mut a = vec![1.0f64];
        let mut b = vec![2.0f64];
        let c = vec![3.0f64];
        let mut ctx = NativeCtx::new(
            "k",
            1,
            vec![
                NativeArg::MutF64(&mut a),
                NativeArg::MutF64(&mut b),
                NativeArg::RefF64(&c),
            ],
        );
        // Writes listed in descending index order.
        let (ws, rs) = ctx.split_f64(&[1, 0], &[2]);
        assert_eq!(ws[0][0], 2.0, "first write is arg 1");
        assert_eq!(ws[1][0], 1.0, "second write is arg 0");
        assert_eq!(rs[0][0], 3.0);
    }

    #[test]
    #[should_panic(expected = "duplicate argument index")]
    fn split_rejects_duplicates() {
        let mut a = vec![0.0f64];
        let mut ctx = NativeCtx::new("k", 1, vec![NativeArg::MutF64(&mut a)]);
        let _ = ctx.split_f64(&[0], &[0]);
    }

    #[test]
    #[should_panic(expected = "bound read-only")]
    fn mutating_read_only_binding_panics() {
        let a = vec![0.0f64];
        let mut ctx = NativeCtx::new("k", 1, vec![NativeArg::RefF64(&a)]);
        let _ = ctx.f64s_mut(0);
    }

    #[test]
    fn i32_accessors() {
        let mut buf = vec![0i32; 3];
        let mut ctx = NativeCtx::new("k", 3, vec![NativeArg::MutI32(&mut buf), NativeArg::I64(5)]);
        let v = ctx.i64_arg(1) as i32;
        for x in ctx.i32s_mut(0) {
            *x = v;
        }
        assert_eq!(ctx.i32s(0), &[5, 5, 5]);
    }
}
