//! Ergonomic kernel construction.
//!
//! Writing [`crate::ast`] trees by hand is noisy; the builder gives kernels
//! a CUDA-like surface:
//!
//! ```
//! use kernel_ir::builder::*;
//! use kernel_ir::ast::ScalarTy;
//!
//! // __global__ void axpy(double* y, const double* x, double a, long n)
//! //   { if (tid < n) y[tid] += a * x[tid]; }
//! let mut b = KernelBuilder::new("axpy");
//! let y = b.ptr_param("y", ScalarTy::F64);
//! let x = b.ptr_param("x", ScalarTy::F64);
//! let a = b.scalar_param("a", ScalarTy::F64);
//! let n = b.scalar_param("n", ScalarTy::I64);
//! b.if_(tid().lt(n.get()), |b| {
//!     b.store(y, tid(), load(y, tid()) + a.get() * load(x, tid()));
//! });
//! let def = b.finish();
//! assert_eq!(def.params.len(), 4);
//! ```

use crate::ast::{
    BinOp, CallArg, Expr, KernelDef, KernelId, ParamDecl, ParamTy, ScalarTy, Stmt, UnOp,
};

/// Handle to a pointer parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PtrParam(pub usize);

/// Handle to a scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarParam(pub usize);

impl ScalarParam {
    /// The parameter's value as an expression.
    pub fn get(self) -> Ex {
        Ex(Expr::Param(self.0))
    }
}

/// Handle to a local variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Local(pub usize);

impl Local {
    /// The local's value as an expression.
    pub fn get(self) -> Ex {
        Ex(Expr::Local(self.0))
    }
}

/// Expression wrapper enabling operator overloading.
#[derive(Debug, Clone, PartialEq)]
pub struct Ex(pub Expr);

/// The flat thread index.
pub fn tid() -> Ex {
    Ex(Expr::Tid)
}

/// The total launched thread count.
pub fn grid_size() -> Ex {
    Ex(Expr::GridSize)
}

/// Float constant.
pub fn cf(v: f64) -> Ex {
    Ex(Expr::ConstF(v))
}

/// Integer constant.
pub fn ci(v: i64) -> Ex {
    Ex(Expr::ConstI(v))
}

/// Load `ptr[idx]`.
pub fn load(ptr: PtrParam, idx: Ex) -> Ex {
    Ex(Expr::Load {
        ptr: ptr.0,
        idx: Box::new(idx.0),
    })
}

macro_rules! bin_method {
    ($($m:ident => $op:ident),* $(,)?) => {
        $(
            /// Binary operation (see [`crate::ast::BinOp`]).
            // The DSL intentionally mirrors operator names (`rem`, `not`).
            #[allow(clippy::should_implement_trait)]
            pub fn $m(self, rhs: Ex) -> Ex {
                Ex(Expr::Bin(BinOp::$op, Box::new(self.0), Box::new(rhs.0)))
            }
        )*
    };
}

impl Ex {
    bin_method! {
        lt => Lt, le => Le, gt => Gt, ge => Ge, eq_ => Eq, ne_ => Ne,
        min => Min, max => Max, and => And, or => Or, rem => Rem,
    }

    /// Square root.
    pub fn sqrt(self) -> Ex {
        Ex(Expr::Un(UnOp::Sqrt, Box::new(self.0)))
    }

    /// Absolute value.
    pub fn abs(self) -> Ex {
        Ex(Expr::Un(UnOp::Abs, Box::new(self.0)))
    }

    /// Logical not.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Ex {
        Ex(Expr::Un(UnOp::Not, Box::new(self.0)))
    }

    /// Convert integer to float.
    pub fn to_f(self) -> Ex {
        Ex(Expr::Un(UnOp::IntToFloat, Box::new(self.0)))
    }

    /// Convert float to integer (truncating).
    pub fn to_i(self) -> Ex {
        Ex(Expr::Un(UnOp::FloatToInt, Box::new(self.0)))
    }
}

macro_rules! std_op {
    ($trait_:ident, $method:ident, $op:ident) => {
        impl std::ops::$trait_ for Ex {
            type Output = Ex;
            fn $method(self, rhs: Ex) -> Ex {
                Ex(Expr::Bin(BinOp::$op, Box::new(self.0), Box::new(rhs.0)))
            }
        }
    };
}

std_op!(Add, add, Add);
std_op!(Sub, sub, Sub);
std_op!(Mul, mul, Mul);
std_op!(Div, div, Div);

impl std::ops::Neg for Ex {
    type Output = Ex;
    fn neg(self) -> Ex {
        Ex(Expr::Un(UnOp::Neg, Box::new(self.0)))
    }
}

/// Argument in a nested call.
#[derive(Debug, Clone)]
pub enum Arg {
    /// Forward a pointer parameter.
    Ptr(PtrParam),
    /// Pass a scalar expression.
    Val(Ex),
}

impl From<PtrParam> for Arg {
    fn from(p: PtrParam) -> Arg {
        Arg::Ptr(p)
    }
}

impl From<Ex> for Arg {
    fn from(e: Ex) -> Arg {
        Arg::Val(e)
    }
}

/// The kernel builder. See module docs for an example.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    params: Vec<ParamDecl>,
    num_locals: usize,
    // Stack of statement blocks: the last entry is the block currently
    // being appended to (nested `if_`/`for_` bodies push and pop).
    blocks: Vec<Vec<Stmt>>,
}

impl KernelBuilder {
    /// Start building a kernel.
    pub fn new(name: &str) -> Self {
        KernelBuilder {
            name: name.to_string(),
            params: Vec::new(),
            num_locals: 0,
            blocks: vec![Vec::new()],
        }
    }

    /// Declare a pointer parameter.
    pub fn ptr_param(&mut self, name: &str, ty: ScalarTy) -> PtrParam {
        self.params.push(ParamDecl {
            name: name.to_string(),
            ty: ParamTy::Ptr(ty),
        });
        PtrParam(self.params.len() - 1)
    }

    /// Declare a scalar parameter.
    pub fn scalar_param(&mut self, name: &str, ty: ScalarTy) -> ScalarParam {
        self.params.push(ParamDecl {
            name: name.to_string(),
            ty: ParamTy::Scalar(ty),
        });
        ScalarParam(self.params.len() - 1)
    }

    fn push(&mut self, s: Stmt) {
        self.blocks.last_mut().expect("block stack").push(s);
    }

    /// Declare and initialize a local variable.
    pub fn let_(&mut self, value: Ex) -> Local {
        let l = Local(self.num_locals);
        self.num_locals += 1;
        self.push(Stmt::Let(l.0, value.0));
        l
    }

    /// Re-assign an existing local.
    pub fn set(&mut self, local: Local, value: Ex) {
        self.push(Stmt::Let(local.0, value.0));
    }

    /// Store `val` at `ptr[idx]`.
    pub fn store(&mut self, ptr: PtrParam, idx: Ex, val: Ex) {
        self.push(Stmt::Store {
            ptr: ptr.0,
            idx: idx.0,
            val: val.0,
        });
    }

    /// `if (cond) { then }`.
    pub fn if_(&mut self, cond: Ex, then_: impl FnOnce(&mut Self)) {
        self.blocks.push(Vec::new());
        then_(self);
        let then_block = self.blocks.pop().expect("then block");
        self.push(Stmt::If {
            cond: cond.0,
            then_: then_block,
            else_: Vec::new(),
        });
    }

    /// `if (cond) { then } else { else }`.
    pub fn if_else(
        &mut self,
        cond: Ex,
        then_: impl FnOnce(&mut Self),
        else_: impl FnOnce(&mut Self),
    ) {
        self.blocks.push(Vec::new());
        then_(self);
        let then_block = self.blocks.pop().expect("then block");
        self.blocks.push(Vec::new());
        else_(self);
        let else_block = self.blocks.pop().expect("else block");
        self.push(Stmt::If {
            cond: cond.0,
            then_: then_block,
            else_: else_block,
        });
    }

    /// `for i in start..end { body }` (sequential per-thread loop).
    pub fn for_(&mut self, start: Ex, end: Ex, body: impl FnOnce(&mut Self, Local)) {
        let i = Local(self.num_locals);
        self.num_locals += 1;
        self.blocks.push(Vec::new());
        body(self, i);
        let body_block = self.blocks.pop().expect("for block");
        self.push(Stmt::For {
            local: i.0,
            start: start.0,
            end: end.0,
            body: body_block,
        });
    }

    /// Nested kernel call.
    pub fn call(&mut self, callee: KernelId, args: impl IntoIterator<Item = Arg>) {
        let args = args
            .into_iter()
            .map(|a| match a {
                Arg::Ptr(p) => CallArg::Ptr(p.0),
                Arg::Val(e) => CallArg::Scalar(e.0),
            })
            .collect();
        self.push(Stmt::Call { callee, args });
    }

    /// Finish, producing the (not yet validated) definition.
    pub fn finish(mut self) -> KernelDef {
        assert_eq!(self.blocks.len(), 1, "unbalanced block nesting");
        KernelDef {
            name: self.name,
            params: self.params,
            num_locals: self.num_locals,
            body: self.blocks.pop().expect("body"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_axpy_shape() {
        let mut b = KernelBuilder::new("axpy");
        let y = b.ptr_param("y", ScalarTy::F64);
        let x = b.ptr_param("x", ScalarTy::F64);
        let a = b.scalar_param("a", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| {
            b.store(y, tid(), load(y, tid()) + a.get() * load(x, tid()));
        });
        let def = b.finish();
        assert_eq!(def.name, "axpy");
        assert_eq!(def.params.len(), 4);
        assert!(matches!(def.body[0], Stmt::If { .. }));
    }

    #[test]
    fn locals_allocated_sequentially() {
        let mut b = KernelBuilder::new("k");
        let l0 = b.let_(ci(1));
        let l1 = b.let_(l0.get() + ci(2));
        assert_eq!(l0.0, 0);
        assert_eq!(l1.0, 1);
        let def = b.finish();
        assert_eq!(def.num_locals, 2);
    }

    #[test]
    fn for_loop_allocates_induction_local() {
        let mut b = KernelBuilder::new("k");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.for_(ci(0), ci(10), |b, i| {
            b.store(p, i.get(), cf(0.0));
        });
        let def = b.finish();
        assert_eq!(def.num_locals, 1);
        assert!(matches!(def.body[0], Stmt::For { .. }));
    }

    #[test]
    fn nested_blocks_balance() {
        let mut b = KernelBuilder::new("k");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.if_else(
            tid().eq_(ci(0)),
            |b| {
                b.if_(ci(1), |b| b.store(p, ci(0), cf(1.0)));
            },
            |b| b.store(p, tid(), cf(2.0)),
        );
        let def = b.finish();
        match &def.body[0] {
            Stmt::If { then_, else_, .. } => {
                assert_eq!(then_.len(), 1);
                assert_eq!(else_.len(), 1);
            }
            other => panic!("expected If, got {other:?}"),
        }
    }

    #[test]
    fn call_args_convert() {
        let mut b = KernelBuilder::new("k");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.call(KernelId(3), [Arg::from(p), Arg::from(tid().to_f())]);
        let def = b.finish();
        match &def.body[0] {
            Stmt::Call { callee, args } => {
                assert_eq!(*callee, KernelId(3));
                assert!(matches!(args[0], CallArg::Ptr(0)));
                assert!(matches!(args[1], CallArg::Scalar(_)));
            }
            other => panic!("expected Call, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unbalanced")]
    fn unbalanced_nesting_panics() {
        let mut b = KernelBuilder::new("k");
        b.blocks.push(Vec::new()); // simulate a bug
        let _ = b.finish();
    }
}
