//! Reference interpreter for the kernel IR.
//!
//! Executes a kernel over a flat thread grid with full bounds checking —
//! the role of the interpreter is *semantic ground truth*: native closures
//! registered alongside an IR definition are property-tested against it
//! (closure ≡ interpreter), mirroring how the real compiler pass's analysis
//! input and the executed device code derive from one CUDA source.
//!
//! Pointer parameters are resolved to *slots* of a [`KernelMemory`]; nested
//! calls rebind callee parameters to caller slots/values, so interprocedural
//! pointer forwarding (Fig. 8) is executed faithfully.

use crate::ast::{BinOp, CallArg, Expr, KernelDef, KernelId, ScalarTy, Stmt, UnOp};
use std::fmt;

/// A runtime scalar value: float or integer class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KValue {
    /// Floating value (covers `f64` and `f32` storage).
    F(f64),
    /// Integer value (covers `i64` and `i32` storage).
    I(i64),
}

impl KValue {
    fn as_f(self, k: &str) -> Result<f64, InterpError> {
        match self {
            KValue::F(v) => Ok(v),
            KValue::I(_) => Err(InterpError::TypeError {
                kernel: k.to_string(),
                detail: "expected float, got integer".into(),
            }),
        }
    }

    fn as_i(self, k: &str) -> Result<i64, InterpError> {
        match self {
            KValue::I(v) => Ok(v),
            KValue::F(_) => Err(InterpError::TypeError {
                kernel: k.to_string(),
                detail: "expected integer, got float".into(),
            }),
        }
    }

    fn truthy(self) -> bool {
        match self {
            KValue::I(v) => v != 0,
            KValue::F(v) => v != 0.0,
        }
    }
}

/// Interpreter errors — the moral equivalent of `compute-sanitizer`
/// memcheck findings plus IR type errors.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Element access out of the bounds of the bound buffer.
    OutOfBounds {
        /// Kernel name.
        kernel: String,
        /// Pointer parameter index.
        param: usize,
        /// Offending element index.
        idx: i64,
        /// Buffer length in elements.
        len: u64,
    },
    /// Float/integer class mismatch.
    TypeError {
        /// Kernel name.
        kernel: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Integer division or remainder by zero.
    DivByZero {
        /// Kernel name.
        kernel: String,
    },
    /// Nested-call recursion exceeded [`MAX_CALL_DEPTH`].
    CallDepthExceeded {
        /// Kernel name.
        kernel: String,
    },
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::OutOfBounds {
                kernel,
                param,
                idx,
                len,
            } => write!(
                f,
                "{kernel}: out-of-bounds access through param {param}: index {idx}, length {len}"
            ),
            InterpError::TypeError { kernel, detail } => {
                write!(f, "{kernel}: type error: {detail}")
            }
            InterpError::DivByZero { kernel } => write!(f, "{kernel}: integer division by zero"),
            InterpError::CallDepthExceeded { kernel } => {
                write!(f, "{kernel}: nested call depth exceeded")
            }
        }
    }
}

impl std::error::Error for InterpError {}

/// Maximum nested-call depth per thread.
pub const MAX_CALL_DEPTH: usize = 256;

/// Storage the interpreter executes against. Slots are bound to the root
/// kernel's pointer parameters in order of [`RunArg::Slot`] bindings.
pub trait KernelMemory {
    /// Length of slot `slot` in elements.
    fn len(&self, slot: usize) -> u64;
    /// Load element `idx` (guaranteed in bounds by the interpreter).
    fn load(&self, slot: usize, idx: u64) -> KValue;
    /// Store element `idx` (guaranteed in bounds by the interpreter).
    fn store(&mut self, slot: usize, idx: u64, v: KValue);
}

/// Simple vector-backed memory for tests and differential checking.
#[derive(Debug, Clone, PartialEq)]
pub enum VecBuffer {
    /// `f64` storage.
    F64(Vec<f64>),
    /// `f32` storage.
    F32(Vec<f32>),
    /// `i64` storage.
    I64(Vec<i64>),
    /// `i32` storage.
    I32(Vec<i32>),
}

/// A [`KernelMemory`] over plain vectors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct VecMemory {
    /// The slot buffers.
    pub slots: Vec<VecBuffer>,
}

impl VecMemory {
    /// Memory from a list of buffers.
    pub fn new(slots: Vec<VecBuffer>) -> Self {
        VecMemory { slots }
    }

    /// Borrow an `f64` slot (panics on type mismatch).
    pub fn f64_slot(&self, i: usize) -> &Vec<f64> {
        match &self.slots[i] {
            VecBuffer::F64(v) => v,
            other => panic!("slot {i} is not f64: {other:?}"),
        }
    }

    /// Borrow an `i32` slot (panics on type mismatch).
    pub fn i32_slot(&self, i: usize) -> &Vec<i32> {
        match &self.slots[i] {
            VecBuffer::I32(v) => v,
            other => panic!("slot {i} is not i32: {other:?}"),
        }
    }
}

impl KernelMemory for VecMemory {
    fn len(&self, slot: usize) -> u64 {
        match &self.slots[slot] {
            VecBuffer::F64(v) => v.len() as u64,
            VecBuffer::F32(v) => v.len() as u64,
            VecBuffer::I64(v) => v.len() as u64,
            VecBuffer::I32(v) => v.len() as u64,
        }
    }

    fn load(&self, slot: usize, idx: u64) -> KValue {
        match &self.slots[slot] {
            VecBuffer::F64(v) => KValue::F(v[idx as usize]),
            VecBuffer::F32(v) => KValue::F(f64::from(v[idx as usize])),
            VecBuffer::I64(v) => KValue::I(v[idx as usize]),
            VecBuffer::I32(v) => KValue::I(i64::from(v[idx as usize])),
        }
    }

    fn store(&mut self, slot: usize, idx: u64, v: KValue) {
        match (&mut self.slots[slot], v) {
            (VecBuffer::F64(b), KValue::F(x)) => b[idx as usize] = x,
            (VecBuffer::F32(b), KValue::F(x)) => b[idx as usize] = x as f32,
            (VecBuffer::I64(b), KValue::I(x)) => b[idx as usize] = x,
            (VecBuffer::I32(b), KValue::I(x)) => b[idx as usize] = x as i32,
            (b, v) => panic!("store class mismatch: {b:?} <- {v:?}"),
        }
    }
}

/// Root-kernel argument binding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RunArg {
    /// Bind a pointer parameter to memory slot `slot`.
    Slot(usize),
    /// Bind a scalar parameter to a value.
    Val(KValue),
}

#[derive(Debug, Clone, Copy)]
enum FrameArg {
    Slot(usize),
    Val(KValue),
}

struct Interp<'a> {
    kernels: &'a [KernelDef],
    mem: &'a mut dyn KernelMemory,
    grid: u64,
    tid: i64,
}

impl<'a> Interp<'a> {
    fn exec_kernel(
        &mut self,
        kid: KernelId,
        frame: &[FrameArg],
        depth: usize,
    ) -> Result<(), InterpError> {
        let def = &self.kernels[kid.0 as usize];
        if depth > MAX_CALL_DEPTH {
            return Err(InterpError::CallDepthExceeded {
                kernel: def.name.clone(),
            });
        }
        let mut locals = vec![KValue::I(0); def.num_locals];
        self.exec_stmts(def, &def.body, frame, &mut locals, depth)
    }

    fn exec_stmts(
        &mut self,
        def: &KernelDef,
        stmts: &[Stmt],
        frame: &[FrameArg],
        locals: &mut Vec<KValue>,
        depth: usize,
    ) -> Result<(), InterpError> {
        for s in stmts {
            match s {
                Stmt::Let(l, e) => {
                    let v = self.eval(def, e, frame, locals)?;
                    locals[*l] = v;
                }
                Stmt::Store { ptr, idx, val } => {
                    let i = self.eval(def, idx, frame, locals)?.as_i(&def.name)?;
                    let v = self.eval(def, val, frame, locals)?;
                    let slot = self.resolve_slot(frame, *ptr);
                    let len = self.mem.len(slot);
                    if i < 0 || i as u64 >= len {
                        return Err(InterpError::OutOfBounds {
                            kernel: def.name.clone(),
                            param: *ptr,
                            idx: i,
                            len,
                        });
                    }
                    let v = coerce_store(def, *ptr, v)?;
                    self.mem.store(slot, i as u64, v);
                }
                Stmt::If { cond, then_, else_ } => {
                    let c = self.eval(def, cond, frame, locals)?;
                    if c.truthy() {
                        self.exec_stmts(def, then_, frame, locals, depth)?;
                    } else {
                        self.exec_stmts(def, else_, frame, locals, depth)?;
                    }
                }
                Stmt::For {
                    local,
                    start,
                    end,
                    body,
                } => {
                    let s0 = self.eval(def, start, frame, locals)?.as_i(&def.name)?;
                    let e0 = self.eval(def, end, frame, locals)?.as_i(&def.name)?;
                    let mut i = s0;
                    while i < e0 {
                        locals[*local] = KValue::I(i);
                        self.exec_stmts(def, body, frame, locals, depth)?;
                        i += 1;
                    }
                }
                Stmt::Call { callee, args } => {
                    let mut callee_frame = Vec::with_capacity(args.len());
                    for a in args {
                        callee_frame.push(match a {
                            CallArg::Ptr(p) => FrameArg::Slot(self.resolve_slot(frame, *p)),
                            CallArg::Scalar(e) => FrameArg::Val(self.eval(def, e, frame, locals)?),
                        });
                    }
                    self.exec_kernel(*callee, &callee_frame, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    fn resolve_slot(&self, frame: &[FrameArg], param: usize) -> usize {
        match frame[param] {
            FrameArg::Slot(s) => s,
            FrameArg::Val(_) => unreachable!("validated: pointer param bound to scalar"),
        }
    }

    fn eval(
        &self,
        def: &KernelDef,
        e: &Expr,
        frame: &[FrameArg],
        locals: &[KValue],
    ) -> Result<KValue, InterpError> {
        let k = &def.name;
        Ok(match e {
            Expr::ConstF(v) => KValue::F(*v),
            Expr::ConstI(v) => KValue::I(*v),
            Expr::Tid => KValue::I(self.tid),
            Expr::GridSize => KValue::I(self.grid as i64),
            Expr::Param(i) => match frame[*i] {
                FrameArg::Val(v) => v,
                FrameArg::Slot(_) => unreachable!("validated: scalar use of pointer"),
            },
            Expr::Local(i) => locals[*i],
            Expr::Un(op, a) => {
                let v = self.eval(def, a, frame, locals)?;
                match op {
                    UnOp::Neg => match v {
                        KValue::F(x) => KValue::F(-x),
                        KValue::I(x) => KValue::I(-x),
                    },
                    UnOp::Not => KValue::I(i64::from(!v.truthy())),
                    UnOp::Sqrt => KValue::F(v.as_f(k)?.sqrt()),
                    UnOp::Abs => match v {
                        KValue::F(x) => KValue::F(x.abs()),
                        KValue::I(x) => KValue::I(x.abs()),
                    },
                    UnOp::IntToFloat => KValue::F(v.as_i(k)? as f64),
                    UnOp::FloatToInt => KValue::I(v.as_f(k)? as i64),
                }
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(def, a, frame, locals)?;
                let vb = self.eval(def, b, frame, locals)?;
                eval_bin(k, *op, va, vb)?
            }
            Expr::Load { ptr, idx } => {
                let i = self.eval(def, idx, frame, locals)?.as_i(k)?;
                let slot = self.resolve_slot(frame, *ptr);
                let len = self.mem.len(slot);
                if i < 0 || i as u64 >= len {
                    return Err(InterpError::OutOfBounds {
                        kernel: k.clone(),
                        param: *ptr,
                        idx: i,
                        len,
                    });
                }
                self.mem.load(slot, i as u64)
            }
        })
    }
}

fn coerce_store(def: &KernelDef, ptr: usize, v: KValue) -> Result<KValue, InterpError> {
    let ty = def.params[ptr].ty.scalar();
    match (ty, v) {
        (ScalarTy::F64 | ScalarTy::F32, KValue::F(_)) => Ok(v),
        (ScalarTy::I64 | ScalarTy::I32, KValue::I(_)) => Ok(v),
        _ => Err(InterpError::TypeError {
            kernel: def.name.clone(),
            detail: format!("store of {v:?} into {ty} buffer (param {ptr})"),
        }),
    }
}

fn eval_bin(k: &str, op: BinOp, a: KValue, b: KValue) -> Result<KValue, InterpError> {
    use KValue::{F, I};
    let type_err = || InterpError::TypeError {
        kernel: k.to_string(),
        detail: format!("operand class mismatch: {a:?} {op:?} {b:?}"),
    };
    Ok(match (a, b) {
        (F(x), F(y)) => match op {
            BinOp::Add => F(x + y),
            BinOp::Sub => F(x - y),
            BinOp::Mul => F(x * y),
            BinOp::Div => F(x / y),
            BinOp::Min => F(x.min(y)),
            BinOp::Max => F(x.max(y)),
            BinOp::Lt => I(i64::from(x < y)),
            BinOp::Le => I(i64::from(x <= y)),
            BinOp::Gt => I(i64::from(x > y)),
            BinOp::Ge => I(i64::from(x >= y)),
            BinOp::Eq => I(i64::from(x == y)),
            BinOp::Ne => I(i64::from(x != y)),
            BinOp::Rem | BinOp::And | BinOp::Or => return Err(type_err()),
        },
        (I(x), I(y)) => match op {
            BinOp::Add => I(x.wrapping_add(y)),
            BinOp::Sub => I(x.wrapping_sub(y)),
            BinOp::Mul => I(x.wrapping_mul(y)),
            BinOp::Div => {
                if y == 0 {
                    return Err(InterpError::DivByZero {
                        kernel: k.to_string(),
                    });
                }
                I(x.wrapping_div(y))
            }
            BinOp::Rem => {
                if y == 0 {
                    return Err(InterpError::DivByZero {
                        kernel: k.to_string(),
                    });
                }
                I(x.wrapping_rem(y))
            }
            BinOp::Min => I(x.min(y)),
            BinOp::Max => I(x.max(y)),
            BinOp::Lt => I(i64::from(x < y)),
            BinOp::Le => I(i64::from(x <= y)),
            BinOp::Gt => I(i64::from(x > y)),
            BinOp::Ge => I(i64::from(x >= y)),
            BinOp::Eq => I(i64::from(x == y)),
            BinOp::Ne => I(i64::from(x != y)),
            BinOp::And => I(i64::from(x != 0 && y != 0)),
            BinOp::Or => I(i64::from(x != 0 || y != 0)),
        },
        _ => return Err(type_err()),
    })
}

/// Execute `kernel` over `grid` threads against `mem`.
///
/// `args` bind the kernel's parameters in order: [`RunArg::Slot`] for
/// pointer parameters, [`RunArg::Val`] for scalars. Threads run
/// sequentially in tid order (the interpreter defines semantics, not
/// scheduling; intra-kernel races are out of scope, as in the paper).
pub fn run(
    kernels: &[KernelDef],
    kernel: KernelId,
    grid: u64,
    args: &[RunArg],
    mem: &mut dyn KernelMemory,
) -> Result<(), InterpError> {
    let def = &kernels[kernel.0 as usize];
    assert_eq!(
        def.params.len(),
        args.len(),
        "argument count mismatch for {}",
        def.name
    );
    let frame: Vec<FrameArg> = args
        .iter()
        .map(|a| match a {
            RunArg::Slot(s) => FrameArg::Slot(*s),
            RunArg::Val(v) => FrameArg::Val(*v),
        })
        .collect();
    for tid in 0..grid {
        let mut it = Interp {
            kernels,
            mem,
            grid,
            tid: tid as i64,
        };
        it.exec_kernel(kernel, &frame, 0)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ScalarTy;
    use crate::builder::*;

    fn axpy() -> KernelDef {
        let mut b = KernelBuilder::new("axpy");
        let y = b.ptr_param("y", ScalarTy::F64);
        let x = b.ptr_param("x", ScalarTy::F64);
        let a = b.scalar_param("a", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| {
            b.store(y, tid(), load(y, tid()) + a.get() * load(x, tid()));
        });
        b.finish()
    }

    #[test]
    fn axpy_computes() {
        let kernels = vec![axpy()];
        let mut mem = VecMemory::new(vec![
            VecBuffer::F64(vec![1.0; 8]),
            VecBuffer::F64((0..8).map(f64::from).collect()),
        ]);
        run(
            &kernels,
            KernelId(0),
            8,
            &[
                RunArg::Slot(0),
                RunArg::Slot(1),
                RunArg::Val(KValue::F(2.0)),
                RunArg::Val(KValue::I(8)),
            ],
            &mut mem,
        )
        .unwrap();
        assert_eq!(
            mem.f64_slot(0),
            &vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]
        );
    }

    #[test]
    fn guard_prevents_out_of_bounds() {
        // Launch more threads than elements; the guard keeps it in bounds.
        let kernels = vec![axpy()];
        let mut mem = VecMemory::new(vec![
            VecBuffer::F64(vec![0.0; 4]),
            VecBuffer::F64(vec![1.0; 4]),
        ]);
        run(
            &kernels,
            KernelId(0),
            64,
            &[
                RunArg::Slot(0),
                RunArg::Slot(1),
                RunArg::Val(KValue::F(1.0)),
                RunArg::Val(KValue::I(4)),
            ],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.f64_slot(0), &vec![1.0; 4]);
    }

    #[test]
    fn missing_guard_reports_out_of_bounds() {
        let mut b = KernelBuilder::new("unguarded");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, tid(), cf(1.0));
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::F64(vec![0.0; 4])]);
        let err = run(&kernels, KernelId(0), 8, &[RunArg::Slot(0)], &mut mem).unwrap_err();
        assert_eq!(
            err,
            InterpError::OutOfBounds {
                kernel: "unguarded".into(),
                param: 0,
                idx: 4,
                len: 4
            }
        );
    }

    #[test]
    fn for_loop_reduction_single_thread() {
        // sum(out, in, n): out[0] = sum(in[0..n]) — grid of 1.
        let mut b = KernelBuilder::new("sum");
        let out = b.ptr_param("out", ScalarTy::F64);
        let inp = b.ptr_param("in", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        let acc = b.let_(cf(0.0));
        b.for_(ci(0), n.get(), |b, i| {
            b.set(acc, acc.get() + load(inp, i.get()));
        });
        b.store(out, ci(0), acc.get());
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![
            VecBuffer::F64(vec![0.0]),
            VecBuffer::F64(vec![1.0, 2.0, 3.0, 4.0]),
        ]);
        run(
            &kernels,
            KernelId(0),
            1,
            &[RunArg::Slot(0), RunArg::Slot(1), RunArg::Val(KValue::I(4))],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.f64_slot(0)[0], 10.0);
    }

    #[test]
    fn nested_call_executes_fig8() {
        // kernel_nested(y, x, t): y[t] = x[t]; kernel(a, b): nested(a, b, tid)
        let mut nb = KernelBuilder::new("nested");
        let y = nb.ptr_param("y", ScalarTy::F64);
        let x = nb.ptr_param("x", ScalarTy::F64);
        let t = nb.scalar_param("t", ScalarTy::I64);
        nb.store(y, t.get(), load(x, t.get()));
        let mut kb = KernelBuilder::new("kernel");
        let a = kb.ptr_param("a", ScalarTy::F64);
        let b2 = kb.ptr_param("b", ScalarTy::F64);
        kb.call(KernelId(0), [Arg::from(a), Arg::from(b2), Arg::from(tid())]);
        let kernels = vec![nb.finish(), kb.finish()];
        let mut mem = VecMemory::new(vec![
            VecBuffer::F64(vec![0.0; 4]),
            VecBuffer::F64(vec![9.0, 8.0, 7.0, 6.0]),
        ]);
        run(
            &kernels,
            KernelId(1),
            4,
            &[RunArg::Slot(0), RunArg::Slot(1)],
            &mut mem,
        )
        .unwrap();
        assert_eq!(mem.f64_slot(0), &vec![9.0, 8.0, 7.0, 6.0]);
    }

    #[test]
    fn integer_ops_and_i32_storage() {
        let mut b = KernelBuilder::new("mask");
        let out = b.ptr_param("out", ScalarTy::I32);
        b.store(out, tid(), tid().rem(ci(2)).eq_(ci(0)).and(ci(1)));
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::I32(vec![0; 5])]);
        run(&kernels, KernelId(0), 5, &[RunArg::Slot(0)], &mut mem).unwrap();
        assert_eq!(mem.i32_slot(0), &vec![1, 0, 1, 0, 1]);
    }

    #[test]
    fn type_mismatch_detected() {
        let mut b = KernelBuilder::new("bad");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, tid(), ci(1)); // integer into float buffer
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::F64(vec![0.0; 1])]);
        let err = run(&kernels, KernelId(0), 1, &[RunArg::Slot(0)], &mut mem).unwrap_err();
        assert!(matches!(err, InterpError::TypeError { .. }));
    }

    #[test]
    fn div_by_zero_detected() {
        let mut b = KernelBuilder::new("bad");
        let p = b.ptr_param("p", ScalarTy::I64);
        b.store(p, ci(0), ci(1) / (tid() - tid()));
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::I64(vec![0])]);
        let err = run(&kernels, KernelId(0), 1, &[RunArg::Slot(0)], &mut mem).unwrap_err();
        assert_eq!(
            err,
            InterpError::DivByZero {
                kernel: "bad".into()
            }
        );
    }

    #[test]
    fn unbounded_recursion_detected() {
        let mut b = KernelBuilder::new("forever");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.call(KernelId(0), [Arg::from(p)]);
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::F64(vec![0.0])]);
        let err = run(&kernels, KernelId(0), 1, &[RunArg::Slot(0)], &mut mem).unwrap_err();
        assert!(matches!(err, InterpError::CallDepthExceeded { .. }));
    }

    #[test]
    fn float_math_unops() {
        let mut b = KernelBuilder::new("m");
        let p = b.ptr_param("p", ScalarTy::F64);
        b.store(p, ci(0), cf(9.0).sqrt());
        b.store(p, ci(1), (-cf(3.5)).abs());
        b.store(p, ci(2), ci(7).to_f());
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::F64(vec![0.0; 3])]);
        run(&kernels, KernelId(0), 1, &[RunArg::Slot(0)], &mut mem).unwrap();
        assert_eq!(mem.f64_slot(0), &vec![3.0, 3.5, 7.0]);
    }

    #[test]
    fn f32_storage_roundtrips_through_f64_values() {
        let mut b = KernelBuilder::new("f32k");
        let p = b.ptr_param("p", ScalarTy::F32);
        b.store(p, tid(), load(p, tid()) * cf(2.0));
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::F32(vec![1.5, 2.5])]);
        run(&kernels, KernelId(0), 2, &[RunArg::Slot(0)], &mut mem).unwrap();
        match &mem.slots[0] {
            VecBuffer::F32(v) => assert_eq!(v, &vec![3.0f32, 5.0]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grid_size_expression() {
        let mut b = KernelBuilder::new("g");
        let p = b.ptr_param("p", ScalarTy::I64);
        b.store(p, tid(), grid_size());
        let kernels = vec![b.finish()];
        let mut mem = VecMemory::new(vec![VecBuffer::I64(vec![0; 3])]);
        run(&kernels, KernelId(0), 3, &[RunArg::Slot(0)], &mut mem).unwrap();
        match &mem.slots[0] {
            VecBuffer::I64(v) => assert_eq!(v, &vec![3, 3, 3]),
            other => panic!("{other:?}"),
        }
    }
}
