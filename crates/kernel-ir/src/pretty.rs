//! Pseudo-CUDA pretty-printer for kernel definitions.
//!
//! Renders a [`KernelDef`] back to a CUDA-like source form, optionally
//! annotated with the compiler pass's per-argument access attributes —
//! handy in diagnostics, test failure output, and documentation (every
//! registered kernel can print what the pass concluded about it).

use crate::analysis::AnalysisResult;
use crate::ast::{BinOp, CallArg, Expr, KernelDef, KernelId, ParamTy, Stmt, UnOp};

/// Render a kernel as pseudo-CUDA.
pub fn pretty(def: &KernelDef) -> String {
    pretty_with_attrs(def, None, None)
}

/// Render a kernel with the analysis's per-argument annotations, e.g.
/// `/* write, tid-bounded */ double* out`.
pub fn pretty_analyzed(def: &KernelDef, id: KernelId, analysis: &AnalysisResult) -> String {
    pretty_with_attrs(def, Some(id), Some(analysis))
}

fn pretty_with_attrs(
    def: &KernelDef,
    id: Option<KernelId>,
    analysis: Option<&AnalysisResult>,
) -> String {
    let mut out = String::new();
    out.push_str("__global__ void ");
    out.push_str(&def.name);
    out.push('(');
    for (i, p) in def.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if let (Some(id), Some(an)) = (id, analysis) {
            if p.ty.is_ptr() {
                let attr = an.param(id, i);
                let bounded = if an.tid_bounded(id, i) {
                    ", tid-bounded"
                } else {
                    ""
                };
                out.push_str(&format!("/* {attr}{bounded} */ "));
            }
        }
        match p.ty {
            ParamTy::Ptr(t) => out.push_str(&format!("{t}* {}", p.name)),
            ParamTy::Scalar(t) => out.push_str(&format!("{t} {}", p.name)),
        }
    }
    out.push_str(") {\n");
    emit_stmts(&def.body, def, 1, &mut out);
    out.push_str("}\n");
    out
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn emit_stmts(stmts: &[Stmt], def: &KernelDef, depth: usize, out: &mut String) {
    for s in stmts {
        indent(depth, out);
        match s {
            Stmt::Let(l, e) => {
                out.push_str(&format!("t{l} = {};\n", expr(e, def)));
            }
            Stmt::Store { ptr, idx, val } => {
                out.push_str(&format!(
                    "{}[{}] = {};\n",
                    def.params[*ptr].name,
                    expr(idx, def),
                    expr(val, def)
                ));
            }
            Stmt::If { cond, then_, else_ } => {
                out.push_str(&format!("if ({}) {{\n", expr(cond, def)));
                emit_stmts(then_, def, depth + 1, out);
                if !else_.is_empty() {
                    indent(depth, out);
                    out.push_str("} else {\n");
                    emit_stmts(else_, def, depth + 1, out);
                }
                indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::For {
                local,
                start,
                end,
                body,
            } => {
                out.push_str(&format!(
                    "for (long t{local} = {}; t{local} < {}; t{local}++) {{\n",
                    expr(start, def),
                    expr(end, def)
                ));
                emit_stmts(body, def, depth + 1, out);
                indent(depth, out);
                out.push_str("}\n");
            }
            Stmt::Call { callee, args } => {
                out.push_str(&format!("kernel#{}(", callee.0));
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    match a {
                        CallArg::Ptr(p) => out.push_str(&def.params[*p].name),
                        CallArg::Scalar(e) => out.push_str(&expr(e, def)),
                    }
                }
                out.push_str(");\n");
            }
        }
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Rem => "%",
        BinOp::Min => "min",
        BinOp::Max => "max",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Gt => ">",
        BinOp::Ge => ">=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
    }
}

fn expr(e: &Expr, def: &KernelDef) -> String {
    match e {
        Expr::ConstF(v) => format!("{v:?}"),
        Expr::ConstI(v) => v.to_string(),
        Expr::Tid => "tid".to_string(),
        Expr::GridSize => "gridSize".to_string(),
        Expr::Param(i) => def.params[*i].name.clone(),
        Expr::Local(l) => format!("t{l}"),
        Expr::Bin(op @ (BinOp::Min | BinOp::Max), a, b) => {
            format!("{}({}, {})", bin_op(*op), expr(a, def), expr(b, def))
        }
        Expr::Bin(op, a, b) => {
            format!("({} {} {})", expr(a, def), bin_op(*op), expr(b, def))
        }
        Expr::Un(UnOp::Neg, a) => format!("(-{})", expr(a, def)),
        Expr::Un(UnOp::Not, a) => format!("(!{})", expr(a, def)),
        Expr::Un(UnOp::Sqrt, a) => format!("sqrt({})", expr(a, def)),
        Expr::Un(UnOp::Abs, a) => format!("abs({})", expr(a, def)),
        Expr::Un(UnOp::IntToFloat, a) => format!("(double)({})", expr(a, def)),
        Expr::Un(UnOp::FloatToInt, a) => format!("(long)({})", expr(a, def)),
        Expr::Load { ptr, idx } => {
            format!("{}[{}]", def.params[*ptr].name, expr(idx, def))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis;
    use crate::ast::ScalarTy;
    use crate::builder::*;

    fn axpy() -> KernelDef {
        let mut b = KernelBuilder::new("axpy");
        let y = b.ptr_param("y", ScalarTy::F64);
        let x = b.ptr_param("x", ScalarTy::F64);
        let a = b.scalar_param("a", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        b.if_(tid().lt(n.get()), |b| {
            b.store(y, tid(), load(y, tid()) + a.get() * load(x, tid()));
        });
        b.finish()
    }

    #[test]
    fn renders_axpy_shape() {
        let s = pretty(&axpy());
        assert!(
            s.contains("__global__ void axpy(f64* y, f64* x, f64 a, i64 n)"),
            "{s}"
        );
        assert!(s.contains("if ((tid < n)) {"), "{s}");
        assert!(s.contains("y[tid] = (y[tid] + (a * x[tid]));"), "{s}");
    }

    #[test]
    fn renders_analysis_annotations() {
        let def = axpy();
        let defs = vec![def];
        let an = analysis::analyze(&defs);
        let s = pretty_analyzed(&defs[0], KernelId(0), &an);
        assert!(s.contains("/* read-write, tid-bounded */ f64* y"), "{s}");
        assert!(s.contains("/* read, tid-bounded */ f64* x"), "{s}");
    }

    #[test]
    fn renders_loops_calls_and_unops() {
        let mut cb = KernelBuilder::new("leaf");
        let p = cb.ptr_param("p", ScalarTy::F64);
        cb.store(p, tid(), cf(0.0));
        let leaf = cb.finish();

        let mut b = KernelBuilder::new("outer");
        let q = b.ptr_param("q", ScalarTy::F64);
        let n = b.scalar_param("n", ScalarTy::I64);
        let acc = b.let_(cf(0.0));
        b.for_(ci(0), n.get(), |b, i| {
            b.set(acc, acc.get() + load(q, i.get()).abs().sqrt());
        });
        b.store(q, ci(0), acc.get().max(cf(1.0)));
        b.call(KernelId(0), [Arg::from(q)]);
        let outer = b.finish();
        let _ = leaf;

        let s = pretty(&outer);
        assert!(s.contains("for (long t1 = 0; t1 < n; t1++) {"), "{s}");
        assert!(s.contains("sqrt(abs(q[t1]))"), "{s}");
        assert!(s.contains("q[0] = max(t0, 1.0);"), "{s}");
        assert!(s.contains("kernel#0(q);"), "{s}");
    }

    #[test]
    fn renders_if_else_and_casts() {
        let mut b = KernelBuilder::new("k");
        let p = b.ptr_param("p", ScalarTy::I64);
        b.if_else(
            tid().rem(ci(2)).eq_(ci(0)),
            |b| b.store(p, tid(), tid().to_f().to_i()),
            |b| b.store(p, tid(), -ci(1)),
        );
        let s = pretty(&b.finish());
        assert!(s.contains("} else {"), "{s}");
        assert!(s.contains("(long)((double)(tid))"), "{s}");
        assert!(s.contains("(-1)"), "{s}");
    }
}
