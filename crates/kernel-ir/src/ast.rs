//! IR types: kernels, parameters, statements, expressions — plus validation.
//!
//! The IR is deliberately small but keeps the features that make the
//! paper's analysis non-trivial: typed pointer parameters, loads/stores
//! through them, control flow, per-thread loops, and **nested kernel calls
//! that forward pointer parameters** (Fig. 8's aliasing case).

use std::fmt;

/// Identifier of a kernel within a [`crate::KernelRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KernelId(pub u32);

/// Scalar element types supported by the IR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarTy {
    /// 64-bit float.
    F64,
    /// 64-bit integer (also used for booleans: 0 / 1).
    I64,
    /// 32-bit float.
    F32,
    /// 32-bit integer.
    I32,
}

impl ScalarTy {
    /// Size of one element in bytes.
    pub fn size(self) -> u64 {
        match self {
            ScalarTy::F64 | ScalarTy::I64 => 8,
            ScalarTy::F32 | ScalarTy::I32 => 4,
        }
    }

    /// True for the floating-point types.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F64 | ScalarTy::F32)
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarTy::F64 => "f64",
            ScalarTy::I64 => "i64",
            ScalarTy::F32 => "f32",
            ScalarTy::I32 => "i32",
        };
        f.write_str(s)
    }
}

/// Kernel parameter type: a scalar by value, or a pointer to device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamTy {
    /// Scalar passed by value.
    Scalar(ScalarTy),
    /// Pointer to an array of elements.
    Ptr(ScalarTy),
}

impl ParamTy {
    /// True for pointer parameters.
    pub fn is_ptr(self) -> bool {
        matches!(self, ParamTy::Ptr(_))
    }

    /// Element type (for both scalars and pointers).
    pub fn scalar(self) -> ScalarTy {
        match self {
            ParamTy::Scalar(t) | ParamTy::Ptr(t) => t,
        }
    }
}

/// A named kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDecl {
    /// Parameter name (diagnostics only).
    pub name: String,
    /// Parameter type.
    pub ty: ParamTy,
}

/// Binary operators. Comparisons and logic produce `i64` 0/1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float division or truncating integer division).
    Div,
    /// Remainder (integers only).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and (integers; nonzero = true).
    And,
    /// Logical or.
    Or,
}

impl BinOp {
    /// True if the operator is a comparison (result is `i64` 0/1).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Numeric negation.
    Neg,
    /// Logical not (integers; nonzero = true).
    Not,
    /// Square root (floats).
    Sqrt,
    /// Absolute value.
    Abs,
    /// Convert integer to float.
    IntToFloat,
    /// Convert float to integer (truncating).
    FloatToInt,
}

/// Expressions. All expressions are per-thread pure except [`Expr::Load`].
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating constant.
    ConstF(f64),
    /// Integer constant.
    ConstI(i64),
    /// Flat thread index (`threadIdx.x + blockIdx.x * blockDim.x`), `i64`.
    Tid,
    /// Total number of launched threads, `i64`.
    GridSize,
    /// Value of a scalar parameter.
    Param(usize),
    /// Value of a local variable.
    Local(usize),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Load element `idx` through pointer parameter `ptr`.
    Load {
        /// Index of the pointer parameter.
        ptr: usize,
        /// Element index expression (must be integer-typed).
        idx: Box<Expr>,
    },
}

/// Argument in a nested kernel call.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// Forward one of the caller's pointer parameters.
    Ptr(usize),
    /// Pass a scalar value.
    Scalar(Expr),
}

/// Statements executed per thread.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Assign a local variable.
    Let(usize, Expr),
    /// Store `val` at element `idx` through pointer parameter `ptr`.
    Store {
        /// Index of the pointer parameter.
        ptr: usize,
        /// Element index expression.
        idx: Expr,
        /// Value expression.
        val: Expr,
    },
    /// Conditional.
    If {
        /// Condition (integer; nonzero = true).
        cond: Expr,
        /// Then branch.
        then_: Vec<Stmt>,
        /// Else branch.
        else_: Vec<Stmt>,
    },
    /// Sequential per-thread loop: `for local in start..end`.
    For {
        /// Local holding the induction variable.
        local: usize,
        /// Inclusive start (integer).
        start: Expr,
        /// Exclusive end (integer).
        end: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Nested (device) kernel call, executed by the same thread.
    Call {
        /// The callee.
        callee: KernelId,
        /// Arguments: forwarded pointers or scalar expressions.
        args: Vec<CallArg>,
    },
}

/// A kernel definition: the unit the "compiler pass" analyzes.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDef {
    /// Kernel name (unique within a registry).
    pub name: String,
    /// Parameters.
    pub params: Vec<ParamDecl>,
    /// Number of local variables used by the body.
    pub num_locals: usize,
    /// Statements executed for each thread.
    pub body: Vec<Stmt>,
}

/// Structural validation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// Reference to a parameter index that does not exist.
    BadParamIndex {
        /// Kernel name.
        kernel: String,
        /// Offending index.
        index: usize,
    },
    /// `Expr::Param` used on a pointer parameter (pointers are only usable
    /// in `Load`/`Store`/`CallArg::Ptr`).
    PointerUsedAsScalar {
        /// Kernel name.
        kernel: String,
        /// Offending index.
        index: usize,
    },
    /// `Load`/`Store` through a non-pointer parameter.
    ScalarUsedAsPointer {
        /// Kernel name.
        kernel: String,
        /// Offending index.
        index: usize,
    },
    /// Local index out of range.
    BadLocalIndex {
        /// Kernel name.
        kernel: String,
        /// Offending index.
        index: usize,
    },
    /// Nested call references an unknown kernel id.
    UnknownCallee {
        /// Kernel name.
        kernel: String,
        /// Offending callee.
        callee: KernelId,
    },
    /// Nested call has the wrong number of arguments.
    CallArity {
        /// Kernel name.
        kernel: String,
        /// Callee name.
        callee: String,
        /// Expected arity.
        expected: usize,
        /// Provided arity.
        got: usize,
    },
    /// Nested call passes a scalar where the callee expects a pointer, or
    /// vice versa.
    CallArgKind {
        /// Kernel name.
        kernel: String,
        /// Callee name.
        callee: String,
        /// Argument position.
        position: usize,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadParamIndex { kernel, index } => {
                write!(f, "{kernel}: parameter index {index} out of range")
            }
            ValidationError::PointerUsedAsScalar { kernel, index } => {
                write!(
                    f,
                    "{kernel}: pointer parameter {index} used as a scalar value"
                )
            }
            ValidationError::ScalarUsedAsPointer { kernel, index } => {
                write!(f, "{kernel}: scalar parameter {index} used as a pointer")
            }
            ValidationError::BadLocalIndex { kernel, index } => {
                write!(f, "{kernel}: local index {index} out of range")
            }
            ValidationError::UnknownCallee { kernel, callee } => {
                write!(f, "{kernel}: call to unknown kernel {callee:?}")
            }
            ValidationError::CallArity {
                kernel,
                callee,
                expected,
                got,
            } => {
                write!(
                    f,
                    "{kernel}: call to {callee} expects {expected} args, got {got}"
                )
            }
            ValidationError::CallArgKind {
                kernel,
                callee,
                position,
            } => {
                write!(
                    f,
                    "{kernel}: call to {callee}: argument {position} kind mismatch"
                )
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Lookup interface for validation of nested calls.
pub(crate) trait KernelLookup {
    fn lookup(&self, id: KernelId) -> Option<&KernelDef>;
}

impl KernelDef {
    /// Validate all structural invariants against already-registered
    /// kernels (callees must be registered before callers, except
    /// self-recursion which is permitted).
    pub(crate) fn validate(
        &self,
        lookup: &dyn KernelLookup,
        self_id: KernelId,
    ) -> Result<(), ValidationError> {
        self.validate_stmts(&self.body, lookup, self_id)
    }

    fn validate_stmts(
        &self,
        stmts: &[Stmt],
        lookup: &dyn KernelLookup,
        self_id: KernelId,
    ) -> Result<(), ValidationError> {
        for s in stmts {
            match s {
                Stmt::Let(local, e) => {
                    self.check_local(*local)?;
                    self.validate_expr(e)?;
                }
                Stmt::Store { ptr, idx, val } => {
                    self.check_ptr_param(*ptr)?;
                    self.validate_expr(idx)?;
                    self.validate_expr(val)?;
                }
                Stmt::If { cond, then_, else_ } => {
                    self.validate_expr(cond)?;
                    self.validate_stmts(then_, lookup, self_id)?;
                    self.validate_stmts(else_, lookup, self_id)?;
                }
                Stmt::For {
                    local,
                    start,
                    end,
                    body,
                } => {
                    self.check_local(*local)?;
                    self.validate_expr(start)?;
                    self.validate_expr(end)?;
                    self.validate_stmts(body, lookup, self_id)?;
                }
                Stmt::Call { callee, args } => {
                    let callee_def = if *callee == self_id {
                        self
                    } else {
                        lookup
                            .lookup(*callee)
                            .ok_or(ValidationError::UnknownCallee {
                                kernel: self.name.clone(),
                                callee: *callee,
                            })?
                    };
                    if callee_def.params.len() != args.len() {
                        return Err(ValidationError::CallArity {
                            kernel: self.name.clone(),
                            callee: callee_def.name.clone(),
                            expected: callee_def.params.len(),
                            got: args.len(),
                        });
                    }
                    for (i, (arg, p)) in args.iter().zip(&callee_def.params).enumerate() {
                        match (arg, p.ty.is_ptr()) {
                            (CallArg::Ptr(idx), true) => self.check_ptr_param(*idx)?,
                            (CallArg::Scalar(e), false) => self.validate_expr(e)?,
                            _ => {
                                return Err(ValidationError::CallArgKind {
                                    kernel: self.name.clone(),
                                    callee: callee_def.name.clone(),
                                    position: i,
                                })
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn validate_expr(&self, e: &Expr) -> Result<(), ValidationError> {
        match e {
            Expr::ConstF(_) | Expr::ConstI(_) | Expr::Tid | Expr::GridSize => Ok(()),
            Expr::Param(i) => {
                let p = self.params.get(*i).ok_or(ValidationError::BadParamIndex {
                    kernel: self.name.clone(),
                    index: *i,
                })?;
                if p.ty.is_ptr() {
                    Err(ValidationError::PointerUsedAsScalar {
                        kernel: self.name.clone(),
                        index: *i,
                    })
                } else {
                    Ok(())
                }
            }
            Expr::Local(i) => self.check_local(*i),
            Expr::Bin(_, a, b) => {
                self.validate_expr(a)?;
                self.validate_expr(b)
            }
            Expr::Un(_, a) => self.validate_expr(a),
            Expr::Load { ptr, idx } => {
                self.check_ptr_param(*ptr)?;
                self.validate_expr(idx)
            }
        }
    }

    fn check_local(&self, i: usize) -> Result<(), ValidationError> {
        if i < self.num_locals {
            Ok(())
        } else {
            Err(ValidationError::BadLocalIndex {
                kernel: self.name.clone(),
                index: i,
            })
        }
    }

    fn check_ptr_param(&self, i: usize) -> Result<(), ValidationError> {
        let p = self.params.get(i).ok_or(ValidationError::BadParamIndex {
            kernel: self.name.clone(),
            index: i,
        })?;
        if p.ty.is_ptr() {
            Ok(())
        } else {
            Err(ValidationError::ScalarUsedAsPointer {
                kernel: self.name.clone(),
                index: i,
            })
        }
    }

    /// Indices of the pointer parameters.
    pub fn ptr_params(&self) -> impl Iterator<Item = usize> + '_ {
        self.params
            .iter()
            .enumerate()
            .filter(|(_, p)| p.ty.is_ptr())
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoKernels;
    impl KernelLookup for NoKernels {
        fn lookup(&self, _: KernelId) -> Option<&KernelDef> {
            None
        }
    }

    fn simple_def() -> KernelDef {
        // kernel set(out: *f64, v: f64) { out[tid] = v }
        KernelDef {
            name: "set".into(),
            params: vec![
                ParamDecl {
                    name: "out".into(),
                    ty: ParamTy::Ptr(ScalarTy::F64),
                },
                ParamDecl {
                    name: "v".into(),
                    ty: ParamTy::Scalar(ScalarTy::F64),
                },
            ],
            num_locals: 0,
            body: vec![Stmt::Store {
                ptr: 0,
                idx: Expr::Tid,
                val: Expr::Param(1),
            }],
        }
    }

    #[test]
    fn valid_kernel_passes() {
        assert!(simple_def().validate(&NoKernels, KernelId(0)).is_ok());
    }

    #[test]
    fn pointer_as_scalar_rejected() {
        let mut d = simple_def();
        d.body = vec![Stmt::Store {
            ptr: 0,
            idx: Expr::Tid,
            val: Expr::Param(0),
        }];
        assert!(matches!(
            d.validate(&NoKernels, KernelId(0)),
            Err(ValidationError::PointerUsedAsScalar { index: 0, .. })
        ));
    }

    #[test]
    fn scalar_as_pointer_rejected() {
        let mut d = simple_def();
        d.body = vec![Stmt::Store {
            ptr: 1,
            idx: Expr::Tid,
            val: Expr::ConstF(0.0),
        }];
        assert!(matches!(
            d.validate(&NoKernels, KernelId(0)),
            Err(ValidationError::ScalarUsedAsPointer { index: 1, .. })
        ));
    }

    #[test]
    fn bad_param_index_rejected() {
        let mut d = simple_def();
        d.body = vec![Stmt::Let(0, Expr::Param(7))];
        d.num_locals = 1;
        assert!(matches!(
            d.validate(&NoKernels, KernelId(0)),
            Err(ValidationError::BadParamIndex { index: 7, .. })
        ));
    }

    #[test]
    fn bad_local_rejected() {
        let mut d = simple_def();
        d.body = vec![Stmt::Let(3, Expr::ConstI(0))];
        assert!(matches!(
            d.validate(&NoKernels, KernelId(0)),
            Err(ValidationError::BadLocalIndex { index: 3, .. })
        ));
    }

    #[test]
    fn unknown_callee_rejected() {
        let mut d = simple_def();
        d.body = vec![Stmt::Call {
            callee: KernelId(42),
            args: vec![],
        }];
        assert!(matches!(
            d.validate(&NoKernels, KernelId(0)),
            Err(ValidationError::UnknownCallee { .. })
        ));
    }

    #[test]
    fn call_arity_and_kind_checked() {
        struct One(KernelDef);
        impl KernelLookup for One {
            fn lookup(&self, id: KernelId) -> Option<&KernelDef> {
                (id == KernelId(0)).then_some(&self.0)
            }
        }
        let lookup = One(simple_def());
        let caller = KernelDef {
            name: "caller".into(),
            params: vec![ParamDecl {
                name: "p".into(),
                ty: ParamTy::Ptr(ScalarTy::F64),
            }],
            num_locals: 0,
            body: vec![Stmt::Call {
                callee: KernelId(0),
                args: vec![CallArg::Ptr(0)],
            }],
        };
        assert!(matches!(
            caller.validate(&lookup, KernelId(1)),
            Err(ValidationError::CallArity {
                expected: 2,
                got: 1,
                ..
            })
        ));
        let caller2 = KernelDef {
            body: vec![Stmt::Call {
                callee: KernelId(0),
                args: vec![
                    CallArg::Scalar(Expr::ConstF(0.0)),
                    CallArg::Scalar(Expr::ConstF(0.0)),
                ],
            }],
            ..caller
        };
        assert!(matches!(
            caller2.validate(&lookup, KernelId(1)),
            Err(ValidationError::CallArgKind { position: 0, .. })
        ));
    }

    #[test]
    fn ptr_params_iterator() {
        let d = simple_def();
        assert_eq!(d.ptr_params().collect::<Vec<_>>(), vec![0]);
    }

    #[test]
    fn scalar_ty_metadata() {
        assert_eq!(ScalarTy::F64.size(), 8);
        assert_eq!(ScalarTy::I32.size(), 4);
        assert!(ScalarTy::F32.is_float());
        assert!(!ScalarTy::I64.is_float());
        assert_eq!(ScalarTy::F64.to_string(), "f64");
    }
}
