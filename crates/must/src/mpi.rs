//! The checked MPI API: MUST's interception layer.
//!
//! Wraps [`mpi_sim::Comm`]; every call runs the MUST callback (TSan
//! annotations + TypeART datatype checks) and forwards to the simulator.

use crate::checks::{check_buffer, MustReport};
use cusan::keys::request_key;
use cusan::{CusanEvent, ToolCtx};
use mpi_sim::{Comm, MpiDatatype, MpiError, ReduceOp, Request, Status, PROC_NULL, PROC_NULL_SRC};
use sim_mem::Ptr;
use std::cell::RefCell;
use std::rc::Rc;
use tsan_rt::{FiberId, SyncKey};

/// A request returned by the checked non-blocking calls, carrying the
/// TSan fiber that models the operation's concurrent region (Fig. 1).
#[derive(Debug)]
pub struct MustRequest {
    inner: Request,
    fiber: Option<FiberId>,
    key: Option<SyncKey>,
    serial: Option<u64>,
}

impl MustRequest {
    /// The simulator request.
    pub fn inner(&self) -> &Request {
        &self.inner
    }
}

/// The MUST-checked MPI interface for one rank.
pub struct CheckedMpi {
    comm: Comm,
    tools: Rc<ToolCtx>,
    reports: RefCell<Vec<MustReport>>,
}

impl CheckedMpi {
    /// Wrap a communicator with the rank's tool context.
    pub fn new(comm: Comm, tools: Rc<ToolCtx>) -> Self {
        CheckedMpi {
            comm,
            tools,
            reports: RefCell::new(Vec::new()),
        }
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// Datatype-check findings collected so far.
    pub fn must_reports(&self) -> Vec<MustReport> {
        self.reports.borrow().clone()
    }

    fn enabled(&self) -> bool {
        self.tools.config.must
    }

    /// Fault-injection gate, checked first in every fallible call — before
    /// PROC_NULL short-circuits and before any annotation, so every rank
    /// of a call-symmetric app advances its site counter identically and a
    /// faulted call leaves no happens-before state behind.
    ///
    /// Polling calls (`test`, `waitany`) are deliberately *not* gated:
    /// their invocation count depends on completion timing, which would
    /// make the site counter — and thus the whole fault schedule —
    /// nondeterministic.
    fn fault(&self, call: &'static str) -> Result<(), MpiError> {
        if self.tools.should_fault(call) {
            Err(MpiError::FaultInjected { call })
        } else {
            Ok(())
        }
    }

    fn run_checks(&self, call: &str, buf: Ptr, count: u64, dtype: MpiDatatype) {
        // The datatype analysis needs TypeART's allocation data; it is
        // active only when both layers run (the MUST & CuSan stack).
        if self.enabled() && self.tools.config.typeart {
            let mut ta = self.tools.typeart.borrow_mut();
            check_buffer(
                &mut ta,
                call,
                buf,
                count,
                dtype,
                &mut self.reports.borrow_mut(),
            );
        }
    }

    fn annotate_host(&self, buf: Ptr, bytes: u64, write: bool, label: &str) {
        if self.enabled() {
            let ctx = self.tools.intern_label(label);
            self.tools.emit(if write {
                CusanEvent::WriteRange {
                    addr: buf.addr(),
                    len: bytes,
                    ctx,
                }
            } else {
                CusanEvent::ReadRange {
                    addr: buf.addr(),
                    len: bytes,
                    ctx,
                }
            });
        }
    }

    /// MUST callback for a non-blocking operation: fiber + annotation +
    /// happens-before arc (Fig. 1, paper §II-B b).
    fn begin_nonblocking(
        &self,
        buf: Ptr,
        bytes: u64,
        write: bool,
        what: &str,
    ) -> (Option<FiberId>, Option<SyncKey>, Option<u64>) {
        if !self.enabled() {
            return (None, None, None);
        }
        let serial = self.tools.next_request_serial();
        let key = request_key(serial);
        self.tools.emit(CusanEvent::RequestBegin { serial });
        let fiber = self
            .tools
            .emit_fiber_create(&format!("mpi req#{serial} ({what})"));
        let ctx = self.tools.intern_label(&format!(
            "{what} buffer [{}]",
            if write { "write" } else { "read" }
        ));
        // Plain (non-synchronizing) switch: the request region runs
        // concurrently with the host until the completing wait.
        self.tools
            .emit(CusanEvent::FiberSwitch { fiber, sync: false });
        self.tools.emit(if write {
            CusanEvent::WriteRange {
                addr: buf.addr(),
                len: bytes,
                ctx,
            }
        } else {
            CusanEvent::ReadRange {
                addr: buf.addr(),
                len: bytes,
                ctx,
            }
        });
        self.tools.emit(CusanEvent::HappensBefore { key });
        self.tools.emit(CusanEvent::FiberSwitch {
            fiber: FiberId::HOST,
            sync: false,
        });
        (Some(fiber), Some(key), Some(serial))
    }

    /// MUST callback for request completion: terminate the arc on the host
    /// fiber, retire the request fiber.
    fn complete_nonblocking(&self, req: &mut MustRequest) {
        if let (Some(fiber), Some(key)) = (req.fiber.take(), req.key.take()) {
            self.tools.emit(CusanEvent::HappensAfter { key });
            self.tools.emit(CusanEvent::FiberDestroy { fiber });
            if let Some(serial) = req.serial.take() {
                self.tools.emit(CusanEvent::RequestComplete { serial });
            }
        }
    }

    // ---- point-to-point ------------------------------------------------------

    /// `MPI_Send`: blocking, buffer read annotated on the host fiber.
    pub fn send(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        dest: i64,
        tag: i32,
    ) -> Result<Status, MpiError> {
        self.fault("MPI_Send")?;
        if dest != PROC_NULL {
            self.run_checks("MPI_Send", buf, count, dtype);
            self.annotate_host(buf, count * dtype.size(), false, "MPI_Send buffer [read]");
        }
        self.comm.send(buf, count, dtype, dest, tag)
    }

    /// `MPI_Recv`: blocking, buffer write annotated on the host fiber.
    pub fn recv(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        src: i32,
        tag: i32,
    ) -> Result<Status, MpiError> {
        self.fault("MPI_Recv")?;
        if src != PROC_NULL_SRC {
            self.run_checks("MPI_Recv", buf, count, dtype);
            self.annotate_host(buf, count * dtype.size(), true, "MPI_Recv buffer [write]");
        }
        self.comm.recv(buf, count, dtype, src, tag)
    }

    /// `MPI_Isend`: models the concurrent region with an MPI fiber.
    pub fn isend(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        dest: i64,
        tag: i32,
    ) -> Result<MustRequest, MpiError> {
        self.fault("MPI_Isend")?;
        if dest == PROC_NULL {
            let inner = self.comm.isend(buf, count, dtype, dest, tag)?;
            return Ok(MustRequest {
                inner,
                fiber: None,
                key: None,
                serial: None,
            });
        }
        self.run_checks("MPI_Isend", buf, count, dtype);
        let (fiber, key, serial) =
            self.begin_nonblocking(buf, count * dtype.size(), false, "MPI_Isend");
        let inner = self.comm.isend(buf, count, dtype, dest, tag)?;
        Ok(MustRequest {
            inner,
            fiber,
            key,
            serial,
        })
    }

    /// `MPI_Irecv`: models the concurrent region with an MPI fiber.
    pub fn irecv(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        src: i32,
        tag: i32,
    ) -> Result<MustRequest, MpiError> {
        self.fault("MPI_Irecv")?;
        if src == PROC_NULL_SRC {
            let inner = self.comm.irecv(buf, count, dtype, src, tag)?;
            return Ok(MustRequest {
                inner,
                fiber: None,
                key: None,
                serial: None,
            });
        }
        self.run_checks("MPI_Irecv", buf, count, dtype);
        let (fiber, key, serial) =
            self.begin_nonblocking(buf, count * dtype.size(), true, "MPI_Irecv");
        let inner = self.comm.irecv(buf, count, dtype, src, tag)?;
        Ok(MustRequest {
            inner,
            fiber,
            key,
            serial,
        })
    }

    /// `MPI_Wait`: completion terminates the request's concurrent region.
    pub fn wait(&self, req: &mut MustRequest) -> Result<Status, MpiError> {
        self.fault("MPI_Wait")?;
        let st = self.comm.wait(&mut req.inner)?;
        self.complete_nonblocking(req);
        Ok(st)
    }

    /// `MPI_Waitall`.
    pub fn waitall(&self, reqs: &mut [MustRequest]) -> Result<Vec<Status>, MpiError> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    /// `MPI_Waitany`: completion of the winning request terminates its
    /// concurrent region; the others stay open.
    #[allow(clippy::needless_range_loop)] // the winning index is the result
    pub fn waitany(&self, reqs: &mut [MustRequest]) -> Result<(usize, Status), MpiError> {
        if reqs.iter().all(|r| r.inner.is_completed()) {
            return Err(MpiError::BadRequest);
        }
        loop {
            for i in 0..reqs.len() {
                if reqs[i].inner.is_completed() {
                    continue;
                }
                if let Some(st) = self.test(&mut reqs[i])? {
                    return Ok((i, st));
                }
            }
            std::thread::yield_now();
        }
    }

    /// `MPI_Test`: a successful test is a completion.
    pub fn test(&self, req: &mut MustRequest) -> Result<Option<Status>, MpiError> {
        match self.comm.test(&mut req.inner)? {
            Some(st) => {
                self.complete_nonblocking(req);
                Ok(Some(st))
            }
            None => Ok(None),
        }
    }

    /// `MPI_Sendrecv`: both buffers annotated on the host fiber.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        send_buf: Ptr,
        send_count: u64,
        dest: i64,
        send_tag: i32,
        recv_buf: Ptr,
        recv_count: u64,
        src: i32,
        recv_tag: i32,
        dtype: MpiDatatype,
    ) -> Result<Status, MpiError> {
        self.fault("MPI_Sendrecv")?;
        if dest != PROC_NULL {
            self.run_checks("MPI_Sendrecv (send)", send_buf, send_count, dtype);
            self.annotate_host(
                send_buf,
                send_count * dtype.size(),
                false,
                "MPI_Sendrecv send buffer [read]",
            );
        }
        if src != PROC_NULL_SRC {
            self.run_checks("MPI_Sendrecv (recv)", recv_buf, recv_count, dtype);
            self.annotate_host(
                recv_buf,
                recv_count * dtype.size(),
                true,
                "MPI_Sendrecv recv buffer [write]",
            );
        }
        self.comm.sendrecv(
            send_buf, send_count, dest, send_tag, recv_buf, recv_count, src, recv_tag, dtype,
        )
    }

    // ---- collectives ------------------------------------------------------------

    /// `MPI_Barrier`.
    pub fn barrier(&self) -> Result<(), MpiError> {
        self.fault("MPI_Barrier")?;
        self.comm.barrier()
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Allreduce")?;
        self.run_checks("MPI_Allreduce (send)", send_buf, count, dtype);
        self.run_checks("MPI_Allreduce (recv)", recv_buf, count, dtype);
        self.annotate_host(
            send_buf,
            count * dtype.size(),
            false,
            "MPI_Allreduce send buffer [read]",
        );
        self.annotate_host(
            recv_buf,
            count * dtype.size(),
            true,
            "MPI_Allreduce recv buffer [write]",
        );
        self.comm.allreduce(send_buf, recv_buf, count, dtype, op)
    }

    /// `MPI_Reduce`.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
        root: usize,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Reduce")?;
        self.run_checks("MPI_Reduce (send)", send_buf, count, dtype);
        self.annotate_host(
            send_buf,
            count * dtype.size(),
            false,
            "MPI_Reduce send buffer [read]",
        );
        if self.rank() == root {
            self.run_checks("MPI_Reduce (recv)", recv_buf, count, dtype);
            self.annotate_host(
                recv_buf,
                count * dtype.size(),
                true,
                "MPI_Reduce recv buffer [write]",
            );
        }
        self.comm.reduce(send_buf, recv_buf, count, dtype, op, root)
    }

    /// `MPI_Gather`.
    pub fn gather(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Gather")?;
        self.run_checks("MPI_Gather (send)", send_buf, count, dtype);
        self.annotate_host(
            send_buf,
            count * dtype.size(),
            false,
            "MPI_Gather send buffer [read]",
        );
        if self.rank() == root {
            self.run_checks(
                "MPI_Gather (recv)",
                recv_buf,
                count * self.size() as u64,
                dtype,
            );
            self.annotate_host(
                recv_buf,
                count * self.size() as u64 * dtype.size(),
                true,
                "MPI_Gather recv buffer [write]",
            );
        }
        self.comm.gather(send_buf, recv_buf, count, dtype, root)
    }

    /// `MPI_Allgather`.
    pub fn allgather(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Allgather")?;
        self.run_checks("MPI_Allgather (send)", send_buf, count, dtype);
        self.run_checks(
            "MPI_Allgather (recv)",
            recv_buf,
            count * self.size() as u64,
            dtype,
        );
        self.annotate_host(
            send_buf,
            count * dtype.size(),
            false,
            "MPI_Allgather send buffer [read]",
        );
        self.annotate_host(
            recv_buf,
            count * self.size() as u64 * dtype.size(),
            true,
            "MPI_Allgather recv buffer [write]",
        );
        self.comm.allgather(send_buf, recv_buf, count, dtype)
    }

    /// `MPI_Scatter`.
    pub fn scatter(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Scatter")?;
        if self.rank() == root {
            self.run_checks(
                "MPI_Scatter (send)",
                send_buf,
                count * self.size() as u64,
                dtype,
            );
            self.annotate_host(
                send_buf,
                count * self.size() as u64 * dtype.size(),
                false,
                "MPI_Scatter send buffer [read]",
            );
        }
        self.run_checks("MPI_Scatter (recv)", recv_buf, count, dtype);
        self.annotate_host(
            recv_buf,
            count * dtype.size(),
            true,
            "MPI_Scatter recv buffer [write]",
        );
        self.comm.scatter(send_buf, recv_buf, count, dtype, root)
    }

    /// `MPI_Bcast`.
    pub fn bcast(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.fault("MPI_Bcast")?;
        self.run_checks("MPI_Bcast", buf, count, dtype);
        let write = self.rank() != root;
        self.annotate_host(
            buf,
            count * dtype.size(),
            write,
            if write {
                "MPI_Bcast buffer [write]"
            } else {
                "MPI_Bcast buffer [read]"
            },
        );
        self.comm.bcast(buf, count, dtype, root)
    }
}
