//! Human-readable run reports — the analogue of MUST's output report.
//!
//! Renders a [`WorldOutcome`] into the text form the demos and the
//! testsuite runner print: verdict, per-rank race reports, MUST datatype
//! findings, and the Table-I counter block.

use crate::harness::WorldOutcome;
use std::fmt::Write as _;

/// Render the full report for a finished run.
pub fn render_text<T>(outcome: &WorldOutcome<T>) -> String {
    let mut out = String::new();
    let races = outcome.total_races();
    let must = outcome.all_must_reports();
    if races == 0 && must.is_empty() {
        let _ = writeln!(out, "MUST & CuSan: no correctness issues detected");
    } else {
        let _ = writeln!(
            out,
            "MUST & CuSan: {races} data race(s), {} datatype finding(s)",
            must.len()
        );
    }
    for (rank, race) in outcome.all_races() {
        let _ = writeln!(out, "\n[rank {rank}] {race}");
    }
    for (rank, m) in &must {
        let _ = writeln!(out, "\n[rank {rank}] MUST: {m}");
    }
    out
}

/// Render the Table-I counter block for one rank.
pub fn render_counters<T>(outcome: &WorldOutcome<T>, rank: usize) -> String {
    let r = &outcome.ranks[rank];
    let mut out = String::new();
    let rows: [(&str, String); 12] = [
        ("CUDA  Stream", r.cuda.streams.to_string()),
        ("CUDA  Memset", r.cuda.memset_calls.to_string()),
        ("CUDA  Memcpy", r.cuda.memcpy_calls.to_string()),
        ("CUDA  Synchronization calls", r.cuda.sync_calls.to_string()),
        ("CUDA  Kernel calls", r.cuda.kernel_calls.to_string()),
        ("TSan  Switch To Fiber", r.tsan.fiber_switches.to_string()),
        (
            "TSan  AnnotateHappensBefore",
            r.tsan.happens_before.to_string(),
        ),
        (
            "TSan  AnnotateHappensAfter",
            r.tsan.happens_after.to_string(),
        ),
        (
            "TSan  Memory Read Range",
            r.tsan.read_range_calls.to_string(),
        ),
        (
            "TSan  Memory Write Range",
            r.tsan.write_range_calls.to_string(),
        ),
        (
            "TSan  Memory Read Size [avg KB]",
            format!("{:.2}", r.tsan.avg_read_kb()),
        ),
        (
            "TSan  Memory Write Size [avg KB]",
            format!("{:.2}", r.tsan.avg_write_kb()),
        ),
    ];
    for (label, value) in rows {
        let _ = writeln!(out, "{label:<34} {value:>14}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run_checked_world;
    use cusan::Flavor;
    use cusan_apps_free::*;

    // Minimal in-crate kernel setup (must-rt cannot depend on cusan-apps).
    mod cusan_apps_free {
        use kernel_ir::ast::ScalarTy;
        use kernel_ir::builder::*;
        use kernel_ir::{KernelId, KernelRegistry};
        use std::sync::Arc;

        pub fn fill_registry() -> (Arc<KernelRegistry>, KernelId) {
            let mut reg = KernelRegistry::new();
            let mut b = KernelBuilder::new("fill");
            let p = b.ptr_param("p", ScalarTy::F64);
            let v = b.scalar_param("v", ScalarTy::F64);
            b.store(p, tid(), v.get());
            let id = reg.register_ir(b.finish()).unwrap();
            (Arc::new(reg), id)
        }
    }

    #[test]
    fn clean_run_reports_no_issues() {
        let (reg, _) = fill_registry();
        let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
            let _ = ctx.cuda.malloc::<f64>(8).unwrap();
        });
        let text = render_text(&out);
        assert!(text.contains("no correctness issues"), "{text}");
    }

    #[test]
    fn racy_run_report_mentions_both_sides() {
        use cuda_sim::StreamId;
        use kernel_ir::{LaunchArg, LaunchGrid};
        let (reg, fill) = fill_registry();
        let out = run_checked_world(2, Flavor::MustCusan, reg, move |ctx| {
            let d = ctx.cuda.malloc::<f64>(64).unwrap();
            ctx.cuda
                .launch(
                    fill,
                    LaunchGrid::cover(64, 64),
                    StreamId::DEFAULT,
                    vec![LaunchArg::Ptr(d), LaunchArg::F64(1.0)],
                )
                .unwrap();
            // Unsynchronized host read.
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), d, 64, "host read")
                .unwrap();
        });
        let text = render_text(&out);
        assert!(text.contains("data race"), "{text}");
        assert!(text.contains("kernel fill"), "{text}");
        assert!(text.contains("host read"), "{text}");
    }

    #[test]
    fn counters_render_all_rows() {
        let (reg, _) = fill_registry();
        let out = run_checked_world(1, Flavor::MustCusan, reg, |ctx| {
            let d = ctx.cuda.malloc::<f64>(8).unwrap();
            ctx.cuda.memset(d, 0, 64).unwrap();
            ctx.cuda.device_synchronize().unwrap();
        });
        let text = render_counters(&out, 0);
        assert!(text.contains("CUDA  Memset"));
        assert!(text.contains("TSan  AnnotateHappensBefore"));
        assert_eq!(text.lines().count(), 12);
    }
}
