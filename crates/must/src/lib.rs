//! # must-rt — MPI correctness layer (MUST analogue)
//!
//! MUST (paper §II-B) intercepts MPI calls and exposes their memory-access
//! and synchronization semantics to ThreadSanitizer:
//!
//! * **Blocking calls** annotate the buffer access (send = read,
//!   recv = write) on the host fiber — sufficient because the access is
//!   ordered with the host's program order.
//! * **Non-blocking calls** (Fig. 1) create a dedicated TSan fiber per
//!   request, annotate the buffer access *on that fiber*, and start a
//!   happens-before arc keyed on the request. The completion call
//!   (`wait`/successful `test`) terminates the arc on the host fiber and
//!   destroys the request fiber. Any host/CUDA access to the buffer inside
//!   the concurrent region is a detectable race.
//! * **Datatype checks** (via TypeART, paper §II-C): the type layout of
//!   the buffer allocation must be compatible with the declared MPI
//!   datatype, and `count` must not overrun the allocation.
//!
//! The crate also provides the [`harness`]: per-rank composition of
//! [`cusan::ToolCtx`] + [`cusan::CusanCuda`] + [`CheckedMpi`] over a shared
//! world — the full "MUST & CuSan" stack of the paper, used by the
//! mini-apps, the testsuite, and every benchmark.

pub mod checks;
pub mod harness;
pub mod mpi;
pub mod report;

pub use checks::MustReport;
pub use harness::{
    run_checked_world, run_checked_world_scheduled, run_checked_world_scheduled_traced,
    run_checked_world_traced, RankCtx, RankOutcome, WorldOutcome,
};
pub use mpi::{CheckedMpi, MustRequest};
pub use report::{render_counters, render_text};
