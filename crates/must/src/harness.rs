//! Per-rank composition of the full tool stack and the checked world
//! runner.
//!
//! [`run_checked_world`] is the `mpirun` of `cusan-rs`: it creates the
//! shared UVA space, spawns one thread per rank, gives each rank its own
//! [`ToolCtx`] (one TSan instance per "process", as in the paper), a
//! CuSan-checked CUDA device, and a MUST-checked communicator, runs the
//! application closure, flushes the device, and collects per-rank
//! outcomes: race reports, MUST diagnostics, Table-I counters, and memory
//! accounting.

use crate::checks::MustReport;
use crate::mpi::CheckedMpi;
use cuda_sim::CudaCounters;
use cusan::{AsyncCheckStats, CusanCuda, CusanEvent, EventCounters, ToolConfig, ToolCtx};
use explore::{Decision, ScheduleController, SchedulePlan};
use kernel_ir::KernelRegistry;
use mpi_sim::run_world_with_schedule;
use sim_mem::{AddressSpace, DeviceId, SpaceStats};
use std::rc::Rc;
use std::sync::Arc;
use tsan_rt::{RaceReport, TsanStats};

/// Everything one rank's application code needs.
pub struct RankCtx {
    /// The shared tool context (config, detector, TypeART).
    pub tools: Rc<ToolCtx>,
    /// CuSan-checked CUDA API for this rank's device.
    pub cuda: CusanCuda,
    /// MUST-checked MPI communicator.
    pub mpi: CheckedMpi,
}

impl RankCtx {
    /// This rank.
    pub fn rank(&self) -> usize {
        self.mpi.rank()
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.mpi.size()
    }

    /// The shared address space.
    pub fn space(&self) -> Arc<AddressSpace> {
        Arc::clone(self.cuda.space())
    }
}

/// Per-rank result data collected after the application closure returned.
#[derive(Debug, Clone)]
pub struct RankOutcome {
    /// The rank.
    pub rank: usize,
    /// Retained race reports (deduplicated).
    pub races: Vec<RaceReport>,
    /// Total race count.
    pub race_count: u64,
    /// MUST datatype/extent findings.
    pub must_reports: Vec<MustReport>,
    /// Detector counters (Table I, TSan rows).
    pub tsan: TsanStats,
    /// Device-call counters (Table I, CUDA rows).
    pub cuda: CudaCounters,
    /// Event-pipeline counters (folded from the emitted event stream).
    pub events: EventCounters,
    /// Serialized event trace, when the run was recorded
    /// ([`run_checked_world_traced`]) — text or binary bytes per the
    /// run's `trace_format` (readers sniff).
    pub trace: Option<Vec<u8>>,
    /// Tool heap usage in bytes (Fig. 11 numerator contribution).
    pub tool_memory_bytes: u64,
    /// Non-fatal tool diagnostics (teardown flush failures, degraded
    /// tracking) — conditions the checker reports instead of panicking on.
    pub diagnostics: Vec<String>,
    /// Async-checker observability counters (`None` when checking ran
    /// inline). Timing-dependent — excluded from determinism comparisons.
    pub async_check: Option<AsyncCheckStats>,
}

/// Result of a checked world run.
#[derive(Debug)]
pub struct WorldOutcome<T> {
    /// Application results in rank order.
    pub results: Vec<T>,
    /// Per-rank tool outcomes in rank order.
    pub ranks: Vec<RankOutcome>,
    /// Address-space accounting at the end of the run (application
    /// memory; Fig. 11 denominator).
    pub space: SpaceStats,
}

impl<T> WorldOutcome<T> {
    /// Total races across all ranks.
    pub fn total_races(&self) -> u64 {
        self.ranks.iter().map(|r| r.race_count).sum()
    }

    /// True if any rank reported a race.
    pub fn has_races(&self) -> bool {
        self.total_races() > 0
    }

    /// All race reports, rank-tagged.
    pub fn all_races(&self) -> Vec<(usize, RaceReport)> {
        self.ranks
            .iter()
            .flat_map(|r| r.races.iter().map(move |race| (r.rank, race.clone())))
            .collect()
    }

    /// All MUST findings, rank-tagged.
    pub fn all_must_reports(&self) -> Vec<(usize, MustReport)> {
        self.ranks
            .iter()
            .flat_map(|r| r.must_reports.iter().map(move |m| (r.rank, m.clone())))
            .collect()
    }

    /// Total tool memory across ranks.
    pub fn total_tool_memory(&self) -> u64 {
        self.ranks.iter().map(|r| r.tool_memory_bytes).sum()
    }

    /// All tool diagnostics, rank-tagged.
    pub fn all_diagnostics(&self) -> Vec<(usize, String)> {
        self.ranks
            .iter()
            .flat_map(|r| r.diagnostics.iter().map(move |d| (r.rank, d.clone())))
            .collect()
    }
}

/// Run an `n`-rank CUDA-aware MPI application under the given tool
/// configuration. Each rank gets device `DeviceId(rank)` (one GPU per
/// process, as in the paper's setup).
pub fn run_checked_world<T: Send>(
    n: usize,
    config: impl Into<ToolConfig>,
    registry: Arc<KernelRegistry>,
    f: impl Fn(&mut RankCtx) -> T + Send + Sync,
) -> WorldOutcome<T> {
    run_world_impl(n, config.into(), registry, false, None, f)
}

/// Like [`run_checked_world`], but with a trace sink installed on every
/// rank: each [`RankOutcome::trace`] carries the rank's serialized event
/// stream, replayable offline with [`cusan::replay`].
pub fn run_checked_world_traced<T: Send>(
    n: usize,
    config: impl Into<ToolConfig>,
    registry: Arc<KernelRegistry>,
    f: impl Fn(&mut RankCtx) -> T + Send + Sync,
) -> WorldOutcome<T> {
    run_world_impl(n, config.into(), registry, true, None, f)
}

/// Like [`run_checked_world`], but with a [`SchedulePlan`] installed on
/// every commutable choice point of the simulators: wildcard-receive
/// matching and collective fold order (rank `r` consults plan lane `r`,
/// collectives the world-global lane `n`) and full-device stream drains.
/// The plan must have `n + 1` lanes ([`SchedulePlan::defaults`] /
/// [`SchedulePlan::with_choices`] with `n + 1` vectors). Every decision
/// the plan actually made is emitted as a [`CusanEvent::ScheduleChoice`]
/// marker at the end of the rank's stream (rank 0 also carries the
/// collective lane), so a recorded trace is schedule-complete.
pub fn run_checked_world_scheduled<T: Send>(
    n: usize,
    config: impl Into<ToolConfig>,
    registry: Arc<KernelRegistry>,
    plan: Arc<SchedulePlan>,
    f: impl Fn(&mut RankCtx) -> T + Send + Sync,
) -> WorldOutcome<T> {
    run_world_impl(n, config.into(), registry, false, Some(plan), f)
}

/// [`run_checked_world_scheduled`] with a trace sink installed on every
/// rank (the scheduled twin of [`run_checked_world_traced`]).
pub fn run_checked_world_scheduled_traced<T: Send>(
    n: usize,
    config: impl Into<ToolConfig>,
    registry: Arc<KernelRegistry>,
    plan: Arc<SchedulePlan>,
    f: impl Fn(&mut RankCtx) -> T + Send + Sync,
) -> WorldOutcome<T> {
    run_world_impl(n, config.into(), registry, true, Some(plan), f)
}

/// Emit the plan's consulted decisions on `lane` as trace markers.
fn emit_schedule_choices(tools: &ToolCtx, decisions: &[Decision]) {
    for d in decisions {
        let kind = tools.intern_label(d.kind.label());
        tools.emit(CusanEvent::ScheduleChoice {
            kind,
            arity: u64::from(d.arity),
            chosen: u64::from(d.chosen),
        });
    }
}

fn run_world_impl<T: Send>(
    n: usize,
    config: ToolConfig,
    registry: Arc<KernelRegistry>,
    record: bool,
    plan: Option<Arc<SchedulePlan>>,
    f: impl Fn(&mut RankCtx) -> T + Send + Sync,
) -> WorldOutcome<T> {
    let space = Arc::new(AddressSpace::new());
    let space_for_stats = Arc::clone(&space);
    let registry = &registry;
    // Resolve the barrier poison timeout exactly like ToolCtx resolves
    // its knobs: the frozen CUSAN_BARRIER_TIMEOUT_MS override wins over
    // the config field; both unset keeps mpi-sim's standard timeout.
    let barrier_timeout = cusan::ctx::barrier_timeout_env()
        .or(config.barrier_timeout_ms)
        .map(std::time::Duration::from_millis);
    let sched = plan
        .as_ref()
        .map(|p| Arc::clone(p) as Arc<dyn ScheduleController>);
    let plan = &plan;
    let pairs = run_world_with_schedule(n, space, barrier_timeout, sched, move |comm| {
        let rank = comm.rank();
        let tools = Rc::new(ToolCtx::new(rank, config));
        // The trace sink must observe every event, including the default
        // stream's FiberCreate emitted by CusanCuda::new below.
        let trace_buf = record.then(|| tools.install_trace_sink());
        let space = Arc::clone(comm.space());
        let mut cuda = CusanCuda::new(
            DeviceId(rank as u32),
            space,
            Arc::clone(registry),
            Rc::clone(&tools),
        );
        if let Some(plan) = plan {
            cuda.device_mut()
                .set_schedule_controller(Arc::clone(plan) as Arc<dyn ScheduleController>, rank);
        }
        let mpi = CheckedMpi::new(comm, Rc::clone(&tools));
        let mut ctx = RankCtx { tools, cuda, mpi };
        let result = f(&mut ctx);
        // Drain outstanding device work before collecting outcomes, like
        // the implicit synchronization at MPI_Finalize/program end. A
        // failing flush (injected fault, device error) must not abort the
        // harness after the application already finished — report it and
        // collect what we have.
        if let Err(e) = ctx.cuda.flush() {
            ctx.tools
                .report_diagnostic(format!("device flush at teardown failed: {e}"));
        }
        // Record the schedule that produced this execution. All of this
        // rank's decisions are final here (the teardown flush above was
        // the last possible choice point); the collective lane is final
        // too once any rank's closure returned (collectives involve all
        // ranks), and rank 0 carries it.
        if let Some(plan) = plan {
            emit_schedule_choices(&ctx.tools, &plan.decisions(rank));
            if rank == 0 {
                emit_schedule_choices(&ctx.tools, &plan.decisions(plan.collective_lane()));
            }
        }
        // Flush barrier: with the async backend, wait for the detector
        // thread to drain the event queue so every accessor below reads
        // final state (each accessor also flushes on its own; one
        // explicit barrier keeps the collection point obvious).
        ctx.tools.flush_checker();
        // Seal sinks (a recorded binary trace gets its end-of-trace
        // marker) before the buffers are collected below.
        ctx.tools.finish_sinks();
        let outcome = RankOutcome {
            rank,
            races: ctx.tools.race_reports(),
            race_count: ctx.tools.race_count(),
            must_reports: ctx.mpi.must_reports(),
            tsan: ctx.tools.tsan_stats(),
            cuda: ctx.cuda.counters(),
            events: ctx.tools.event_counters(),
            trace: trace_buf.map(|b| b.borrow().clone()),
            tool_memory_bytes: ctx.tools.tool_memory_bytes(),
            diagnostics: ctx.tools.diagnostics(),
            async_check: ctx.tools.async_check_stats(),
        };
        (result, outcome)
    });
    let (results, ranks) = pairs.into_iter().unzip();
    WorldOutcome {
        results,
        ranks,
        space: space_for_stats.stats(),
    }
}
