//! TypeART-backed MPI datatype checks (paper Fig. 2).
//!
//! For every intercepted MPI call, MUST queries the buffer pointer in the
//! TypeART runtime and compares the allocation's recorded element type and
//! extent against the declared MPI datatype and count.

use mpi_sim::MpiDatatype;
use sim_mem::Ptr;
use std::fmt;
use typeart_rt::TypeartRuntime;

/// A MUST diagnostic (non-race correctness finding).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MustReport {
    /// Buffer element type is incompatible with the MPI datatype.
    TypeMismatch {
        /// The MPI call.
        call: String,
        /// Buffer pointer.
        buf: Ptr,
        /// Type recorded by TypeART.
        allocated: String,
        /// Declared MPI datatype's element type.
        declared: &'static str,
    },
    /// `count` elements exceed the allocation extent from the pointer.
    BufferOverrun {
        /// The MPI call.
        call: String,
        /// Buffer pointer.
        buf: Ptr,
        /// Requested bytes.
        requested: u64,
        /// Available bytes.
        available: u64,
    },
    /// The buffer pointer is not a tracked allocation.
    UnknownBuffer {
        /// The MPI call.
        call: String,
        /// Buffer pointer.
        buf: Ptr,
    },
    /// The buffer pointer is not aligned to an element boundary of its
    /// allocation.
    MisalignedBuffer {
        /// The MPI call.
        call: String,
        /// Buffer pointer.
        buf: Ptr,
    },
}

impl fmt::Display for MustReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MustReport::TypeMismatch {
                call,
                buf,
                allocated,
                declared,
            } => write!(
                f,
                "{call}: buffer {buf} holds `{allocated}` but the MPI datatype expects `{declared}`"
            ),
            MustReport::BufferOverrun {
                call,
                buf,
                requested,
                available,
            } => write!(
                f,
                "{call}: count requires {requested} bytes but only {available} remain in the \
                 allocation at {buf}"
            ),
            MustReport::UnknownBuffer { call, buf } => {
                write!(f, "{call}: buffer {buf} is not a tracked allocation")
            }
            MustReport::MisalignedBuffer { call, buf } => {
                write!(
                    f,
                    "{call}: buffer {buf} is not element-aligned within its allocation"
                )
            }
        }
    }
}

/// Run the datatype/extent checks for one buffer argument, appending any
/// findings to `out`.
pub(crate) fn check_buffer(
    typeart: &mut TypeartRuntime,
    call: &str,
    buf: Ptr,
    count: u64,
    dtype: MpiDatatype,
    out: &mut Vec<MustReport>,
) {
    let Some(q) = typeart.query(buf) else {
        out.push(MustReport::UnknownBuffer {
            call: call.to_string(),
            buf,
        });
        return;
    };
    if !q.element_aligned {
        out.push(MustReport::MisalignedBuffer {
            call: call.to_string(),
            buf,
        });
    }
    // MPI_BYTE is layout-compatible with any type.
    if dtype != MpiDatatype::Byte {
        let allocated = typeart
            .registry()
            .info(q.record.type_id)
            .map(|t| t.name.clone())
            .unwrap_or_else(|| "<unregistered>".to_string());
        if allocated != dtype.type_name() {
            out.push(MustReport::TypeMismatch {
                call: call.to_string(),
                buf,
                allocated,
                declared: dtype.type_name(),
            });
        }
    }
    let requested = count * dtype.size();
    if requested > q.remaining_bytes() {
        out.push(MustReport::BufferOverrun {
            call: call.to_string(),
            buf,
            requested,
            available: q.remaining_bytes(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{DeviceId, MemKind};
    use typeart_rt::TypeId;

    fn rt_with_f64(base: u64, n: u64) -> TypeartRuntime {
        let mut ta = TypeartRuntime::new();
        ta.on_alloc(Ptr(base), TypeId::F64, n, MemKind::Device(DeviceId(0)))
            .unwrap();
        ta
    }

    #[test]
    fn compatible_buffer_passes() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x1000),
            10,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn interior_pointer_with_room_passes() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x1000 + 16),
            8,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn type_mismatch_reported() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x1000),
            10,
            MpiDatatype::Int,
            &mut out,
        );
        assert!(
            matches!(
                &out[0],
                MustReport::TypeMismatch {
                    declared: "i32",
                    ..
                }
            ),
            "{out:?}"
        );
    }

    #[test]
    fn byte_matches_anything() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x1000),
            80,
            MpiDatatype::Byte,
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn overrun_reported() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Recv",
            Ptr(0x1000),
            11,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(matches!(
            &out[0],
            MustReport::BufferOverrun {
                requested: 88,
                available: 80,
                ..
            }
        ));
    }

    #[test]
    fn overrun_from_interior_pointer() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Recv",
            Ptr(0x1000 + 40),
            6,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(matches!(
            &out[0],
            MustReport::BufferOverrun { available: 40, .. }
        ));
    }

    #[test]
    fn unknown_buffer_reported() {
        let mut ta = TypeartRuntime::new();
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x9999),
            1,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(matches!(&out[0], MustReport::UnknownBuffer { .. }));
    }

    #[test]
    fn misaligned_reported() {
        let mut ta = rt_with_f64(0x1000, 10);
        let mut out = Vec::new();
        check_buffer(
            &mut ta,
            "MPI_Send",
            Ptr(0x1003),
            1,
            MpiDatatype::Double,
            &mut out,
        );
        assert!(
            out.iter()
                .any(|r| matches!(r, MustReport::MisalignedBuffer { .. })),
            "{out:?}"
        );
    }
}
