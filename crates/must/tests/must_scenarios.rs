//! End-to-end MUST + CuSan scenarios: the CUDA-aware MPI race patterns of
//! paper Figs. 1, 4, and 6, plus MUST's datatype checks — run on the full
//! per-rank tool stack via the checked-world harness.

use cuda_sim::StreamId;
use cusan::Flavor;
use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::{KernelId, KernelRegistry, LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, ReduceOp};
use must_rt::{run_checked_world, MustReport, RankCtx};
use sim_mem::Ptr;
use std::sync::Arc;

const N: u64 = 1024; // > eager limit in bytes for f64 (8 KiB): rendezvous

struct Kernels {
    registry: Arc<KernelRegistry>,
    fill: KernelId,
    reader: KernelId,
}

fn kernels() -> Kernels {
    let mut reg = KernelRegistry::new();
    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| bb.store(p, tid(), v.get()));
    let fill = reg.register_ir(b.finish()).unwrap();

    let mut b = KernelBuilder::new("consume");
    let out = b.ptr_param("out", ScalarTy::F64);
    let inp = b.ptr_param("in", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |bb| {
        bb.store(out, tid(), load(inp, tid()) * cf(2.0));
    });
    let reader = reg.register_ir(b.finish()).unwrap();
    Kernels {
        registry: Arc::new(reg),
        fill,
        reader,
    }
}

fn launch_fill(ctx: &mut RankCtx, k: &Kernels, p: Ptr, v: f64) {
    ctx.cuda
        .launch(
            k.fill,
            LaunchGrid::cover(N, 128),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(p),
                LaunchArg::F64(v),
                LaunchArg::I64(N as i64),
            ],
        )
        .unwrap();
}

fn launch_consume(ctx: &mut RankCtx, k: &Kernels, out: Ptr, inp: Ptr) {
    ctx.cuda
        .launch(
            k.reader,
            LaunchGrid::cover(N, 128),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(out),
                LaunchArg::Ptr(inp),
                LaunchArg::I64(N as i64),
            ],
        )
        .unwrap();
}

/// Paper Fig. 4, as written (with both synchronizations): race-free.
#[test]
fn fig4_correct_version_is_race_free() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let d_data = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, d_data, 7.0);
            ctx.cuda.device_synchronize().unwrap(); // line 4
            ctx.mpi.send(d_data, N, MpiDatatype::Double, 1, 0).unwrap();
        } else {
            let mut req = ctx.mpi.irecv(d_data, N, MpiDatatype::Double, 0, 0).unwrap();
            ctx.mpi.wait(&mut req).unwrap(); // line 8
            let d_out = ctx.cuda.malloc::<f64>(N).unwrap();
            launch_consume(ctx, &k, d_out, d_data);
            ctx.cuda.device_synchronize().unwrap();
            // Verify the data actually moved: 7.0 * 2.0.
            let v = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), d_out, N, "verify")
                .unwrap();
            assert_eq!(v[0], 14.0);
            assert_eq!(v[(N - 1) as usize], 14.0);
        }
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
    assert!(out.all_must_reports().is_empty());
}

/// Fig. 4 without line 4 (`cudaDeviceSynchronize`): the kernel may still be
/// writing while MPI_Send reads the device buffer — CUDA-to-MPI race, and
/// the receiver observably gets stale data.
#[test]
fn fig4_missing_device_sync_races_and_corrupts() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let d_data = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, d_data, 7.0);
            // MISSING cudaDeviceSynchronize.
            ctx.mpi.send(d_data, N, MpiDatatype::Double, 1, 0).unwrap();
            0.0
        } else {
            ctx.mpi.recv(d_data, N, MpiDatatype::Double, 0, 0).unwrap();
            ctx.cuda.device_synchronize().unwrap();
            ctx.tools
                .host_read_slice::<f64>(&ctx.space(), d_data, N, "verify")
                .unwrap()[0]
        }
    });
    // Rank 0 detects the race between the kernel write and the Send read.
    assert!(out.ranks[0].race_count >= 1, "{:#?}", out.all_races());
    let races = &out.ranks[0].races;
    assert!(
        races
            .iter()
            .any(|r| r.current.ctx.contains("MPI_Send") && r.previous.ctx.contains("kernel fill")),
        "{races:#?}"
    );
    // And the receiver got stale zeros, not 7.0 — the bug is real.
    assert_eq!(out.results[1], 0.0, "stale data actually transmitted");
}

/// Fig. 4 without line 8 (`MPI_Wait`): kernel launched inside Irecv's
/// concurrent region — MPI-to-CUDA race (Fig. 6A mirror).
#[test]
fn fig4_missing_wait_races() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let d_data = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, d_data, 7.0);
            ctx.cuda.device_synchronize().unwrap();
            ctx.mpi.send(d_data, N, MpiDatatype::Double, 1, 0).unwrap();
        } else {
            let d_out = ctx.cuda.malloc::<f64>(N).unwrap();
            let mut req = ctx.mpi.irecv(d_data, N, MpiDatatype::Double, 0, 0).unwrap();
            // MISSING MPI_Wait before the dependent kernel.
            launch_consume(ctx, &k, d_out, d_data);
            ctx.mpi.wait(&mut req).unwrap();
        }
    });
    assert!(out.ranks[1].race_count >= 1, "{:#?}", out.all_races());
    let races = &out.ranks[1].races;
    assert!(
        races.iter().any(|r| {
            (r.current.ctx.contains("kernel consume") && r.previous.ctx.contains("MPI_Irecv"))
                || (r.current.ctx.contains("MPI_Irecv")
                    && r.previous.ctx.contains("kernel consume"))
        }),
        "{races:#?}"
    );
}

/// Fig. 6A: Isend's concurrent region vs a kernel write before MPI_Wait.
#[test]
fn fig6a_isend_concurrent_kernel_write_races() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let buf = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, buf, 1.0);
            ctx.cuda.device_synchronize().unwrap();
            let mut req = ctx.mpi.isend(buf, N, MpiDatatype::Double, 1, 0).unwrap();
            // Kernel writes buf inside the Isend concurrent region.
            launch_fill(ctx, &k, buf, 2.0);
            ctx.mpi.wait(&mut req).unwrap();
        } else {
            ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0).unwrap();
        }
    });
    assert!(out.ranks[0].race_count >= 1, "{:#?}", out.all_races());
}

/// Fig. 6A done right: wait before the kernel touches the buffer again.
#[test]
fn fig6a_with_wait_is_race_free() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let buf = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, buf, 1.0);
            ctx.cuda.device_synchronize().unwrap();
            let mut req = ctx.mpi.isend(buf, N, MpiDatatype::Double, 1, 0).unwrap();
            ctx.mpi.wait(&mut req).unwrap();
            launch_fill(ctx, &k, buf, 2.0);
            ctx.cuda.device_synchronize().unwrap();
        } else {
            ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0).unwrap();
        }
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
}

/// Fig. 6B: blocking MPI_Recv into a buffer a running kernel reads.
#[test]
fn fig6b_blocking_recv_during_kernel_races() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let buf = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            launch_fill(ctx, &k, buf, 1.0);
            ctx.cuda.device_synchronize().unwrap();
            ctx.mpi.send(buf, N, MpiDatatype::Double, 1, 0).unwrap();
        } else {
            let d_out = ctx.cuda.malloc::<f64>(N).unwrap();
            launch_consume(ctx, &k, d_out, buf); // kernel reads buf...
                                                 // ...while Recv writes it, with no synchronization between.
            ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0).unwrap();
        }
    });
    assert!(out.ranks[1].race_count >= 1, "{:#?}", out.all_races());
}

/// The paper's layered-tools claim (§I): a tool that only sees MPI misses
/// CUDA-side races. The same buggy program under MUST-only reports
/// nothing; under MUST & CuSan it reports the race.
#[test]
fn must_alone_misses_cuda_race_cusan_catches_it() {
    for (flavor, expect_race) in [(Flavor::Must, false), (Flavor::MustCusan, true)] {
        let k = kernels();
        let reg = Arc::clone(&k.registry);
        let out = run_checked_world(2, flavor, reg, |ctx| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            if ctx.rank() == 0 {
                launch_fill(ctx, &k, d, 7.0);
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap(); // no sync
            } else {
                ctx.mpi.recv(d, N, MpiDatatype::Double, 0, 0).unwrap();
            }
        });
        assert_eq!(out.has_races(), expect_race, "flavor {flavor}");
    }
}

/// Halo-exchange pattern with Sendrecv (the Jacobi communication shape):
/// correct synchronization, race-free, data verified.
#[test]
fn sendrecv_halo_pattern_race_free() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let me = ctx.rank();
        let peer = 1 - me as i64;
        let d = ctx.cuda.malloc::<f64>(N).unwrap();
        let halo = ctx.cuda.malloc::<f64>(N).unwrap();
        launch_fill(ctx, &k, d, (me + 1) as f64);
        ctx.cuda.device_synchronize().unwrap();
        ctx.mpi
            .sendrecv(d, N, peer, 0, halo, N, peer as i32, 0, MpiDatatype::Double)
            .unwrap();
        ctx.tools
            .host_read_slice::<f64>(&ctx.space(), halo, N, "verify halo")
            .unwrap()[0]
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
    assert_eq!(out.results, vec![2.0, 1.0], "halos crossed over");
}

/// Allreduce on device pointers under the full stack.
#[test]
fn allreduce_device_buffers_race_free() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(3, Flavor::MustCusan, reg, |ctx| {
        let s = ctx.cuda.malloc::<f64>(4).unwrap();
        let r = ctx.cuda.malloc::<f64>(4).unwrap();
        ctx.tools
            .host_write_slice::<f64>(&ctx.space(), s, &[ctx.rank() as f64 + 1.0; 4], "init")
            .unwrap();
        ctx.mpi
            .allreduce(s, r, 4, MpiDatatype::Double, ReduceOp::Sum)
            .unwrap();
        ctx.tools
            .host_read_slice::<f64>(&ctx.space(), r, 4, "check")
            .unwrap()[0]
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
    assert_eq!(out.results, vec![6.0, 6.0, 6.0]);
}

/// MUST datatype check: i32 buffer declared as MPI_DOUBLE.
#[test]
fn datatype_mismatch_reported() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let buf = ctx.cuda.malloc::<i32>(16).unwrap();
        if ctx.rank() == 0 {
            ctx.mpi.send(buf, 8, MpiDatatype::Double, 1, 0).unwrap();
        } else {
            ctx.mpi.recv(buf, 8, MpiDatatype::Double, 0, 0).unwrap();
        }
    });
    let reports = out.all_must_reports();
    assert!(
        reports.iter().any(|(_, r)| matches!(
            r,
            MustReport::TypeMismatch { allocated, declared: "f64", .. } if allocated == "i32"
        )),
        "{reports:#?}"
    );
}

/// MUST extent check: count overruns the allocation.
#[test]
fn count_overrun_reported() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let small = ctx.cuda.malloc::<f64>(4).unwrap();
        // Claim 64 elements from a 4-element allocation. MUST reports the
        // overrun at interception; the transfer itself faults in the
        // simulator, so no receive is posted anywhere.
        let peer = 1 - ctx.rank() as i64;
        let err = ctx.mpi.send(small, 64, MpiDatatype::Double, peer, 0);
        assert!(err.is_err());
    });
    assert!(
        out.all_must_reports().iter().any(|(rank, r)| {
            *rank == 0
                && matches!(
                    r,
                    MustReport::BufferOverrun {
                        requested: 512,
                        available: 32,
                        ..
                    }
                )
        }),
        "{:#?}",
        out.all_must_reports()
    );
}

/// Non-blocking ring exchange with Waitall across 4 ranks: race-free.
#[test]
fn nonblocking_ring_waitall_race_free() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let n = 4;
    let out = run_checked_world(n, Flavor::MustCusan, reg, |ctx| {
        let me = ctx.rank();
        let right = ((me + 1) % n) as i64;
        let left = ((me + n - 1) % n) as i32;
        let tx = ctx.cuda.malloc::<f64>(N).unwrap();
        let rx = ctx.cuda.malloc::<f64>(N).unwrap();
        launch_fill(ctx, &k, tx, me as f64);
        ctx.cuda.device_synchronize().unwrap();
        let mut reqs = vec![
            ctx.mpi.irecv(rx, N, MpiDatatype::Double, left, 0).unwrap(),
            ctx.mpi.isend(tx, N, MpiDatatype::Double, right, 0).unwrap(),
        ];
        ctx.mpi.waitall(&mut reqs).unwrap();
        ctx.tools
            .host_read_slice::<f64>(&ctx.space(), rx, N, "verify")
            .unwrap()[0] as usize
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
    assert_eq!(out.results, vec![3, 0, 1, 2]);
}

/// Writing the send buffer between Isend and Wait (host-side): the classic
/// Fig. 1 race, detected via the MPI request fiber.
#[test]
fn host_write_in_isend_region_races() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let buf = ctx.cuda.malloc::<f64>(N).unwrap();
        if ctx.rank() == 0 {
            let mut req = ctx.mpi.isend(buf, N, MpiDatatype::Double, 1, 0).unwrap();
            // Host writes the buffer before Wait.
            ctx.tools
                .host_write_at::<f64>(&ctx.space(), buf, 99.0, "host write during Isend")
                .unwrap();
            ctx.mpi.wait(&mut req).unwrap();
        } else {
            ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0).unwrap();
        }
    });
    assert!(out.ranks[0].race_count >= 1, "{:#?}", out.all_races());
}

/// Table-I-style accounting sanity on a small checked run.
#[test]
fn outcome_counters_populated() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let out = run_checked_world(2, Flavor::MustCusan, reg, |ctx| {
        let d = ctx.cuda.malloc::<f64>(N).unwrap();
        launch_fill(ctx, &k, d, 1.0);
        ctx.cuda.device_synchronize().unwrap();
        let peer = 1 - ctx.rank() as i64;
        let rx = ctx.cuda.malloc::<f64>(N).unwrap();
        ctx.mpi
            .sendrecv(d, N, peer, 0, rx, N, peer as i32, 0, MpiDatatype::Double)
            .unwrap();
    });
    for r in &out.ranks {
        assert_eq!(r.cuda.kernel_calls, 1);
        assert_eq!(r.cuda.sync_calls, 1);
        assert!(r.tsan.fiber_switches >= 2, "kernel switch there and back");
        assert!(r.tsan.happens_before >= 1);
        assert!(r.tsan.write_bytes >= N * 8);
        assert!(r.tool_memory_bytes > 0);
    }
    assert!(out.space.live_bytes >= 2 * 2 * N * 8);
}

/// Scale sanity: an 8-rank ring with non-blocking halos plus collectives,
/// race-free under the full stack, with per-rank detectors fully isolated.
#[test]
fn eight_rank_ring_with_collectives() {
    let k = kernels();
    let reg = Arc::clone(&k.registry);
    let n = 8;
    let out = run_checked_world(n, Flavor::MustCusan, reg, |ctx| {
        let me = ctx.rank();
        let right = ((me + 1) % n) as i64;
        let left = ((me + n - 1) % n) as i32;
        let tx = ctx.cuda.malloc::<f64>(N).unwrap();
        let rx = ctx.cuda.malloc::<f64>(N).unwrap();
        let s = ctx.cuda.malloc::<f64>(1).unwrap();
        let r = ctx.cuda.malloc::<f64>(1).unwrap();
        for round in 0..4 {
            launch_fill(ctx, &k, tx, (me * 10 + round) as f64);
            ctx.cuda.device_synchronize().unwrap();
            let mut reqs = vec![
                ctx.mpi.irecv(rx, N, MpiDatatype::Double, left, 0).unwrap(),
                ctx.mpi.isend(tx, N, MpiDatatype::Double, right, 0).unwrap(),
            ];
            ctx.mpi.waitall(&mut reqs).unwrap();
            ctx.tools
                .host_write_at::<f64>(&ctx.space(), s, me as f64, "contrib")
                .unwrap();
            ctx.mpi
                .allreduce(s, r, 1, MpiDatatype::Double, ReduceOp::Sum)
                .unwrap();
            let sum: f64 = ctx.tools.host_read_at(&ctx.space(), r, "sum").unwrap();
            assert_eq!(sum, (0..n).sum::<usize>() as f64);
        }
        ctx.tools
            .host_read_slice::<f64>(&ctx.space(), rx, N, "verify")
            .unwrap()[0]
    });
    assert_eq!(out.total_races(), 0, "{:#?}", out.all_races());
    // Ring: rank me received from its left neighbour's last round.
    for (me, v) in out.results.iter().enumerate() {
        let left = (me + n - 1) % n;
        assert_eq!(*v, (left * 10 + 3) as f64);
    }
    // Per-rank isolation: each rank has its own detector instance with
    // its own fibers and counters.
    for r in &out.ranks {
        assert!(r.tsan.fibers_created >= 8, "rank {} fibers", r.rank);
    }
}

/// Gather/scatter/allgather on device buffers under the full stack: clean
/// when synchronized, racy when the contribution kernel is pending.
#[test]
fn gather_family_device_buffers() {
    for (sync, expect_race) in [(true, false), (false, true)] {
        let k = kernels();
        let reg = Arc::clone(&k.registry);
        let out = run_checked_world(2, Flavor::MustCusan, reg, move |ctx| {
            let n = ctx.size() as u64;
            let s = ctx.cuda.malloc::<f64>(4).unwrap();
            let g = ctx.cuda.malloc::<f64>(4 * n).unwrap();
            let ag = ctx.cuda.malloc::<f64>(4 * n).unwrap();
            let sc = ctx.cuda.malloc::<f64>(4).unwrap();
            ctx.cuda
                .launch(
                    k.fill,
                    kernel_ir::LaunchGrid::cover(4, 4),
                    StreamId::DEFAULT,
                    vec![
                        kernel_ir::LaunchArg::Ptr(s),
                        kernel_ir::LaunchArg::F64(ctx.rank() as f64 + 1.0),
                        kernel_ir::LaunchArg::I64(4),
                    ],
                )
                .unwrap();
            if sync {
                ctx.cuda.device_synchronize().unwrap();
            }
            ctx.mpi.gather(s, g, 4, MpiDatatype::Double, 0).unwrap();
            ctx.mpi.allgather(s, ag, 4, MpiDatatype::Double).unwrap();
            ctx.mpi.scatter(ag, sc, 4, MpiDatatype::Double, 0).unwrap();
            if sync {
                let v = ctx
                    .tools
                    .host_read_slice::<f64>(&ctx.space(), ag, 4 * n, "verify")
                    .unwrap();
                assert_eq!(v[0], 1.0);
                assert_eq!(v[4], 2.0);
            }
        });
        assert_eq!(
            out.has_races(),
            expect_race,
            "sync={sync}: {:#?}",
            out.all_races()
        );
        assert!(
            out.all_must_reports().is_empty(),
            "{:#?}",
            out.all_must_reports()
        );
    }
}
