//! The crash-safety contracts of the serve path, piece by piece:
//! offset-checked exactly-once delivery, typed capacity errors, idle
//! expiry, spill/restore of unfinished sessions (the A/B differential),
//! restart recovery from the journal, socket-level resumption, and
//! canonical-label stability under session churn. The whole-system
//! version of these properties — everything at once under seeded
//! failure schedules — lives in `chaos_serve.rs`.

use cusan_serve::proto::{
    close_frame, data_frame, heartbeat_frame, parse_reply, quit_frame, read_frame, resume_frame,
    write_frame,
};
use cusan_serve::{
    serve_connection, serve_listener, solo_summary, summary_to_json, AttachError, EngineConfig,
    FeedError, Reply, ServeEngine,
};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

const GOLDEN: &str = include_str!("../../../tests/data/tealeaf_small.trace");

/// A private scratch dir per test (no tempfile crate in this workspace).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(name: &str) -> ScratchDir {
        let p = std::env::temp_dir().join(format!("cusan-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).expect("create scratch dir");
        ScratchDir(p)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn spilling_config(dir: &ScratchDir) -> EngineConfig {
    EngineConfig {
        check_threads: Some(2),
        spill_dir: Some(dir.0.clone()),
        ..EngineConfig::default()
    }
}

#[test]
fn offset_check_makes_delivery_exactly_once() {
    let engine = ServeEngine::new(EngineConfig::default());
    let bytes = GOLDEN.as_bytes();
    engine.open_new(1).unwrap();

    // In-order bytes append.
    assert_eq!(engine.feed(1, 0, &bytes[..100]).unwrap(), 100);
    // A full duplicate is dropped, not re-fed.
    assert_eq!(engine.feed(1, 0, &bytes[..100]).unwrap(), 100);
    // An overlapping retransmit is prefix-trimmed.
    assert_eq!(engine.feed(1, 50, &bytes[50..150]).unwrap(), 150);
    assert_eq!(engine.stats().duplicate_bytes_dropped, 150);
    // A frame from the future is a recoverable gap, session intact.
    match engine.feed(1, 300, &bytes[300..400]) {
        Err(FeedError::Gap { expected, got }) => assert_eq!((expected, got), (150, 300)),
        other => panic!("expected Gap, got {other:?}"),
    }
    assert_eq!(
        engine.feed(1, 150, &bytes[150..]).unwrap(),
        bytes.len() as u64
    );

    // Despite duplicates, trims, and a gapped frame, the detector saw
    // the stream exactly once.
    let summary = engine.close(1).unwrap();
    assert_eq!(summary, solo_summary(GOLDEN).unwrap());
}

#[test]
fn session_capacity_is_a_graceful_typed_error() {
    let engine = ServeEngine::new(EngineConfig {
        max_sessions: Some(2),
        ..EngineConfig::default()
    });
    engine.open_new(1).unwrap();
    engine.open_new(2).unwrap();
    assert_eq!(engine.open_new(3).unwrap_err(), AttachError::AtCapacity);
    assert_eq!(engine.open_new(1).unwrap_err(), AttachError::AlreadyOpen);
    // Resuming an *unknown* session is an open and hits the cap too;
    // resuming a live one does not.
    assert_eq!(engine.resume(3).unwrap_err(), AttachError::AtCapacity);
    assert_eq!(engine.resume(1).unwrap(), 0);
    // Closing frees a slot.
    let _ = engine.close(1);
    engine.open_new(3).unwrap();

    // Over the wire the cap is an `E` reply on that session — the
    // connection (and its other sessions) keep working.
    let engine = ServeEngine::new(EngineConfig {
        max_sessions: Some(1),
        ..EngineConfig::default()
    });
    let mut request = Vec::new();
    write_frame(&mut request, &resume_frame(10)).unwrap();
    write_frame(&mut request, &resume_frame(11)).unwrap();
    write_frame(&mut request, &quit_frame()).unwrap();
    let mut reply_bytes = Vec::new();
    serve_connection(&engine, &mut request.as_slice(), &mut reply_bytes).unwrap();
    let mut replies = Vec::new();
    let mut r = reply_bytes.as_slice();
    while let Some(payload) = read_frame(&mut r).unwrap() {
        replies.push(parse_reply(&payload).unwrap());
    }
    assert_eq!(replies[0], Reply::Ack { id: 10, acked: 0 });
    assert_eq!(
        replies[1],
        Reply::Error {
            id: 11,
            message: "server at session capacity".to_string()
        }
    );
}

#[test]
fn detached_idle_sessions_expire() {
    let engine = ServeEngine::new(EngineConfig {
        idle_timeout: Some(Duration::from_millis(30)),
        ..EngineConfig::default()
    });
    engine.open_new(1).unwrap();
    engine.feed(1, 0, &GOLDEN.as_bytes()[..200]).unwrap();
    engine.open_new(2).unwrap();

    // Attached sessions never expire, however stale.
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(engine.sweep_idle(), 0);

    // Detached ones do.
    engine.detach(1);
    engine.detach(2);
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(engine.sweep_idle(), 2);
    assert_eq!(engine.stats().sessions_expired, 2);
    assert_eq!(engine.live_sessions(), 0);

    // An expired id resumes as a brand-new session from offset 0.
    assert_eq!(engine.resume(1).unwrap(), 0);
}

#[test]
fn resume_at_idle_expiry_fully_attaches() {
    // A zero idle timeout makes every detached session instantly
    // expirable — the tightest possible race between `resume` and
    // `sweep_idle`. The contract: once `resume` returns Ok, the session
    // is fully attached, so the sweeper must spare it and the very next
    // frame must find it.
    let engine = ServeEngine::new(EngineConfig {
        idle_timeout: Some(Duration::ZERO),
        ..EngineConfig::default()
    });
    engine.open_new(1).unwrap();
    engine.detach(1);
    // Expirable right now — but a resume wins deterministically.
    assert_eq!(engine.resume(1).unwrap(), 0);
    assert_eq!(engine.sweep_idle(), 0, "attached session must not expire");
    assert!(
        engine.touch(1).is_ok(),
        "resume handed back a ghost session"
    );
    engine.detach(1);
    assert_eq!(engine.sweep_idle(), 1);
}

#[test]
fn resume_never_observes_a_half_expired_session() {
    // Regression for the sweep/resume race: `resume` used to look the
    // session up lock-free and bump `attach_count` afterwards, so the
    // sweeper's idle re-check could remove the entry (and its disk
    // state) in between — the client got Ok(acked) for a session that
    // no longer existed, and its next frame failed with "session not
    // open". Hammer the window: a sweeper thread expires non-stop while
    // this thread cycles resume → touch → detach. Every Ok resume must
    // be followed by a successful touch.
    let engine = ServeEngine::new(EngineConfig {
        idle_timeout: Some(Duration::ZERO),
        ..EngineConfig::default()
    });
    let stop = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let sweeper = {
            let engine = Arc::clone(&engine);
            let stop = &stop;
            scope.spawn(move || {
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    engine.sweep_idle();
                }
            })
        };
        for i in 0..2000 {
            let acked = engine.resume(1).expect("resume is total up to capacity");
            assert_eq!(acked, 0, "expired sessions restart at offset 0");
            assert!(
                engine.touch(1).is_ok(),
                "iteration {i}: resume returned Ok for a swept session"
            );
            engine.detach(1);
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        sweeper.join().unwrap();
    });
}

#[test]
fn spill_restore_roundtrip_is_invisible() {
    // A/B differential: a session spilled to disk mid-trace and
    // transparently restored must finish byte-identically to one that
    // stayed resident the whole time.
    let bytes = GOLDEN.as_bytes();
    let split = bytes.len() / 2;

    let dir = ScratchDir::new("spill-ab");
    let spilled = ServeEngine::new(spilling_config(&dir));
    spilled.open_new(1).unwrap();
    spilled.feed(1, 0, &bytes[..split]).unwrap();
    spilled.detach(1);
    assert!(spilled.spill_session(1).unwrap(), "idle session must spill");
    assert_eq!(spilled.stats().sessions_spilled, 1);
    assert!(
        dir.0.join("session-1.spill").exists(),
        "spill file on disk while spilled"
    );
    // The next frame restores transparently.
    spilled.feed(1, split as u64, &bytes[split..]).unwrap();
    assert_eq!(spilled.stats().sessions_restored, 1);
    let a = spilled.close(1).unwrap();
    assert!(
        !dir.0.join("session-1.spill").exists() && !dir.0.join("session-1.journal").exists(),
        "close clears the session's disk state"
    );

    let resident = ServeEngine::new(EngineConfig {
        check_threads: Some(2),
        ..EngineConfig::default()
    });
    resident.open_new(1).unwrap();
    resident.feed(1, 0, bytes).unwrap();
    let b = resident.close(1).unwrap();

    assert_eq!(a, b, "spill/restore changed the summary");
    assert_eq!(summary_to_json(1, &a), summary_to_json(1, &b));
    assert_eq!(b, solo_summary(GOLDEN).unwrap());
}

#[test]
fn live_budget_spills_idle_sessions_on_detach() {
    let dir = ScratchDir::new("live-budget");
    let engine = ServeEngine::new(EngineConfig {
        check_threads: Some(2),
        spill_dir: Some(dir.0.clone()),
        live_page_budget: Some(0),
        ..EngineConfig::default()
    });
    let bytes = GOLDEN.as_bytes();
    engine.open_new(1).unwrap();
    engine.feed(1, 0, &bytes[..bytes.len() / 2]).unwrap();
    // Attached: budget pressure must not touch it.
    engine.detach(9999); // any detach triggers enforcement
    assert_eq!(engine.stats().sessions_spilled, 0);
    // Detached: a zero budget forces it out.
    engine.detach(1);
    assert_eq!(engine.stats().sessions_spilled, 1);
    // And it still finishes correctly.
    engine
        .feed(1, (bytes.len() / 2) as u64, &bytes[bytes.len() / 2..])
        .unwrap();
    assert_eq!(engine.close(1).unwrap(), solo_summary(GOLDEN).unwrap());
}

#[test]
fn restarted_server_recovers_sessions_from_disk() {
    let bytes = GOLDEN.as_bytes();
    let split = bytes.len() / 3;
    let dir = ScratchDir::new("restart");
    let config = spilling_config(&dir);

    // Generation 1 accepts a third of the trace (journaling as it goes),
    // spills nothing, and "crashes" (dropped mid-session).
    {
        let engine = ServeEngine::new(config.clone());
        engine.open_new(7).unwrap();
        engine.feed(7, 0, &bytes[..split]).unwrap();
        engine.detach(7);
    }

    // Generation 2 recovers from the journal alone.
    let engine = ServeEngine::recover(config.clone()).unwrap();
    assert_eq!(engine.live_sessions(), 1, "journaled session re-registered");
    assert_eq!(engine.resume(7).unwrap(), split as u64);
    engine
        .feed(7, split as u64, &bytes[split..split * 2])
        .unwrap();
    // Spill before the next crash: generation 3 restores spill + journal
    // tail. (The tail is empty here — the spill is the newest state —
    // but the acked offset must still come from the journal.)
    engine.detach(7);
    assert!(engine.spill_session(7).unwrap());
    drop(engine);

    let engine = ServeEngine::recover(config).unwrap();
    assert_eq!(engine.resume(7).unwrap(), (split * 2) as u64);
    engine
        .feed(7, (split * 2) as u64, &bytes[split * 2..])
        .unwrap();
    assert_eq!(engine.close(7).unwrap(), solo_summary(GOLDEN).unwrap());
}

#[test]
fn socket_resumption_survives_a_mid_trace_disconnect() {
    let engine = ServeEngine::new(EngineConfig {
        check_threads: Some(2),
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_listener(engine, listener, Some(2)))
    };
    let bytes = GOLDEN.as_bytes();
    let split = bytes.len() * 2 / 3;

    // Connection 1: attach, stream two thirds, vanish without closing.
    {
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        write_frame(&mut writer, &resume_frame(5)).unwrap();
        let ack = parse_reply(&read_frame(&mut reader).unwrap().unwrap()).unwrap();
        assert_eq!(ack, Reply::Ack { id: 5, acked: 0 });
        for (i, chunk) in bytes[..split].chunks(512).enumerate() {
            write_frame(&mut writer, &data_frame(5, (i * 512) as u64, chunk)).unwrap();
        }
        // Heartbeat-sync before vanishing: the ack proves the server
        // consumed every data frame, so connection 2's resume below must
        // observe the full offset (without it, connection 2 can race the
        // server's drain of this connection's buffered frames and learn a
        // smaller — still correct, just earlier — offset).
        write_frame(&mut writer, &heartbeat_frame(5)).unwrap();
        let ack = parse_reply(&read_frame(&mut reader).unwrap().unwrap()).unwrap();
        assert_eq!(
            ack,
            Reply::Ack {
                id: 5,
                acked: split as u64
            }
        );
        // Drop both halves: the server sees EOF mid-session and detaches.
    }

    // Connection 2: resume, learn the acked offset, finish the trace.
    let stream = TcpStream::connect(addr).unwrap();
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    write_frame(&mut writer, &resume_frame(5)).unwrap();
    let acked = match parse_reply(&read_frame(&mut reader).unwrap().unwrap()).unwrap() {
        Reply::Ack { id: 5, acked } => acked,
        other => panic!("expected ack, got {other:?}"),
    };
    assert_eq!(acked, split as u64, "server acked what connection 1 sent");
    write_frame(&mut writer, &data_frame(5, acked, &bytes[split..])).unwrap();
    write_frame(&mut writer, &close_frame(5)).unwrap();
    write_frame(&mut writer, &quit_frame()).unwrap();
    match parse_reply(&read_frame(&mut reader).unwrap().unwrap()).unwrap() {
        Reply::Summary { id: 5, json } => {
            assert_eq!(json, summary_to_json(5, &solo_summary(GOLDEN).unwrap()));
        }
        other => panic!("expected summary, got {other:?}"),
    }
    server.join().unwrap().unwrap();
    assert_eq!(engine.stats().sessions_resumed, 1);
}

#[test]
fn canonical_labels_never_alias_across_session_churn() {
    use cusan_serve::SessionIngest;
    use std::collections::HashMap;

    // Open/finish/evict sessions from several threads while recording
    // which canonical Arc each label resolves to; a label must map to
    // exactly one allocation for the engine's whole life (finished-
    // session eviction must never free or rebind a canonical label),
    // and distinct labels must never share one.
    let engine = ServeEngine::new(EngineConfig {
        check_threads: Some(2),
        global_page_budget: Some(1), // evict aggressively: constant churn
        ..EngineConfig::default()
    });
    let witnessed: Vec<HashMap<String, Vec<Arc<str>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let engine = Arc::clone(&engine);
                scope.spawn(move || {
                    let mut seen: HashMap<String, Vec<Arc<str>>> = HashMap::new();
                    for _ in 0..8 {
                        let mut ingest = SessionIngest::new(Arc::clone(&engine));
                        for chunk in GOLDEN.as_bytes().chunks(4096) {
                            ingest.feed(chunk).unwrap();
                        }
                        ingest.finish().unwrap();
                        for label in ["cuda.kernel_calls", "host", "stream 1"] {
                            let arc = engine.labels().canon(&Arc::from(label));
                            seen.entry(label.to_string()).or_default().push(arc);
                        }
                    }
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert!(engine.stats().sessions_evicted > 0, "churn must evict");
    let mut canonical: HashMap<String, Arc<str>> = HashMap::new();
    for seen in &witnessed {
        for (label, arcs) in seen {
            for arc in arcs {
                assert_eq!(&**arc, label.as_str(), "canonical arc content mutated");
                let first = canonical
                    .entry(label.clone())
                    .or_insert_with(|| arc.clone());
                assert!(
                    Arc::ptr_eq(first, arc),
                    "label {label:?} rebound to a second allocation across generations"
                );
            }
        }
    }
    let ptrs: Vec<*const u8> = canonical.values().map(|a| a.as_ptr()).collect();
    let distinct: std::collections::HashSet<_> = ptrs.iter().collect();
    assert_eq!(ptrs.len(), distinct.len(), "distinct labels share an arc");
}
