//! The chaos soak: ≥32 seeded socket-level failure schedules — torn
//! frames, clean disconnects, stalled writes, duplicate resumes, server
//! restarts recovering from the spill directory, and spill-forced
//! eviction of every idle mid-trace session — each of which must leave
//! every session's summary byte-identical to a solo synchronous replay.
//! `chaos_serve` itself enforces the oracle per session; this test
//! additionally checks that the sweep actually *exercised* each failure
//! mode (a schedule that never fired would prove nothing).

use cusan_serve::{chaos_serve, ChaosOptions};

fn corpus() -> Vec<(u64, Vec<u8>)> {
    let golden = include_str!("../../../tests/data/tealeaf_small.trace")
        .as_bytes()
        .to_vec();
    let mut traces = vec![golden];
    let out = cusan_apps::run_chaos_jacobi(
        &cusan_apps::ChaosConfig::default(),
        cusan::Flavor::MustCusan,
    );
    for rank in out.ranks {
        traces.push(rank.trace.expect("chaos runs are always traced"));
    }
    traces
        .into_iter()
        .enumerate()
        .map(|(i, t)| (i as u64, t))
        .collect()
}

/// The same corpus transcoded to the v3 binary encoding: torn frames and
/// truncations now land mid-varint / mid-length-prefix instead of
/// mid-line.
fn binary_corpus() -> Vec<(u64, Vec<u8>)> {
    corpus()
        .into_iter()
        .map(|(id, t)| {
            let b = cusan::transcode(&t[..], cusan::TraceFormat::Binary).expect("transcode");
            (id, b)
        })
        .collect()
}

#[test]
fn thirty_two_seeded_schedules_hold_the_byte_identical_oracle() {
    sweep(corpus());
}

#[test]
fn thirty_two_seeded_schedules_hold_with_binary_sessions() {
    sweep(binary_corpus());
}

fn sweep(corpus: Vec<(u64, Vec<u8>)>) {
    let opts = ChaosOptions {
        fault_rate: 0.05,
        restart_rate: 0.25,
        chunk: 512,
        live_page_budget: Some(0), // every idle mid-trace session spills
        check_threads: Some(2),
    };
    let (mut fired, mut restarts, mut resumed, mut spilled, mut restored) =
        (0u64, 0u64, 0u64, 0u64, 0u64);
    for seed in 1..=32u64 {
        let report = chaos_serve(seed, &corpus, &opts)
            .unwrap_or_else(|e| panic!("chaos seed {seed} violated the oracle: {e}"));
        assert_eq!(report.sessions, corpus.len());
        fired += report.faults_fired;
        restarts += report.restarts;
        resumed += report.stats.sessions_resumed;
        spilled += report.stats.sessions_spilled;
        restored += report.stats.sessions_restored;
    }
    // The sweep as a whole must have hit every failure mode it claims to
    // cover. (Per-seed counts are schedule-dependent; the aggregate is
    // deterministic for fixed seeds.)
    assert!(fired > 0, "no net faults fired across 32 seeds");
    assert!(restarts > 0, "no server restarts across 32 seeds");
    assert!(resumed > 0, "no session was ever resumed");
    assert!(
        spilled > 0 && restored > 0,
        "spill/restore never exercised (spilled {spilled}, restored {restored})"
    );
}
