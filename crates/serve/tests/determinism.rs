//! The serve determinism contract: N concurrent sessions multiplexed
//! over one checker pool produce summaries bit-for-bit identical to solo
//! synchronous replays — at any worker count, under chunked interleaved
//! delivery, and under a global shadow budget forcing cross-session
//! eviction.
//!
//! The corpus is the golden TeaLeaf fixture (recorded by
//! `tests/trace_fixture.rs` — regenerate, don't hand-edit) plus
//! chaos-twin traces of both mini-apps generated fresh per test run.

use cusan_serve::{solo_summary, summary_to_json, EngineConfig, ServeEngine, SessionIngest};
use std::sync::Arc;

const GOLDEN: &str = include_str!("../../../tests/data/tealeaf_small.trace");

/// Golden fixture + one chaos-twin trace per rank per mini-app.
fn corpus() -> Vec<Vec<u8>> {
    let mut traces = vec![GOLDEN.as_bytes().to_vec()];
    let cfg = cusan_apps::ChaosConfig::default();
    for out in [
        cusan_apps::run_chaos_jacobi(&cfg, cusan::Flavor::MustCusan),
        cusan_apps::run_chaos_tealeaf(&cfg, cusan::Flavor::MustCusan),
    ] {
        for rank in out.ranks {
            traces.push(rank.trace.expect("chaos runs are always traced"));
        }
    }
    traces
}

/// Drive `sessions[i] = corpus[i % corpus.len()]` concurrently through
/// one engine (one thread per session, chunked feeds) and assert every
/// summary equals its solo replay. Returns the engine for stats checks.
fn run_sessions(
    config: EngineConfig,
    corpus: &[Vec<u8>],
    sessions: usize,
    chunk: usize,
) -> Arc<ServeEngine> {
    let solo: Vec<_> = corpus
        .iter()
        .map(|t| solo_summary(t).expect("corpus traces parse"))
        .collect();
    let engine = ServeEngine::new(config);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let trace = &corpus[i % corpus.len()];
                scope.spawn(move || {
                    let mut ingest = SessionIngest::new(engine);
                    for c in trace.chunks(chunk) {
                        ingest.feed(c).expect("feed");
                    }
                    (i, ingest.finish().expect("finish"))
                })
            })
            .collect();
        for h in handles {
            let (i, served) = h.join().expect("session thread");
            let expected = &solo[i % corpus.len()];
            assert_eq!(
                &served,
                expected,
                "session {i} (corpus trace {}) diverged from solo sync replay",
                i % corpus.len()
            );
            // The JSON layer preserves the equality byte-for-byte.
            assert_eq!(
                summary_to_json(i as u64, &served),
                summary_to_json(i as u64, expected)
            );
        }
    });
    engine
}

#[test]
fn concurrent_sessions_match_solo_replay_at_any_worker_count() {
    let corpus = corpus();
    for threads in [1, 2, 4] {
        let engine = run_sessions(
            EngineConfig {
                check_threads: Some(threads),
                global_page_budget: None,
                ..EngineConfig::default()
            },
            &corpus,
            corpus.len(),
            311, // prime chunk size: every session splits lines mid-byte
        );
        let stats = engine.stats();
        assert_eq!(stats.sessions_finished, corpus.len() as u64);
        assert_eq!(stats.sessions_evicted, 0, "no budget, no eviction");
    }
}

#[test]
fn sixty_four_sessions_over_one_pool() {
    let corpus = corpus();
    let engine = run_sessions(
        EngineConfig {
            check_threads: Some(2),
            global_page_budget: None,
            ..EngineConfig::default()
        },
        &corpus,
        64,
        1024,
    );
    let stats = engine.stats();
    assert_eq!(stats.sessions_finished, 64);
    // Cross-session label sharing must have fired: 64 sessions over a
    // handful of distinct traces re-present the same labels constantly.
    assert!(
        stats.labels_shared > stats.labels_unique,
        "labels shared {} vs unique {}",
        stats.labels_shared,
        stats.labels_unique
    );
    assert!(
        stats.peak_resident_pages > 0,
        "finished sessions retain shadow"
    );
}

#[test]
fn global_budget_evicts_idle_sessions_without_changing_races() {
    let corpus = corpus();
    // Baseline: unlimited retention, to learn the corpus's real page load.
    let unlimited = run_sessions(
        EngineConfig {
            check_threads: Some(2),
            global_page_budget: None,
            ..EngineConfig::default()
        },
        &corpus,
        16,
        512,
    );
    let full = unlimited.stats().resident_pages;
    assert!(
        full > 0,
        "corpus must produce shadow pages to make the test meaningful"
    );

    // A budget of a quarter of that forces evictions. run_sessions
    // itself asserts every summary still equals solo replay — the
    // budget provably cannot change any session's detected race set.
    let budget = (full / 4).max(1);
    let capped = run_sessions(
        EngineConfig {
            check_threads: Some(2),
            global_page_budget: Some(budget as usize),
            ..EngineConfig::default()
        },
        &corpus,
        16,
        512,
    );
    let stats = capped.stats();
    assert!(
        stats.sessions_evicted > 0,
        "budget {budget} of {full} must evict"
    );
    assert!(stats.shadow_pages_evicted > 0);
    assert!(
        stats.resident_pages <= budget,
        "resident {} exceeds budget {budget}",
        stats.resident_pages
    );
    assert_eq!(stats.sessions_finished, 16);
}

#[test]
fn socket_end_to_end_replies_with_solo_identical_json() {
    use cusan_serve::{check_traces, serve_listener, Reply};
    use std::net::{TcpListener, TcpStream};

    let corpus = corpus();
    let engine = ServeEngine::new(EngineConfig {
        check_threads: Some(2),
        global_page_budget: None,
        ..EngineConfig::default()
    });
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_listener(engine, listener, Some(1)))
    };

    // One connection multiplexing every corpus trace, tiny interleaved
    // chunks.
    let traces: Vec<(u64, Vec<u8>)> = corpus
        .iter()
        .enumerate()
        .map(|(i, t)| (i as u64, t.clone()))
        .collect();
    let stream = TcpStream::connect(addr).unwrap();
    let reader = stream.try_clone().unwrap();
    let mut replies = check_traces(reader, stream, &traces, 173).unwrap();
    server.join().unwrap().unwrap();

    replies.sort_by_key(|r| match r {
        Reply::Summary { id, .. } | Reply::Error { id, .. } | Reply::Ack { id, .. } => *id,
    });
    assert_eq!(replies.len(), corpus.len());
    for (i, reply) in replies.iter().enumerate() {
        let expected = summary_to_json(i as u64, &solo_summary(&corpus[i]).unwrap());
        match reply {
            Reply::Summary { id, json } => {
                assert_eq!(*id, i as u64);
                assert_eq!(*json, expected, "session {i} JSON diverged");
            }
            Reply::Error { id, message } => {
                panic!("session {id} failed server-side: {message}")
            }
            Reply::Ack { id, .. } => panic!("session {id}: stray ack as terminal reply"),
        }
    }
    assert_eq!(engine.stats().sessions_finished, corpus.len() as u64);
}

#[test]
fn binary_corpus_serves_identically_to_text() {
    // Transcode every corpus trace into the v3 binary encoding and serve
    // *those*: the summaries must still be byte-identical to solo sync
    // replays of the text originals — the serve determinism contract is
    // format-blind.
    let text = corpus();
    let solo: Vec<_> = text
        .iter()
        .map(|t| solo_summary(t).expect("corpus traces parse"))
        .collect();
    let binary: Vec<Vec<u8>> = text
        .iter()
        .map(|t| cusan::transcode(&t[..], cusan::TraceFormat::Binary).expect("transcode"))
        .collect();
    for (t, b) in text.iter().zip(&binary) {
        assert!(b.len() < t.len(), "binary twin should be smaller");
    }
    let engine = run_sessions(
        EngineConfig {
            check_threads: Some(2),
            global_page_budget: None,
            ..EngineConfig::default()
        },
        &binary,
        binary.len(),
        89, // prime chunk: feeds split varints and length prefixes mid-record
    );
    assert_eq!(engine.stats().sessions_finished, binary.len() as u64);
    // Binary solo replay agrees with text solo replay too.
    for (b, expected) in binary.iter().zip(&solo) {
        assert_eq!(&solo_summary(b).unwrap(), expected);
    }
}

#[test]
fn bad_streams_fail_cleanly_without_poisoning_the_engine() {
    let engine = ServeEngine::new(EngineConfig::default());

    // Garbage header.
    let mut bad = SessionIngest::new(Arc::clone(&engine));
    assert!(bad.feed(b"not a trace\n").is_err());

    // Valid header, malformed body line.
    let mut bad = SessionIngest::new(Arc::clone(&engine));
    bad.feed(b"cusan-trace v2 rank 0 tiered 1 budget none\n")
        .unwrap();
    let err = bad.feed(b"rr zz 8 0\n").unwrap_err();
    assert!(err.contains("bad hex number"), "got: {err}");

    // Close without a header.
    let empty = SessionIngest::new(Arc::clone(&engine));
    assert!(empty.finish().is_err());

    // The engine still checks good sessions afterwards.
    let mut good = SessionIngest::new(Arc::clone(&engine));
    good.feed(GOLDEN.as_bytes()).unwrap();
    let summary = good.finish().unwrap();
    assert_eq!(summary, solo_summary(GOLDEN).unwrap());
    assert_eq!(engine.stats().sessions_finished, 1);
}
