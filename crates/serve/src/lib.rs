//! # cusan-serve — a multi-session trace-checking service
//!
//! Long-running checking as a service: many clients stream recorded
//! [`cusan`] traces (shard by shard, interleaved) to one server process,
//! which multiplexes every session over a single shared
//! [`cusan::CheckerPool`] and replies with per-session race/report
//! summaries as JSON.
//!
//! The layering (see `DESIGN.md`, "Sessions & the serve path"):
//!
//! ```text
//! TcpListener ──► serve_connection ──► SessionIngest ──► AsyncChecker
//!                       │                   │                 │
//!                       │              TraceLineParser   CheckerPool (shared)
//!                       │                   │                 │
//!                       └── ServeEngine ◄── SharedLabels  CheckSession
//!                             (global shadow budget,
//!                              retained finished sessions)
//! ```
//!
//! Everything downstream of [`SessionIngest`] is the same machinery live
//! instrumentation uses — [`cusan::CheckSession::apply`] behind the
//! work-stealing pool — so a served session's summary is bit-for-bit
//! identical to a solo synchronous replay of the same trace, at any
//! worker count. The determinism tests and the `selftest` binary mode
//! assert this for ≥ 64 concurrent sessions.
//!
//! Since the crash-safety work, that contract extends to *failures*:
//! sessions are owned by the engine and survive their connections (the
//! `R` resume op reattaches and replays from the last acked offset),
//! unfinished idle sessions can be spilled to disk and transparently
//! restored, and a restarted server recovers in-flight sessions from
//! its spill directory. The [`chaos`] harness drives all of it with
//! seeded socket-level fault schedules and asserts the summaries stay
//! byte-identical to solo replay. See `DESIGN.md`, "Failure model &
//! resumption".

pub mod chaos;
pub mod client;
pub mod engine;
pub mod ingest;
pub mod json;
pub mod labels;
pub mod proto;

pub use chaos::{chaos_serve, ChaosOptions, ChaosReport};
pub use client::{check_traces_resilient, RetryPolicy};
pub use engine::{AttachError, EngineConfig, FeedError, ServeEngine, ServeStats};
pub use ingest::SessionIngest;
pub use json::summary_to_json;
pub use labels::SharedLabels;
pub use proto::{check_traces, serve_connection, FrameError, Reply};

use cusan::{CheckSession, SessionOptions, SessionSummary, TraceReader, TraceRecord};
use std::io::BufReader;
use std::net::TcpListener;
use std::sync::Arc;

/// Reference result: replay `trace` (text or binary bytes — the reader
/// sniffs) solo, synchronously, in this thread — the baseline every
/// served session is compared against.
pub fn solo_summary(trace: impl AsRef<[u8]>) -> Result<SessionSummary, String> {
    let mut reader = TraceReader::new(trace.as_ref())?;
    let h = *reader.header();
    let mut session = CheckSession::new(&SessionOptions::for_trace(h.rank, h.tiered, h.budget));
    for rec in &mut reader {
        match rec? {
            TraceRecord::Str { label, .. } => {
                session.intern_shared(&label);
            }
            TraceRecord::Event(ev) => session.apply(&ev),
        }
    }
    Ok(session.into_summary())
}

/// Accept connections on `listener` forever (or until `max_connections`,
/// when given — the selftest's bounded variant), one thread per
/// connection, all sharing `engine`. Per-connection I/O errors are
/// logged, not fatal: one misbehaving client must not take the service
/// down.
pub fn serve_listener(
    engine: Arc<ServeEngine>,
    listener: TcpListener,
    max_connections: Option<usize>,
) -> std::io::Result<()> {
    std::thread::scope(|scope| {
        for (accepted, stream) in listener.incoming().enumerate() {
            let stream = stream?;
            let engine = Arc::clone(&engine);
            scope.spawn(move || {
                let peer = stream
                    .peer_addr()
                    .map_or_else(|_| "<unknown>".to_string(), |a| a.to_string());
                let mut reader = BufReader::new(stream.try_clone().expect("clone TCP stream"));
                let mut writer = stream;
                if let Err(e) = serve_connection(&engine, &mut reader, &mut writer) {
                    eprintln!("cusan-serve: connection from {peer} failed: {e}");
                }
            });
            if max_connections.is_some_and(|max| accepted + 1 >= max) {
                break;
            }
        }
        Ok(())
    })
}
