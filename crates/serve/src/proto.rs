//! The serve wire protocol and connection loop.
//!
//! Length-prefixed frames over any ordered byte stream (TCP, a pipe,
//! stdin): `[u32 BE payload length][payload]`. The payload's first byte
//! is the opcode; session-scoped opcodes follow with the client-chosen
//! session id as a u64 BE. One connection multiplexes any number of
//! concurrent sessions by interleaving their `DATA` frames.
//!
//! | opcode | payload | direction | meaning |
//! |---|---|---|---|
//! | `O` | id | → | open session `id` (must be new) |
//! | `R` | id | → | resume session `id` (attach; created if unknown) |
//! | `D` | id + offset + chunk | → | trace bytes at byte `offset` |
//! | `H` | id | → | heartbeat: keep the idle session alive |
//! | `C` | id | → | close session `id`, requesting its summary |
//! | `Q` | — | → | finish the connection |
//! | `A` | id + acked | ← | ack: bytes accepted so far (reply to `R`/`H`) |
//! | `S` | id + JSON | ← | summary reply for a closed session |
//! | `E` | id + message | ← | per-session error |
//!
//! Chunk boundaries are arbitrary (mid-line splits are fine); frames of
//! one session are ordered, frames of different sessions interleave
//! freely. Checking runs concurrently with ingestion — the reply to `C`
//! is only assembled after the session's event stream has fully drained
//! through the checker pool.
//!
//! ## Failure model
//!
//! `D` frames carry the session-stream byte offset of their first byte,
//! and the server acks (via `A` replies to `R`/`H`) the total bytes it
//! has accepted. A client that loses its connection reconnects, sends
//! `R`, learns the server's `acked` offset, and replays from there —
//! bytes the server already holds are dropped (or prefix-trimmed) by the
//! offset check, so at-least-once delivery over the socket becomes
//! exactly-once delivery into the detector. A session outlives its
//! connection: disconnects *detach* it (the engine keeps or spills it),
//! only `C` or idle expiry ends it. See `DESIGN.md`, "Failure model &
//! resumption".

use crate::engine::{FeedError, ServeEngine};
use crate::json::summary_to_json;
use std::collections::HashSet;
use std::fmt;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Open a session (client → server).
pub const OP_OPEN: u8 = b'O';
/// Resume (attach to) a session, creating it if unknown (client → server).
pub const OP_RESUME: u8 = b'R';
/// Trace bytes for a session at an explicit stream offset (client → server).
pub const OP_DATA: u8 = b'D';
/// Heartbeat: touch an idle session (client → server).
pub const OP_HEARTBEAT: u8 = b'H';
/// Close a session and request its summary (client → server).
pub const OP_CLOSE: u8 = b'C';
/// End the connection (client → server).
pub const OP_QUIT: u8 = b'Q';
/// Acked-offset reply to `R`/`H` (server → client).
pub const OP_ACK: u8 = b'A';
/// Summary reply (server → client).
pub const OP_SUMMARY: u8 = b'S';
/// Per-session error reply (server → client).
pub const OP_ERROR: u8 = b'E';

/// Upper bound on a frame payload; anything larger is a protocol error
/// (the codec must not let a corrupt length prefix allocate gigabytes).
pub const MAX_FRAME: usize = 16 << 20;

/// A typed frame-codec error. Earlier versions folded all of these into
/// raw `io::Error`s (and silently returned `None` for a torn length
/// prefix, indistinguishable from a clean EOF); the chaos harness needs
/// to tell "the peer closed between frames" from "the peer died
/// mid-frame", so the codec names each failure.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix claims more than [`MAX_FRAME`] bytes.
    Oversized {
        /// The claimed payload length.
        len: usize,
    },
    /// EOF after 1–3 bytes of the 4-byte length prefix — a frame was
    /// torn mid-header. (Zero bytes is a clean EOF, not an error.)
    TruncatedLength {
        /// Prefix bytes received before EOF.
        got: usize,
    },
    /// EOF before the announced payload arrived in full.
    TruncatedPayload {
        /// Payload bytes received before EOF.
        got: usize,
        /// Payload bytes the length prefix announced.
        want: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::TruncatedLength { got } => {
                write!(f, "stream ended after {got} of 4 length-prefix bytes")
            }
            FrameError::TruncatedPayload { got, want } => {
                write!(f, "stream ended after {got} of {want} payload bytes")
            }
            FrameError::Io(e) => write!(f, "frame transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Read exactly `buf.len()` bytes, reporting how many arrived if the
/// stream ends early (`read_exact` erases that count, and the torn-frame
/// diagnosis needs it).
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize, io::Error> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary. A
/// partial length prefix, a partial payload, and an oversized length
/// are each distinct typed errors — never conflated with clean EOF.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len = [0u8; 4];
    match read_full(r, &mut len)? {
        0 => return Ok(None),
        4 => {}
        got => return Err(FrameError::TruncatedLength { got }),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len];
    let got = read_full(r, &mut payload)?;
    if got < len {
        return Err(FrameError::TruncatedPayload { got, want: len });
    }
    Ok(Some(payload))
}

fn frame_with_id(op: u8, id: u64, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(9 + body.len());
    f.push(op);
    f.extend_from_slice(&id.to_be_bytes());
    f.extend_from_slice(body);
    f
}

/// An `O` frame.
pub fn open_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_OPEN, id, &[])
}

/// An `R` frame.
pub fn resume_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_RESUME, id, &[])
}

/// A `D` frame: `chunk` starts at session-stream byte `offset`.
pub fn data_frame(id: u64, offset: u64, chunk: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(17 + chunk.len());
    f.push(OP_DATA);
    f.extend_from_slice(&id.to_be_bytes());
    f.extend_from_slice(&offset.to_be_bytes());
    f.extend_from_slice(chunk);
    f
}

/// An `H` frame.
pub fn heartbeat_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_HEARTBEAT, id, &[])
}

/// A `C` frame.
pub fn close_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_CLOSE, id, &[])
}

/// A `Q` frame.
pub fn quit_frame() -> Vec<u8> {
    vec![OP_QUIT]
}

fn parse_id(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 9 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too short for a session id",
        ));
    }
    let id = u64::from_be_bytes(payload[1..9].try_into().expect("9-byte prefix"));
    Ok((id, &payload[9..]))
}

fn parse_data(payload: &[u8]) -> io::Result<(u64, u64, &[u8])> {
    let (id, rest) = parse_id(payload)?;
    if rest.len() < 8 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "data frame too short for a stream offset",
        ));
    }
    let offset = u64::from_be_bytes(rest[..8].try_into().expect("8-byte offset"));
    Ok((id, offset, &rest[8..]))
}

/// A reply frame read back on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `A`: bytes accepted so far for a resumed/heartbeated session.
    Ack {
        /// The client-chosen session id.
        id: u64,
        /// Session-stream bytes the server has accepted.
        acked: u64,
    },
    /// `S`: the session's summary JSON.
    Summary {
        /// The client-chosen session id.
        id: u64,
        /// Single-line summary JSON.
        json: String,
    },
    /// `E`: the session failed server-side.
    Error {
        /// The client-chosen session id.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
}

/// Parse a server reply frame (client side).
pub fn parse_reply(payload: &[u8]) -> io::Result<Reply> {
    let (id, body) = parse_id(payload)?;
    match payload[0] {
        OP_ACK => {
            let acked = body
                .try_into()
                .map(u64::from_be_bytes)
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "malformed ack body"))?;
            Ok(Reply::Ack { id, acked })
        }
        OP_SUMMARY => Ok(Reply::Summary {
            id,
            json: String::from_utf8_lossy(body).into_owned(),
        }),
        OP_ERROR => Ok(Reply::Error {
            id,
            message: String::from_utf8_lossy(body).into_owned(),
        }),
        op => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply opcode {op:#x}"),
        )),
    }
}

fn ack_frame(id: u64, acked: u64) -> Vec<u8> {
    frame_with_id(OP_ACK, id, &acked.to_be_bytes())
}

/// Serve one connection until `Q` or EOF. Sessions are owned by the
/// engine, not the connection: when the connection ends (cleanly or
/// not), every session it attached is *detached* — kept alive for a
/// later resume — rather than dropped. `C` is the only frame that ends
/// a session.
pub fn serve_connection<R: Read, W: Write>(
    engine: &Arc<ServeEngine>,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<()> {
    let mut mine: HashSet<u64> = HashSet::new();
    let result = serve_frames(engine, reader, writer, &mut mine);
    for id in mine {
        engine.detach(id);
    }
    result
}

fn serve_frames<R: Read, W: Write>(
    engine: &Arc<ServeEngine>,
    reader: &mut R,
    writer: &mut W,
    mine: &mut HashSet<u64>,
) -> io::Result<()> {
    while let Some(payload) = read_frame(reader).map_err(io::Error::from)? {
        let Some(&op) = payload.first() else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
        };
        match op {
            OP_QUIT => break,
            OP_OPEN => {
                let (id, _) = parse_id(&payload)?;
                match engine.open_new(id) {
                    Ok(()) => {
                        mine.insert(id);
                    }
                    Err(e) => write_frame(
                        writer,
                        &frame_with_id(OP_ERROR, id, e.to_string().as_bytes()),
                    )?,
                }
            }
            OP_RESUME => {
                let (id, _) = parse_id(&payload)?;
                // A duplicate resume on the same connection (a client
                // retransmit racing its own ack) is a touch, not a
                // second attach.
                let r = if mine.contains(&id) {
                    engine.touch(id)
                } else {
                    engine.resume(id).map_err(|e| e.to_string()).inspect(|_| {
                        mine.insert(id);
                    })
                };
                match r {
                    Ok(acked) => write_frame(writer, &ack_frame(id, acked))?,
                    Err(e) => write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?,
                }
                writer.flush()?;
            }
            OP_HEARTBEAT => {
                let (id, _) = parse_id(&payload)?;
                match engine.touch(id) {
                    Ok(acked) => write_frame(writer, &ack_frame(id, acked))?,
                    Err(e) => write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?,
                }
                writer.flush()?;
            }
            OP_DATA => {
                let (id, offset, chunk) = parse_data(&payload)?;
                match engine.feed(id, offset, chunk) {
                    Ok(_) => {}
                    Err(FeedError::Gap { expected, got }) => {
                        // The session is intact — the client can learn
                        // `expected` from an `R`/`H` and replay.
                        let msg = format!("offset gap: expected {expected}, frame starts at {got}");
                        write_frame(writer, &frame_with_id(OP_ERROR, id, msg.as_bytes()))?;
                        writer.flush()?;
                    }
                    Err(FeedError::Fatal(e)) => {
                        mine.remove(&id);
                        write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?;
                        writer.flush()?;
                    }
                }
            }
            OP_CLOSE => {
                let (id, _) = parse_id(&payload)?;
                mine.remove(&id);
                match engine.close(id) {
                    Ok(summary) => {
                        let json = summary_to_json(id, &summary);
                        write_frame(writer, &frame_with_id(OP_SUMMARY, id, json.as_bytes()))?;
                    }
                    Err(e) => {
                        write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?;
                    }
                }
                writer.flush()?;
            }
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown opcode {op:#x}"),
                ));
            }
        }
    }
    writer.flush()
}

/// Client helper: stream `traces` (id → full trace text) over one
/// connection, interleaving their `DATA` frames round-robin in
/// `chunk`-byte slices, and collect one reply per session. `reader` and
/// `writer` are the two halves of one duplex connection (for TCP, the
/// stream and its `try_clone`); writing runs on a separate thread so a
/// summary-heavy server can never deadlock against an unread reply
/// backlog. For the disconnect-surviving variant, see
/// [`crate::client::check_traces_resilient`].
pub fn check_traces<R, W>(
    mut reader: R,
    mut writer: W,
    traces: &[(u64, Vec<u8>)],
    chunk: usize,
) -> io::Result<Vec<Reply>>
where
    R: Read,
    W: Write + Send,
{
    let chunk = chunk.max(1);
    let expected = traces.len();
    std::thread::scope(|scope| {
        let send = scope.spawn(move || -> io::Result<()> {
            for (id, _) in traces {
                write_frame(&mut writer, &open_frame(*id))?;
            }
            let mut cursors: Vec<(u64, u64, &[u8])> = traces
                .iter()
                .map(|(id, t)| (*id, 0u64, t.as_slice()))
                .collect();
            while cursors.iter().any(|(_, _, rest)| !rest.is_empty()) {
                for (id, sent, rest) in &mut cursors {
                    if rest.is_empty() {
                        continue;
                    }
                    let take = chunk.min(rest.len());
                    write_frame(&mut writer, &data_frame(*id, *sent, &rest[..take]))?;
                    *sent += take as u64;
                    *rest = &rest[take..];
                }
            }
            for (id, _) in traces {
                write_frame(&mut writer, &close_frame(*id))?;
            }
            write_frame(&mut writer, &quit_frame())?;
            writer.flush()
        });
        let mut replies = Vec::with_capacity(expected);
        while replies.len() < expected {
            match read_frame(&mut reader).map_err(io::Error::from)? {
                Some(payload) => replies.push(parse_reply(&payload)?),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "server closed after {} of {expected} replies",
                            replies.len()
                        ),
                    ))
                }
            }
        }
        send.join().expect("client sender panicked")?;
        Ok(replies)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_eof_is_none_not_an_error() {
        let mut empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut empty), Ok(None)));
    }

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &data_frame(7, 42, b"hello")).unwrap();
        write_frame(&mut buf, &quit_frame()).unwrap();
        let mut r: &[u8] = &buf;
        let first = read_frame(&mut r).unwrap().unwrap();
        let (id, offset, chunk) = parse_data(&first).unwrap();
        assert_eq!((id, offset, chunk), (7, 42, &b"hello"[..]));
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), vec![OP_QUIT]);
        assert!(matches!(read_frame(&mut r), Ok(None)));
    }

    #[test]
    fn truncated_length_prefix_is_a_typed_error() {
        // 1–3 bytes of length prefix then EOF: a torn frame header, not
        // a clean EOF (the old codec silently returned Ok(None) here).
        for got in 1..4usize {
            let mut r: &[u8] = &[0u8; 4][..got];
            match read_frame(&mut r) {
                Err(FrameError::TruncatedLength { got: g }) => assert_eq!(g, got),
                other => panic!("prefix of {got}: expected TruncatedLength, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_payload_is_a_typed_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello world").unwrap();
        buf.truncate(buf.len() - 4);
        let mut r: &[u8] = &buf;
        match read_frame(&mut r) {
            Err(FrameError::TruncatedPayload { got, want }) => {
                assert_eq!((got, want), (7, 11));
            }
            other => panic!("expected TruncatedPayload, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        buf.extend_from_slice(b"junk");
        let mut r: &[u8] = &buf;
        match read_frame(&mut r) {
            Err(FrameError::Oversized { len }) => assert_eq!(len, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
        // Exactly at the cap is fine (the payload just isn't there).
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME as u32).to_be_bytes());
        let mut r: &[u8] = &buf;
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::TruncatedPayload { got: 0, .. })
        ));
    }

    #[test]
    fn frame_errors_convert_to_io_invalid_data() {
        let e: io::Error = FrameError::Oversized { len: 1 << 30 }.into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidData);
        let inner = io::Error::new(io::ErrorKind::ConnectionReset, "reset");
        let e: io::Error = FrameError::Io(inner).into();
        assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
    }

    #[test]
    fn ack_replies_parse() {
        let f = ack_frame(9, 1234);
        match parse_reply(&f).unwrap() {
            Reply::Ack { id, acked } => assert_eq!((id, acked), (9, 1234)),
            other => panic!("{other:?}"),
        }
        // Malformed ack body (wrong length) is an error.
        assert!(parse_reply(&frame_with_id(OP_ACK, 9, b"xyz")).is_err());
    }
}
