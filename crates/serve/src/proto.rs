//! The serve wire protocol and connection loop.
//!
//! Length-prefixed frames over any ordered byte stream (TCP, a pipe,
//! stdin): `[u32 BE payload length][payload]`. The payload's first byte
//! is the opcode; session-scoped opcodes follow with the client-chosen
//! session id as a u64 BE. One connection multiplexes any number of
//! concurrent sessions by interleaving their `DATA` frames.
//!
//! | opcode | payload | direction | meaning |
//! |---|---|---|---|
//! | `O` | id | → | open session `id` |
//! | `D` | id + chunk | → | append trace bytes to session `id` |
//! | `C` | id | → | close session `id`, requesting its summary |
//! | `Q` | — | → | finish the connection |
//! | `S` | id + JSON | ← | summary reply for a closed session |
//! | `E` | id + message | ← | per-session error (session is dropped) |
//!
//! Chunk boundaries are arbitrary (mid-line splits are fine); frames of
//! one session are ordered, frames of different sessions interleave
//! freely. Checking runs concurrently with ingestion — the reply to `C`
//! is only assembled after the session's event stream has fully drained
//! through the checker pool.

use crate::engine::ServeEngine;
use crate::ingest::SessionIngest;
use crate::json::summary_to_json;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Open a session (client → server).
pub const OP_OPEN: u8 = b'O';
/// Trace bytes for a session (client → server).
pub const OP_DATA: u8 = b'D';
/// Close a session and request its summary (client → server).
pub const OP_CLOSE: u8 = b'C';
/// End the connection (client → server).
pub const OP_QUIT: u8 = b'Q';
/// Summary reply (server → client).
pub const OP_SUMMARY: u8 = b'S';
/// Per-session error reply (server → client).
pub const OP_ERROR: u8 = b'E';

/// Upper bound on a frame payload; anything larger is a protocol error
/// (the codec must not let a corrupt length prefix allocate gigabytes).
pub const MAX_FRAME: usize = 16 << 20;

/// Write one frame.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)
}

/// Read one frame; `Ok(None)` on clean EOF at a frame boundary.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

fn frame_with_id(op: u8, id: u64, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(9 + body.len());
    f.push(op);
    f.extend_from_slice(&id.to_be_bytes());
    f.extend_from_slice(body);
    f
}

/// An `O` frame.
pub fn open_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_OPEN, id, &[])
}

/// A `D` frame.
pub fn data_frame(id: u64, chunk: &[u8]) -> Vec<u8> {
    frame_with_id(OP_DATA, id, chunk)
}

/// A `C` frame.
pub fn close_frame(id: u64) -> Vec<u8> {
    frame_with_id(OP_CLOSE, id, &[])
}

/// A `Q` frame.
pub fn quit_frame() -> Vec<u8> {
    vec![OP_QUIT]
}

fn parse_id(payload: &[u8]) -> io::Result<(u64, &[u8])> {
    if payload.len() < 9 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame too short for a session id",
        ));
    }
    let id = u64::from_be_bytes(payload[1..9].try_into().expect("9-byte prefix"));
    Ok((id, &payload[9..]))
}

/// A reply frame read back on the client side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `S`: the session's summary JSON.
    Summary {
        /// The client-chosen session id.
        id: u64,
        /// Single-line summary JSON.
        json: String,
    },
    /// `E`: the session failed; it has been dropped server-side.
    Error {
        /// The client-chosen session id.
        id: u64,
        /// Human-readable cause.
        message: String,
    },
}

/// Parse a server reply frame (client side).
pub fn parse_reply(payload: &[u8]) -> io::Result<Reply> {
    let (id, body) = parse_id(payload)?;
    let text = String::from_utf8_lossy(body).into_owned();
    match payload[0] {
        OP_SUMMARY => Ok(Reply::Summary { id, json: text }),
        OP_ERROR => Ok(Reply::Error { id, message: text }),
        op => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unexpected reply opcode {op:#x}"),
        )),
    }
}

/// Serve one connection until `Q` or EOF. Sessions opened on this
/// connection and never closed are dropped without a reply (their
/// checkers drain and unregister on drop; nothing is retained).
pub fn serve_connection<R: Read, W: Write>(
    engine: &Arc<ServeEngine>,
    reader: &mut R,
    writer: &mut W,
) -> io::Result<()> {
    let mut sessions: HashMap<u64, SessionIngest> = HashMap::new();
    while let Some(payload) = read_frame(reader)? {
        let Some(&op) = payload.first() else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame"));
        };
        match op {
            OP_QUIT => break,
            OP_OPEN => {
                let (id, _) = parse_id(&payload)?;
                if sessions.contains_key(&id) {
                    write_frame(
                        writer,
                        &frame_with_id(OP_ERROR, id, b"session id already open"),
                    )?;
                    continue;
                }
                sessions.insert(id, SessionIngest::new(Arc::clone(engine)));
            }
            OP_DATA => {
                let (id, chunk) = parse_id(&payload)?;
                let Some(ingest) = sessions.get_mut(&id) else {
                    write_frame(writer, &frame_with_id(OP_ERROR, id, b"session not open"))?;
                    continue;
                };
                if let Err(e) = ingest.feed(chunk) {
                    sessions.remove(&id);
                    write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?;
                }
            }
            OP_CLOSE => {
                let (id, _) = parse_id(&payload)?;
                let Some(ingest) = sessions.remove(&id) else {
                    write_frame(writer, &frame_with_id(OP_ERROR, id, b"session not open"))?;
                    continue;
                };
                match ingest.finish() {
                    Ok(summary) => {
                        let json = summary_to_json(id, &summary);
                        write_frame(writer, &frame_with_id(OP_SUMMARY, id, json.as_bytes()))?;
                    }
                    Err(e) => {
                        write_frame(writer, &frame_with_id(OP_ERROR, id, e.as_bytes()))?;
                    }
                }
                writer.flush()?;
            }
            op => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown opcode {op:#x}"),
                ));
            }
        }
    }
    writer.flush()
}

/// Client helper: stream `traces` (id → full trace text) over one
/// connection, interleaving their `DATA` frames round-robin in
/// `chunk`-byte slices, and collect one reply per session. `reader` and
/// `writer` are the two halves of one duplex connection (for TCP, the
/// stream and its `try_clone`); writing runs on a separate thread so a
/// summary-heavy server can never deadlock against an unread reply
/// backlog.
pub fn check_traces<R, W>(
    mut reader: R,
    mut writer: W,
    traces: &[(u64, String)],
    chunk: usize,
) -> io::Result<Vec<Reply>>
where
    R: Read,
    W: Write + Send,
{
    let chunk = chunk.max(1);
    let expected = traces.len();
    std::thread::scope(|scope| {
        let send = scope.spawn(move || -> io::Result<()> {
            for (id, _) in traces {
                write_frame(&mut writer, &open_frame(*id))?;
            }
            let mut cursors: Vec<(u64, &[u8])> =
                traces.iter().map(|(id, t)| (*id, t.as_bytes())).collect();
            while cursors.iter().any(|(_, rest)| !rest.is_empty()) {
                for (id, rest) in &mut cursors {
                    if rest.is_empty() {
                        continue;
                    }
                    let take = chunk.min(rest.len());
                    write_frame(&mut writer, &data_frame(*id, &rest[..take]))?;
                    *rest = &rest[take..];
                }
            }
            for (id, _) in traces {
                write_frame(&mut writer, &close_frame(*id))?;
            }
            write_frame(&mut writer, &quit_frame())?;
            writer.flush()
        });
        let mut replies = Vec::with_capacity(expected);
        while replies.len() < expected {
            match read_frame(&mut reader)? {
                Some(payload) => replies.push(parse_reply(&payload)?),
                None => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        format!(
                            "server closed after {} of {expected} replies",
                            replies.len()
                        ),
                    ))
                }
            }
        }
        send.join().expect("client sender panicked")?;
        Ok(replies)
    })
}
