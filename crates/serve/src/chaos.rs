//! The socket-level chaos harness: seeded failure schedules against a
//! real served endpoint, with a byte-identical-summary oracle.
//!
//! [`chaos_serve`] runs one complete adversarial scenario per seed:
//!
//! 1. A real `cusan-serve` endpoint (TCP on localhost) with journaling
//!    and spilling enabled in a private temp directory.
//! 2. A [`crate::client::check_traces_resilient`] client whose frame
//!    writes are perturbed by the seed's [`cusan::NetFault`] schedule —
//!    torn frames, clean disconnects, stalled writes, duplicate resumes.
//! 3. A second, independent schedule (same seed, salted) that decides at
//!    each reconnect whether to **restart the server process state**:
//!    the engine is dropped (taking every resident session with it) and
//!    a fresh one recovers from the spill directory, exactly as a
//!    crashed-and-restarted server would.
//!
//! The oracle is the project's core determinism contract extended to
//! failures: *every* session that completes must produce summary JSON
//! **byte-identical** to a solo, synchronous, in-process replay of the
//! same trace ([`crate::solo_summary`]) — no matter which schedule of
//! disconnects, restarts, and spill evictions it survived. Any
//! divergence fails the run with the seed in hand for replay.
//!
//! Restarts are decided only between client connections (the resilient
//! client is the only traffic source), which mirrors the crash window
//! that matters: bytes are journaled synchronously *before* they are
//! acked, so a crash after an ack can never lose acked bytes.

use crate::client::{check_traces_resilient, RetryPolicy};
use crate::engine::{EngineConfig, ServeEngine, ServeStats};
use crate::proto::Reply;
use crate::{serve_connection, solo_summary, summary_to_json};
use cusan::{FaultInjector, FaultPlan};
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Salt separating the restart schedule from the net-fault schedule
/// drawn from the same seed.
const RESTART_SALT: u64 = 0x7265_7374_6172_7421; // "restart!"

/// Tuning for one chaos scenario.
#[derive(Debug, Clone)]
pub struct ChaosOptions {
    /// Probability that any one client frame write is perturbed.
    pub fault_rate: f64,
    /// Probability that any one reconnect restarts the server state.
    pub restart_rate: f64,
    /// Client chunk size in bytes (small chunks mean more frames, hence
    /// more fault sites).
    pub chunk: usize,
    /// Live-session shadow budget; small values force spill/restore of
    /// mid-trace sessions on every disconnect.
    pub live_page_budget: Option<usize>,
    /// Checker-pool worker override.
    pub check_threads: Option<usize>,
}

impl Default for ChaosOptions {
    fn default() -> Self {
        ChaosOptions {
            fault_rate: 0.05,
            restart_rate: 0.25,
            chunk: 512,
            live_page_budget: Some(0),
            check_threads: None,
        }
    }
}

/// What one seed's scenario did and proved.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The scenario seed.
    pub seed: u64,
    /// Sessions in the corpus, all of which completed with summaries
    /// byte-identical to solo replay.
    pub sessions: usize,
    /// Client frame-write sites visited by the fault schedule.
    pub fault_sites: u64,
    /// Sites that fired (a torn frame, disconnect, stall, or duplicate
    /// resume actually happened).
    pub faults_fired: u64,
    /// Connection attempts the resilient client made (1 = no failures).
    pub connects: u64,
    /// Server-state restarts injected (engine dropped, recovered from
    /// the spill directory).
    pub restarts: u64,
    /// Engine counters accumulated across every server generation.
    pub stats: ServeStats,
}

/// The server side of one scenario: a listener thread serving one
/// connection at a time (the harness's single client never opens more),
/// restartable in place.
struct ChaosServer {
    config: EngineConfig,
    engine: Arc<ServeEngine>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
    /// Counters folded in from generations already torn down.
    folded: ServeStats,
    restarts: u64,
}

impl ChaosServer {
    fn start(config: EngineConfig) -> Result<ChaosServer, String> {
        let engine = ServeEngine::recover(config.clone())
            .map_err(|e| format!("recovering spill dir: {e}"))?;
        let (addr, stop, thread) = ChaosServer::listen(Arc::clone(&engine))?;
        Ok(ChaosServer {
            config,
            engine,
            addr,
            stop,
            thread: Some(thread),
            folded: ServeStats::default(),
            restarts: 0,
        })
    }

    fn listen(
        engine: Arc<ServeEngine>,
    ) -> Result<(SocketAddr, Arc<AtomicBool>, JoinHandle<()>), String> {
        let listener =
            TcpListener::bind("127.0.0.1:0").map_err(|e| format!("binding chaos server: {e}"))?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { break };
                let Ok(clone) = stream.try_clone() else {
                    continue;
                };
                let mut reader = BufReader::new(clone);
                let mut writer = stream;
                // Connection failures are the whole point here; the
                // engine detaches the connection's sessions either way.
                let _ = serve_connection(&engine, &mut reader, &mut writer);
            }
        });
        Ok((addr, stop, thread))
    }

    fn stop_listener(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        if let Ok(s) = TcpStream::connect(self.addr) {
            drop(s);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Simulate a server crash + restart: tear the listener down, drop
    /// the engine (resident sessions and all), recover a fresh engine
    /// from the spill directory, listen again on a new port.
    fn restart(&mut self) -> Result<(), String> {
        self.stop_listener();
        fold_stats(&mut self.folded, self.engine.stats());
        let engine = ServeEngine::recover(self.config.clone())
            .map_err(|e| format!("recovering spill dir: {e}"))?;
        let (addr, stop, thread) = ChaosServer::listen(Arc::clone(&engine))?;
        self.engine = engine;
        self.addr = addr;
        self.stop = stop;
        self.thread = Some(thread);
        self.restarts += 1;
        Ok(())
    }

    fn shutdown(mut self) -> (ServeStats, u64) {
        self.stop_listener();
        let mut total = self.folded;
        fold_stats(&mut total, self.engine.stats());
        (total, self.restarts)
    }
}

/// Accumulate engine counters across server generations: monotone
/// counters add, residency gauges take the last generation's value and
/// the max of peaks.
fn fold_stats(into: &mut ServeStats, gen: ServeStats) {
    into.sessions_opened += gen.sessions_opened;
    into.sessions_finished += gen.sessions_finished;
    into.sessions_evicted += gen.sessions_evicted;
    into.shadow_pages_evicted += gen.shadow_pages_evicted;
    into.resident_pages = gen.resident_pages;
    into.peak_resident_pages = into.peak_resident_pages.max(gen.peak_resident_pages);
    into.labels_unique = gen.labels_unique;
    into.labels_shared += gen.labels_shared;
    into.sessions_resumed += gen.sessions_resumed;
    into.sessions_spilled += gen.sessions_spilled;
    into.sessions_restored += gen.sessions_restored;
    into.sessions_expired += gen.sessions_expired;
    into.duplicate_bytes_dropped += gen.duplicate_bytes_dropped;
}

/// Run one seeded chaos scenario over `corpus` (id → trace text) and
/// verify the oracle (see the module docs). Fails on the first summary
/// that diverges from solo replay, naming the seed and session.
pub fn chaos_serve(
    seed: u64,
    corpus: &[(u64, Vec<u8>)],
    opts: &ChaosOptions,
) -> Result<ChaosReport, String> {
    let spill_dir = std::env::temp_dir().join(format!("cusan-chaos-{}-{seed}", std::process::id()));
    let result = run_scenario(seed, corpus, opts, spill_dir.clone());
    let _ = std::fs::remove_dir_all(&spill_dir);
    result
}

fn run_scenario(
    seed: u64,
    corpus: &[(u64, Vec<u8>)],
    opts: &ChaosOptions,
    spill_dir: PathBuf,
) -> Result<ChaosReport, String> {
    // Solo baselines first: the oracle must not depend on any served
    // state.
    let mut expected = Vec::with_capacity(corpus.len());
    for (id, text) in corpus {
        let summary = solo_summary(text).map_err(|e| format!("solo replay of {id}: {e}"))?;
        expected.push(summary_to_json(*id, &summary));
    }
    let config = EngineConfig {
        check_threads: opts.check_threads,
        live_page_budget: opts.live_page_budget,
        spill_dir: Some(spill_dir),
        // Expiry is exercised by its own unit tests; racing a timer
        // against a seeded schedule would make scenarios seed-unstable.
        idle_timeout: None,
        ..EngineConfig::default()
    };
    let mut server = ChaosServer::start(config)?;
    let net_plan = FaultPlan::with_rate(seed, opts.fault_rate);
    let injector = FaultInjector::new(net_plan);
    let restart_injector =
        FaultInjector::new(FaultPlan::with_rate(seed ^ RESTART_SALT, opts.restart_rate));
    let policy = RetryPolicy {
        max_attempts: 100_000,
        backoff_base: Duration::from_millis(1),
        backoff_cap: Duration::from_millis(5),
    };
    let mut connects = 0u64;
    let replies = {
        let server = &mut server;
        let connects = &mut connects;
        check_traces_resilient(
            move |attempt| {
                *connects += 1;
                // A crashed server is only observable across a client
                // reconnect; decide restarts there (never before the
                // first connection — there is nothing to crash yet).
                if attempt > 0 && restart_injector.next_site().is_some() {
                    server.restart().map_err(std::io::Error::other)?;
                }
                TcpStream::connect(server.addr)
            },
            corpus,
            opts.chunk,
            &injector,
            &policy,
        )
    };
    let replies = match replies {
        Ok(r) => r,
        Err(e) => {
            server.shutdown();
            return Err(format!("seed {seed}: resilient client failed: {e}"));
        }
    };
    let (stats, restarts) = server.shutdown();
    for ((id, _), want) in corpus.iter().zip(&expected) {
        match replies.iter().find(|r| match r {
            Reply::Summary { id: rid, .. } | Reply::Error { id: rid, .. } => rid == id,
            Reply::Ack { id: rid, .. } => rid == id,
        }) {
            Some(Reply::Summary { json, .. }) => {
                if json != want {
                    return Err(format!(
                        "seed {seed}: session {id} summary diverged from solo replay\n \
                         served: {json}\n   solo: {want}"
                    ));
                }
            }
            Some(Reply::Error { message, .. }) => {
                return Err(format!("seed {seed}: session {id} failed: {message}"));
            }
            other => {
                return Err(format!(
                    "seed {seed}: session {id} got no summary ({other:?})"
                ));
            }
        }
    }
    let fault_sites = injector.sites_visited();
    let faults_fired = (0..fault_sites).filter(|s| net_plan.fires_at(*s)).count() as u64;
    Ok(ChaosReport {
        seed,
        sessions: corpus.len(),
        fault_sites,
        faults_fired,
        connects,
        restarts,
        stats,
    })
}
