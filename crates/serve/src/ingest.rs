//! Per-stream trace ingestion.
//!
//! A [`SessionIngest`] turns an incrementally delivered byte stream (a
//! socket's `DATA` frames, a file read in chunks — any framing) into a
//! checked session: it frames *records* — text lines or binary
//! length-delimited frames, sniffed from the magic — with
//! [`cusan::TracePushParser`] and feeds them to an
//! [`cusan::AsyncChecker`] registered with the engine's shared pool.
//! Chunk boundaries are arbitrary (mid-line, mid-varint, mid-code-point
//! splits are all fine). String-table entries are canonicalized through
//! the engine's [`crate::SharedLabels`] before mirroring, so concurrent
//! sessions share label allocations instead of copying them.
//!
//! The apply path is [`cusan::CheckSession::apply`] — the same one live
//! instrumentation and offline replay use — which is what makes a
//! served session's summary bit-for-bit identical to a solo sync replay
//! of the same trace, at any worker count and in either trace format.

use crate::engine::ServeEngine;
use cusan::{
    AsyncChecker, CheckSession, SessionOptions, SessionSummary, TraceItem, TracePushParser,
    TraceRecord,
};
use std::sync::Arc;
use tsan_rt::{SnapshotReader, SnapshotWriter};

enum IngestState {
    /// Nothing decoded yet: the parser is still sniffing/expecting the
    /// header record.
    AwaitHeader,
    /// Header accepted; body records stream into the checker.
    Body { checker: AsyncChecker },
    /// `finish` consumed the checker (or a feed failed fatally).
    Done,
}

/// One client trace stream being checked (see the module docs).
pub struct SessionIngest {
    engine: Arc<ServeEngine>,
    /// Record framing + validation + string table; buffers the
    /// unconsumed tail of the stream (never grows past one record plus
    /// one chunk).
    parser: TracePushParser,
    state: IngestState,
}

impl SessionIngest {
    /// Fresh ingest; the session itself is created lazily when the
    /// header record arrives.
    pub fn new(engine: Arc<ServeEngine>) -> Self {
        SessionIngest {
            engine,
            parser: TracePushParser::new(),
            state: IngestState::AwaitHeader,
        }
    }

    /// Feed one chunk. Chunk boundaries are arbitrary — mid-record
    /// splits of either format are fine (only complete records are
    /// decoded). The first error poisons the ingest.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), String> {
        if matches!(self.state, IngestState::Done) {
            return Err("session already closed".to_string());
        }
        self.parser.feed(chunk);
        self.pump()
    }

    /// Drain every complete record the parser holds into the checker.
    fn pump(&mut self) -> Result<(), String> {
        loop {
            let item = match self.parser.poll() {
                Ok(Some(item)) => item,
                Ok(None) => return Ok(()),
                Err(e) => {
                    self.state = IngestState::Done;
                    return Err(e);
                }
            };
            match item {
                TraceItem::Header(header) => {
                    debug_assert!(matches!(self.state, IngestState::AwaitHeader));
                    let session = CheckSession::new(&SessionOptions::for_trace(
                        header.rank,
                        header.tiered,
                        header.budget,
                    ));
                    let checker = AsyncChecker::with_pool(
                        Arc::clone(self.engine.pool()),
                        session,
                        self.engine.config().check_threads,
                    );
                    self.engine.note_open();
                    self.state = IngestState::Body { checker };
                }
                TraceItem::Record(rec) => {
                    let IngestState::Body { checker } = &self.state else {
                        unreachable!("parser yields records only after the header");
                    };
                    match rec {
                        TraceRecord::Str { label, .. } => {
                            // Mirror the canonical allocation, not the
                            // parser's private one: concurrent sessions
                            // of the same app share label bytes.
                            checker.send_intern_shared(self.engine.labels().canon(&label));
                        }
                        TraceRecord::Event(ev) => checker.send_event(ev),
                    }
                }
            }
        }
    }

    /// Resident shadow pages of the session under check (0 before the
    /// header arrives). Drains the checker first so the answer reflects
    /// every byte fed — budget decisions made on it are deterministic.
    pub fn resident_pages(&self) -> usize {
        match &self.state {
            IngestState::Body { checker } => checker.with_session(|s| s.shadow_pages()),
            _ => 0,
        }
    }

    /// Spill this *unfinished* ingest to a compact byte blob: the full
    /// detector state ([`CheckSession::snapshot_bytes`]) plus the
    /// parser's complete mid-stream state (pending bytes, string table,
    /// position, binary delta state). The checker is drained first, so
    /// the blob captures every byte ever fed; [`SessionIngest::restore`]
    /// rebuilds an ingest that continues bit-for-bit identically to one
    /// that was never spilled. Consumes the ingest — its pool
    /// registration is released, which is the point: spilling frees the
    /// session's entire memory footprint.
    pub fn spill(mut self) -> Result<Vec<u8>, String> {
        let mut w = SnapshotWriter::new();
        match std::mem::replace(&mut self.state, IngestState::Done) {
            IngestState::Done => return Err("session already closed".to_string()),
            IngestState::AwaitHeader => {
                w.put_u8(0);
                self.parser.spill_to(&mut w);
            }
            IngestState::Body { checker } => {
                w.put_u8(1);
                self.parser.spill_to(&mut w);
                let session_blob = checker.with_session(|s| s.snapshot_bytes());
                w.put_bytes(&session_blob);
            }
        }
        Ok(w.into_bytes())
    }

    /// Rebuild an ingest from [`SessionIngest::spill`] output, re-registering
    /// with `engine`'s pool. The restored ingest accepts the byte stream
    /// exactly where the spilled one left off.
    pub fn restore(engine: Arc<ServeEngine>, blob: &[u8]) -> Result<Self, String> {
        let mut r = SnapshotReader::new(blob);
        let err = |e: tsan_rt::SnapshotError| format!("corrupt session spill: {e}");
        let tag = r.get_u8().map_err(err)?;
        let parser = TracePushParser::restore_from(&mut r)
            .map_err(|e| format!("corrupt session spill: {e}"))?;
        let state = match tag {
            0 => IngestState::AwaitHeader,
            1 => {
                let session_blob = r.get_bytes().map_err(err)?;
                let session = CheckSession::restore_bytes(session_blob).map_err(err)?;
                let checker = AsyncChecker::with_pool(
                    Arc::clone(engine.pool()),
                    session,
                    engine.config().check_threads,
                );
                IngestState::Body { checker }
            }
            t => return Err(format!("corrupt session spill: unknown state tag {t}")),
        };
        r.expect_end().map_err(err)?;
        Ok(SessionIngest {
            engine,
            parser,
            state,
        })
    }

    /// Close the stream: drain the checker, snapshot the summary, and
    /// retire the session into the engine (where it becomes evictable
    /// under the global budget). A trailing text line without a final
    /// newline is accepted; a binary stream must end exactly at its
    /// end-of-trace marker or this reports the truncation.
    pub fn finish(mut self) -> Result<SessionSummary, String> {
        if matches!(self.state, IngestState::Done) {
            return Err("session already closed".to_string());
        }
        self.parser.close();
        self.pump().map_err(|e| {
            if e == "empty trace" {
                "empty session: no trace header received".to_string()
            } else {
                e
            }
        })?;
        match std::mem::replace(&mut self.state, IngestState::Done) {
            IngestState::AwaitHeader => Err("empty session: no trace header received".to_string()),
            IngestState::Done => Err("session already closed".to_string()),
            IngestState::Body { checker } => {
                // Summary *before* the session becomes evictable — the
                // eviction-soundness contract (see crate::engine docs).
                let (summary, pages) = checker.with_session(|s| (s.summary(), s.shadow_pages()));
                let handle = checker.session_handle();
                // Unregister from the pool before handing the idle
                // session to the engine: eviction must never contend
                // with a pool worker holding the session lock.
                drop(checker);
                self.engine.finish_session(handle, pages, &summary);
                Ok(summary)
            }
        }
    }
}
