//! Per-stream trace ingestion.
//!
//! A [`SessionIngest`] turns an incrementally delivered byte stream (a
//! socket's `DATA` frames, a file read in chunks — any framing) into a
//! checked session: it buffers up to one partial line, parses complete
//! lines with [`cusan::TraceLineParser`], and feeds the records to an
//! [`cusan::AsyncChecker`] registered with the engine's shared pool.
//! String-table entries are canonicalized through the engine's
//! [`crate::SharedLabels`] before mirroring, so concurrent sessions
//! share label allocations instead of copying them.
//!
//! The apply path is [`cusan::CheckSession::apply`] — the same one live
//! instrumentation and offline replay use — which is what makes a
//! served session's summary bit-for-bit identical to a solo sync replay
//! of the same trace, at any worker count.

use crate::engine::ServeEngine;
use cusan::{
    AsyncChecker, CheckSession, CtxInterner, SessionOptions, SessionSummary, StrId, TraceHeader,
    TraceLineParser, TraceRecord,
};
use std::sync::Arc;
use tsan_rt::{SnapshotReader, SnapshotWriter};

enum IngestState {
    /// Nothing parsed yet: the next complete line must be the header.
    AwaitHeader,
    /// Header accepted; body lines stream into the checker.
    Body {
        checker: AsyncChecker,
        parser: TraceLineParser,
    },
    /// `finish` consumed the checker (or a feed failed fatally).
    Done,
}

/// One client trace stream being checked (see the module docs).
pub struct SessionIngest {
    engine: Arc<ServeEngine>,
    /// Bytes after the last complete line (never grows past one line
    /// plus one chunk).
    pending: Vec<u8>,
    state: IngestState,
}

impl SessionIngest {
    /// Fresh ingest; the session itself is created lazily when the
    /// header line arrives.
    pub fn new(engine: Arc<ServeEngine>) -> Self {
        SessionIngest {
            engine,
            pending: Vec::new(),
            state: IngestState::AwaitHeader,
        }
    }

    /// Feed one chunk. Chunk boundaries are arbitrary — mid-line and
    /// mid-code-point splits are both fine (only complete lines are
    /// decoded). The first error poisons the ingest.
    pub fn feed(&mut self, chunk: &[u8]) -> Result<(), String> {
        self.pending.extend_from_slice(chunk);
        let buf = std::mem::take(&mut self.pending);
        let mut rest: &[u8] = &buf;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let line = &rest[..pos];
            rest = &rest[pos + 1..];
            if let Err(e) = self.take_line(line) {
                self.state = IngestState::Done;
                return Err(e);
            }
        }
        self.pending = rest.to_vec();
        Ok(())
    }

    fn take_line(&mut self, line: &[u8]) -> Result<(), String> {
        let line = std::str::from_utf8(line).map_err(|e| format!("non-UTF-8 trace line: {e}"))?;
        match &mut self.state {
            IngestState::AwaitHeader => {
                let header = TraceHeader::parse(line)?;
                let session = CheckSession::new(&SessionOptions::for_trace(
                    header.rank,
                    header.tiered,
                    header.budget,
                ));
                let checker = AsyncChecker::with_pool(
                    Arc::clone(self.engine.pool()),
                    session,
                    self.engine.config().check_threads,
                );
                self.engine.note_open();
                self.state = IngestState::Body {
                    checker,
                    parser: TraceLineParser::new(),
                };
                Ok(())
            }
            IngestState::Body { checker, parser } => {
                match parser.parse_line(line)? {
                    None => {}
                    Some(TraceRecord::Str { label, .. }) => {
                        // Mirror the canonical allocation, not the
                        // parser's private one: concurrent sessions of
                        // the same app share label bytes.
                        checker.send_intern_shared(self.engine.labels().canon(&label));
                    }
                    Some(TraceRecord::Event(ev)) => checker.send_event(ev),
                }
                Ok(())
            }
            IngestState::Done => Err("session already closed".to_string()),
        }
    }

    /// Resident shadow pages of the session under check (0 before the
    /// header arrives). Drains the checker first so the answer reflects
    /// every byte fed — budget decisions made on it are deterministic.
    pub fn resident_pages(&self) -> usize {
        match &self.state {
            IngestState::Body { checker, .. } => checker.with_session(|s| s.shadow_pages()),
            _ => 0,
        }
    }

    /// Spill this *unfinished* ingest to a compact byte blob: the full
    /// detector state ([`CheckSession::snapshot_bytes`]), the parser's
    /// string table and line position, and the buffered partial line.
    /// The checker is drained first, so the blob captures every byte
    /// ever fed; [`SessionIngest::restore`] rebuilds an ingest that
    /// continues bit-for-bit identically to one that was never spilled.
    /// Consumes the ingest — its pool registration is released, which is
    /// the point: spilling frees the session's entire memory footprint.
    pub fn spill(mut self) -> Result<Vec<u8>, String> {
        let mut w = SnapshotWriter::new();
        match std::mem::replace(&mut self.state, IngestState::Done) {
            IngestState::Done => return Err("session already closed".to_string()),
            IngestState::AwaitHeader => {
                w.put_u8(0);
                w.put_bytes(&self.pending);
            }
            IngestState::Body { checker, parser } => {
                w.put_u8(1);
                w.put_bytes(&self.pending);
                w.put_u64(parser.lineno() as u64);
                let strings = parser.strings();
                w.put_len(strings.len());
                for i in 0..strings.len() {
                    w.put_str(strings.label(StrId(i as u32)));
                }
                let session_blob = checker.with_session(|s| s.snapshot_bytes());
                w.put_bytes(&session_blob);
            }
        }
        Ok(w.into_bytes())
    }

    /// Rebuild an ingest from [`SessionIngest::spill`] output, re-registering
    /// with `engine`'s pool. The restored ingest accepts the byte stream
    /// exactly where the spilled one left off.
    pub fn restore(engine: Arc<ServeEngine>, blob: &[u8]) -> Result<Self, String> {
        let mut r = SnapshotReader::new(blob);
        let err = |e: tsan_rt::SnapshotError| format!("corrupt session spill: {e}");
        let tag = r.get_u8().map_err(err)?;
        let pending = r.get_bytes().map_err(err)?;
        let state = match tag {
            0 => IngestState::AwaitHeader,
            1 => {
                let lineno = r.get_u64().map_err(err)? as usize;
                let n_labels = r.get_len().map_err(err)?;
                let mut strings = CtxInterner::new();
                for i in 0..n_labels {
                    let label = r.get_str().map_err(err)?;
                    if strings.intern(&label) != StrId(i as u32) {
                        return Err(format!(
                            "corrupt session spill: duplicate parser label {label:?}"
                        ));
                    }
                }
                let session_blob = r.get_bytes().map_err(err)?;
                let session = CheckSession::restore_bytes(&session_blob).map_err(err)?;
                let checker = AsyncChecker::with_pool(
                    Arc::clone(engine.pool()),
                    session,
                    engine.config().check_threads,
                );
                IngestState::Body {
                    checker,
                    parser: TraceLineParser::from_parts(strings, lineno),
                }
            }
            t => return Err(format!("corrupt session spill: unknown state tag {t}")),
        };
        r.expect_end().map_err(err)?;
        Ok(SessionIngest {
            engine,
            pending: pending.to_vec(),
            state,
        })
    }

    /// Close the stream: drain the checker, snapshot the summary, and
    /// retire the session into the engine (where it becomes evictable
    /// under the global budget). A trailing line without a final newline
    /// is accepted.
    pub fn finish(mut self) -> Result<SessionSummary, String> {
        if !self.pending.is_empty() {
            let line = std::mem::take(&mut self.pending);
            self.take_line(&line)?;
        }
        match std::mem::replace(&mut self.state, IngestState::Done) {
            IngestState::AwaitHeader => Err("empty session: no trace header received".to_string()),
            IngestState::Done => Err("session already closed".to_string()),
            IngestState::Body { checker, .. } => {
                // Summary *before* the session becomes evictable — the
                // eviction-soundness contract (see crate::engine docs).
                let (summary, pages) = checker.with_session(|s| (s.summary(), s.shadow_pages()));
                let handle = checker.session_handle();
                // Unregister from the pool before handing the idle
                // session to the engine: eviction must never contend
                // with a pool worker holding the session lock.
                drop(checker);
                self.engine.finish_session(handle, pages, &summary);
                Ok(summary)
            }
        }
    }
}
