//! Hand-rolled JSON for session summaries (the workspace is offline, so
//! no serde — same convention as the bench bins).
//!
//! Serialization is deterministic: field order is fixed, reports keep
//! detection order, and the named counter map is a `BTreeMap`. Two equal
//! [`SessionSummary`] values therefore always produce byte-identical
//! JSON — the serve selftest compares served and solo summaries at the
//! JSON level for exactly this reason.

use cusan::SessionSummary;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One summary as a single-line JSON object, tagged with the
/// client-chosen session id.
pub fn summary_to_json(session: u64, s: &SessionSummary) -> String {
    let mut j = String::with_capacity(512);
    let _ = write!(
        j,
        "{{\"session\": {session}, \"rank\": {}, \"race_count\": {}, \"reports\": [",
        s.rank, s.race_count
    );
    for (i, r) in s.reports.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        let _ = write!(
            j,
            "{{\"addr\": \"{:#x}\", \
             \"current\": {{\"write\": {}, \"fiber\": \"{}\", \"ctx\": \"{}\"}}, \
             \"previous\": {{\"write\": {}, \"fiber\": \"{}\", \"ctx\": \"{}\"}}}}",
            r.addr,
            r.current.write,
            esc(&r.current.fiber),
            esc(&r.current.ctx),
            r.previous.write,
            esc(&r.previous.fiber),
            esc(&r.previous.ctx),
        );
    }
    let t = &s.stats;
    let _ = write!(
        j,
        "], \"stats\": {{\
         \"fiber_switches\": {}, \"happens_before\": {}, \"happens_after\": {}, \
         \"read_range_calls\": {}, \"write_range_calls\": {}, \
         \"read_bytes\": {}, \"write_bytes\": {}, \
         \"races_reported\": {}, \"races_deduped\": {}, \
         \"fastpath_hits\": {}, \"page_summaries_stored\": {}, \"page_unfolds\": {}, \
         \"dropped_annotations\": {}, \"arena_pages_reused\": {}, \
         \"arena_slabs_allocated\": {}, \"arena_pages_evicted\": {}}}",
        t.fiber_switches,
        t.happens_before,
        t.happens_after,
        t.read_range_calls,
        t.write_range_calls,
        t.read_bytes,
        t.write_bytes,
        t.races_reported,
        t.races_deduped,
        t.fastpath_hits,
        t.page_summaries_stored,
        t.page_unfolds,
        t.dropped_annotations,
        t.arena_pages_reused,
        t.arena_slabs_allocated,
        t.arena_pages_evicted,
    );
    let c = &s.counters;
    let _ = write!(
        j,
        ", \"counters\": {{\
         \"fiber_creates\": {}, \"fiber_destroys\": {}, \"fiber_switches\": {}, \
         \"sync_switches\": {}, \"happens_before\": {}, \"happens_after\": {}, \
         \"read_range_calls\": {}, \"write_range_calls\": {}, \
         \"read_bytes\": {}, \"write_bytes\": {}, \
         \"allocs\": {}, \"frees\": {}, \
         \"requests_begun\": {}, \"requests_completed\": {}, \"api_faults\": {}, \
         \"named\": {{",
        c.fiber_creates,
        c.fiber_destroys,
        c.fiber_switches,
        c.sync_switches,
        c.happens_before,
        c.happens_after,
        c.read_range_calls,
        c.write_range_calls,
        c.read_bytes,
        c.write_bytes,
        c.allocs,
        c.frees,
        c.requests_begun,
        c.requests_completed,
        c.api_faults,
    );
    for (i, (name, v)) in c.named.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        let _ = write!(j, "\"{}\": {v}", esc(name));
    }
    j.push_str("}}}");
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn equal_summaries_serialize_identically() {
        let s = crate::solo_summary(
            "cusan-trace v2 rank 1 tiered 1 budget none\n\
             s 0 f\nfc 1 0\nfy 1\nwr 1000 64 0\nfs 0\nfd 1\n",
        )
        .unwrap();
        let a = summary_to_json(7, &s);
        let b = summary_to_json(7, &s.clone());
        assert_eq!(a, b);
        assert!(a.starts_with("{\"session\": 7, \"rank\": 1, "), "{a}");
        // Sanity: it is one line and structurally balanced.
        assert!(!a.contains('\n'));
        assert_eq!(
            a.matches('{').count(),
            a.matches('}').count(),
            "balanced: {a}"
        );
    }
}
