//! `cusan-serve` — check recorded traces as a service.
//!
//! ```text
//! cusan-serve listen <addr> [--check-threads N] [--global-budget P]
//!                    [--max-sessions N] [--spill-dir DIR]
//!                    [--live-budget P] [--idle-timeout-ms MS]
//! cusan-serve check <trace-file>... [--check-threads N] [--global-budget P]
//!                    [--serve ADDR] [--retries N] [--backoff-ms MS] [--chunk B]
//! cusan-serve selftest [--sessions N] [--connections C] [--fixture PATH]
//!                      [--check-threads N] [--global-budget P] [--json PATH]
//! cusan-serve chaos [--seeds N] [--base-seed S] [--rate R] [--restart-rate R]
//!                   [--sessions N] [--chunk B] [--live-budget P] [--json PATH]
//! ```
//!
//! * `listen` — serve the frame protocol (see [`cusan_serve::proto`]) on
//!   a TCP address until killed. `--max-sessions` bounds concurrently
//!   open sessions (excess opens get a typed `E` reply); `--spill-dir`
//!   enables journaling, live-session spilling (forced under
//!   `--live-budget`), and restart recovery; `--idle-timeout-ms` starts
//!   a sweeper that expires detached idle sessions.
//! * `check` — check each trace file and print one summary JSON line per
//!   file. Offline through an in-process engine by default; with
//!   `--serve ADDR` the traces stream to a remote server through the
//!   resilient client (resume on disconnect, `--retries` attempts,
//!   capped exponential backoff from `--backoff-ms`).
//! * `selftest` — end-to-end proof: spin up a listener on a loopback
//!   port, stream `--sessions` concurrent sessions (the golden TeaLeaf
//!   fixture plus freshly generated chaos-twin traces, interleaved in
//!   small chunks over `--connections` connections), and assert every
//!   served summary is byte-identical JSON to a solo synchronous replay
//!   of the same trace. With `--global-budget` it additionally asserts
//!   that idle-session eviction fired without changing any race set.
//!   Writes a `BENCH_serve_selftest.json` throughput record (the
//!   `bench_serve` bin owns `BENCH_serve.json`); exits non-zero on any
//!   mismatch. This is the `serve-smoke` CI job.
//! * `chaos` — the failure-mode proof ([`cusan_serve::chaos`]): for each
//!   of `--seeds` seeded schedules, run the full corpus through a real
//!   endpoint under injected torn frames, disconnects, stalls, duplicate
//!   resumes, and server restarts (recovering from the spill directory),
//!   asserting every summary stays byte-identical to solo replay. This
//!   is the `serve-chaos-smoke` CI job.

use cusan_serve::{
    chaos_serve, check_traces, check_traces_resilient, serve_listener, solo_summary,
    summary_to_json, ChaosOptions, EngineConfig, Reply, RetryPolicy, ServeEngine, SessionIngest,
};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The golden TeaLeaf trace recorded by the repo's fixture generator
/// (`tests/data/`): the known-good baseline every selftest run checks.
/// Text bytes; corpus builders transcode it when `CUSAN_TRACE_FORMAT`
/// selects the binary encoding so the whole corpus is uniform.
const GOLDEN_FIXTURE: &str = include_str!("../../../tests/data/tealeaf_small.trace");

struct Options {
    mode: String,
    files: Vec<String>,
    sessions: usize,
    connections: usize,
    chunk: usize,
    fixture: Option<String>,
    check_threads: Option<usize>,
    global_budget: Option<usize>,
    json_path: String,
    max_sessions: Option<usize>,
    spill_dir: Option<String>,
    live_budget: Option<usize>,
    idle_timeout_ms: Option<u64>,
    serve_addr: Option<String>,
    retries: u64,
    backoff_ms: u64,
    seeds: u64,
    base_seed: u64,
    rate: f64,
    restart_rate: f64,
}

fn parse_args() -> Result<Options, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mode = args.first().ok_or_else(usage)?.clone();
    let mut o = Options {
        mode,
        files: Vec::new(),
        sessions: 64,
        connections: 8,
        chunk: 997,
        fixture: None,
        check_threads: None,
        global_budget: None,
        json_path: "BENCH_serve_selftest.json".to_string(),
        max_sessions: None,
        spill_dir: None,
        live_budget: None,
        idle_timeout_ms: None,
        serve_addr: None,
        retries: 16,
        backoff_ms: 10,
        seeds: 32,
        base_seed: 1,
        rate: 0.05,
        restart_rate: 0.25,
    };
    let mut i = 1;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{} needs a value", args[*i - 1]))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--sessions" => o.sessions = num(&value(&mut i)?)?,
            "--connections" => o.connections = num(&value(&mut i)?)?,
            "--chunk" => o.chunk = num(&value(&mut i)?)?,
            "--fixture" => o.fixture = Some(value(&mut i)?),
            "--check-threads" => o.check_threads = Some(num(&value(&mut i)?)?),
            "--global-budget" => o.global_budget = Some(num(&value(&mut i)?)?),
            "--json" => o.json_path = value(&mut i)?,
            "--max-sessions" => o.max_sessions = Some(num(&value(&mut i)?)?),
            "--spill-dir" => o.spill_dir = Some(value(&mut i)?),
            "--live-budget" => o.live_budget = Some(num(&value(&mut i)?)?),
            "--idle-timeout-ms" => o.idle_timeout_ms = Some(num(&value(&mut i)?)? as u64),
            "--serve" => o.serve_addr = Some(value(&mut i)?),
            "--retries" => o.retries = num(&value(&mut i)?)? as u64,
            "--backoff-ms" => o.backoff_ms = num(&value(&mut i)?)? as u64,
            "--seeds" => o.seeds = num(&value(&mut i)?)? as u64,
            "--base-seed" => o.base_seed = num(&value(&mut i)?)? as u64,
            "--rate" => o.rate = fnum(&value(&mut i)?)?,
            "--restart-rate" => o.restart_rate = fnum(&value(&mut i)?)?,
            other => o.files.push(other.to_string()),
        }
        i += 1;
    }
    Ok(o)
}

fn num(s: &str) -> Result<usize, String> {
    s.parse::<usize>()
        .map_err(|e| format!("bad number {s:?}: {e}"))
}

fn fnum(s: &str) -> Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|e| format!("bad rate {s:?}: {e}"))?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("rate {v} outside [0, 1]"));
    }
    Ok(v)
}

fn usage() -> String {
    "usage: cusan-serve <listen <addr> | check <file>... | selftest | chaos> [options]".to_string()
}

fn engine_config(o: &Options) -> EngineConfig {
    EngineConfig {
        check_threads: o.check_threads,
        global_page_budget: o.global_budget,
        live_page_budget: o.live_budget,
        max_sessions: o.max_sessions,
        spill_dir: o.spill_dir.as_ref().map(std::path::PathBuf::from),
        idle_timeout: o.idle_timeout_ms.map(Duration::from_millis),
    }
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("cusan-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let r = match o.mode.as_str() {
        "listen" => run_listen(&o),
        "check" => run_check(&o),
        "selftest" => run_selftest(&o),
        "chaos" => run_chaos(&o),
        _ => Err(usage()),
    };
    match r {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cusan-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run_listen(o: &Options) -> Result<(), String> {
    let addr = o.files.first().ok_or("listen needs an address")?;
    let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = listener.local_addr().map_err(|e| e.to_string())?;
    eprintln!("cusan-serve: listening on {local}");
    let config = engine_config(o);
    // `recover`, not `new`: a restarted server resumes every session its
    // previous incarnation journaled (a no-op without --spill-dir).
    let engine = ServeEngine::recover(config).map_err(|e| format!("recovering spill dir: {e}"))?;
    if let Some(ms) = o.idle_timeout_ms {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || loop {
            std::thread::sleep(Duration::from_millis(ms.clamp(10, 1_000)));
            let n = engine.sweep_idle();
            if n > 0 {
                eprintln!("cusan-serve: expired {n} idle sessions");
            }
        });
    }
    serve_listener(engine, listener, None).map_err(|e| e.to_string())
}

fn run_check(o: &Options) -> Result<(), String> {
    if o.files.is_empty() {
        return Err("check needs at least one trace file".to_string());
    }
    if let Some(addr) = &o.serve_addr {
        return run_check_remote(o, addr);
    }
    let engine = ServeEngine::new(engine_config(o));
    for (i, path) in o.files.iter().enumerate() {
        let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
        let mut ingest = SessionIngest::new(Arc::clone(&engine));
        for chunk in bytes.chunks(64 << 10) {
            ingest.feed(chunk).map_err(|e| format!("{path}: {e}"))?;
        }
        let summary = ingest.finish().map_err(|e| format!("{path}: {e}"))?;
        println!("{}", summary_to_json(i as u64, &summary));
    }
    Ok(())
}

/// `check --serve ADDR`: stream the trace files to a remote server
/// through the resilient client, surviving disconnects and server
/// restarts along the way.
fn run_check_remote(o: &Options, addr: &str) -> Result<(), String> {
    let traces: Vec<(u64, Vec<u8>)> = o
        .files
        .iter()
        .enumerate()
        .map(|(i, path)| {
            std::fs::read(path)
                .map(|t| (i as u64, t))
                .map_err(|e| format!("{path}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    let policy = RetryPolicy {
        max_attempts: o.retries.max(1),
        backoff_base: Duration::from_millis(o.backoff_ms),
        ..RetryPolicy::default()
    };
    let injector = cusan::FaultInjector::new(cusan::FaultPlan::DISABLED);
    let replies = check_traces_resilient(
        |_attempt| TcpStream::connect(addr),
        &traces,
        o.chunk,
        &injector,
        &policy,
    )
    .map_err(|e| format!("{addr}: {e}"))?;
    let mut failed = 0usize;
    for reply in replies {
        match reply {
            Reply::Summary { json, .. } => println!("{json}"),
            Reply::Error { id, message } => {
                eprintln!("cusan-serve: session {id} failed: {message}");
                failed += 1;
            }
            Reply::Ack { .. } => {}
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} traces failed", o.files.len()));
    }
    Ok(())
}

/// The chaos sweep: one full scenario per seed, all of which must hold
/// the byte-identical-summary oracle.
fn run_chaos(o: &Options) -> Result<(), String> {
    let corpus_traces = selftest_corpus(o)?;
    let sessions = if o.sessions == 0 {
        corpus_traces.len()
    } else {
        o.sessions
    };
    let corpus: Vec<(u64, Vec<u8>)> = (0..sessions)
        .map(|i| (i as u64, corpus_traces[i % corpus_traces.len()].clone()))
        .collect();
    let copts = ChaosOptions {
        fault_rate: o.rate,
        restart_rate: o.restart_rate,
        chunk: o.chunk,
        live_page_budget: o.live_budget.or(Some(0)),
        check_threads: o.check_threads,
    };
    let started = Instant::now();
    let (mut connects, mut restarts, mut fired) = (0u64, 0u64, 0u64);
    let (mut resumed, mut spilled, mut restored, mut dup_bytes) = (0u64, 0u64, 0u64, 0u64);
    for seed in o.base_seed..o.base_seed + o.seeds {
        let report = chaos_serve(seed, &corpus, &copts)?;
        println!(
            "seed {seed}: {} sessions ok under {} faults / {} connects / {} restarts \
             (resumed {}, spilled {}, restored {}, dup bytes dropped {})",
            report.sessions,
            report.faults_fired,
            report.connects,
            report.restarts,
            report.stats.sessions_resumed,
            report.stats.sessions_spilled,
            report.stats.sessions_restored,
            report.stats.duplicate_bytes_dropped,
        );
        connects += report.connects;
        restarts += report.restarts;
        fired += report.faults_fired;
        resumed += report.stats.sessions_resumed;
        spilled += report.stats.sessions_spilled;
        restored += report.stats.sessions_restored;
        dup_bytes += report.stats.duplicate_bytes_dropped;
    }
    let elapsed = started.elapsed();
    println!(
        "chaos: {} seeds x {} sessions survived {fired} injected faults and \
         {restarts} server restarts in {elapsed:?}; every summary byte-identical to solo replay",
        o.seeds,
        corpus.len(),
    );
    let json = format!(
        "{{\n  \"benchmark\": \"serve_chaos\",\n  \"seeds\": {},\n  \"base_seed\": {},\n  \
         \"sessions\": {},\n  \"fault_rate\": {},\n  \"restart_rate\": {},\n  \
         \"wall_ns\": {},\n  \"faults_fired\": {fired},\n  \"connects\": {connects},\n  \
         \"restarts\": {restarts},\n  \"sessions_resumed\": {resumed},\n  \
         \"sessions_spilled\": {spilled},\n  \"sessions_restored\": {restored},\n  \
         \"duplicate_bytes_dropped\": {dup_bytes},\n  \"mismatches\": 0\n}}\n",
        o.seeds,
        o.base_seed,
        corpus.len(),
        o.rate,
        o.restart_rate,
        elapsed.as_nanos(),
    );
    let path = if o.json_path == "BENCH_serve_selftest.json" {
        "BENCH_serve_chaos.json"
    } else {
        o.json_path.as_str()
    };
    std::fs::write(path, &json).map_err(|e| format!("{path}: {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// Generate the selftest's trace corpus: the golden fixture plus chaos
/// twins of both mini-apps (every rank of every run contributes one
/// trace, all recorded fresh in this process).
fn selftest_corpus(o: &Options) -> Result<Vec<Vec<u8>>, String> {
    let mut fixture = match &o.fixture {
        Some(path) => std::fs::read(path).map_err(|e| format!("{path}: {e}"))?,
        None => GOLDEN_FIXTURE.as_bytes().to_vec(),
    };
    // Chaos-twin recordings below honor CUSAN_TRACE_FORMAT; transcode a
    // text fixture to match so the corpus is format-uniform.
    if cusan::ctx::trace_format_env() == Some(cusan::TraceFormat::Binary)
        && !fixture.starts_with(cusan::binio::BIN_FAMILY)
    {
        fixture = cusan::transcode(&fixture[..], cusan::TraceFormat::Binary)
            .map_err(|e| format!("transcoding fixture: {e}"))?;
    }
    let mut traces = vec![fixture];
    let base = cusan_apps::ChaosConfig::default();
    let runs = [
        cusan_apps::run_chaos_jacobi(&base, cusan::Flavor::MustCusan),
        cusan_apps::run_chaos_tealeaf(&base, cusan::Flavor::MustCusan),
        cusan_apps::run_chaos_jacobi(
            &cusan_apps::ChaosConfig { iters: 6, ..base },
            cusan::Flavor::MustCusan,
        ),
        cusan_apps::run_chaos_tealeaf(
            &cusan_apps::ChaosConfig { iters: 2, ..base },
            cusan::Flavor::MustCusan,
        ),
    ];
    for out in runs {
        for rank in out.ranks {
            traces.push(rank.trace.ok_or("chaos run was not traced")?);
        }
    }
    Ok(traces)
}

fn run_selftest(o: &Options) -> Result<(), String> {
    let corpus = selftest_corpus(o)?;
    let solo: Vec<_> = corpus.iter().map(solo_summary).collect::<Result<_, _>>()?;

    let engine = ServeEngine::new(engine_config(o));
    let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let connections = o.connections.clamp(1, o.sessions.max(1));
    let server = {
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_listener(engine, listener, Some(connections)))
    };

    // Session id i checks corpus[i % corpus.len()], split round-robin
    // over the connections so each connection multiplexes interleaved
    // sessions.
    let per_conn: Vec<Vec<(u64, Vec<u8>)>> = (0..connections)
        .map(|c| {
            (c..o.sessions)
                .step_by(connections)
                .map(|i| (i as u64, corpus[i % corpus.len()].clone()))
                .collect()
        })
        .collect();

    let started = Instant::now();
    let mut replies: Vec<Reply> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_conn
            .iter()
            .map(|traces| {
                scope.spawn(|| {
                    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
                    let reader = stream.try_clone().map_err(|e| e.to_string())?;
                    check_traces(reader, stream, traces, o.chunk).map_err(|e| e.to_string())
                })
            })
            .collect();
        let mut all = Vec::new();
        for h in handles {
            all.extend(h.join().expect("client thread panicked")?);
        }
        Ok::<_, String>(all)
    })?;
    let elapsed = started.elapsed();
    server
        .join()
        .expect("server thread panicked")
        .map_err(|e| e.to_string())?;

    // Every session must come back as a summary byte-identical to its
    // solo sync replay.
    replies.sort_by_key(|r| match r {
        Reply::Summary { id, .. } | Reply::Error { id, .. } | Reply::Ack { id, .. } => *id,
    });
    let mut mismatches = 0usize;
    for reply in &replies {
        match reply {
            Reply::Ack { id, .. } => {
                eprintln!("session {id}: stray ack counted as a reply");
                mismatches += 1;
            }
            Reply::Error { id, message } => {
                eprintln!("session {id}: server error: {message}");
                mismatches += 1;
            }
            Reply::Summary { id, json } => {
                let expected = summary_to_json(*id, &solo[*id as usize % corpus.len()]);
                if *json != expected {
                    eprintln!("session {id}: served summary differs from solo replay");
                    eprintln!("  served: {json}");
                    eprintln!("  solo:   {expected}");
                    mismatches += 1;
                }
            }
        }
    }
    if replies.len() != o.sessions {
        return Err(format!(
            "got {} replies for {} sessions",
            replies.len(),
            o.sessions
        ));
    }

    let stats = engine.stats();
    if stats.sessions_finished != o.sessions as u64 {
        return Err(format!(
            "engine finished {} of {} sessions",
            stats.sessions_finished, o.sessions
        ));
    }
    if let Some(budget) = o.global_budget {
        if stats.resident_pages > budget as u64 {
            return Err(format!(
                "global budget violated: {} resident pages > {budget}",
                stats.resident_pages
            ));
        }
        if stats.sessions_evicted == 0 {
            return Err("global budget set but no session was evicted \
                        (budget too large for this corpus?)"
                .to_string());
        }
    }

    let events: u64 = replies
        .iter()
        .map(|r| match r {
            Reply::Summary { id, .. } => {
                let c = &solo[*id as usize % corpus.len()].counters;
                c.fiber_creates
                    + c.fiber_destroys
                    + c.fiber_switches
                    + c.happens_before
                    + c.happens_after
                    + c.read_range_calls
                    + c.write_range_calls
                    + c.allocs
                    + c.frees
                    + c.requests_begun
                    + c.requests_completed
                    + c.api_faults
            }
            Reply::Error { .. } | Reply::Ack { .. } => 0,
        })
        .sum();
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "selftest: {} sessions over {} connections, {} distinct traces, {:?} \
         ({:.0} sessions/s, {:.0} events/s)",
        o.sessions,
        connections,
        corpus.len(),
        elapsed,
        o.sessions as f64 / secs,
        events as f64 / secs,
    );
    println!(
        "engine: evicted {} sessions / {} shadow pages, resident {} (peak {}), \
         labels {} unique / {} shared",
        stats.sessions_evicted,
        stats.shadow_pages_evicted,
        stats.resident_pages,
        stats.peak_resident_pages,
        stats.labels_unique,
        stats.labels_shared,
    );

    // Hand-rolled JSON (offline workspace: no serde), same convention as
    // the other bench bins.
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"benchmark\": \"serve\",\n  \"sessions\": {},\n  \"connections\": {},\n  \
         \"distinct_traces\": {},\n  \"check_threads\": {},\n  \"global_budget\": {},\n  \
         \"hw_threads\": {hw},\n  \"wall_ns\": {},\n  \"sessions_per_sec\": {:.1},\n  \
         \"events_per_sec\": {:.0},\n  \"sessions_evicted\": {},\n  \
         \"shadow_pages_evicted\": {},\n  \"peak_resident_pages\": {},\n  \
         \"labels_unique\": {},\n  \"labels_shared\": {},\n  \"mismatches\": {mismatches}\n}}\n",
        o.sessions,
        connections,
        corpus.len(),
        o.check_threads
            .map_or("null".to_string(), |n| n.to_string()),
        o.global_budget
            .map_or("null".to_string(), |n| n.to_string()),
        elapsed.as_nanos(),
        o.sessions as f64 / secs,
        events as f64 / secs,
        stats.sessions_evicted,
        stats.shadow_pages_evicted,
        stats.peak_resident_pages,
        stats.labels_unique,
        stats.labels_shared,
    );
    std::fs::write(&o.json_path, &json).map_err(|e| format!("{}: {e}", o.json_path))?;
    println!("wrote {}", o.json_path);

    if mismatches > 0 {
        return Err(format!(
            "{mismatches} of {} sessions diverged from solo replay",
            o.sessions
        ));
    }
    println!(
        "selftest: all {} served summaries bit-for-bit identical to solo replay",
        o.sessions
    );
    Ok(())
}
