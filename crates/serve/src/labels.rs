//! Cross-session label sharing.
//!
//! Every session keeps its own dense mirror string table (ids are
//! per-trace), but the label *bytes* repeat massively across sessions:
//! all TeaLeaf ranks intern the same `"kernel dot arg#0 … [read]"`
//! strings. [`SharedLabels`] is the process-wide canonicalization map:
//! the first session to present a label donates its `Arc<str>`, every
//! later session gets a clone of that same allocation, and
//! [`cusan::CheckSession::intern_shared`] turns the clone into a table
//! entry with a refcount bump instead of a byte copy.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide canonical label table (see the module docs).
#[derive(Default)]
pub struct SharedLabels {
    map: RwLock<HashMap<Arc<str>, ()>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SharedLabels {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Canonical `Arc` for `label`: the existing entry's allocation if
    /// one exists, otherwise `label` itself becomes the canonical entry
    /// (no copy either way).
    pub fn canon(&self, label: &Arc<str>) -> Arc<str> {
        if let Some((k, ())) = self.map.read().get_key_value(&**label) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(k);
        }
        let mut w = self.map.write();
        // Double-checked: another session may have inserted it between
        // the read unlock and the write lock.
        if let Some((k, ())) = w.get_key_value(&**label) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(k);
        }
        w.insert(Arc::clone(label), ());
        self.misses.fetch_add(1, Ordering::Relaxed);
        Arc::clone(label)
    }

    /// Distinct labels interned so far.
    pub fn unique(&self) -> u64 {
        self.map.read().len() as u64
    }

    /// Lookups satisfied by an existing entry (each hit is one avoided
    /// label copy).
    pub fn shared(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_returns_the_same_allocation() {
        let t = SharedLabels::new();
        let a: Arc<str> = Arc::from("kernel dot arg#0 [read]");
        let b: Arc<str> = Arc::from("kernel dot arg#0 [read]");
        assert!(!Arc::ptr_eq(&a, &b));
        let ca = t.canon(&a);
        let cb = t.canon(&b);
        assert!(Arc::ptr_eq(&ca, &cb), "both resolve to one allocation");
        assert!(Arc::ptr_eq(&ca, &a), "first presenter donates its arc");
        assert_eq!(t.unique(), 1);
        assert_eq!(t.shared(), 1);
    }

    #[test]
    fn distinct_labels_stay_distinct() {
        let t = SharedLabels::new();
        let a = t.canon(&Arc::from("a"));
        let b = t.canon(&Arc::from("b"));
        assert_ne!(&*a, &*b);
        assert_eq!(t.unique(), 2);
        assert_eq!(t.shared(), 0);
    }
}
