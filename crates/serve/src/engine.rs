//! The serve engine: one checker pool, many sessions, one shadow budget.
//!
//! [`ServeEngine`] owns the process-wide pieces every served session
//! shares — a private [`CheckerPool`], the [`SharedLabels`]
//! canonicalization table, the global shadow-page accounting, and (since
//! the crash-safety work) the **live-session registry**: sessions belong
//! to the engine, not to the connection that opened them. A connection
//! *attaches* to a session (`O`/`R` frames) and *detaches* when it ends;
//! the session itself survives until it is closed (`C`), swept as idle,
//! or the process dies — and with a spill directory configured, even
//! process death is survivable.
//!
//! ## The global budget (finished sessions)
//!
//! `global_page_budget` bounds the total shadow pages held by retained
//! *finished* sessions; when a newly finished session pushes the total
//! over, the oldest retained sessions are evicted
//! ([`cusan::CheckSession::evict_shadow`]) until the total fits again.
//! Eviction is *sound by construction*: only finished sessions are
//! candidates, and every summary is snapshotted before its session
//! becomes evictable — so the budget provably cannot change any
//! session's detected race set.
//!
//! ## The live budget (unfinished sessions): spill, don't evict
//!
//! An *unfinished* session's shadow pages encode access history the
//! detector still needs, so they can never be evicted. They can,
//! however, be **spilled**: `live_page_budget` bounds the shadow pages
//! held by *detached* (idle) unfinished sessions, and when the total
//! exceeds it the least-recently-touched ones are serialized to
//! `spill_dir` ([`crate::SessionIngest::spill`]) and dropped from
//! memory. The next frame for a spilled session transparently restores
//! it; the spill codec is exact (canonical snapshots of the full
//! detector state), so a spilled-and-restored session finishes with
//! bit-for-bit the same summary as one that stayed resident — asserted
//! by the differential tests and the chaos soak.
//!
//! ## Journals and restart recovery
//!
//! With `spill_dir` set, every accepted session byte is also appended to
//! an on-disk journal before it is acknowledged. A restarted server
//! ([`ServeEngine::recover`]) re-registers every journaled session as
//! spilled; the first frame restores it from the latest spill (if any)
//! plus the journal tail — or replays the whole journal when the
//! process died before ever spilling. Clients learn the recovered acked
//! offset from the `R` handshake and replay the rest.

use crate::ingest::SessionIngest;
use crate::labels::SharedLabels;
use cusan::{CheckSession, CheckerPool, SessionSummary};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};
use tsan_rt::{SnapshotReader, SnapshotWriter};

/// Magic prefix of an on-disk session spill file.
const SPILL_MAGIC: &[u8; 8] = b"cusanspl";
/// Version of the spill-file layout. v2: the ingest blob's parser
/// section is the format-sniffing [`cusan::TracePushParser`] snapshot
/// (pending bytes + state tag + table + binary delta state) instead of
/// the text-only line-parser layout.
const SPILL_VERSION: u32 = 2;

/// Engine-wide configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Explicit checker-pool worker count (`None`: size from hardware,
    /// exactly like [`cusan::ToolConfig::check_threads`]).
    pub check_threads: Option<usize>,
    /// Global cap on shadow pages retained across *finished* sessions
    /// (`None`: retain everything).
    pub global_page_budget: Option<usize>,
    /// Cap on shadow pages held by *detached unfinished* sessions;
    /// beyond it the least-recently-touched are spilled to `spill_dir`
    /// (`None`, or no `spill_dir`: never spill under pressure).
    pub live_page_budget: Option<usize>,
    /// Cap on concurrently open (unfinished) sessions; opens beyond it
    /// get a typed capacity error (`None`: unlimited).
    pub max_sessions: Option<usize>,
    /// Directory for session spill files and byte journals (`None`:
    /// spilling and restart recovery disabled).
    pub spill_dir: Option<PathBuf>,
    /// Detached sessions idle longer than this are expired by
    /// [`ServeEngine::sweep_idle`] (`None`: never expire).
    pub idle_timeout: Option<Duration>,
}

/// Engine observability counters (a snapshot; see [`ServeEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions opened (fresh `O`/`R` accepted).
    pub sessions_opened: u64,
    /// Sessions finished (closed, summary snapshotted).
    pub sessions_finished: u64,
    /// Finished sessions whose shadow pages were evicted under the
    /// global budget.
    pub sessions_evicted: u64,
    /// Shadow pages reclaimed by those evictions.
    pub shadow_pages_evicted: u64,
    /// Shadow pages currently retained by finished sessions.
    pub resident_pages: u64,
    /// High-water mark of `resident_pages`.
    pub peak_resident_pages: u64,
    /// Distinct labels in the shared table.
    pub labels_unique: u64,
    /// Label interns served from the shared table (avoided copies).
    pub labels_shared: u64,
    /// `R` attaches to an already-existing session (reconnects).
    pub sessions_resumed: u64,
    /// Unfinished sessions serialized to disk under the live budget.
    pub sessions_spilled: u64,
    /// Spilled/journaled sessions transparently restored on a frame.
    pub sessions_restored: u64,
    /// Detached sessions expired by the idle sweeper.
    pub sessions_expired: u64,
    /// Already-accepted bytes re-delivered by clients and dropped by
    /// the offset check (exactly-once enforcement).
    pub duplicate_bytes_dropped: u64,
}

/// Feeding a session can fail recoverably (the client is ahead of the
/// acked offset — it should resync via `R`/`H` and replay) or fatally
/// (the trace itself is malformed — the session is dead).
#[derive(Debug)]
pub enum FeedError {
    /// The frame starts beyond the accepted prefix: bytes are missing.
    Gap {
        /// Bytes accepted so far (the offset the next frame must start at).
        expected: u64,
        /// Offset the rejected frame started at.
        got: u64,
    },
    /// Parse/protocol failure; the session has been dropped.
    Fatal(String),
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::Gap { expected, got } => {
                write!(f, "offset gap: expected {expected}, frame starts at {got}")
            }
            FeedError::Fatal(e) => f.write_str(e),
        }
    }
}

/// Opening or attaching to a session can fail in typed,
/// client-distinguishable ways (the protocol layer maps these onto `E`
/// frames verbatim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachError {
    /// `O` with an id that is already registered.
    AlreadyOpen,
    /// The server is at `max_sessions` capacity.
    AtCapacity,
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::AlreadyOpen => f.write_str("session id already open"),
            AttachError::AtCapacity => f.write_str("server at session capacity"),
        }
    }
}

impl std::error::Error for AttachError {}

/// Where a live session's state currently is.
enum LiveState {
    /// In memory, registered with the checker pool.
    Resident(Box<SessionIngest>),
    /// On disk (spilled under pressure, or journaled by a previous
    /// process); the next frame restores it.
    Spilled,
}

/// One unfinished session in the registry.
struct LiveSession {
    state: LiveState,
    /// Session-stream bytes accepted so far (the resume offset).
    acked: u64,
    /// Connections currently attached (sweep/spill only touch 0).
    attach_count: usize,
    /// Last frame/attach/detach, for idle expiry and spill ordering.
    last_touch: Instant,
}

/// A finished session retained for its warm shadow pages. The checker
/// handle was dropped before the entry was created, so nothing but the
/// engine can be holding the session lock — eviction never contends
/// with a pool worker.
struct Retained {
    handle: Arc<Mutex<CheckSession>>,
    pages: usize,
}

#[derive(Default)]
struct EngineState {
    retained: VecDeque<Retained>,
    resident_pages: usize,
    peak_resident_pages: usize,
    sessions_opened: u64,
    sessions_finished: u64,
    sessions_evicted: u64,
    shadow_pages_evicted: u64,
    sessions_resumed: u64,
    sessions_spilled: u64,
    sessions_restored: u64,
    sessions_expired: u64,
    duplicate_bytes_dropped: u64,
    summaries: Vec<SessionSummary>,
}

/// Shared state of one `cusan-serve` process (see the module docs).
pub struct ServeEngine {
    pool: Arc<CheckerPool>,
    config: EngineConfig,
    labels: SharedLabels,
    state: Mutex<EngineState>,
    /// The live-session registry. Per-session mutexes keep one slow
    /// session's feed from serializing every other connection; the
    /// outer lock covers only map shape changes and lookups.
    live: Mutex<HashMap<u64, Arc<Mutex<LiveSession>>>>,
    /// Self-reference so `&self` methods can hand fresh ingests the
    /// `Arc` they hold (engines only exist inside an `Arc`).
    me: Weak<ServeEngine>,
}

impl ServeEngine {
    /// Engine with a private checker pool (never the global one: a serve
    /// process pins its own worker policy).
    pub fn new(config: EngineConfig) -> Arc<ServeEngine> {
        if let Some(dir) = &config.spill_dir {
            // Best-effort: feed/spill report real errors with context.
            let _ = fs::create_dir_all(dir);
        }
        Arc::new_cyclic(|me| ServeEngine {
            pool: CheckerPool::new(),
            config,
            labels: SharedLabels::new(),
            state: Mutex::new(EngineState::default()),
            live: Mutex::new(HashMap::new()),
            me: me.clone(),
        })
    }

    /// [`ServeEngine::new`], then re-register every session whose spill
    /// file or journal survives in `spill_dir` — the restarted-server
    /// path. Recovered sessions sit on disk until their first frame
    /// (restore is lazy); their acked offset is the journal length, so
    /// a resuming client replays exactly the lost tail.
    pub fn recover(config: EngineConfig) -> std::io::Result<Arc<ServeEngine>> {
        let engine = ServeEngine::new(config);
        let Some(dir) = engine.config.spill_dir.clone() else {
            return Ok(engine);
        };
        let mut live = engine.live.lock();
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            let Some(id) = name
                .strip_prefix("session-")
                .and_then(|n| n.strip_suffix(".journal"))
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            let acked = fs::metadata(&path)?.len();
            live.insert(
                id,
                Arc::new(Mutex::new(LiveSession {
                    state: LiveState::Spilled,
                    acked,
                    attach_count: 0,
                    last_touch: Instant::now(),
                })),
            );
        }
        drop(live);
        Ok(engine)
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared checker pool sessions register with.
    pub fn pool(&self) -> &Arc<CheckerPool> {
        &self.pool
    }

    /// The cross-session label table.
    pub fn labels(&self) -> &SharedLabels {
        &self.labels
    }

    /// Unfinished sessions currently registered (resident or spilled).
    pub fn live_sessions(&self) -> usize {
        self.live.lock().len()
    }

    fn spill_path(&self, id: u64) -> Option<PathBuf> {
        self.config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("session-{id}.spill")))
    }

    fn journal_path(&self, id: u64) -> Option<PathBuf> {
        self.config
            .spill_dir
            .as_ref()
            .map(|d| d.join(format!("session-{id}.journal")))
    }

    fn remove_disk_state(&self, id: u64) {
        if let Some(p) = self.spill_path(id) {
            let _ = fs::remove_file(p);
        }
        if let Some(p) = self.journal_path(id) {
            let _ = fs::remove_file(p);
        }
    }

    /// Open a brand-new session attached to the calling connection.
    pub fn open_new(&self, id: u64) -> Result<(), AttachError> {
        let mut live = self.live.lock();
        if live.contains_key(&id) {
            return Err(AttachError::AlreadyOpen);
        }
        self.insert_fresh_locked(&mut live, id)?;
        drop(live);
        self.state.lock().sessions_opened += 1;
        Ok(())
    }

    /// Insert a fresh attached session under the held registry lock.
    fn insert_fresh_locked(
        &self,
        live: &mut HashMap<u64, Arc<Mutex<LiveSession>>>,
        id: u64,
    ) -> Result<(), AttachError> {
        if self
            .config
            .max_sessions
            .is_some_and(|max| live.len() >= max)
        {
            return Err(AttachError::AtCapacity);
        }
        live.insert(
            id,
            Arc::new(Mutex::new(LiveSession {
                state: LiveState::Resident(Box::new(SessionIngest::new(self.self_arc()))),
                acked: 0,
                attach_count: 1,
                last_touch: Instant::now(),
            })),
        );
        Ok(())
    }

    /// Attach to session `id`, creating it if unknown (the `R` frame).
    /// Returns the acked byte offset the client must resume from.
    ///
    /// The attach bump happens *under the registry lock*: [`sweep_idle`]
    /// removes entries only while holding that lock, so a session
    /// observed here cannot expire before the bump lands — a resume
    /// either fully attaches (and the sweeper then spares it) or finds
    /// no session at all and opens fresh at offset 0. The previous
    /// lookup-then-bump shape lost this race: the sweeper's idle
    /// re-check could not see the late bump, and the client ended up
    /// attached to a ghost whose registry entry and disk state were
    /// already gone.
    ///
    /// [`sweep_idle`]: ServeEngine::sweep_idle
    pub fn resume(&self, id: u64) -> Result<u64, AttachError> {
        let mut live = self.live.lock();
        if let Some(sess) = live.get(&id) {
            let mut s = sess.lock();
            s.attach_count += 1;
            s.last_touch = Instant::now();
            let acked = s.acked;
            drop(s);
            drop(live);
            self.state.lock().sessions_resumed += 1;
            return Ok(acked);
        }
        // Unknown (or just-expired) id: open fresh without releasing the
        // registry lock, so no concurrent open/sweep can interleave.
        self.insert_fresh_locked(&mut live, id)?;
        drop(live);
        self.state.lock().sessions_opened += 1;
        Ok(0)
    }

    /// Touch session `id` (the `H` frame, and duplicate `R`s): refresh
    /// its idle clock, report the acked offset.
    pub fn touch(&self, id: u64) -> Result<u64, String> {
        let sess = self.lookup(id).ok_or("session not open")?;
        let mut s = sess.lock();
        s.last_touch = Instant::now();
        Ok(s.acked)
    }

    fn lookup(&self, id: u64) -> Option<Arc<Mutex<LiveSession>>> {
        self.live.lock().get(&id).map(Arc::clone)
    }

    /// The engine's own `Arc` (ingests hold one). Always upgradable:
    /// engines only exist inside the `Arc` built by [`ServeEngine::new`],
    /// and `&self` proves at least one strong reference is live.
    fn self_arc(&self) -> Arc<ServeEngine> {
        self.me.upgrade().expect("engine outlived its own Arc")
    }

    /// Feed `chunk` at stream `offset` into session `id`, restoring it
    /// from disk first if it was spilled. Returns the new acked offset.
    ///
    /// The offset check turns at-least-once socket delivery into
    /// exactly-once detector delivery: duplicates (whole or partial) are
    /// dropped or prefix-trimmed, gaps are recoverable errors.
    pub fn feed(&self, id: u64, offset: u64, chunk: &[u8]) -> Result<u64, FeedError> {
        let sess = self
            .lookup(id)
            .ok_or_else(|| FeedError::Fatal("session not open".to_string()))?;
        let mut s = sess.lock();
        s.last_touch = Instant::now();
        let acked = s.acked;
        // Offset reconciliation before any expensive work.
        let chunk = if offset == acked {
            chunk
        } else if offset.saturating_add(chunk.len() as u64) <= acked {
            // Entirely already accepted: a retransmit racing its ack.
            self.state.lock().duplicate_bytes_dropped += chunk.len() as u64;
            return Ok(acked);
        } else if offset < acked {
            // Overlapping prefix already accepted: trim it.
            let dup = (acked - offset) as usize;
            self.state.lock().duplicate_bytes_dropped += dup as u64;
            &chunk[dup..]
        } else {
            return Err(FeedError::Gap {
                expected: acked,
                got: offset,
            });
        };
        self.ensure_resident(id, &mut s).map_err(FeedError::Fatal)?;
        // Journal before feeding: a byte must never be acked (and thus
        // skipped by a resuming client) unless a restarted server can
        // re-derive it from disk.
        if let Some(path) = self.journal_path(id) {
            fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .and_then(|mut f| f.write_all(chunk))
                .map_err(|e| FeedError::Fatal(format!("journal {}: {e}", path.display())))?;
        }
        let LiveState::Resident(ingest) = &mut s.state else {
            unreachable!("ensure_resident restored the session");
        };
        match ingest.feed(chunk) {
            Ok(()) => {
                s.acked += chunk.len() as u64;
                Ok(s.acked)
            }
            Err(e) => {
                drop(s);
                self.drop_session(id);
                Err(FeedError::Fatal(e))
            }
        }
    }

    /// Close session `id`: restore it if spilled, finish it, retain it
    /// as a finished session, and clear its disk state.
    pub fn close(&self, id: u64) -> Result<SessionSummary, String> {
        let sess = {
            let mut live = self.live.lock();
            live.remove(&id).ok_or("session not open")?
        };
        let mut s = sess.lock();
        self.ensure_resident(id, &mut s)?;
        let state = std::mem::replace(&mut s.state, LiveState::Spilled);
        drop(s);
        self.remove_disk_state(id);
        let LiveState::Resident(ingest) = state else {
            unreachable!("ensure_resident restored the session");
        };
        ingest.finish()
    }

    /// Detach one connection from session `id` (connection end, clean or
    /// not). The session stays registered; if the live budget is now
    /// exceeded, idle sessions are spilled.
    pub fn detach(&self, id: u64) {
        if let Some(sess) = self.lookup(id) {
            let mut s = sess.lock();
            s.attach_count = s.attach_count.saturating_sub(1);
            s.last_touch = Instant::now();
        }
        self.enforce_live_budget();
    }

    /// Restore a spilled session in place (no-op when resident).
    fn ensure_resident(&self, id: u64, s: &mut LiveSession) -> Result<(), String> {
        if matches!(s.state, LiveState::Resident(_)) {
            return Ok(());
        }
        let engine = self.self_arc();
        let spill_path = self.spill_path(id).ok_or("spilled without a spill dir")?;
        let (mut ingest, restored_to) = match fs::read(&spill_path) {
            Ok(blob) => {
                let (acked_at_spill, ingest_blob) = decode_spill_file(&blob)
                    .map_err(|e| format!("{}: {e}", spill_path.display()))?;
                let ingest = SessionIngest::restore(engine, &ingest_blob)?;
                (ingest, acked_at_spill)
            }
            // No spill file: the journal alone (a crash before any
            // spill) rebuilds the session from byte zero.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => (SessionIngest::new(engine), 0),
            Err(e) => return Err(format!("{}: {e}", spill_path.display())),
        };
        // Replay the journal tail the spill predates.
        if restored_to < s.acked {
            let journal_path = self.journal_path(id).ok_or("journaling disabled")?;
            let journal =
                fs::read(&journal_path).map_err(|e| format!("{}: {e}", journal_path.display()))?;
            if (journal.len() as u64) < s.acked {
                return Err(format!(
                    "journal holds {} of {} acked bytes",
                    journal.len(),
                    s.acked
                ));
            }
            ingest.feed(&journal[restored_to as usize..s.acked as usize])?;
        }
        s.state = LiveState::Resident(Box::new(ingest));
        self.state.lock().sessions_restored += 1;
        Ok(())
    }

    /// Spill session `id` to disk if it is registered, resident, and
    /// detached. Returns whether it was spilled. Public for tests and
    /// operational tooling; budget pressure calls it internally.
    pub fn spill_session(&self, id: u64) -> Result<bool, String> {
        let spill_path = match self.spill_path(id) {
            Some(p) => p,
            None => return Ok(false),
        };
        let Some(sess) = self.lookup(id) else {
            return Ok(false);
        };
        let mut s = sess.lock();
        if s.attach_count > 0 || matches!(s.state, LiveState::Spilled) {
            return Ok(false);
        }
        let LiveState::Resident(ingest) = std::mem::replace(&mut s.state, LiveState::Spilled)
        else {
            unreachable!("checked resident above");
        };
        let acked = s.acked;
        match ingest.spill() {
            Ok(blob) => {
                let file = encode_spill_file(acked, &blob);
                fs::write(&spill_path, file)
                    .map_err(|e| format!("{}: {e}", spill_path.display()))?;
                drop(s);
                self.state.lock().sessions_spilled += 1;
                Ok(true)
            }
            Err(e) => Err(e),
        }
    }

    /// Spill least-recently-touched detached sessions until their total
    /// shadow-page residency fits `live_page_budget`.
    fn enforce_live_budget(&self) {
        let Some(budget) = self.config.live_page_budget else {
            return;
        };
        if self.config.spill_dir.is_none() {
            return;
        }
        // Snapshot candidates without holding the registry lock across
        // session locks.
        let entries: Vec<(u64, Arc<Mutex<LiveSession>>)> = self
            .live
            .lock()
            .iter()
            .map(|(id, s)| (*id, Arc::clone(s)))
            .collect();
        let mut idle: Vec<(Instant, u64, usize)> = Vec::new();
        let mut total = 0usize;
        for (id, sess) in &entries {
            let s = sess.lock();
            if let LiveState::Resident(ingest) = &s.state {
                if s.attach_count == 0 {
                    let pages = ingest.resident_pages();
                    total += pages;
                    idle.push((s.last_touch, *id, pages));
                }
            }
        }
        if total <= budget {
            return;
        }
        idle.sort_by_key(|(touch, id, _)| (*touch, *id));
        for (_, id, pages) in idle {
            if total <= budget {
                break;
            }
            match self.spill_session(id) {
                Ok(true) => total -= pages,
                Ok(false) => {}
                Err(e) => eprintln!("cusan-serve: spilling session {id}: {e}"),
            }
        }
    }

    /// Expire detached sessions idle longer than the configured timeout
    /// (their disk state is removed too — an expired session is gone).
    /// Returns how many were expired. No-op without an `idle_timeout`.
    pub fn sweep_idle(&self) -> usize {
        let Some(timeout) = self.config.idle_timeout else {
            return 0;
        };
        let now = Instant::now();
        let expired: Vec<u64> = {
            let live = self.live.lock();
            live.iter()
                .filter(|(_, sess)| {
                    let s = sess.lock();
                    s.attach_count == 0 && now.duration_since(s.last_touch) >= timeout
                })
                .map(|(id, _)| *id)
                .collect()
        };
        let mut n = 0;
        for id in expired {
            // Re-check under the registry lock — the same lock `resume`
            // holds across its attach bump, so this check and the
            // removal below are atomic against attaches: a session that
            // re-attached (or was merely touched) since the scan is
            // spared. The clock is re-read so a touch after the scan
            // resets idleness instead of being compared against a stale
            // `now`.
            let removed = {
                let mut live = self.live.lock();
                let now = Instant::now();
                let still_idle = live.get(&id).is_some_and(|sess| {
                    let s = sess.lock();
                    s.attach_count == 0 && now.duration_since(s.last_touch) >= timeout
                });
                if still_idle {
                    live.remove(&id)
                } else {
                    None
                }
            };
            if removed.is_some() {
                self.remove_disk_state(id);
                self.state.lock().sessions_expired += 1;
                n += 1;
            }
        }
        n
    }

    /// Drop a session without finishing it (fatal feed errors).
    fn drop_session(&self, id: u64) {
        self.live.lock().remove(&id);
        self.remove_disk_state(id);
    }

    /// Record a session open (header accepted). Retained for the ingest
    /// paths that bypass the registry (`check` offline mode, tests).
    pub(crate) fn note_open(&self) {
        self.state.lock().sessions_opened += 1;
    }

    /// Hand a finished session to the engine: record its summary, retain
    /// its shadow pages, and enforce the global budget by evicting the
    /// oldest retained sessions first. `handle` must no longer have a
    /// registered checker (the ingest drops it first).
    pub(crate) fn finish_session(
        &self,
        handle: Arc<Mutex<CheckSession>>,
        pages: usize,
        summary: &SessionSummary,
    ) {
        let mut st = self.state.lock();
        st.sessions_finished += 1;
        st.summaries.push(summary.clone());
        st.resident_pages += pages;
        st.retained.push_back(Retained { handle, pages });
        if let Some(budget) = self.config.global_page_budget {
            while st.resident_pages > budget {
                let Some(oldest) = st.retained.pop_front() else {
                    break;
                };
                let evicted = oldest.handle.lock().evict_shadow();
                st.resident_pages -= oldest.pages;
                st.sessions_evicted += 1;
                st.shadow_pages_evicted += evicted as u64;
            }
        }
        st.peak_resident_pages = st.peak_resident_pages.max(st.resident_pages);
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> ServeStats {
        let st = self.state.lock();
        ServeStats {
            sessions_opened: st.sessions_opened,
            sessions_finished: st.sessions_finished,
            sessions_evicted: st.sessions_evicted,
            shadow_pages_evicted: st.shadow_pages_evicted,
            resident_pages: st.resident_pages as u64,
            peak_resident_pages: st.peak_resident_pages as u64,
            labels_unique: self.labels.unique(),
            labels_shared: self.labels.shared(),
            sessions_resumed: st.sessions_resumed,
            sessions_spilled: st.sessions_spilled,
            sessions_restored: st.sessions_restored,
            sessions_expired: st.sessions_expired,
            duplicate_bytes_dropped: st.duplicate_bytes_dropped,
        }
    }

    /// All finished sessions' summaries, in finish order.
    pub fn summaries(&self) -> Vec<SessionSummary> {
        self.state.lock().summaries.clone()
    }
}

fn encode_spill_file(acked: u64, ingest_blob: &[u8]) -> Vec<u8> {
    let mut w = SnapshotWriter::new();
    w.put_raw(SPILL_MAGIC);
    w.put_u32(SPILL_VERSION);
    w.put_u64(acked);
    w.put_bytes(ingest_blob);
    w.into_bytes()
}

fn decode_spill_file(bytes: &[u8]) -> Result<(u64, Vec<u8>), String> {
    let mut r = SnapshotReader::new(bytes);
    let err = |e: tsan_rt::SnapshotError| format!("corrupt spill file: {e}");
    if r.get_raw(SPILL_MAGIC.len()).map_err(err)? != SPILL_MAGIC {
        return Err("corrupt spill file: bad magic".to_string());
    }
    let version = r.get_u32().map_err(err)?;
    if version != SPILL_VERSION {
        return Err(format!("unsupported spill version {version}"));
    }
    let acked = r.get_u64().map_err(err)?;
    let blob = r.get_bytes().map_err(err)?;
    r.expect_end().map_err(err)?;
    Ok((acked, blob.to_vec()))
}
