//! The serve engine: one checker pool, many sessions, one shadow budget.
//!
//! [`ServeEngine`] owns the process-wide pieces every served session
//! shares — a private [`CheckerPool`], the [`SharedLabels`]
//! canonicalization table, and the global shadow-page accounting. Each
//! client stream gets a [`crate::SessionIngest`] that registers its own
//! [`cusan::CheckSession`] with the pool; when the stream closes, the
//! session's summary is snapshotted and the (now idle) session is
//! *retained* so its warm shadow pages and reports stick around for
//! post-hoc inspection.
//!
//! ## The global budget
//!
//! Retention is what the budget caps. `global_page_budget` bounds the
//! total shadow pages held by retained finished sessions; when a newly
//! finished session pushes the total over, the oldest retained sessions
//! are evicted ([`cusan::CheckSession::evict_shadow`]) until the total
//! fits again. Eviction is *sound by construction*: only finished
//! sessions are candidates (a live session's shadow encodes access
//! history the detector still needs), and every summary is snapshotted
//! before its session becomes evictable — so the budget provably cannot
//! change any session's detected race set, only the residency of its
//! dead shadow pages. The determinism tests assert exactly this.

use crate::labels::SharedLabels;
use cusan::{CheckSession, CheckerPool, SessionSummary};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Engine-wide configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineConfig {
    /// Explicit checker-pool worker count (`None`: size from hardware,
    /// exactly like [`cusan::ToolConfig::check_threads`]).
    pub check_threads: Option<usize>,
    /// Global cap on shadow pages retained across *finished* sessions
    /// (`None`: retain everything).
    pub global_page_budget: Option<usize>,
}

/// Engine observability counters (a snapshot; see [`ServeEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Sessions opened (header accepted).
    pub sessions_opened: u64,
    /// Sessions finished (stream closed, summary snapshotted).
    pub sessions_finished: u64,
    /// Finished sessions whose shadow pages were evicted under the
    /// global budget.
    pub sessions_evicted: u64,
    /// Shadow pages reclaimed by those evictions.
    pub shadow_pages_evicted: u64,
    /// Shadow pages currently retained by finished sessions.
    pub resident_pages: u64,
    /// High-water mark of `resident_pages`.
    pub peak_resident_pages: u64,
    /// Distinct labels in the shared table.
    pub labels_unique: u64,
    /// Label interns served from the shared table (avoided copies).
    pub labels_shared: u64,
}

/// A finished session retained for its warm shadow pages. The checker
/// handle was dropped before the entry was created, so nothing but the
/// engine can be holding the session lock — eviction never contends
/// with a pool worker.
struct Retained {
    handle: Arc<Mutex<CheckSession>>,
    pages: usize,
}

#[derive(Default)]
struct EngineState {
    retained: VecDeque<Retained>,
    resident_pages: usize,
    peak_resident_pages: usize,
    sessions_opened: u64,
    sessions_finished: u64,
    sessions_evicted: u64,
    shadow_pages_evicted: u64,
    summaries: Vec<SessionSummary>,
}

/// Shared state of one `cusan-serve` process (see the module docs).
pub struct ServeEngine {
    pool: Arc<CheckerPool>,
    config: EngineConfig,
    labels: SharedLabels,
    state: Mutex<EngineState>,
}

impl ServeEngine {
    /// Engine with a private checker pool (never the global one: a serve
    /// process pins its own worker policy).
    pub fn new(config: EngineConfig) -> Arc<ServeEngine> {
        Arc::new(ServeEngine {
            pool: CheckerPool::new(),
            config,
            labels: SharedLabels::new(),
            state: Mutex::new(EngineState::default()),
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The shared checker pool sessions register with.
    pub fn pool(&self) -> &Arc<CheckerPool> {
        &self.pool
    }

    /// The cross-session label table.
    pub fn labels(&self) -> &SharedLabels {
        &self.labels
    }

    /// Record a session open (header accepted).
    pub(crate) fn note_open(&self) {
        self.state.lock().sessions_opened += 1;
    }

    /// Hand a finished session to the engine: record its summary, retain
    /// its shadow pages, and enforce the global budget by evicting the
    /// oldest retained sessions first. `handle` must no longer have a
    /// registered checker (the ingest drops it first).
    pub(crate) fn finish_session(
        &self,
        handle: Arc<Mutex<CheckSession>>,
        pages: usize,
        summary: &SessionSummary,
    ) {
        let mut st = self.state.lock();
        st.sessions_finished += 1;
        st.summaries.push(summary.clone());
        st.resident_pages += pages;
        st.retained.push_back(Retained { handle, pages });
        if let Some(budget) = self.config.global_page_budget {
            while st.resident_pages > budget {
                let Some(oldest) = st.retained.pop_front() else {
                    break;
                };
                let evicted = oldest.handle.lock().evict_shadow();
                st.resident_pages -= oldest.pages;
                st.sessions_evicted += 1;
                st.shadow_pages_evicted += evicted as u64;
            }
        }
        st.peak_resident_pages = st.peak_resident_pages.max(st.resident_pages);
    }

    /// Snapshot of the engine counters.
    pub fn stats(&self) -> ServeStats {
        let st = self.state.lock();
        ServeStats {
            sessions_opened: st.sessions_opened,
            sessions_finished: st.sessions_finished,
            sessions_evicted: st.sessions_evicted,
            shadow_pages_evicted: st.shadow_pages_evicted,
            resident_pages: st.resident_pages as u64,
            peak_resident_pages: st.peak_resident_pages as u64,
            labels_unique: self.labels.unique(),
            labels_shared: self.labels.shared(),
        }
    }

    /// All finished sessions' summaries, in finish order.
    pub fn summaries(&self) -> Vec<SessionSummary> {
        self.state.lock().summaries.clone()
    }
}
