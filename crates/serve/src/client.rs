//! The disconnect-surviving client: resume, replay, retry.
//!
//! [`check_traces_resilient`] streams a batch of traces like
//! [`crate::check_traces`], but survives the connection dying at any
//! point: it reconnects (with capped exponential backoff), sends `R` for
//! every unfinished session, learns each session's server-side acked
//! offset from the `A` replies, rewinds its cursors to those offsets,
//! and replays from there. The server's offset check drops whatever it
//! already accepted, so no byte is ever double-counted and no byte is
//! ever lost — each completed session's summary is byte-identical to an
//! uninterrupted run, which the chaos harness asserts under seeded
//! fault schedules.
//!
//! Fault injection lives *in this client*: each `D` frame write is one
//! site of a [`cusan::FaultInjector`] schedule, and a firing site
//! perturbs the write ([`cusan::NetFault`] decides how — torn frame,
//! clean disconnect, stalled write, duplicate resume). The injector's
//! site counter persists across reconnects, so one seed names one
//! complete failure schedule for the whole batch.

use crate::proto::{
    close_frame, data_frame, parse_reply, quit_frame, read_frame, resume_frame, write_frame, Reply,
};
use cusan::{FaultInjector, NetFault};
use std::collections::HashMap;
use std::io::{self, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Reconnect behavior of [`check_traces_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Connection attempts before giving up (including the first).
    pub max_attempts: u64,
    /// Backoff before reconnect attempt `n` is `base * 2^(n-1)`…
    pub backoff_base: Duration,
    /// …capped here.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 16,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    fn backoff(&self, attempt: u64) -> Duration {
        let factor = 1u32 << attempt.min(16) as u32;
        (self.backoff_base * factor).min(self.backoff_cap)
    }
}

/// One session's client-side progress.
struct Cursor<'t> {
    id: u64,
    trace: &'t [u8],
    /// Next byte to send (rewound to the server's acked offset at every
    /// resume handshake).
    sent: u64,
}

/// Stream `traces` to a server, surviving disconnects and restarts.
///
/// `connect` is called for every connection attempt (with the attempt
/// index) and returns a fresh stream — the chaos harness uses the
/// callback to restart the server between attempts. `faults` drives the
/// client-side fault injection (pass [`cusan::FaultPlan::DISABLED`] for
/// none). Returns one terminal reply ([`Reply::Summary`] or
/// [`Reply::Error`]) per trace, in input order.
pub fn check_traces_resilient(
    mut connect: impl FnMut(u64) -> io::Result<TcpStream>,
    traces: &[(u64, Vec<u8>)],
    chunk: usize,
    faults: &FaultInjector,
    policy: &RetryPolicy,
) -> io::Result<Vec<Reply>> {
    let chunk = chunk.max(1);
    let mut cursors: Vec<Cursor> = traces
        .iter()
        .map(|(id, t)| Cursor {
            id: *id,
            trace: t.as_slice(),
            sent: 0,
        })
        .collect();
    let mut terminal: HashMap<u64, Reply> = HashMap::new();
    let mut attempt = 0u64;
    loop {
        let stream = match connect(attempt) {
            Ok(s) => s,
            Err(e) => {
                attempt += 1;
                if attempt >= policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(attempt));
                continue;
            }
        };
        match run_episode(stream, &mut cursors, &mut terminal, chunk, faults) {
            Ok(()) => {
                return Ok(traces
                    .iter()
                    .map(|(id, _)| terminal.remove(id).expect("episode left a session behind"))
                    .collect());
            }
            Err(e) => {
                attempt += 1;
                if attempt >= policy.max_attempts {
                    return Err(e);
                }
                std::thread::sleep(policy.backoff(attempt));
            }
        }
    }
}

/// One connection's worth of progress. `Ok(())` means every session has
/// a terminal reply; `Err` means the connection died (possibly by our
/// own injected fault) and the caller should reconnect and call again.
fn run_episode(
    stream: TcpStream,
    cursors: &mut [Cursor],
    terminal: &mut HashMap<u64, Reply>,
    chunk: usize,
    faults: &FaultInjector,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    // Resume handshake: attach every unfinished session, rewind its
    // cursor to what the server actually holds. A session the server
    // expired (or never saw, or lost to a restart with an empty journal)
    // acks 0 and is resent in full — same summary either way.
    let open: Vec<u64> = cursors
        .iter()
        .filter(|c| !terminal.contains_key(&c.id))
        .map(|c| c.id)
        .collect();
    if open.is_empty() {
        return Ok(());
    }
    for id in &open {
        write_frame(&mut writer, &resume_frame(*id))?;
    }
    writer.flush()?;
    let mut awaiting = open.len();
    while awaiting > 0 {
        match read_reply(&mut reader)? {
            Reply::Ack { id, acked } => {
                if let Some(c) = cursors.iter_mut().find(|c| c.id == id) {
                    c.sent = acked.min(c.trace.len() as u64);
                }
                awaiting -= 1;
            }
            reply => {
                record_terminal(terminal, reply);
                awaiting -= 1;
            }
        }
    }
    // Data phase: round-robin D frames, one injector site per frame.
    loop {
        let mut progressed = false;
        for c in cursors.iter_mut() {
            if terminal.contains_key(&c.id) || c.sent >= c.trace.len() as u64 {
                continue;
            }
            let rest = c.trace.len() as u64 - c.sent;
            let (id, sent, take) = (c.id, c.sent, chunk.min(rest as usize));
            let frame = data_frame(id, sent, &c.trace[sent as usize..sent as usize + take]);
            match faults.next_net_fault() {
                None => write_frame(&mut writer, &frame)?,
                Some(NetFault::StalledWrite) => {
                    std::thread::sleep(Duration::from_millis(20));
                    write_frame(&mut writer, &frame)?;
                }
                Some(NetFault::DuplicateResume) => {
                    // A retransmitted handshake racing its own ack: the
                    // extra A is absorbed by the close-phase read loop.
                    write_frame(&mut writer, &resume_frame(id))?;
                    write_frame(&mut writer, &frame)?;
                }
                Some(NetFault::TornFrame) => {
                    // Die mid-frame: ship a prefix, then drop the socket.
                    let mut encoded = Vec::with_capacity(4 + frame.len());
                    write_frame(&mut encoded, &frame)?;
                    let torn = &encoded[..encoded.len() / 2];
                    writer.write_all(torn)?;
                    writer.flush()?;
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected: torn frame",
                    ));
                }
                Some(NetFault::Disconnect) => {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionAborted,
                        "injected: disconnect",
                    ));
                }
            }
            c.sent = sent + take as u64;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
    // Close phase: request a summary for every fully-sent session, then
    // read until each has its terminal reply (absorbing stray acks from
    // duplicate resumes along the way).
    let mut want = 0usize;
    for c in cursors.iter() {
        if !terminal.contains_key(&c.id) {
            write_frame(&mut writer, &close_frame(c.id))?;
            want += 1;
        }
    }
    write_frame(&mut writer, &quit_frame())?;
    writer.flush()?;
    while want > 0 {
        match read_reply(&mut reader)? {
            Reply::Ack { .. } => {}
            reply => {
                if record_terminal(terminal, reply) {
                    want -= 1;
                }
            }
        }
    }
    Ok(())
}

fn read_reply<R: Read>(reader: &mut R) -> io::Result<Reply> {
    match read_frame(reader).map_err(io::Error::from)? {
        Some(payload) => parse_reply(&payload),
        None => Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "server closed mid-conversation",
        )),
    }
}

/// Record a terminal reply; the first one a session gets wins (a fatal
/// feed error's `E` beats the later close's "session not open"). Returns
/// whether this reply was newly recorded.
fn record_terminal(terminal: &mut HashMap<u64, Reply>, reply: Reply) -> bool {
    let id = match &reply {
        Reply::Summary { id, .. } | Reply::Error { id, .. } => *id,
        Reply::Ack { .. } => unreachable!("acks are filtered by the callers"),
    };
    use std::collections::hash_map::Entry;
    match terminal.entry(id) {
        Entry::Occupied(_) => false,
        Entry::Vacant(v) => {
            v.insert(reply);
            true
        }
    }
}
