//! The TeaLeaf-style heat-conduction mini-app (paper §V).
//!
//! One implicit diffusion step `(I + Δt·L) u = b` solved with conjugate
//! gradients on the 5-point Laplacian, row-decomposed across ranks. The
//! communication structure follows TeaLeaf: per CG iteration the search
//! direction's halo rows are exchanged with **non-blocking**
//! `MPI_Isend`/`MPI_Irecv` pairs completed by `MPI_Waitall`, two scalar
//! reductions go through a device→host copy plus `MPI_Allreduce`, and all
//! kernels run on the **default stream only** (Table I: TeaLeaf has one
//! stream).
//!
//! [`RaceMode::SkipSyncBeforeExchange`] removes the `cudaDeviceSynchronize`
//! between the `xpay` kernel that updates `p` and the non-blocking
//! exchange that reads it — an MPI-to-CUDA race with observably stale
//! halos.

use crate::kernels::AppKernels;
use crate::RaceMode;
use cuda_sim::{CopyKind, StreamId};
use cusan::ToolConfig;
use kernel_ir::{KernelId, LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, ReduceOp};
use must_rt::{run_checked_world, run_checked_world_traced, RankCtx, WorldOutcome};
use sim_mem::Ptr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// TeaLeaf configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TeaLeafConfig {
    /// Global columns.
    pub nx: u64,
    /// Global interior rows; must divide by `ranks`.
    pub ny: u64,
    /// MPI ranks.
    pub ranks: usize,
    /// Outer diffusion steps (each step re-solves with b = previous u).
    pub steps: u32,
    /// CG iteration cap per step.
    pub max_iters: u32,
    /// Relative residual tolerance (‖r‖²/‖b‖²).
    pub eps: f64,
    /// Diffusion coefficients (rx = ry in the square model).
    pub rx: f64,
    /// See `rx`.
    pub ry: f64,
    /// Synchronization-bug injection.
    pub race: RaceMode,
}

impl Default for TeaLeafConfig {
    fn default() -> Self {
        TeaLeafConfig {
            nx: 64,
            ny: 64,
            ranks: 2,
            steps: 2,
            max_iters: 80,
            eps: 1e-12,
            rx: 2.0,
            ry: 2.0,
            race: RaceMode::None,
        }
    }
}

impl TeaLeafConfig {
    /// Interior rows per rank.
    pub fn rows_per_rank(&self) -> u64 {
        assert_eq!(self.ny % self.ranks as u64, 0, "ny must divide by ranks");
        self.ny / self.ranks as u64
    }
}

/// Per-rank numerical result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CgResult {
    /// Total CG iterations across all steps.
    pub iterations: u32,
    /// Final global ‖r‖² of the last step.
    pub rr: f64,
    /// Initial global ‖b‖² of the last step.
    pub bb: f64,
    /// Every step converged within `max_iters`?
    pub converged: bool,
}

/// Result of a TeaLeaf run.
#[derive(Debug)]
pub struct TeaLeafRun {
    /// The configuration.
    pub config: TeaLeafConfig,
    /// Rank-0 CG result (identical across ranks).
    pub cg: CgResult,
    /// Wall-clock time of the world run.
    pub elapsed: Duration,
    /// Tool outcome.
    pub outcome: WorldOutcome<CgResult>,
}

/// Run TeaLeaf under a tool configuration.
pub fn run_tealeaf(cfg: &TeaLeafConfig, tools: impl Into<ToolConfig>) -> TeaLeafRun {
    run_tealeaf_impl(cfg, tools.into(), false)
}

/// Like [`run_tealeaf`], with a per-rank event trace recorded
/// ([`must_rt::RankOutcome::trace`]).
pub fn run_tealeaf_traced(cfg: &TeaLeafConfig, tools: impl Into<ToolConfig>) -> TeaLeafRun {
    run_tealeaf_impl(cfg, tools.into(), true)
}

fn run_tealeaf_impl(cfg: &TeaLeafConfig, tools: ToolConfig, traced: bool) -> TeaLeafRun {
    let cfg = *cfg;
    let k = AppKernels::shared();
    let start = Instant::now();
    let body = move |ctx: &mut RankCtx| tealeaf_rank(ctx, k, &cfg);
    let outcome = if traced {
        run_checked_world_traced(cfg.ranks, tools, Arc::clone(&k.registry), body)
    } else {
        run_checked_world(cfg.ranks, tools, Arc::clone(&k.registry), body)
    };
    let elapsed = start.elapsed();
    TeaLeafRun {
        config: cfg,
        cg: outcome.results[0],
        elapsed,
        outcome,
    }
}

fn row_ptr(base: Ptr, row: u64, nx: u64) -> Ptr {
    base.offset(row * nx * 8)
}

struct Cg<'a> {
    k: &'a AppKernels,
    nx: u64,
    rows: u64,
    n_int: u64,
}

impl Cg<'_> {
    fn launch2(&self, ctx: &mut RankCtx, kernel: KernelId, n: u64, y: Ptr, x: Ptr, scalar: f64) {
        ctx.cuda
            .launch(
                kernel,
                LaunchGrid::linear(n),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(y),
                    LaunchArg::Ptr(x),
                    LaunchArg::F64(scalar),
                    LaunchArg::I64(n as i64),
                ],
            )
            .unwrap();
    }

    /// `dot_reduce` + blocking D2H + Allreduce: a global scalar product.
    fn global_dot(&self, ctx: &mut RankCtx, scratch: Scratch, x: Ptr, y: Ptr) -> f64 {
        ctx.cuda
            .launch(
                self.k.dot,
                LaunchGrid::cover(1, 1),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(scratch.d),
                    LaunchArg::Ptr(x),
                    LaunchArg::Ptr(y),
                    LaunchArg::I64(self.n_int as i64),
                ],
            )
            .unwrap();
        ctx.cuda
            .memcpy(scratch.h, scratch.d, 8, CopyKind::DeviceToHost)
            .unwrap();
        ctx.mpi
            .allreduce(scratch.h, scratch.hg, 1, MpiDatatype::Double, ReduceOp::Sum)
            .unwrap();
        ctx.tools
            .host_read_at(&ctx.space(), scratch.hg, "tealeaf dot read")
            .unwrap()
    }

    /// Non-blocking halo exchange of `buf`'s boundary rows (Fig. 1 shape).
    fn exchange_halos(&self, ctx: &mut RankCtx, buf: Ptr, race: RaceMode) {
        const TAG_UP: i32 = 10;
        const TAG_DOWN: i32 = 11;
        let rank = ctx.rank();
        let ranks = ctx.size();
        if race != RaceMode::SkipSyncBeforeExchange {
            ctx.cuda.device_synchronize().unwrap();
        }
        let (nx, rows) = (self.nx, self.rows);
        let mut reqs = Vec::with_capacity(4);
        if rank > 0 {
            let up = rank as i64 - 1;
            reqs.push(
                ctx.mpi
                    .irecv(
                        row_ptr(buf, 0, nx),
                        nx,
                        MpiDatatype::Double,
                        up as i32,
                        TAG_DOWN,
                    )
                    .unwrap(),
            );
            reqs.push(
                ctx.mpi
                    .isend(row_ptr(buf, 1, nx), nx, MpiDatatype::Double, up, TAG_UP)
                    .unwrap(),
            );
        }
        if rank + 1 < ranks {
            let down = rank as i64 + 1;
            reqs.push(
                ctx.mpi
                    .irecv(
                        row_ptr(buf, rows + 1, nx),
                        nx,
                        MpiDatatype::Double,
                        down as i32,
                        TAG_UP,
                    )
                    .unwrap(),
            );
            reqs.push(
                ctx.mpi
                    .isend(
                        row_ptr(buf, rows, nx),
                        nx,
                        MpiDatatype::Double,
                        down,
                        TAG_DOWN,
                    )
                    .unwrap(),
            );
        }
        ctx.mpi.waitall(&mut reqs).unwrap();
    }
}

#[derive(Clone, Copy)]
struct Scratch {
    d: Ptr,
    h: Ptr,
    hg: Ptr,
}

fn tealeaf_rank(ctx: &mut RankCtx, k: &AppKernels, cfg: &TeaLeafConfig) -> CgResult {
    let rank = ctx.rank();
    let nx = cfg.nx;
    let rows = cfg.rows_per_rank();
    let local = (rows + 2) * nx;
    let n_int = nx * rows;
    let cg = Cg { k, nx, rows, n_int };

    // Fields: rhs b, solution u, residual r, search direction p, A·p in w.
    let d_b = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_u = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_r = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_p = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_w = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_dot = ctx.cuda.malloc::<f64>(1).unwrap();
    let h_dot = ctx.cuda.host_malloc::<f64>(1).unwrap();
    let h_dot_global = ctx.cuda.host_malloc::<f64>(1).unwrap();
    let scratch = Scratch {
        d: d_dot,
        h: h_dot,
        hg: h_dot_global,
    };

    for p in [d_b, d_u, d_r, d_p, d_w] {
        ctx.cuda.memset(p, 0, local * 8).unwrap();
    }
    ctx.cuda.memset(d_dot, 0, 8).unwrap();

    // Initial energy b: ambient 0.1 with a hot square in the global
    // domain's [¼,½) band, staged on the host and moved with one H2D copy.
    let h_init = ctx.cuda.host_malloc::<f64>(local).unwrap();
    {
        let space = ctx.space();
        let mut field = vec![0.0f64; local as usize];
        for lr in 1..=rows {
            let gr = rank as u64 * rows + (lr - 1); // global interior row
            for c in 0..nx {
                let hot = (cfg.ny / 4..cfg.ny / 2).contains(&gr) && (nx / 4..nx / 2).contains(&c);
                field[(lr * nx + c) as usize] = if hot { 10.0 } else { 0.1 };
            }
        }
        ctx.tools
            .host_write_slice::<f64>(&space, h_init, &field, "tealeaf init staging")
            .unwrap();
    }
    ctx.cuda
        .memcpy(d_b, h_init, local * 8, CopyKind::HostToDevice)
        .unwrap();

    let interior = |p: Ptr| row_ptr(p, 1, nx);
    let copy_local = |ctx: &mut RankCtx, dst: Ptr, src: Ptr| {
        ctx.cuda
            .launch(
                k.copy,
                LaunchGrid::linear(local),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(dst),
                    LaunchArg::Ptr(src),
                    LaunchArg::I64(local as i64),
                ],
            )
            .unwrap();
    };

    let mut total_iterations = 0;
    let mut converged = true;
    let mut rr = 0.0;
    let mut bb = 0.0;
    for _step in 0..cfg.steps {
        // u0 = 0, so r = b; p = r.
        ctx.cuda.memset(d_u, 0, local * 8).unwrap();
        copy_local(ctx, d_r, d_b);
        copy_local(ctx, d_p, d_r);
        rr = cg.global_dot(ctx, scratch, interior(d_r), interior(d_r));
        bb = rr;

        let mut step_converged = false;
        let mut it = 0;
        while it < cfg.max_iters {
            if rr <= cfg.eps * bb {
                step_converged = true;
                break;
            }
            // Halo exchange of p (non-blocking, Fig. 1 shape).
            cg.exchange_halos(ctx, d_p, cfg.race);
            // w = A p.
            ctx.cuda
                .launch(
                    k.apply_a,
                    LaunchGrid::linear(n_int),
                    StreamId::DEFAULT,
                    vec![
                        LaunchArg::Ptr(d_w),
                        LaunchArg::Ptr(d_p),
                        LaunchArg::I64(nx as i64),
                        LaunchArg::I64(rows as i64),
                        LaunchArg::F64(cfg.rx),
                        LaunchArg::F64(cfg.ry),
                    ],
                )
                .unwrap();
            // α = rr / (p·w).
            let pw = cg.global_dot(ctx, scratch, interior(d_p), interior(d_w));
            let alpha = rr / pw;
            // u += α p; r -= α w.
            cg.launch2(ctx, k.axpy, n_int, interior(d_u), interior(d_p), alpha);
            cg.launch2(ctx, k.axpy, n_int, interior(d_r), interior(d_w), -alpha);
            // β = rr' / rr.
            let rr_new = cg.global_dot(ctx, scratch, interior(d_r), interior(d_r));
            let beta = rr_new / rr;
            rr = rr_new;
            // p = r + β p.
            cg.launch2(ctx, k.xpay, n_int, interior(d_p), interior(d_r), beta);
            it += 1;
        }
        if rr <= cfg.eps * bb {
            step_converged = true;
        }
        converged &= step_converged;
        total_iterations += it;
        // Next step's rhs is the new temperature field: b = u.
        copy_local(ctx, d_b, d_u);
        ctx.cuda.device_synchronize().unwrap();
    }

    for p in [d_b, d_u, d_r, d_p, d_w, d_dot, h_dot, h_dot_global, h_init] {
        ctx.cuda.free(p).unwrap();
    }
    CgResult {
        iterations: total_iterations,
        rr,
        bb,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_well_formed() {
        let c = TeaLeafConfig::default();
        assert_eq!(c.rows_per_rank() * c.ranks as u64, c.ny);
        assert!(c.eps > 0.0);
        assert!(c.steps >= 1);
    }

    #[test]
    #[should_panic(expected = "ny must divide")]
    fn indivisible_decomposition_panics() {
        let c = TeaLeafConfig {
            ny: 7,
            ranks: 2,
            ..TeaLeafConfig::default()
        };
        let _ = c.rows_per_rank();
    }
}
