//! # cusan-apps — the evaluation mini-apps
//!
//! Rust ports of the two CUDA-aware MPI mini-apps of the paper's
//! evaluation (§V), running on the simulated stack:
//!
//! * [`jacobi`] — a 2-D Jacobi solver modeled on the NVIDIA CUDA-aware MPI
//!   example: row-decomposed domain, **blocking** `MPI_Sendrecv` halo
//!   exchange of device pointers, per-iteration residual reduction with a
//!   device→host copy and an `MPI_Allreduce`, and a second CUDA stream for
//!   the reduction (the paper's Jacobi uses two streams, Table I).
//! * [`tealeaf`] — a TeaLeaf-style implicit heat-conduction step: a CG
//!   solve of the 5-point Laplacian system with **non-blocking**
//!   `MPI_Isend`/`MPI_Irecv` halo exchanges and `MPI_Waitall`, default
//!   stream only (Table I).
//!
//! Every kernel is defined twice from one source of truth ([`kernels`]):
//! an IR definition (what the "compiler pass" analyzes) and a native Rust
//! closure (what the simulated device executes). Property tests assert the
//! two agree.
//!
//! Both apps support **race injection** ([`RaceMode`]) that removes a
//! single synchronization call, reproducing the incorrect variants of the
//! paper's testsuite; and both verify their numerics against a single-rank
//! run.

pub mod chaos;
pub mod jacobi;
pub mod jacobi2d;
pub mod kernels;
pub mod tealeaf;
pub mod testsuite;

pub use chaos::{
    run_chaos_jacobi, run_chaos_jacobi_scheduled, run_chaos_tealeaf, run_chaos_tealeaf_scheduled,
    ChaosConfig, ChaosError, ChaosResult,
};
pub use jacobi::{run_jacobi, run_jacobi_traced, JacobiConfig, JacobiRun};
pub use jacobi2d::{run_jacobi2d, Jacobi2dConfig, Jacobi2dRun};
pub use kernels::AppKernels;
pub use tealeaf::{run_tealeaf, run_tealeaf_traced, TeaLeafConfig, TeaLeafRun};

/// Which synchronization bug (if any) to inject into a mini-app run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RaceMode {
    /// Correct synchronization.
    #[default]
    None,
    /// Skip the `cudaDeviceSynchronize` between the kernels that produce
    /// the halo data and the MPI halo exchange (the Fig. 4 line-4 bug).
    SkipSyncBeforeExchange,
}
