//! The Jacobi solver mini-app (paper §V, after the NVIDIA CUDA-aware MPI
//! example).
//!
//! 2-D Laplace relaxation on an `nx × ny` grid, row-decomposed across
//! ranks. Each local field has `rows + 2` rows of `nx` columns (one halo
//! row on each side). Per iteration:
//!
//! 1. `jacobi_step` (default stream) computes the new interior.
//! 2. `residual_reduce` on a **second CUDA stream** accumulates the
//!    squared update norm (legacy default-stream semantics order it after
//!    the step kernel — no explicit sync needed).
//! 3. A blocking `cudaMemcpy` D2H of the norm (implicit synchronization)
//!    followed by `MPI_Allreduce`.
//! 4. `copy_buf` commits `anew → a`.
//! 5. `cudaDeviceSynchronize`, then **blocking** `MPI_Sendrecv` halo
//!    exchange directly on device pointers.
//!
//! [`RaceMode::SkipSyncBeforeExchange`] removes step 5's synchronize —
//! the paper's Fig. 4 bug — producing both a CuSan race report and
//! genuinely stale halos.

use crate::kernels::AppKernels;
use crate::RaceMode;
use cuda_sim::{CopyKind, StreamFlags, StreamId};
use cusan::ToolConfig;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, ReduceOp, PROC_NULL};
use must_rt::{run_checked_world, run_checked_world_traced, RankCtx, WorldOutcome};
use sim_mem::Ptr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Jacobi configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JacobiConfig {
    /// Global columns (including the two fixed boundary columns).
    pub nx: u64,
    /// Global interior rows; must be divisible by `ranks`.
    pub ny: u64,
    /// MPI ranks (row decomposition).
    pub ranks: usize,
    /// Iterations to run.
    pub iters: u32,
    /// Synchronization-bug injection.
    pub race: RaceMode,
}

impl Default for JacobiConfig {
    fn default() -> Self {
        JacobiConfig {
            nx: 512,
            ny: 256,
            ranks: 2,
            iters: 100,
            race: RaceMode::None,
        }
    }
}

impl JacobiConfig {
    /// Interior rows owned by each rank.
    pub fn rows_per_rank(&self) -> u64 {
        assert_eq!(self.ny % self.ranks as u64, 0, "ny must divide by ranks");
        self.ny / self.ranks as u64
    }
}

/// Result of a Jacobi run.
#[derive(Debug)]
pub struct JacobiRun {
    /// The configuration.
    pub config: JacobiConfig,
    /// Global residual norm per iteration (√ of the allreduced squared
    /// update norm).
    pub norms: Vec<f64>,
    /// Final norm.
    pub final_norm: f64,
    /// Wall-clock time of the whole world run.
    pub elapsed: Duration,
    /// Tool outcome (races, counters, memory).
    pub outcome: WorldOutcome<Vec<f64>>,
}

/// Run Jacobi under a tool configuration.
pub fn run_jacobi(cfg: &JacobiConfig, tools: impl Into<ToolConfig>) -> JacobiRun {
    run_jacobi_impl(cfg, tools.into(), false)
}

/// Like [`run_jacobi`], with a per-rank event trace recorded
/// ([`must_rt::RankOutcome::trace`]).
pub fn run_jacobi_traced(cfg: &JacobiConfig, tools: impl Into<ToolConfig>) -> JacobiRun {
    run_jacobi_impl(cfg, tools.into(), true)
}

fn run_jacobi_impl(cfg: &JacobiConfig, tools: ToolConfig, traced: bool) -> JacobiRun {
    let cfg = *cfg;
    let k = AppKernels::shared();
    let start = Instant::now();
    let body = move |ctx: &mut RankCtx| jacobi_rank(ctx, k, &cfg);
    let outcome = if traced {
        run_checked_world_traced(cfg.ranks, tools, Arc::clone(&k.registry), body)
    } else {
        run_checked_world(cfg.ranks, tools, Arc::clone(&k.registry), body)
    };
    let elapsed = start.elapsed();
    let norms = outcome.results[0].clone();
    JacobiRun {
        config: cfg,
        final_norm: norms.last().copied().unwrap_or(0.0),
        norms,
        elapsed,
        outcome,
    }
}

fn row_ptr(base: Ptr, row: u64, nx: u64) -> Ptr {
    base.offset(row * nx * 8)
}

fn jacobi_rank(ctx: &mut RankCtx, k: &AppKernels, cfg: &JacobiConfig) -> Vec<f64> {
    let rank = ctx.rank();
    let nx = cfg.nx;
    let rows = cfg.rows_per_rank();
    let local = (rows + 2) * nx;
    let n_int = nx * rows;

    // Device allocations.
    let d_a = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_anew = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_norm = ctx.cuda.malloc::<f64>(1).unwrap();
    let h_norm = ctx.cuda.host_malloc::<f64>(1).unwrap();
    let h_norm_global = ctx.cuda.host_malloc::<f64>(1).unwrap();

    // Zero-initialize (2 cudaMemset calls, as in the paper's counter mix).
    ctx.cuda.memset(d_a, 0, local * 8).unwrap();
    ctx.cuda.memset(d_anew, 0, local * 8).unwrap();

    // Dirichlet condition: the global top boundary (rank 0's halo row 0)
    // is held at 1.0 in both fields.
    if rank == 0 {
        for buf in [d_a, d_anew] {
            ctx.cuda
                .launch(
                    k.fill,
                    LaunchGrid::linear(nx),
                    StreamId::DEFAULT,
                    vec![
                        LaunchArg::Ptr(buf),
                        LaunchArg::F64(1.0),
                        LaunchArg::I64(nx as i64),
                    ],
                )
                .unwrap();
        }
    }

    // The reduction runs on a second, blocking user stream (Table I:
    // Jacobi uses 2 streams).
    let norm_stream = ctx.cuda.stream_create(StreamFlags::Default);

    // Fixed-boundary neighbours are MPI_PROC_NULL, like the NVIDIA
    // CUDA-aware MPI example: the sendrecv pair is unconditional.
    let up: i64 = if rank > 0 { rank as i64 - 1 } else { PROC_NULL };
    let down: i64 = if rank + 1 < cfg.ranks {
        rank as i64 + 1
    } else {
        PROC_NULL
    };
    const TAG_UP: i32 = 0; // message moving to a lower rank
    const TAG_DOWN: i32 = 1; // message moving to a higher rank

    let mut norms = Vec::with_capacity(cfg.iters as usize);
    for _ in 0..cfg.iters {
        // 1. Stencil update on the default stream.
        ctx.cuda
            .launch(
                k.jacobi_step,
                LaunchGrid::linear(n_int),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(d_anew),
                    LaunchArg::Ptr(d_a),
                    LaunchArg::I64(nx as i64),
                    LaunchArg::I64(rows as i64),
                ],
            )
            .unwrap();

        // 2. Residual reduction on the norm stream (ordered after the
        //    step kernel by legacy default-stream semantics).
        ctx.cuda
            .launch(
                k.residual,
                LaunchGrid::cover(1, 1),
                norm_stream,
                vec![
                    LaunchArg::Ptr(d_norm),
                    LaunchArg::Ptr(row_ptr(d_a, 1, nx)),
                    LaunchArg::Ptr(row_ptr(d_anew, 1, nx)),
                    LaunchArg::I64(n_int as i64),
                ],
            )
            .unwrap();

        // 3. Blocking D2H copy of the local norm, then Allreduce.
        ctx.cuda
            .memcpy(h_norm, d_norm, 8, CopyKind::DeviceToHost)
            .unwrap();
        ctx.mpi
            .allreduce(h_norm, h_norm_global, 1, MpiDatatype::Double, ReduceOp::Sum)
            .unwrap();
        let global_sq: f64 = ctx
            .tools
            .host_read_at(&ctx.space(), h_norm_global, "jacobi norm read")
            .unwrap();
        norms.push(global_sq.sqrt());

        // 4. Commit anew -> a (whole local field including halos).
        ctx.cuda
            .launch(
                k.copy,
                LaunchGrid::linear(local),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(d_a),
                    LaunchArg::Ptr(d_anew),
                    LaunchArg::I64(local as i64),
                ],
            )
            .unwrap();

        // 5. Synchronize, then exchange halos with blocking Sendrecv on
        //    device pointers.
        if cfg.race != RaceMode::SkipSyncBeforeExchange {
            ctx.cuda.device_synchronize().unwrap();
        }
        ctx.mpi
            .sendrecv(
                row_ptr(d_a, 1, nx),
                nx,
                up,
                TAG_UP,
                row_ptr(d_a, 0, nx),
                nx,
                up as i32,
                TAG_DOWN,
                MpiDatatype::Double,
            )
            .unwrap();
        ctx.mpi
            .sendrecv(
                row_ptr(d_a, rows, nx),
                nx,
                down,
                TAG_DOWN,
                row_ptr(d_a, rows + 1, nx),
                nx,
                down as i32,
                TAG_UP,
                MpiDatatype::Double,
            )
            .unwrap();
    }

    // Release device memory (exercises cudaFree's device-wide sync).
    for p in [d_a, d_anew, d_norm, h_norm, h_norm_global] {
        ctx.cuda.free(p).unwrap();
    }
    norms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_well_formed() {
        let c = JacobiConfig::default();
        assert_eq!(c.rows_per_rank() * c.ranks as u64, c.ny);
    }

    #[test]
    #[should_panic(expected = "ny must divide")]
    fn indivisible_decomposition_panics() {
        let c = JacobiConfig {
            ny: 10,
            ranks: 3,
            ..JacobiConfig::default()
        };
        let _ = c.rows_per_rank();
    }
}
