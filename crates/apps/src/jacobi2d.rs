//! 2-D–decomposed Jacobi solver.
//!
//! Extends the row-decomposed mini-app ([`crate::jacobi`]) to a `px × py`
//! rank grid, which requires **column** halo exchanges in addition to row
//! exchanges. Columns are not contiguous, so each boundary column is
//! packed into a contiguous transfer buffer with a pitched
//! `cudaMemcpy2D` (and unpacked on the other side the same way) — the
//! workload pattern behind the §VI-A API extension and a natural fit for
//! the §VI-D bounded-tracking optimization.
//!
//! Communication per iteration:
//!
//! * rows: blocking `MPI_Sendrecv` of contiguous rows (PROC_NULL at the
//!   global top/bottom);
//! * columns: pitched pack → `MPI_Sendrecv` → pitched unpack (PROC_NULL
//!   at the global left/right).

use crate::kernels::AppKernels;
use crate::RaceMode;
use cuda_sim::{CopyKind, StreamFlags, StreamId};
use cusan::ToolConfig;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, ReduceOp, PROC_NULL};
use must_rt::{run_checked_world, RankCtx, WorldOutcome};
use sim_mem::Ptr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// 2-D Jacobi configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Jacobi2dConfig {
    /// Global interior columns; must divide by `px`.
    pub nx: u64,
    /// Global interior rows; must divide by `py`.
    pub ny: u64,
    /// Rank-grid columns.
    pub px: usize,
    /// Rank-grid rows.
    pub py: usize,
    /// Iterations.
    pub iters: u32,
    /// Synchronization-bug injection.
    pub race: RaceMode,
}

impl Default for Jacobi2dConfig {
    fn default() -> Self {
        Jacobi2dConfig {
            nx: 128,
            ny: 128,
            px: 2,
            py: 2,
            iters: 50,
            race: RaceMode::None,
        }
    }
}

impl Jacobi2dConfig {
    /// Total ranks (`px * py`).
    pub fn ranks(&self) -> usize {
        self.px * self.py
    }

    /// Interior columns per rank.
    pub fn cols_per_rank(&self) -> u64 {
        assert_eq!(self.nx % self.px as u64, 0, "nx must divide by px");
        self.nx / self.px as u64
    }

    /// Interior rows per rank.
    pub fn rows_per_rank(&self) -> u64 {
        assert_eq!(self.ny % self.py as u64, 0, "ny must divide by py");
        self.ny / self.py as u64
    }
}

/// Result of a 2-D Jacobi run.
#[derive(Debug)]
pub struct Jacobi2dRun {
    /// The configuration.
    pub config: Jacobi2dConfig,
    /// Global residual norm per iteration.
    pub norms: Vec<f64>,
    /// Wall-clock time of the world run.
    pub elapsed: Duration,
    /// Tool outcome.
    pub outcome: WorldOutcome<Vec<f64>>,
}

/// Run the 2-D Jacobi solver under a tool configuration.
pub fn run_jacobi2d(cfg: &Jacobi2dConfig, tools: impl Into<ToolConfig>) -> Jacobi2dRun {
    let cfg = *cfg;
    let k = AppKernels::shared();
    let tools = tools.into();
    let start = Instant::now();
    let outcome = run_checked_world(cfg.ranks(), tools, Arc::clone(&k.registry), move |ctx| {
        jacobi2d_rank(ctx, k, &cfg)
    });
    let elapsed = start.elapsed();
    Jacobi2dRun {
        config: cfg,
        norms: outcome.results[0].clone(),
        elapsed,
        outcome,
    }
}

fn jacobi2d_rank(ctx: &mut RankCtx, k: &AppKernels, cfg: &Jacobi2dConfig) -> Vec<f64> {
    let rank = ctx.rank();
    let (px, py) = (cfg.px, cfg.py);
    let (rx, ry) = (rank % px, rank / px);
    let cols = cfg.cols_per_rank();
    let rows = cfg.rows_per_rank();
    let w = cols + 2; // local width incl. halo columns
    let local = (rows + 2) * w;
    let pitch = w * 8;

    let d_a = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_anew = ctx.cuda.malloc::<f64>(local).unwrap();
    let d_norm = ctx.cuda.malloc::<f64>(1).unwrap();
    // Contiguous column transfer buffers.
    let d_col_tx = ctx.cuda.malloc::<f64>(rows).unwrap();
    let d_col_rx = ctx.cuda.malloc::<f64>(rows).unwrap();
    let h_norm = ctx.cuda.host_malloc::<f64>(1).unwrap();
    let h_norm_global = ctx.cuda.host_malloc::<f64>(1).unwrap();

    ctx.cuda.memset(d_a, 0, local * 8).unwrap();
    ctx.cuda.memset(d_anew, 0, local * 8).unwrap();

    // Dirichlet: the global top boundary row is 1.0.
    if ry == 0 {
        for buf in [d_a, d_anew] {
            ctx.cuda
                .launch(
                    k.fill,
                    LaunchGrid::linear(w),
                    StreamId::DEFAULT,
                    vec![
                        LaunchArg::Ptr(buf),
                        LaunchArg::F64(1.0),
                        LaunchArg::I64(w as i64),
                    ],
                )
                .unwrap();
        }
    }

    let norm_stream = ctx.cuda.stream_create(StreamFlags::Default);

    // Neighbours in the rank grid, PROC_NULL at the global boundary.
    let up = if ry > 0 {
        (rank - px) as i64
    } else {
        PROC_NULL
    };
    let down = if ry + 1 < py {
        (rank + px) as i64
    } else {
        PROC_NULL
    };
    let left = if rx > 0 { (rank - 1) as i64 } else { PROC_NULL };
    let right = if rx + 1 < px {
        (rank + 1) as i64
    } else {
        PROC_NULL
    };
    const TAG_UP: i32 = 0;
    const TAG_DOWN: i32 = 1;
    const TAG_LEFT: i32 = 2;
    const TAG_RIGHT: i32 = 3;

    let cell_ptr = |base: Ptr, row: u64, col: u64| base.offset(row * pitch + col * 8);

    let mut norms = Vec::with_capacity(cfg.iters as usize);
    for _ in 0..cfg.iters {
        // Stencil update + residual, as in the 1-D version.
        ctx.cuda
            .launch(
                k.jacobi_step,
                LaunchGrid::linear(w * rows),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(d_anew),
                    LaunchArg::Ptr(d_a),
                    LaunchArg::I64(w as i64),
                    LaunchArg::I64(rows as i64),
                ],
            )
            .unwrap();
        ctx.cuda
            .launch(
                k.residual2d,
                LaunchGrid::cover(1, 1),
                norm_stream,
                vec![
                    LaunchArg::Ptr(d_norm),
                    LaunchArg::Ptr(d_a),
                    LaunchArg::Ptr(d_anew),
                    LaunchArg::I64(w as i64),
                    LaunchArg::I64(rows as i64),
                ],
            )
            .unwrap();
        ctx.cuda
            .memcpy(h_norm, d_norm, 8, CopyKind::DeviceToHost)
            .unwrap();
        ctx.mpi
            .allreduce(h_norm, h_norm_global, 1, MpiDatatype::Double, ReduceOp::Sum)
            .unwrap();
        let sq: f64 = ctx
            .tools
            .host_read_at(&ctx.space(), h_norm_global, "jacobi2d norm")
            .unwrap();
        norms.push(sq.sqrt());

        // Commit anew -> a.
        ctx.cuda
            .launch(
                k.copy,
                LaunchGrid::linear(local),
                StreamId::DEFAULT,
                vec![
                    LaunchArg::Ptr(d_a),
                    LaunchArg::Ptr(d_anew),
                    LaunchArg::I64(local as i64),
                ],
            )
            .unwrap();

        if cfg.race != RaceMode::SkipSyncBeforeExchange {
            ctx.cuda.device_synchronize().unwrap();
        }

        // Row halo exchange (contiguous interior spans of each row).
        ctx.mpi
            .sendrecv(
                cell_ptr(d_a, 1, 1),
                cols,
                up,
                TAG_UP,
                cell_ptr(d_a, 0, 1),
                cols,
                up as i32,
                TAG_DOWN,
                MpiDatatype::Double,
            )
            .unwrap();
        ctx.mpi
            .sendrecv(
                cell_ptr(d_a, rows, 1),
                cols,
                down,
                TAG_DOWN,
                cell_ptr(d_a, rows + 1, 1),
                cols,
                down as i32,
                TAG_UP,
                MpiDatatype::Double,
            )
            .unwrap();

        // Column halo exchange: pack (pitched D2D) -> sendrecv -> unpack.
        for (neighbor, send_tag, recv_tag, send_col, halo_col) in [
            (left, TAG_LEFT, TAG_RIGHT, 1, 0),
            (right, TAG_RIGHT, TAG_LEFT, cols, cols + 1),
        ] {
            if neighbor == PROC_NULL {
                continue;
            }
            // Pack boundary column `send_col` (rows elements).
            ctx.cuda
                .memcpy_2d(
                    d_col_tx,
                    8,
                    cell_ptr(d_a, 1, send_col),
                    pitch,
                    8,
                    rows,
                    CopyKind::DeviceToDevice,
                )
                .unwrap();
            // D2D is stream-ordered; the MPI call below reads d_col_tx
            // from the host side, so synchronize first.
            ctx.cuda.device_synchronize().unwrap();
            ctx.mpi
                .sendrecv(
                    d_col_tx,
                    rows,
                    neighbor,
                    send_tag,
                    d_col_rx,
                    rows,
                    neighbor as i32,
                    recv_tag,
                    MpiDatatype::Double,
                )
                .unwrap();
            // Unpack into the halo column.
            ctx.cuda
                .memcpy_2d(
                    cell_ptr(d_a, 1, halo_col),
                    pitch,
                    d_col_rx,
                    8,
                    8,
                    rows,
                    CopyKind::DeviceToDevice,
                )
                .unwrap();
            ctx.cuda.device_synchronize().unwrap();
        }
    }

    for p in [
        d_a,
        d_anew,
        d_norm,
        d_col_tx,
        d_col_rx,
        h_norm,
        h_norm_global,
    ] {
        ctx.cuda.free(p).unwrap();
    }
    norms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_geometry() {
        let c = Jacobi2dConfig {
            nx: 64,
            ny: 32,
            px: 4,
            py: 2,
            ..Jacobi2dConfig::default()
        };
        assert_eq!(c.ranks(), 8);
        assert_eq!(c.cols_per_rank(), 16);
        assert_eq!(c.rows_per_rank(), 16);
    }

    #[test]
    #[should_panic(expected = "nx must divide")]
    fn indivisible_columns_panic() {
        let c = Jacobi2dConfig {
            nx: 10,
            px: 3,
            ..Jacobi2dConfig::default()
        };
        let _ = c.cols_per_rank();
    }
}
