//! The kernel library shared by the mini-apps.
//!
//! Each kernel is registered with **both** an IR definition (analyzed by
//! the compiler pass for per-argument access attributes) and a native Rust
//! closure (executed by the simulated device). The two derive from the
//! same pseudo-CUDA source written in the doc comment of each constructor;
//! `tests/` contains property tests asserting interpreter ≡ native.

use kernel_ir::ast::ScalarTy;
use kernel_ir::builder::*;
use kernel_ir::registry::{NativeCtx, NativeKernel};
use kernel_ir::{KernelId, KernelRegistry};
use std::sync::{Arc, OnceLock};

/// Kernel ids for the registered app kernels.
#[derive(Debug, Clone)]
pub struct AppKernels {
    /// The shared registry (IR + native + analysis).
    pub registry: Arc<KernelRegistry>,
    /// `fill(p, v, n)`: `p[i] = v`.
    pub fill: KernelId,
    /// `copy_buf(dst, src, n)`: `dst[i] = src[i]`.
    pub copy: KernelId,
    /// `jacobi_step(anew, a, nx, rows)`: 5-point stencil update.
    pub jacobi_step: KernelId,
    /// `residual_reduce(out, a, anew, n)`: `out[0] = Σ (anew-a)²`.
    pub residual: KernelId,
    /// `residual2d(out, a, anew, w, rows)`: interior-only squared update
    /// norm over a haloed 2-D block.
    pub residual2d: KernelId,
    /// `dot_reduce(out, x, y, n)`: `out[0] = Σ x·y`.
    pub dot: KernelId,
    /// `apply_a(w, p, nx, rows, rx, ry)`: `w = A·p` (5-point operator).
    pub apply_a: KernelId,
    /// `axpy(y, x, alpha, n)`: `y += α·x`.
    pub axpy: KernelId,
    /// `xpay(y, x, beta, n)`: `y = x + β·y`.
    pub xpay: KernelId,
}

static SHARED: OnceLock<AppKernels> = OnceLock::new();

impl AppKernels {
    /// The process-wide shared instance (kernels are immutable after
    /// registration; the registry is `Sync`).
    pub fn shared() -> &'static AppKernels {
        SHARED.get_or_init(AppKernels::build)
    }

    /// Build a fresh registry with all app kernels.
    pub fn build() -> AppKernels {
        let mut reg = KernelRegistry::new();
        let fill = register_fill(&mut reg);
        let copy = register_copy(&mut reg);
        let jacobi_step = register_jacobi_step(&mut reg);
        let residual = register_residual(&mut reg);
        let residual2d = register_residual2d(&mut reg);
        let dot = register_dot(&mut reg);
        let apply_a = register_apply_a(&mut reg);
        let axpy = register_axpy(&mut reg);
        let xpay = register_xpay(&mut reg);
        AppKernels {
            registry: Arc::new(reg),
            fill,
            copy,
            jacobi_step,
            residual,
            residual2d,
            dot,
            apply_a,
            axpy,
            xpay,
        }
    }
}

/// ```cuda
/// __global__ void fill(double* p, double v, long n)
///   { long t = TID; if (t < n) p[t] = v; }
/// ```
fn register_fill(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("fill");
    let p = b.ptr_param("p", ScalarTy::F64);
    let v = b.scalar_param("v", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |b| b.store(p, tid(), v.get()));
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let v = ctx.f64_arg(1);
        let n = (ctx.i64_arg(2) as u64).min(ctx.grid) as usize;
        let p = ctx.f64s_mut(0);
        let n = n.min(p.len());
        p[..n].fill(v);
    });
    reg.register(b.finish(), Some(native))
        .expect("register fill")
}

/// ```cuda
/// __global__ void copy_buf(double* dst, const double* src, long n)
///   { long t = TID; if (t < n) dst[t] = src[t]; }
/// ```
fn register_copy(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("copy_buf");
    let dst = b.ptr_param("dst", ScalarTy::F64);
    let src = b.ptr_param("src", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |b| b.store(dst, tid(), load(src, tid())));
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let n = (ctx.i64_arg(2) as u64).min(ctx.grid) as usize;
        let (mut w, r) = ctx.split_f64(&[0], &[1]);
        let n = n.min(w[0].len()).min(r[0].len());
        w[0][..n].copy_from_slice(&r[0][..n]);
    });
    reg.register(b.finish(), Some(native))
        .expect("register copy_buf")
}

/// ```cuda
/// __global__ void jacobi_step(double* anew, const double* a, long nx, long rows) {
///   long t = TID;
///   if (t < nx * rows) {
///     long j = t / nx + 1, i = t % nx;           // interior rows 1..=rows
///     if (i >= 1 && i <= nx - 2) {
///       long k = j * nx + i;
///       anew[k] = 0.25 * (a[k-1] + a[k+1] + a[k-nx] + a[k+nx]);
///     }
///   }
/// }
/// ```
fn register_jacobi_step(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("jacobi_step");
    let anew = b.ptr_param("anew", ScalarTy::F64);
    let a = b.ptr_param("a", ScalarTy::F64);
    let nx = b.scalar_param("nx", ScalarTy::I64);
    let rows = b.scalar_param("rows", ScalarTy::I64);
    b.if_(tid().lt(nx.get() * rows.get()), |b| {
        let j = b.let_(tid() / nx.get() + ci(1));
        let i = b.let_(tid().rem(nx.get()));
        b.if_(i.get().ge(ci(1)).and(i.get().le(nx.get() - ci(2))), |b| {
            let k = b.let_(j.get() * nx.get() + i.get());
            b.store(
                anew,
                k.get(),
                cf(0.25)
                    * (load(a, k.get() - ci(1))
                        + load(a, k.get() + ci(1))
                        + load(a, k.get() - nx.get())
                        + load(a, k.get() + nx.get())),
            );
        });
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let nx = ctx.i64_arg(2) as usize;
        let rows = ctx.i64_arg(3) as usize;
        let n = (nx * rows).min(ctx.grid as usize);
        let (mut w, r) = ctx.split_f64(&[0], &[1]);
        let (anew, a) = (&mut *w[0], r[0]);
        for t in 0..n {
            let j = t / nx + 1;
            let i = t % nx;
            if (1..=nx - 2).contains(&i) {
                let k = j * nx + i;
                anew[k] = 0.25 * (a[k - 1] + a[k + 1] + a[k - nx] + a[k + nx]);
            }
        }
    });
    reg.register(b.finish(), Some(native))
        .expect("register jacobi_step")
}

/// ```cuda
/// __global__ void residual_reduce(double* out, const double* a,
///                                 const double* anew, long n) {
///   if (TID == 0) { double s = 0;
///     for (long k = 0; k < n; k++) { double d = anew[k]-a[k]; s += d*d; }
///     out[0] = s; }
/// }
/// ```
fn register_residual(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("residual_reduce");
    let out = b.ptr_param("out", ScalarTy::F64);
    let a = b.ptr_param("a", ScalarTy::F64);
    let anew = b.ptr_param("anew", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().eq_(ci(0)), |b| {
        let acc = b.let_(cf(0.0));
        b.for_(ci(0), n.get(), |b, k| {
            let d = b.let_(load(anew, k.get()) - load(a, k.get()));
            b.set(acc, acc.get() + d.get() * d.get());
        });
        b.store(out, ci(0), acc.get());
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let n = ctx.i64_arg(3) as usize;
        let (mut w, r) = ctx.split_f64(&[0], &[1, 2]);
        let (a, anew) = (r[0], r[1]);
        let mut s = 0.0;
        for k in 0..n {
            let d = anew[k] - a[k];
            s += d * d;
        }
        w[0][0] = s;
    });
    reg.register(b.finish(), Some(native))
        .expect("register residual_reduce")
}

/// ```cuda
/// __global__ void residual2d(double* out, const double* a,
///                            const double* anew, long w, long rows) {
///   if (TID == 0) { double s = 0;
///     for (long j = 1; j <= rows; j++)
///       for (long i = 1; i <= w - 2; i++) {
///         long k = j * w + i; double d = anew[k] - a[k]; s += d * d;
///       }
///     out[0] = s; }
/// }
/// ```
fn register_residual2d(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("residual2d");
    let out = b.ptr_param("out", ScalarTy::F64);
    let a = b.ptr_param("a", ScalarTy::F64);
    let anew = b.ptr_param("anew", ScalarTy::F64);
    let w = b.scalar_param("w", ScalarTy::I64);
    let rows = b.scalar_param("rows", ScalarTy::I64);
    b.if_(tid().eq_(ci(0)), |b| {
        let acc = b.let_(cf(0.0));
        b.for_(ci(1), rows.get() + ci(1), |b, j| {
            b.for_(ci(1), w.get() - ci(1), |b, i| {
                let k = b.let_(j.get() * w.get() + i.get());
                let d = b.let_(load(anew, k.get()) - load(a, k.get()));
                b.set(acc, acc.get() + d.get() * d.get());
            });
        });
        b.store(out, ci(0), acc.get());
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let w = ctx.i64_arg(3) as usize;
        let rows = ctx.i64_arg(4) as usize;
        let (mut o, r) = ctx.split_f64(&[0], &[1, 2]);
        let (a, anew) = (r[0], r[1]);
        let mut s = 0.0;
        for j in 1..=rows {
            for i in 1..(w - 1) {
                let k = j * w + i;
                let d = anew[k] - a[k];
                s += d * d;
            }
        }
        o[0][0] = s;
    });
    reg.register(b.finish(), Some(native))
        .expect("register residual2d")
}

/// ```cuda
/// __global__ void dot_reduce(double* out, const double* x,
///                            const double* y, long n) {
///   if (TID == 0) { double s = 0;
///     for (long k = 0; k < n; k++) s += x[k]*y[k];
///     out[0] = s; }
/// }
/// ```
fn register_dot(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("dot_reduce");
    let out = b.ptr_param("out", ScalarTy::F64);
    let x = b.ptr_param("x", ScalarTy::F64);
    let y = b.ptr_param("y", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().eq_(ci(0)), |b| {
        let acc = b.let_(cf(0.0));
        b.for_(ci(0), n.get(), |b, k| {
            b.set(acc, acc.get() + load(x, k.get()) * load(y, k.get()));
        });
        b.store(out, ci(0), acc.get());
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let n = ctx.i64_arg(3) as usize;
        let (mut w, r) = ctx.split_f64(&[0], &[1, 2]);
        let (x, y) = (r[0], r[1]);
        let mut s = 0.0;
        for k in 0..n {
            s += x[k] * y[k];
        }
        w[0][0] = s;
    });
    reg.register(b.finish(), Some(native))
        .expect("register dot_reduce")
}

/// ```cuda
/// __global__ void apply_a(double* w, const double* p, long nx, long rows,
///                         double rx, double ry) {
///   long t = TID;
///   if (t < nx * rows) {
///     long j = t / nx + 1, i = t % nx, k = j * nx + i;
///     if (i >= 1 && i <= nx - 2)
///       w[k] = (1 + 2*rx + 2*ry) * p[k] - rx*(p[k-1]+p[k+1])
///                                       - ry*(p[k-nx]+p[k+nx]);
///     else
///       w[k] = p[k];   // identity on the fixed column boundaries
///   }
/// }
/// ```
fn register_apply_a(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("apply_a");
    let w = b.ptr_param("w", ScalarTy::F64);
    let p = b.ptr_param("p", ScalarTy::F64);
    let nx = b.scalar_param("nx", ScalarTy::I64);
    let rows = b.scalar_param("rows", ScalarTy::I64);
    let rx = b.scalar_param("rx", ScalarTy::F64);
    let ry = b.scalar_param("ry", ScalarTy::F64);
    b.if_(tid().lt(nx.get() * rows.get()), |b| {
        let j = b.let_(tid() / nx.get() + ci(1));
        let i = b.let_(tid().rem(nx.get()));
        let k = b.let_(j.get() * nx.get() + i.get());
        b.if_else(
            i.get().ge(ci(1)).and(i.get().le(nx.get() - ci(2))),
            |b| {
                b.store(
                    w,
                    k.get(),
                    (cf(1.0) + cf(2.0) * rx.get() + cf(2.0) * ry.get()) * load(p, k.get())
                        - rx.get() * (load(p, k.get() - ci(1)) + load(p, k.get() + ci(1)))
                        - ry.get() * (load(p, k.get() - nx.get()) + load(p, k.get() + nx.get())),
                );
            },
            |b| {
                b.store(w, k.get(), load(p, k.get()));
            },
        );
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let nx = ctx.i64_arg(2) as usize;
        let rows = ctx.i64_arg(3) as usize;
        let rx = ctx.f64_arg(4);
        let ry = ctx.f64_arg(5);
        let n = (nx * rows).min(ctx.grid as usize);
        let (mut wbufs, r) = ctx.split_f64(&[0], &[1]);
        let (w, p) = (&mut *wbufs[0], r[0]);
        let diag = 1.0 + 2.0 * rx + 2.0 * ry;
        for t in 0..n {
            let j = t / nx + 1;
            let i = t % nx;
            let k = j * nx + i;
            if (1..=nx - 2).contains(&i) {
                w[k] = diag * p[k] - rx * (p[k - 1] + p[k + 1]) - ry * (p[k - nx] + p[k + nx]);
            } else {
                w[k] = p[k];
            }
        }
    });
    reg.register(b.finish(), Some(native))
        .expect("register apply_a")
}

/// ```cuda
/// __global__ void axpy(double* y, const double* x, double alpha, long n)
///   { long t = TID; if (t < n) y[t] += alpha * x[t]; }
/// ```
fn register_axpy(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("axpy");
    let y = b.ptr_param("y", ScalarTy::F64);
    let x = b.ptr_param("x", ScalarTy::F64);
    let alpha = b.scalar_param("alpha", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |b| {
        b.store(y, tid(), load(y, tid()) + alpha.get() * load(x, tid()));
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let alpha = ctx.f64_arg(2);
        let n = (ctx.i64_arg(3) as u64).min(ctx.grid) as usize;
        let (mut w, r) = ctx.split_f64(&[0], &[1]);
        let (y, x) = (&mut *w[0], r[0]);
        for t in 0..n.min(y.len()).min(x.len()) {
            y[t] += alpha * x[t];
        }
    });
    reg.register(b.finish(), Some(native))
        .expect("register axpy")
}

/// ```cuda
/// __global__ void xpay(double* y, const double* x, double beta, long n)
///   { long t = TID; if (t < n) y[t] = x[t] + beta * y[t]; }
/// ```
fn register_xpay(reg: &mut KernelRegistry) -> KernelId {
    let mut b = KernelBuilder::new("xpay");
    let y = b.ptr_param("y", ScalarTy::F64);
    let x = b.ptr_param("x", ScalarTy::F64);
    let beta = b.scalar_param("beta", ScalarTy::F64);
    let n = b.scalar_param("n", ScalarTy::I64);
    b.if_(tid().lt(n.get()), |b| {
        b.store(y, tid(), load(x, tid()) + beta.get() * load(y, tid()));
    });
    let native: NativeKernel = Arc::new(|ctx: &mut NativeCtx<'_>| {
        let beta = ctx.f64_arg(2);
        let n = (ctx.i64_arg(3) as u64).min(ctx.grid) as usize;
        let (mut w, r) = ctx.split_f64(&[0], &[1]);
        let (y, x) = (&mut *w[0], r[0]);
        for t in 0..n.min(y.len()).min(x.len()) {
            y[t] = x[t] + beta * y[t];
        }
    });
    reg.register(b.finish(), Some(native))
        .expect("register xpay")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kernel_ir::AccessAttr;

    #[test]
    fn all_kernels_register() {
        let k = AppKernels::build();
        assert_eq!(k.registry.len(), 9);
        assert_eq!(k.registry.id_of("jacobi_step"), Some(k.jacobi_step));
        assert_eq!(k.registry.id_of("xpay"), Some(k.xpay));
    }

    #[test]
    fn shared_instance_is_cached() {
        let a = AppKernels::shared();
        let b = AppKernels::shared();
        assert!(Arc::ptr_eq(&a.registry, &b.registry));
    }

    #[test]
    fn pass_derives_expected_access_attributes() {
        let k = AppKernels::build();
        let an = k.registry.analysis();
        // fill: p write-only.
        assert_eq!(an.param(k.fill, 0), AccessAttr::WRITE);
        // copy: dst write, src read.
        assert_eq!(an.param(k.copy, 0), AccessAttr::WRITE);
        assert_eq!(an.param(k.copy, 1), AccessAttr::READ);
        // jacobi_step: anew write, a read.
        assert_eq!(an.param(k.jacobi_step, 0), AccessAttr::WRITE);
        assert_eq!(an.param(k.jacobi_step, 1), AccessAttr::READ);
        // residual: out write, a/anew read.
        assert_eq!(an.param(k.residual, 0), AccessAttr::WRITE);
        assert_eq!(an.param(k.residual, 1), AccessAttr::READ);
        assert_eq!(an.param(k.residual, 2), AccessAttr::READ);
        // residual2d: out write, a/anew read; loop-indexed, not bounded.
        assert_eq!(an.param(k.residual2d, 0), AccessAttr::WRITE);
        assert_eq!(an.param(k.residual2d, 1), AccessAttr::READ);
        assert_eq!(an.param(k.residual2d, 2), AccessAttr::READ);
        // apply_a: w write, p read.
        assert_eq!(an.param(k.apply_a, 0), AccessAttr::WRITE);
        assert_eq!(an.param(k.apply_a, 1), AccessAttr::READ);
        // axpy/xpay: y read-write, x read.
        assert_eq!(an.param(k.axpy, 0), AccessAttr::READ_WRITE);
        assert_eq!(an.param(k.axpy, 1), AccessAttr::READ);
        assert_eq!(an.param(k.xpay, 0), AccessAttr::READ_WRITE);
        assert_eq!(an.param(k.xpay, 1), AccessAttr::READ);
        // Scalars never carry access attributes.
        assert_eq!(an.param(k.axpy, 2), AccessAttr::NONE);
    }
}
