//! The correctness testsuite (paper §VI-C, the `cusan-tests` analogue).
//!
//! Small-scale CUDA-aware MPI programs, each *manually classified* as
//! correct or incorrect (containing a data race / datatype misuse). The
//! suite serves the same two purposes as the paper's: (i) a test harness
//! verifying the checker's detection capabilities — every case must be
//! classified correctly — and (ii) executable documentation of the
//! supported CUDA features and their synchronization behaviour.
//!
//! Case names follow the upstream convention:
//! `<category>/<scenario>[_nok]` where `_nok` marks an incorrect program.

use crate::kernels::AppKernels;
use cuda_sim::{CopyKind, DefaultStreamMode, StreamFlags, StreamId};
use cusan::Flavor;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, ReduceOp};
use must_rt::{run_checked_world, RankCtx};
use sim_mem::Ptr;
use std::sync::Arc;

/// Number of `f64` elements per test buffer (8 KiB: rendezvous path).
pub const N: u64 = 1024;

/// Expected classification of a case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expected {
    /// Correct program: no findings of any kind.
    Clean,
    /// Data race must be reported.
    Race,
    /// A MUST datatype/extent finding must be reported (no race).
    MustReport,
}

/// One testsuite case.
pub struct Case {
    /// `category/scenario` name.
    pub name: &'static str,
    /// Expected classification.
    pub expected: Expected,
    /// Per-rank body (world size is always 2).
    pub run: fn(&mut RankCtx, &'static AppKernels),
}

/// Outcome of executing one case under the full MUST & CuSan stack.
#[derive(Debug)]
pub struct CaseOutcome {
    /// Races reported (all ranks).
    pub races: u64,
    /// MUST findings (all ranks).
    pub must_reports: usize,
    /// Render-ready detail lines.
    pub details: Vec<String>,
}

/// Execute a case under the full MUST & CuSan stack.
pub fn run_case(case: &Case) -> CaseOutcome {
    run_case_with(case, Flavor::MustCusan.config())
}

/// Execute a case under an explicit tool configuration (used by the
/// bounded-tracking detection-preservation sweep).
pub fn run_case_with(case: &Case, cfg: cusan::ToolConfig) -> CaseOutcome {
    let k = AppKernels::shared();
    let run = case.run;
    let out = run_checked_world(2, cfg, Arc::clone(&k.registry), move |ctx| {
        run(ctx, k);
    });
    let mut details = Vec::new();
    for (rank, r) in out.all_races() {
        details.push(format!("rank {rank}: {r}"));
    }
    for (rank, m) in out.all_must_reports() {
        details.push(format!("rank {rank}: MUST: {m}"));
    }
    CaseOutcome {
        races: out.total_races(),
        must_reports: out.all_must_reports().len(),
        details,
    }
}

/// Check a case against its expected classification.
pub fn check_case(case: &Case) -> Result<CaseOutcome, String> {
    check_case_with(case, Flavor::MustCusan.config())
}

/// Check a case under an explicit tool configuration.
pub fn check_case_with(case: &Case, cfg: cusan::ToolConfig) -> Result<CaseOutcome, String> {
    let out = run_case_with(case, cfg);
    let ok = match case.expected {
        Expected::Clean => out.races == 0 && out.must_reports == 0,
        Expected::Race => out.races > 0,
        Expected::MustReport => out.must_reports > 0 && out.races == 0,
    };
    if ok {
        Ok(out)
    } else {
        Err(format!(
            "{}: expected {:?}, observed races={} must_reports={}\n{}",
            case.name,
            case.expected,
            out.races,
            out.must_reports,
            out.details.join("\n")
        ))
    }
}

// ---- kernel-launch helpers ----------------------------------------------------

fn fill(ctx: &mut RankCtx, k: &AppKernels, p: Ptr, v: f64, s: StreamId) {
    ctx.cuda
        .launch(
            k.fill,
            LaunchGrid::linear(N),
            s,
            vec![
                LaunchArg::Ptr(p),
                LaunchArg::F64(v),
                LaunchArg::I64(N as i64),
            ],
        )
        .unwrap();
}

fn consume(ctx: &mut RankCtx, k: &AppKernels, out: Ptr, inp: Ptr, s: StreamId) {
    ctx.cuda
        .launch(
            k.copy,
            LaunchGrid::linear(N),
            s,
            vec![
                LaunchArg::Ptr(out),
                LaunchArg::Ptr(inp),
                LaunchArg::I64(N as i64),
            ],
        )
        .unwrap();
}

fn peer_recv(ctx: &mut RankCtx) {
    let buf = ctx.cuda.malloc::<f64>(N).unwrap();
    ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0).unwrap();
}

fn peer_send(ctx: &mut RankCtx, k: &AppKernels) {
    let buf = ctx.cuda.malloc::<f64>(N).unwrap();
    fill(ctx, k, buf, 5.0, StreamId::DEFAULT);
    ctx.cuda.device_synchronize().unwrap();
    ctx.mpi.send(buf, N, MpiDatatype::Double, 0, 0).unwrap();
}

// ---- the suite -------------------------------------------------------------------

/// All cases, grouped by category.
pub fn cases() -> Vec<Case> {
    macro_rules! case {
        ($name:literal, $expected:ident, $body:expr) => {
            Case {
                name: $name,
                expected: Expected::$expected,
                run: $body,
            }
        };
    }
    vec![
        // ------------------------- cuda-to-mpi -------------------------
        case!("cuda-to-mpi/send_device_sync", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_no_sync_nok", Race, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_stream_sync", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let s = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s);
                ctx.cuda.stream_synchronize(s).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_wrong_stream_sync_nok", Race, |ctx, k| {
            if ctx.rank() == 0 {
                let s1 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let s2 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s1);
                ctx.cuda.stream_synchronize(s2).unwrap(); // wrong stream
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_event_sync", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let s = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let e = ctx.cuda.event_create();
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s);
                ctx.cuda.event_record(e, s).unwrap();
                ctx.cuda.event_synchronize(e).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!(
            "cuda-to-mpi/send_event_before_kernel_nok",
            Race,
            |ctx, k| {
                if ctx.rank() == 0 {
                    let s = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                    let e = ctx.cuda.event_create();
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    ctx.cuda.event_record(e, s).unwrap(); // marker BEFORE the kernel
                    fill(ctx, k, d, 1.0, s);
                    ctx.cuda.event_synchronize(e).unwrap();
                    ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
                } else {
                    peer_recv(ctx);
                }
            }
        ),
        case!("cuda-to-mpi/send_memcpy_sync", Clean, |ctx, k| {
            // A blocking D2H memcpy is an implicit synchronization point.
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let h = ctx.cuda.host_malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.cuda
                    .memcpy(h, d, N * 8, CopyKind::DeviceToHost)
                    .unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_memcpy_async_nok", Race, |ctx, k| {
            // The async variant does NOT synchronize the host.
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let h = ctx.cuda.host_alloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.cuda
                    .memcpy_async(h, d, N * 8, CopyKind::DeviceToHost, StreamId::DEFAULT)
                    .unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_query_sync", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                // Busy-wait query acts as synchronization (paper §III-B1).
                while !ctx.cuda.stream_query(StreamId::DEFAULT).unwrap() {}
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_nonblocking_stream_nok", Race, |ctx, k| {
            if ctx.rank() == 0 {
                let s = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s);
                // Synchronizing the DEFAULT stream does not cover a
                // non-blocking stream.
                ctx.cuda.stream_synchronize(StreamId::DEFAULT).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!(
            "cuda-to-mpi/send_default_sync_covers_blocking_stream",
            Clean,
            |ctx, k| {
                // Legacy semantics: synchronizing the default stream also
                // terminates blocking user streams (paper §IV-A e).
                if ctx.rank() == 0 {
                    let s = ctx.cuda.stream_create(StreamFlags::Default);
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    fill(ctx, k, d, 1.0, s);
                    ctx.cuda.stream_synchronize(StreamId::DEFAULT).unwrap();
                    ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
                } else {
                    peer_recv(ctx);
                }
            }
        ),
        case!("cuda-to-mpi/isend_wait_then_kernel", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                let mut req = ctx.mpi.isend(d, N, MpiDatatype::Double, 1, 0).unwrap();
                ctx.mpi.wait(&mut req).unwrap();
                fill(ctx, k, d, 2.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!(
            "cuda-to-mpi/isend_kernel_before_wait_nok",
            Race,
            |ctx, k| {
                if ctx.rank() == 0 {
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                    ctx.cuda.device_synchronize().unwrap();
                    let mut req = ctx.mpi.isend(d, N, MpiDatatype::Double, 1, 0).unwrap();
                    fill(ctx, k, d, 2.0, StreamId::DEFAULT); // inside the region
                    ctx.mpi.wait(&mut req).unwrap();
                    ctx.cuda.device_synchronize().unwrap();
                } else {
                    peer_recv(ctx);
                }
            }
        ),
        case!("cuda-to-mpi/send_pinned_buffer", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let p = ctx.cuda.host_alloc::<f64>(N).unwrap();
                fill(ctx, k, p, 3.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(p, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/free_during_isend_nok", Race, |ctx, k| {
            // Use-after-free: the buffer is released inside the Isend's
            // concurrent region. The race is reported at the free; the
            // rendezvous transfer then faults, so both sides tolerate the
            // resulting MPI errors.
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                let mut req = ctx.mpi.isend(d, N, MpiDatatype::Double, 1, 0).unwrap();
                ctx.cuda.free(d).unwrap(); // released inside the region
                let _ = ctx.mpi.wait(&mut req);
            } else {
                let buf = ctx.cuda.malloc::<f64>(N).unwrap();
                let _ = ctx.mpi.recv(buf, N, MpiDatatype::Double, 0, 0);
            }
        }),
        case!("cuda-to-mpi/send_memset_async_nok", Race, |ctx, _k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                ctx.cuda.memset(d, 0xFF, N * 8).unwrap(); // async w.r.t. host
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_memset_pinned", Clean, |ctx, _k| {
            if ctx.rank() == 0 {
                let p = ctx.cuda.host_alloc::<f64>(N).unwrap();
                ctx.cuda.memset(p, 0, N * 8).unwrap(); // pinned: blocks host
                ctx.mpi.send(p, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/send_memset_then_sync", Clean, |ctx, _k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                ctx.cuda.memset(d, 0, N * 8).unwrap();
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                peer_recv(ctx);
            }
        }),
        case!("cuda-to-mpi/allreduce_no_sync_nok", Race, |ctx, k| {
            let s = ctx.cuda.malloc::<f64>(N).unwrap();
            let r = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, s, 1.0, StreamId::DEFAULT);
            // Missing sync before the collective reads the send buffer.
            ctx.mpi
                .allreduce(s, r, N, MpiDatatype::Double, ReduceOp::Sum)
                .unwrap();
        }),
        case!("cuda-to-mpi/allreduce_sync", Clean, |ctx, k| {
            let s = ctx.cuda.malloc::<f64>(N).unwrap();
            let r = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, s, 1.0, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
            ctx.mpi
                .allreduce(s, r, N, MpiDatatype::Double, ReduceOp::Sum)
                .unwrap();
        }),
        // ------------------------- mpi-to-cuda -------------------------
        case!("mpi-to-cuda/irecv_wait_kernel", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut req = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                ctx.mpi.wait(&mut req).unwrap();
                consume(ctx, k, out, d, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
            } else {
                peer_send(ctx, k);
            }
        }),
        case!(
            "mpi-to-cuda/irecv_kernel_before_wait_nok",
            Race,
            |ctx, k| {
                if ctx.rank() == 0 {
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    let out = ctx.cuda.malloc::<f64>(N).unwrap();
                    let mut req = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                    consume(ctx, k, out, d, StreamId::DEFAULT); // before Wait
                    ctx.mpi.wait(&mut req).unwrap();
                    ctx.cuda.device_synchronize().unwrap();
                } else {
                    peer_send(ctx, k);
                }
            }
        ),
        case!("mpi-to-cuda/irecv_test_loop", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut req = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                // Poll with MPI_Test until completion — a successful test
                // is a completion call.
                while ctx.mpi.test(&mut req).unwrap().is_none() {
                    std::thread::yield_now();
                }
                consume(ctx, k, out, d, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
            } else {
                peer_send(ctx, k);
            }
        }),
        case!("mpi-to-cuda/recv_then_kernel", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                ctx.mpi.recv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                consume(ctx, k, out, d, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
            } else {
                peer_send(ctx, k);
            }
        }),
        case!("mpi-to-cuda/recv_into_kernel_input_nok", Race, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                consume(ctx, k, out, d, StreamId::DEFAULT); // kernel reads d...
                                                            // ...while the blocking Recv writes it, unsynchronized.
                ctx.mpi.recv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                ctx.cuda.device_synchronize().unwrap();
            } else {
                peer_send(ctx, k);
            }
        }),
        case!(
            "mpi-to-cuda/irecv_host_read_before_wait_nok",
            Race,
            |ctx, k| {
                if ctx.rank() == 0 {
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    let mut req = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                    let _ = ctx
                        .tools
                        .host_read_slice::<f64>(&ctx.space(), d, N, "host read before wait")
                        .unwrap();
                    ctx.mpi.wait(&mut req).unwrap();
                } else {
                    peer_send(ctx, k);
                }
            }
        ),
        case!("mpi-to-cuda/irecv_wait_host_read", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut req = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                ctx.mpi.wait(&mut req).unwrap();
                let v = ctx
                    .tools
                    .host_read_slice::<f64>(&ctx.space(), d, N, "host read after wait")
                    .unwrap();
                assert_eq!(v[0], 5.0);
            } else {
                peer_send(ctx, k);
            }
        }),
        case!(
            "mpi-to-cuda/isend_host_write_before_wait_nok",
            Race,
            |ctx, k| {
                // The paper's Fig. 1 race.
                if ctx.rank() == 0 {
                    let d = ctx.cuda.malloc::<f64>(N).unwrap();
                    let mut req = ctx.mpi.isend(d, N, MpiDatatype::Double, 1, 0).unwrap();
                    ctx.tools
                        .host_write_at::<f64>(&ctx.space(), d, 9.0, "host write before wait")
                        .unwrap();
                    ctx.mpi.wait(&mut req).unwrap();
                } else {
                    let _ = k;
                    peer_recv(ctx);
                }
            }
        ),
        case!("mpi-to-cuda/overlapping_irecv_nok", Race, |ctx, k| {
            // Two concurrent Irecvs into the same device buffer: the MPI
            // fibers' writes conflict with each other.
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut r1 = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 0).unwrap();
                let mut r2 = ctx.mpi.irecv(d, N, MpiDatatype::Double, 1, 1).unwrap();
                ctx.mpi.wait(&mut r1).unwrap();
                ctx.mpi.wait(&mut r2).unwrap();
            } else {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                ctx.tools
                    .host_write_slice::<f64>(&ctx.space(), d, &vec![1.0; N as usize], "init")
                    .unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 0).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 1).unwrap();
                let _ = k;
            }
        }),
        case!("mpi-to-cuda/disjoint_irecv_waitall", Clean, |ctx, k| {
            // Two Irecvs into disjoint halves of one buffer are fine.
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let half = N / 2;
                let mut reqs = vec![
                    ctx.mpi.irecv(d, half, MpiDatatype::Double, 1, 0).unwrap(),
                    ctx.mpi
                        .irecv(d.offset(half * 8), half, MpiDatatype::Double, 1, 1)
                        .unwrap(),
                ];
                ctx.mpi.waitall(&mut reqs).unwrap();
            } else {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 2.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(d, N / 2, MpiDatatype::Double, 0, 0).unwrap();
                ctx.mpi.send(d, N / 2, MpiDatatype::Double, 0, 1).unwrap();
            }
        }),
        case!("mpi-to-cuda/sendrecv_kernel_after", Clean, |ctx, k| {
            let me = ctx.rank();
            let peer = 1 - me as i64;
            let tx = ctx.cuda.malloc::<f64>(N).unwrap();
            let rx = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, tx, me as f64, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
            ctx.mpi
                .sendrecv(tx, N, peer, 0, rx, N, peer as i32, 0, MpiDatatype::Double)
                .unwrap();
            consume(ctx, k, out, rx, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!("mpi-to-cuda/bcast_device", Clean, |ctx, k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            if ctx.rank() == 0 {
                fill(ctx, k, d, 4.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
            }
            ctx.mpi.bcast(d, N, MpiDatatype::Double, 0).unwrap();
        }),
        case!("mpi-to-cuda/bcast_kernel_pending_nok", Race, |ctx, k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            if ctx.rank() == 0 {
                fill(ctx, k, d, 4.0, StreamId::DEFAULT);
                // root's send buffer read while the kernel is pending
            }
            ctx.mpi.bcast(d, N, MpiDatatype::Double, 0).unwrap();
        }),
        // ------------------------- cuda-to-cuda -------------------------
        case!("cuda-to-cuda/two_streams_no_sync_nok", Race, |ctx, k| {
            let s1 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
            let s2 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, s1);
            consume(ctx, k, out, d, s2);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!("cuda-to-cuda/two_streams_wait_event", Clean, |ctx, k| {
            let s1 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
            let s2 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
            let e = ctx.cuda.event_create();
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, s1);
            ctx.cuda.event_record(e, s1).unwrap();
            ctx.cuda.stream_wait_event(s2, e).unwrap();
            consume(ctx, k, out, d, s2);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!(
            "cuda-to-cuda/two_streams_host_sync_between",
            Clean,
            |ctx, k| {
                let s1 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let s2 = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s1);
                ctx.cuda.stream_synchronize(s1).unwrap();
                consume(ctx, k, out, d, s2);
                ctx.cuda.device_synchronize().unwrap();
            }
        ),
        case!("cuda-to-cuda/legacy_user_then_default", Clean, |ctx, k| {
            // Fig. 3 logical barrier: no explicit sync needed.
            let s = ctx.cuda.stream_create(StreamFlags::Default);
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, s);
            consume(ctx, k, out, d, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!("cuda-to-cuda/legacy_default_then_user", Clean, |ctx, k| {
            let s = ctx.cuda.stream_create(StreamFlags::Default);
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, StreamId::DEFAULT);
            consume(ctx, k, out, d, s);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!("cuda-to-cuda/legacy_transitive_chain", Clean, |ctx, k| {
            // K1 (s1) -> K0 (default) -> K2 (s2), all blocking: ordered.
            let s1 = ctx.cuda.stream_create(StreamFlags::Default);
            let s2 = ctx.cuda.stream_create(StreamFlags::Default);
            let a = ctx.cuda.malloc::<f64>(N).unwrap();
            let b = ctx.cuda.malloc::<f64>(N).unwrap();
            let c = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, a, 1.0, s1);
            consume(ctx, k, b, a, StreamId::DEFAULT);
            consume(ctx, k, c, b, s2);
            ctx.cuda.stream_synchronize(s2).unwrap();
            let v = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), c, N, "chain check")
                .unwrap();
            assert_eq!(v[0], 1.0);
        }),
        case!(
            "cuda-to-cuda/nonblocking_escapes_barrier_nok",
            Race,
            |ctx, k| {
                let nb = ctx.cuda.stream_create(StreamFlags::NonBlocking);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, nb);
                consume(ctx, k, out, d, StreamId::DEFAULT); // no barrier for nb
                ctx.cuda.device_synchronize().unwrap();
            }
        ),
        case!("cuda-to-cuda/same_stream_fifo", Clean, |ctx, k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, StreamId::DEFAULT);
            fill(ctx, k, d, 2.0, StreamId::DEFAULT);
            consume(ctx, k, out, d, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
        }),
        // ------------------------- cuda-to-host -------------------------
        case!("cuda-to-host/read_no_sync_nok", Race, |ctx, k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, StreamId::DEFAULT);
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), d, N, "host read")
                .unwrap();
        }),
        case!("cuda-to-host/read_after_device_sync", Clean, |ctx, k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
            let v = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), d, N, "host read")
                .unwrap();
            assert_eq!(v[0], 1.0);
        }),
        case!("cuda-to-host/memcpy_async_read_nok", Race, |ctx, _k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let h = ctx.cuda.host_alloc::<f64>(N).unwrap();
            ctx.cuda
                .memcpy_async(h, d, N * 8, CopyKind::DeviceToHost, StreamId::DEFAULT)
                .unwrap();
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), h, N, "host read")
                .unwrap();
        }),
        case!("cuda-to-host/memcpy_sync_read", Clean, |ctx, _k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let h = ctx.cuda.host_malloc::<f64>(N).unwrap();
            ctx.cuda
                .memcpy(h, d, N * 8, CopyKind::DeviceToHost)
                .unwrap();
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), h, N, "host read")
                .unwrap();
        }),
        case!("cuda-to-host/memset_device_read_nok", Race, |ctx, _k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            ctx.cuda.memset(d, 0xAB, N * 8).unwrap();
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), d, N, "host read")
                .unwrap();
        }),
        case!("cuda-to-host/memset_pinned_read", Clean, |ctx, _k| {
            let p = ctx.cuda.host_alloc::<f64>(N).unwrap();
            ctx.cuda.memset(p, 0, N * 8).unwrap();
            let _ = ctx
                .tools
                .host_read_slice::<f64>(&ctx.space(), p, N, "host read")
                .unwrap();
        }),
        case!(
            "cuda-to-host/managed_write_during_kernel_nok",
            Race,
            |ctx, k| {
                let m = ctx.cuda.malloc_managed::<f64>(N).unwrap();
                fill(ctx, k, m, 1.0, StreamId::DEFAULT);
                ctx.tools
                    .host_write_at::<f64>(&ctx.space(), m, 7.0, "managed host write")
                    .unwrap();
                ctx.cuda.device_synchronize().unwrap();
            }
        ),
        case!("cuda-to-host/managed_write_after_sync", Clean, |ctx, k| {
            let m = ctx.cuda.malloc_managed::<f64>(N).unwrap();
            fill(ctx, k, m, 1.0, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
            ctx.tools
                .host_write_at::<f64>(&ctx.space(), m, 7.0, "managed host write")
                .unwrap();
        }),
        case!("cuda-to-host/host_init_then_kernel", Clean, |ctx, k| {
            // Host writes BEFORE the launch are ordered by submission.
            let m = ctx.cuda.malloc_managed::<f64>(N).unwrap();
            ctx.tools
                .host_write_slice::<f64>(&ctx.space(), m, &vec![3.0; N as usize], "init")
                .unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            consume(ctx, k, out, m, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
        }),
        // ------------------ extensions (§VI features) ------------------
        case!(
            "extensions/per_thread_default_no_barrier_nok",
            Race,
            |ctx, k| {
                // Correct under legacy semantics, racy under per-thread mode.
                ctx.cuda
                    .set_default_stream_mode(DefaultStreamMode::PerThread);
                let s = ctx.cuda.stream_create(StreamFlags::Default);
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 1.0, s);
                consume(ctx, k, out, d, StreamId::DEFAULT); // no legacy barrier
                ctx.cuda.device_synchronize().unwrap();
            }
        ),
        case!("extensions/per_thread_event_ordered", Clean, |ctx, k| {
            ctx.cuda
                .set_default_stream_mode(DefaultStreamMode::PerThread);
            let s = ctx.cuda.stream_create(StreamFlags::Default);
            let e = ctx.cuda.event_create();
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let out = ctx.cuda.malloc::<f64>(N).unwrap();
            fill(ctx, k, d, 1.0, s);
            ctx.cuda.event_record(e, s).unwrap();
            ctx.cuda.stream_wait_event(StreamId::DEFAULT, e).unwrap();
            consume(ctx, k, out, d, StreamId::DEFAULT);
            ctx.cuda.device_synchronize().unwrap();
        }),
        case!("extensions/waitany_then_kernel", Clean, |ctx, k| {
            if ctx.rank() == 0 {
                let a = ctx.cuda.malloc::<f64>(N).unwrap();
                let b = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut reqs = vec![
                    ctx.mpi.irecv(a, N, MpiDatatype::Double, 1, 0).unwrap(),
                    ctx.mpi.irecv(b, N, MpiDatatype::Double, 1, 1).unwrap(),
                ];
                // Consume each buffer only after ITS request completed.
                for _ in 0..2 {
                    let (i, _) = ctx.mpi.waitany(&mut reqs).unwrap();
                    let buf = if i == 0 { a } else { b };
                    consume(ctx, k, out, buf, StreamId::DEFAULT);
                    ctx.cuda.device_synchronize().unwrap();
                }
            } else {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                fill(ctx, k, d, 2.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 1).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 0).unwrap();
            }
        }),
        case!("extensions/waitany_wrong_buffer_nok", Race, |ctx, k| {
            if ctx.rank() == 0 {
                let a = ctx.cuda.malloc::<f64>(N).unwrap();
                let b = ctx.cuda.malloc::<f64>(N).unwrap();
                let out = ctx.cuda.malloc::<f64>(N).unwrap();
                let mut reqs = vec![
                    ctx.mpi.irecv(a, N, MpiDatatype::Double, 1, 0).unwrap(),
                    ctx.mpi.irecv(b, N, MpiDatatype::Double, 1, 1).unwrap(),
                ];
                // BUG: waitany completed ONE request but the kernel reads
                // the OTHER, still-in-flight buffer.
                let (i, _) = ctx.mpi.waitany(&mut reqs).unwrap();
                let wrong = if i == 0 { b } else { a };
                consume(ctx, k, out, wrong, StreamId::DEFAULT);
                ctx.mpi.waitall(&mut reqs).unwrap();
                ctx.cuda.device_synchronize().unwrap();
            } else {
                let d = ctx.cuda.malloc::<f64>(N).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 1).unwrap();
                ctx.mpi.send(d, N, MpiDatatype::Double, 0, 0).unwrap();
            }
        }),
        case!("extensions/memcpy2d_pack_sync", Clean, |ctx, k| {
            // Pitched column pack, synchronized before the send.
            if ctx.rank() == 0 {
                let field = ctx.cuda.malloc::<f64>(N).unwrap(); // 32x32
                let col = ctx.cuda.malloc::<f64>(32).unwrap();
                fill(ctx, k, field, 3.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.cuda
                    .memcpy_2d(col, 8, field, 32 * 8, 8, 32, CopyKind::DeviceToDevice)
                    .unwrap();
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(col, 32, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                let col = ctx.cuda.malloc::<f64>(32).unwrap();
                ctx.mpi.recv(col, 32, MpiDatatype::Double, 0, 0).unwrap();
            }
        }),
        case!("extensions/memcpy2d_pack_no_sync_nok", Race, |ctx, k| {
            // The pitched pack is stream-ordered (D2D): sending without a
            // synchronize races with the copy's write of the pack buffer.
            if ctx.rank() == 0 {
                let field = ctx.cuda.malloc::<f64>(N).unwrap();
                let col = ctx.cuda.malloc::<f64>(32).unwrap();
                fill(ctx, k, field, 3.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.cuda
                    .memcpy_2d(col, 8, field, 32 * 8, 8, 32, CopyKind::DeviceToDevice)
                    .unwrap();
                // MISSING device synchronize.
                ctx.mpi.send(col, 32, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                let col = ctx.cuda.malloc::<f64>(32).unwrap();
                ctx.mpi.recv(col, 32, MpiDatatype::Double, 0, 0).unwrap();
            }
        }),
        // ------------------------- datatype (MUST) -------------------------
        case!("datatype/type_mismatch_nok", MustReport, |ctx, k| {
            let d = ctx.cuda.malloc::<i32>(2 * N).unwrap();
            if ctx.rank() == 0 {
                ctx.mpi.send(d, N, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                ctx.mpi.recv(d, N, MpiDatatype::Double, 0, 0).unwrap();
            }
            let _ = k;
        }),
        case!("datatype/count_overrun_nok", MustReport, |ctx, _k| {
            // Both ranks attempt a send whose count overruns the
            // allocation. MUST reports the overrun at interception; the
            // transfer itself fails in the simulator (like a segfaulting
            // send in reality), so no rank posts a matching receive.
            let d = ctx.cuda.malloc::<f64>(N / 2).unwrap();
            let peer = 1 - ctx.rank() as i64;
            let err = ctx.mpi.send(d, N, MpiDatatype::Double, peer, 0);
            assert!(err.is_err(), "overrun send must fail in the simulator");
        }),
        case!("datatype/byte_view_ok", Clean, |ctx, _k| {
            // MPI_BYTE is compatible with any element type.
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            if ctx.rank() == 0 {
                ctx.mpi.send(d, N * 8, MpiDatatype::Byte, 1, 0).unwrap();
            } else {
                ctx.mpi.recv(d, N * 8, MpiDatatype::Byte, 0, 0).unwrap();
            }
        }),
        case!("datatype/interior_pointer_ok", Clean, |ctx, _k| {
            let d = ctx.cuda.malloc::<f64>(N).unwrap();
            let half = d.offset(N / 2 * 8);
            if ctx.rank() == 0 {
                ctx.mpi
                    .send(half, N / 2, MpiDatatype::Double, 1, 0)
                    .unwrap();
            } else {
                ctx.mpi
                    .recv(half, N / 2, MpiDatatype::Double, 0, 0)
                    .unwrap();
            }
        }),
    ]
}

// ---- schedule exploration ---------------------------------------------------

/// Element count of the exploration case's payloads: 2 KiB, safely under
/// the simulator's eager limit so rank 1's sends complete at post time
/// and all three are pending together.
const EAGER_M: u64 = 256;

/// The planted wildcard-receive race — deliberately **not** part of
/// [`cases`]. Under the default schedule this program is provably clean:
/// a wildcard `ANY_TAG` receive always matches the globally oldest
/// pending send (the tag-0 message), and that branch synchronizes the
/// device before touching the kernel's output. Only when a schedule
/// controller steers the wildcard match to the younger tag-1 send does
/// the unsynchronized branch execute and race with the still-pending
/// kernel write. One fixed run can never observe it; `explore::explore`
/// finds it by branching the wildcard decision.
pub fn wildcard_schedule_race() -> Case {
    Case {
        name: "explore/wildcard_match_unsynced_branch_nok",
        expected: Expected::Race,
        run: |ctx, k| {
            if ctx.rank() == 0 {
                let d = ctx.cuda.malloc::<f64>(EAGER_M).unwrap();
                let payload = ctx.cuda.malloc::<f64>(EAGER_M).unwrap();
                let ready = ctx.cuda.malloc::<f64>(1).unwrap();
                // Kernel write to `d` stays pending on the default stream.
                ctx.cuda
                    .launch(
                        k.fill,
                        LaunchGrid::linear(EAGER_M),
                        StreamId::DEFAULT,
                        vec![
                            LaunchArg::Ptr(d),
                            LaunchArg::F64(1.0),
                            LaunchArg::I64(EAGER_M as i64),
                        ],
                    )
                    .unwrap();
                // Rank 1 posts tag 0, tag 1, then the tag-2 flag, in that
                // seq order. Receiving the flag first (per-(src,tag)
                // matching lets it overtake) guarantees both payload
                // sends are pending when the wildcard below matches.
                ctx.mpi.recv(ready, 1, MpiDatatype::Double, 1, 2).unwrap();
                let st = ctx
                    .mpi
                    .recv(payload, EAGER_M, MpiDatatype::Double, 1, mpi_sim::ANY_TAG)
                    .unwrap();
                if st.tag == 0 {
                    // The default (oldest-send) match: synchronized.
                    ctx.cuda.device_synchronize().unwrap();
                }
                // Racy only on the tag-1 branch: the kernel write to `d`
                // is still queued.
                let _ = ctx
                    .tools
                    .host_read_slice::<f64>(&ctx.space(), d, EAGER_M, "host read of kernel output")
                    .unwrap();
                // Drain the other payload send, then the device.
                ctx.mpi
                    .recv(payload, EAGER_M, MpiDatatype::Double, 1, 1 - st.tag)
                    .unwrap();
                ctx.cuda.device_synchronize().unwrap();
            } else {
                let a = ctx.cuda.malloc::<f64>(EAGER_M).unwrap();
                let b = ctx.cuda.malloc::<f64>(EAGER_M).unwrap();
                let flag = ctx.cuda.malloc::<f64>(1).unwrap();
                fill(ctx, k, a, 2.0, StreamId::DEFAULT);
                ctx.cuda.device_synchronize().unwrap();
                ctx.mpi.send(a, EAGER_M, MpiDatatype::Double, 0, 0).unwrap();
                ctx.mpi.send(b, EAGER_M, MpiDatatype::Double, 0, 1).unwrap();
                ctx.mpi.send(flag, 1, MpiDatatype::Double, 0, 2).unwrap();
            }
        },
    }
}

/// Execute a case under an explicit [`explore::SchedulePlan`] with a
/// trace recorded on every rank. The world is always 2 ranks, so plans
/// need 3 lanes ([`explore::SchedulePlan::defaults`]`(2)`).
pub fn run_case_scheduled(
    case: &Case,
    plan: Arc<explore::SchedulePlan>,
) -> must_rt::WorldOutcome<()> {
    run_case_scheduled_with(case, Flavor::MustCusan.config(), plan)
}

/// [`run_case_scheduled`] under an explicit tool configuration.
pub fn run_case_scheduled_with(
    case: &Case,
    cfg: cusan::ToolConfig,
    plan: Arc<explore::SchedulePlan>,
) -> must_rt::WorldOutcome<()> {
    let k = AppKernels::shared();
    let run = case.run;
    must_rt::run_checked_world_scheduled_traced(2, cfg, Arc::clone(&k.registry), plan, move |ctx| {
        run(ctx, k);
    })
}

/// State hash over the detector-visible outcome of a world run: every
/// rank's recorded event stream with `ScheduleChoice` markers masked out
/// (two schedules that produce identical detector inputs are the same
/// execution as far as checking is concerned), plus the race reports for
/// untraced runs. This is the dedup key [`explore::explore`] uses.
pub fn outcome_digest<T>(out: &must_rt::WorldOutcome<T>) -> u64 {
    let mut h = explore::Fnv::new();
    for r in &out.ranks {
        h.write_u64(r.rank as u64);
        if let Some(bytes) = &r.trace {
            let trace = cusan::Trace::from_bytes(bytes).expect("recorded trace parses");
            for ev in &trace.events {
                if matches!(ev, cusan::CusanEvent::ScheduleChoice { .. }) {
                    continue;
                }
                h.write_str(&format!("{ev:?}"));
            }
        }
        h.write_u64(r.race_count);
        for race in &r.races {
            h.write_str(&format!("{race}"));
        }
        for m in &r.must_reports {
            h.write_str(&format!("{m}"));
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_both_classes_in_every_category() {
        let cases = cases();
        assert!(
            cases.len() >= 45,
            "paper's suite has 49 cases; ours {}",
            cases.len()
        );
        for cat in [
            "cuda-to-mpi",
            "mpi-to-cuda",
            "cuda-to-cuda",
            "cuda-to-host",
            "extensions",
            "datatype",
        ] {
            let in_cat: Vec<_> = cases.iter().filter(|c| c.name.starts_with(cat)).collect();
            assert!(!in_cat.is_empty(), "category {cat} missing");
            assert!(
                in_cat.iter().any(|c| c.expected == Expected::Clean),
                "category {cat} has no correct case"
            );
            assert!(
                in_cat.iter().any(|c| c.expected != Expected::Clean),
                "category {cat} has no incorrect case"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let cases = cases();
        let mut names: Vec<_> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len());
    }

    #[test]
    fn nok_suffix_matches_expectation() {
        for c in cases() {
            assert_eq!(
                c.name.ends_with("_nok"),
                c.expected != Expected::Clean,
                "{} suffix disagrees with {:?}",
                c.name,
                c.expected
            );
        }
    }
}
