//! Symmetric rank bodies for chaos soaking (deterministic fault sweeps).
//!
//! The evaluation mini-apps ([`crate::jacobi`], [`crate::tealeaf`]) are
//! unsuitable for fault injection as-is: they `unwrap()` every call, and
//! their rank bodies are not call-sequence symmetric (rank 0 launches
//! extra boundary kernels), so a rank-independent fault plan would not
//! fire in lockstep. The bodies here are their chaos twins:
//!
//! * **Call-sequence symmetric**: every rank issues exactly the same
//!   sequence of checked CUDA/MPI calls. Edge ranks address their missing
//!   neighbors as `MPI_PROC_NULL` — the interception (and its fault site)
//!   still happens, only the transfer is elided. With the fault decision
//!   a pure function of `(seed, site)`, all ranks therefore fault at the
//!   same call: a failed collective or exchange is abandoned by everyone
//!   at once instead of deadlocking the survivors.
//! * **Error-propagating**: every fallible call uses `?`; the first
//!   injected (or real) failure aborts the body with a typed
//!   [`ChaosError`].
//! * **Best-effort teardown**: allocations are freed afterwards whatever
//!   happened, ignoring further injected failures, mirroring how a real
//!   application's cleanup path must tolerate a dying runtime.
//!
//! Messages stay under the simulator's eager limit so an abandoned
//! exchange never leaves a partner blocked in a rendezvous.

use crate::kernels::AppKernels;
use cuda_sim::{CopyKind, CudaError, StreamFlags, StreamId};
use cusan::ToolConfig;
use kernel_ir::{LaunchArg, LaunchGrid};
use mpi_sim::{MpiDatatype, MpiError, ReduceOp, PROC_NULL};
use must_rt::{
    run_checked_world_scheduled_traced, run_checked_world_traced, RankCtx, WorldOutcome,
};
use sim_mem::{MemError, Ptr};
use std::fmt;
use std::sync::Arc;

/// First failure a chaos body ran into.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosError {
    /// A CUDA call failed.
    Cuda(CudaError),
    /// An MPI call failed.
    Mpi(MpiError),
    /// A host-side tracked access failed.
    Mem(MemError),
}

impl fmt::Display for ChaosError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaosError::Cuda(e) => write!(f, "cuda: {e}"),
            ChaosError::Mpi(e) => write!(f, "mpi: {e}"),
            ChaosError::Mem(e) => write!(f, "mem: {e}"),
        }
    }
}

impl std::error::Error for ChaosError {}

impl From<CudaError> for ChaosError {
    fn from(e: CudaError) -> Self {
        ChaosError::Cuda(e)
    }
}

impl From<MpiError> for ChaosError {
    fn from(e: MpiError) -> Self {
        ChaosError::Mpi(e)
    }
}

impl From<MemError> for ChaosError {
    fn from(e: MemError) -> Self {
        ChaosError::Mem(e)
    }
}

/// Shape of a chaos run (deliberately tiny: the sweep multiplies it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Columns per row. Halo messages are `nx` doubles; keep `nx * 8`
    /// under the eager limit (4096 bytes).
    pub nx: u64,
    /// Interior rows per rank.
    pub rows: u64,
    /// World size.
    pub ranks: usize,
    /// Iterations.
    pub iters: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            nx: 32,
            rows: 8,
            ranks: 2,
            iters: 4,
        }
    }
}

/// Per-rank result: the final residual value, or the first failure.
pub type ChaosResult = Result<f64, ChaosError>;

fn row_ptr(base: Ptr, row: u64, nx: u64) -> Ptr {
    base.offset(row * nx * 8)
}

/// Neighbor ranks (edges get `PROC_NULL`, keeping the call sequence
/// identical on every rank).
fn neighbors(rank: usize, ranks: usize) -> (i64, i64) {
    let up = if rank > 0 { rank as i64 - 1 } else { PROC_NULL };
    let down = if rank + 1 < ranks {
        rank as i64 + 1
    } else {
        PROC_NULL
    };
    (up, down)
}

/// Jacobi-shaped chaos body: blocking `Sendrecv` halo exchange, second
/// stream for the residual reduction, per-iteration `Allreduce`. Always
/// traced (the soak compares live vs. recorded vs. replayed).
pub fn run_chaos_jacobi(
    cfg: &ChaosConfig,
    tools: impl Into<ToolConfig>,
) -> WorldOutcome<ChaosResult> {
    run_chaos_jacobi_scheduled(cfg, tools, None)
}

/// [`run_chaos_jacobi`] under an optional schedule plan (the explored
/// chaos slice; a plan needs `cfg.ranks + 1` lanes).
pub fn run_chaos_jacobi_scheduled(
    cfg: &ChaosConfig,
    tools: impl Into<ToolConfig>,
    plan: Option<Arc<explore::SchedulePlan>>,
) -> WorldOutcome<ChaosResult> {
    let cfg = *cfg;
    let k = AppKernels::shared();
    let gate = teardown_gate(cfg.ranks);
    let body = move |ctx: &mut RankCtx| {
        let mut ptrs = Vec::new();
        let r = chaos_jacobi_body(ctx, k, &cfg, &mut ptrs);
        gate.wait();
        teardown(ctx, ptrs);
        r
    };
    match plan {
        Some(plan) => run_checked_world_scheduled_traced(
            cfg.ranks,
            tools.into(),
            Arc::clone(&k.registry),
            plan,
            body,
        ),
        None => run_checked_world_traced(cfg.ranks, tools.into(), Arc::clone(&k.registry), body),
    }
}

/// TeaLeaf-shaped chaos body: non-blocking 4-way `Isend`/`Irecv` halo
/// exchange with `Waitall`, dot-product `Allreduce`. Always traced.
pub fn run_chaos_tealeaf(
    cfg: &ChaosConfig,
    tools: impl Into<ToolConfig>,
) -> WorldOutcome<ChaosResult> {
    run_chaos_tealeaf_scheduled(cfg, tools, None)
}

/// [`run_chaos_tealeaf`] under an optional schedule plan.
pub fn run_chaos_tealeaf_scheduled(
    cfg: &ChaosConfig,
    tools: impl Into<ToolConfig>,
    plan: Option<Arc<explore::SchedulePlan>>,
) -> WorldOutcome<ChaosResult> {
    let cfg = *cfg;
    let k = AppKernels::shared();
    let gate = teardown_gate(cfg.ranks);
    let body = move |ctx: &mut RankCtx| {
        let mut ptrs = Vec::new();
        let r = chaos_tealeaf_body(ctx, k, &cfg, &mut ptrs);
        gate.wait();
        teardown(ctx, ptrs);
        r
    };
    match plan {
        Some(plan) => run_checked_world_scheduled_traced(
            cfg.ranks,
            tools.into(),
            Arc::clone(&k.registry),
            plan,
            body,
        ),
        None => run_checked_world_traced(cfg.ranks, tools.into(), Arc::clone(&k.registry), body),
    }
}

/// Process-local gate every rank passes between its body returning and
/// its teardown frees. A rank that dies at its (lockstep) fault site may
/// leave eager sends or posted receives pending; a partner still inside
/// the exchange delivers into those buffers when *its* matching call
/// arrives. Freeing before every body has returned would race that
/// delivery — the partner's outcome would flip between its own
/// symmetric fault and `Mem(Unmapped)` depending on thread timing,
/// breaking the soak's per-seed determinism. The gate cannot deadlock:
/// bodies never block indefinitely (waits and collectives time out), so
/// every rank reaches it. Deliberately a plain [`std::sync::Barrier`],
/// not an MPI barrier: it must be invisible to the fault injector and
/// to traces.
fn teardown_gate(ranks: usize) -> Arc<std::sync::Barrier> {
    Arc::new(std::sync::Barrier::new(ranks))
}

/// Free everything the body managed to allocate, ignoring failures:
/// teardown must survive a fault plan that is still firing. Runs only
/// after [`teardown_gate`] — no in-flight delivery can observe the
/// frees.
fn teardown(ctx: &mut RankCtx, ptrs: Vec<Ptr>) {
    for p in ptrs {
        let _ = ctx.cuda.free(p);
    }
}

fn chaos_jacobi_body(
    ctx: &mut RankCtx,
    k: &AppKernels,
    cfg: &ChaosConfig,
    ptrs: &mut Vec<Ptr>,
) -> ChaosResult {
    let (nx, rows) = (cfg.nx, cfg.rows);
    let local = (rows + 2) * nx;
    let n_int = nx * rows;

    let d_a = ctx.cuda.malloc::<f64>(local)?;
    ptrs.push(d_a);
    let d_anew = ctx.cuda.malloc::<f64>(local)?;
    ptrs.push(d_anew);
    let d_norm = ctx.cuda.malloc::<f64>(1)?;
    ptrs.push(d_norm);
    let h_norm = ctx.cuda.host_malloc::<f64>(1)?;
    ptrs.push(h_norm);
    let h_global = ctx.cuda.host_malloc::<f64>(1)?;
    ptrs.push(h_global);

    ctx.cuda.memset(d_a, 0, local * 8)?;
    ctx.cuda.memset(d_anew, 0, local * 8)?;

    // Unlike the real app, the boundary fill runs on EVERY rank (halo
    // rows are overwritten by the exchange anyway): symmetry over
    // physics.
    for buf in [d_a, d_anew] {
        ctx.cuda.launch(
            k.fill,
            LaunchGrid::linear(nx),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(buf),
                LaunchArg::F64(1.0),
                LaunchArg::I64(nx as i64),
            ],
        )?;
    }

    let norm_stream = ctx.cuda.stream_create(StreamFlags::Default);
    let (up, down) = neighbors(ctx.rank(), ctx.size());
    const TAG_UP: i32 = 0;
    const TAG_DOWN: i32 = 1;

    let mut norm = 0.0;
    for _ in 0..cfg.iters {
        ctx.cuda.launch(
            k.jacobi_step,
            LaunchGrid::linear(n_int),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(d_anew),
                LaunchArg::Ptr(d_a),
                LaunchArg::I64(nx as i64),
                LaunchArg::I64(rows as i64),
            ],
        )?;
        ctx.cuda.launch(
            k.residual,
            LaunchGrid::cover(1, 1),
            norm_stream,
            vec![
                LaunchArg::Ptr(d_norm),
                LaunchArg::Ptr(row_ptr(d_a, 1, nx)),
                LaunchArg::Ptr(row_ptr(d_anew, 1, nx)),
                LaunchArg::I64(n_int as i64),
            ],
        )?;
        ctx.cuda.memcpy(h_norm, d_norm, 8, CopyKind::DeviceToHost)?;
        ctx.mpi
            .allreduce(h_norm, h_global, 1, MpiDatatype::Double, ReduceOp::Sum)?;
        let sq: f64 = ctx
            .tools
            .host_read_at(&ctx.space(), h_global, "chaos norm read")?;
        norm = sq.sqrt();

        ctx.cuda.launch(
            k.copy,
            LaunchGrid::linear(local),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(d_a),
                LaunchArg::Ptr(d_anew),
                LaunchArg::I64(local as i64),
            ],
        )?;
        ctx.cuda.device_synchronize()?;
        ctx.mpi.sendrecv(
            row_ptr(d_a, 1, nx),
            nx,
            up,
            TAG_UP,
            row_ptr(d_a, 0, nx),
            nx,
            up as i32,
            TAG_DOWN,
            MpiDatatype::Double,
        )?;
        ctx.mpi.sendrecv(
            row_ptr(d_a, rows, nx),
            nx,
            down,
            TAG_DOWN,
            row_ptr(d_a, rows + 1, nx),
            nx,
            down as i32,
            TAG_UP,
            MpiDatatype::Double,
        )?;
    }
    Ok(norm)
}

fn chaos_tealeaf_body(
    ctx: &mut RankCtx,
    k: &AppKernels,
    cfg: &ChaosConfig,
    ptrs: &mut Vec<Ptr>,
) -> ChaosResult {
    let (nx, rows) = (cfg.nx, cfg.rows);
    let local = (rows + 2) * nx;
    let n_int = nx * rows;

    let d_u = ctx.cuda.malloc::<f64>(local)?;
    ptrs.push(d_u);
    let d_tmp = ctx.cuda.malloc::<f64>(local)?;
    ptrs.push(d_tmp);
    let d_dot = ctx.cuda.malloc::<f64>(1)?;
    ptrs.push(d_dot);
    let h_dot = ctx.cuda.host_malloc::<f64>(1)?;
    ptrs.push(h_dot);
    let h_global = ctx.cuda.host_malloc::<f64>(1)?;
    ptrs.push(h_global);

    ctx.cuda.memset(d_u, 0, local * 8)?;
    ctx.cuda.memset(d_tmp, 0, local * 8)?;
    ctx.cuda.launch(
        k.fill,
        LaunchGrid::linear(nx),
        StreamId::DEFAULT,
        vec![
            LaunchArg::Ptr(d_u),
            LaunchArg::F64(1.0),
            LaunchArg::I64(nx as i64),
        ],
    )?;

    let (up, down) = neighbors(ctx.rank(), ctx.size());
    const TAG_UP: i32 = 10;
    const TAG_DOWN: i32 = 11;

    let mut dot = 0.0;
    for _ in 0..cfg.iters {
        ctx.cuda.launch(
            k.jacobi_step,
            LaunchGrid::linear(n_int),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(d_tmp),
                LaunchArg::Ptr(d_u),
                LaunchArg::I64(nx as i64),
                LaunchArg::I64(rows as i64),
            ],
        )?;
        ctx.cuda.launch(
            k.copy,
            LaunchGrid::linear(local),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(d_u),
                LaunchArg::Ptr(d_tmp),
                LaunchArg::I64(local as i64),
            ],
        )?;

        // Non-blocking halo exchange: all four requests unconditionally,
        // PROC_NULL elides the edges (Fig. 1 shape, symmetrized).
        ctx.cuda.device_synchronize()?;
        let mut reqs = vec![
            ctx.mpi.irecv(
                row_ptr(d_u, 0, nx),
                nx,
                MpiDatatype::Double,
                up as i32,
                TAG_DOWN,
            )?,
            ctx.mpi
                .isend(row_ptr(d_u, 1, nx), nx, MpiDatatype::Double, up, TAG_UP)?,
            ctx.mpi.irecv(
                row_ptr(d_u, rows + 1, nx),
                nx,
                MpiDatatype::Double,
                down as i32,
                TAG_UP,
            )?,
            ctx.mpi.isend(
                row_ptr(d_u, rows, nx),
                nx,
                MpiDatatype::Double,
                down,
                TAG_DOWN,
            )?,
        ];
        ctx.mpi.waitall(&mut reqs)?;

        // Global dot product, TeaLeaf's CG heartbeat.
        ctx.cuda.launch(
            k.dot,
            LaunchGrid::cover(1, 1),
            StreamId::DEFAULT,
            vec![
                LaunchArg::Ptr(d_dot),
                LaunchArg::Ptr(row_ptr(d_u, 1, nx)),
                LaunchArg::Ptr(row_ptr(d_u, 1, nx)),
                LaunchArg::I64(n_int as i64),
            ],
        )?;
        ctx.cuda.memcpy(h_dot, d_dot, 8, CopyKind::DeviceToHost)?;
        ctx.mpi
            .allreduce(h_dot, h_global, 1, MpiDatatype::Double, ReduceOp::Sum)?;
        dot = ctx
            .tools
            .host_read_at(&ctx.space(), h_global, "chaos dot read")?;
    }
    Ok(dot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cusan::{FaultPlan, Flavor};

    fn faulty(seed: u64, rate: f64) -> ToolConfig {
        let mut c = Flavor::MustCusan.config();
        c.faults = FaultPlan::with_rate(seed, rate);
        c
    }

    #[test]
    fn fault_free_chaos_bodies_finish_clean() {
        let cfg = ChaosConfig::default();
        for out in [
            run_chaos_jacobi(&cfg, Flavor::MustCusan),
            run_chaos_tealeaf(&cfg, Flavor::MustCusan),
        ] {
            assert!(out.results.iter().all(|r| r.is_ok()), "{:?}", out.results);
            assert_eq!(out.total_races(), 0);
            assert_eq!(out.space.live_allocs, 0, "teardown must free everything");
        }
    }

    #[test]
    fn faulted_ranks_fail_in_lockstep() {
        let cfg = ChaosConfig {
            ranks: 4,
            ..ChaosConfig::default()
        };
        let out = run_chaos_jacobi(&cfg, faulty(11, 0.05));
        let errs: Vec<_> = out.results.iter().filter_map(|r| r.clone().err()).collect();
        assert!(!errs.is_empty(), "5% over hundreds of sites must fire");
        // Rank-independent decisions + symmetric bodies: every rank fails
        // at the same call with the same typed error.
        assert_eq!(errs.len(), cfg.ranks, "all ranks fault together");
        assert!(errs.windows(2).all(|w| w[0] == w[1]), "{errs:?}");
    }

    #[test]
    fn same_seed_reruns_are_identical() {
        let cfg = ChaosConfig::default();
        let a = run_chaos_tealeaf(&cfg, faulty(3, 0.02));
        let b = run_chaos_tealeaf(&cfg, faulty(3, 0.02));
        assert_eq!(a.results, b.results);
        for (ra, rb) in a.ranks.iter().zip(&b.ranks) {
            assert_eq!(ra.trace, rb.trace, "rank {} trace differs", ra.rank);
            assert_eq!(ra.race_count, rb.race_count);
        }
    }
}
