//! Property tests: every app kernel's native closure is semantically
//! identical to the reference interpretation of its IR.
//!
//! This is the consistency guarantee the real toolchain gets for free
//! (device IR and executed SASS come from one CUDA source); here the two
//! artifacts are hand-written, so the equivalence is *checked*.

use cusan_apps::AppKernels;
use kernel_ir::interp::{self, KValue, RunArg, VecBuffer, VecMemory};
use kernel_ir::registry::{NativeArg, NativeCtx};
use kernel_ir::KernelId;
use proptest::prelude::*;

/// Run a kernel both ways over identical inputs and compare all buffers.
///
/// `bufs`: initial contents per pointer arg (write-attributed args listed
/// in `writes`). `scalars`: the scalar args in signature order.
fn check_equivalence(
    kernel: KernelId,
    grid: u64,
    bufs: &[Vec<f64>],
    writes: &[usize],
    scalars: &[KValue],
) {
    let k = AppKernels::shared();
    let def = k.registry.def(kernel);

    // Interpreter side.
    let mut mem = VecMemory::new(bufs.iter().map(|b| VecBuffer::F64(b.clone())).collect());
    let mut args = Vec::new();
    let mut slot = 0;
    let mut scalar_idx = 0;
    for p in &def.params {
        if p.ty.is_ptr() {
            args.push(RunArg::Slot(slot));
            slot += 1;
        } else {
            args.push(RunArg::Val(scalars[scalar_idx]));
            scalar_idx += 1;
        }
    }
    interp::run(k.registry.defs(), kernel, grid, &args, &mut mem).expect("interpreter run");

    // Native side.
    let native = k
        .registry
        .native(kernel)
        .expect("app kernels all have native bodies");
    let mut native_bufs: Vec<Vec<f64>> = bufs.to_vec();
    {
        let mut refs: Vec<NativeArg<'_>> = Vec::new();
        // Split native_bufs into per-arg mutable refs.
        let mut rest: &mut [Vec<f64>] = &mut native_bufs;
        let mut buf_idx = 0;
        let mut scalar_idx = 0;
        for p in &def.params {
            if p.ty.is_ptr() {
                let (head, tail) = rest.split_first_mut().expect("buffer per ptr arg");
                if writes.contains(&buf_idx) {
                    refs.push(NativeArg::MutF64(head));
                } else {
                    refs.push(NativeArg::RefF64(head));
                }
                rest = tail;
                buf_idx += 1;
            } else {
                refs.push(match scalars[scalar_idx] {
                    KValue::F(v) => NativeArg::F64(v),
                    KValue::I(v) => NativeArg::I64(v),
                });
                scalar_idx += 1;
            }
        }
        let mut ctx = NativeCtx::new(&def.name, grid, refs);
        native(&mut ctx);
    }

    for (i, expected) in native_bufs.iter().enumerate() {
        let got = mem.f64_slot(i);
        assert_eq!(
            got, expected,
            "kernel {} buffer {i}: interpreter vs native disagree",
            def.name
        );
    }
}

fn field(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-100.0f64..100.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fill_equivalent(buf in field(64), v in -10.0f64..10.0, n in 0i64..80, grid in 0u64..96) {
        let k = AppKernels::shared();
        check_equivalence(k.fill, grid.min(buf.len() as u64), &[buf], &[0], &[KValue::F(v), KValue::I(n.min(64))]);
    }

    #[test]
    fn copy_equivalent(dst in field(64), src in field(64), n in 0i64..=64, grid in 0u64..=64) {
        let k = AppKernels::shared();
        check_equivalence(k.copy, grid, &[dst, src], &[0], &[KValue::I(n)]);
    }

    #[test]
    fn jacobi_step_equivalent(
        seed in field(6 * 8),
        nx in 3u64..=8,
        rows in 1u64..=4,
    ) {
        let k = AppKernels::shared();
        let local = ((rows + 2) * nx) as usize;
        let a: Vec<f64> = seed.iter().cycle().take(local).copied().collect();
        let anew = vec![0.0; local];
        let grid = nx * rows;
        check_equivalence(
            k.jacobi_step,
            grid,
            &[anew, a],
            &[0],
            &[KValue::I(nx as i64), KValue::I(rows as i64)],
        );
    }

    #[test]
    fn residual_equivalent(a in field(48), anew in field(48), grid in 1u64..8) {
        let k = AppKernels::shared();
        let n = a.len().min(anew.len()) as i64;
        check_equivalence(
            k.residual,
            grid,
            &[vec![0.0], a, anew],
            &[0],
            &[KValue::I(n)],
        );
    }

    #[test]
    fn dot_equivalent(x in field(48), y in field(48), grid in 1u64..8) {
        let k = AppKernels::shared();
        let n = x.len().min(y.len()) as i64;
        check_equivalence(k.dot, grid, &[vec![0.0], x, y], &[0], &[KValue::I(n)]);
    }

    #[test]
    fn apply_a_equivalent(
        seed in field(40),
        nx in 3u64..=8,
        rows in 1u64..=4,
        rx in 0.0f64..0.5,
        ry in 0.0f64..0.5,
    ) {
        let k = AppKernels::shared();
        let local = ((rows + 2) * nx) as usize;
        let p: Vec<f64> = seed.iter().cycle().take(local).copied().collect();
        let w = vec![0.0; local];
        check_equivalence(
            k.apply_a,
            nx * rows,
            &[w, p],
            &[0],
            &[KValue::I(nx as i64), KValue::I(rows as i64), KValue::F(rx), KValue::F(ry)],
        );
    }

    #[test]
    fn axpy_equivalent(y in field(64), x in field(64), alpha in -4.0f64..4.0, grid in 0u64..=64) {
        let k = AppKernels::shared();
        let n = y.len().min(x.len()) as i64;
        check_equivalence(k.axpy, grid, &[y, x], &[0], &[KValue::F(alpha), KValue::I(n)]);
    }

    #[test]
    fn xpay_equivalent(y in field(64), x in field(64), beta in -4.0f64..4.0, grid in 0u64..=64) {
        let k = AppKernels::shared();
        let n = y.len().min(x.len()) as i64;
        check_equivalence(k.xpay, grid, &[y, x], &[0], &[KValue::F(beta), KValue::I(n)]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn residual2d_equivalent(
        seed in field(48),
        w in 3u64..=8,
        rows in 1u64..=4,
        grid in 1u64..6,
    ) {
        let k = AppKernels::shared();
        let local = ((rows + 2) * w) as usize;
        let a: Vec<f64> = seed.iter().cycle().take(local).copied().collect();
        let anew: Vec<f64> = seed.iter().rev().cycle().take(local).copied().collect();
        check_equivalence(
            k.residual2d,
            grid,
            &[vec![0.0], a, anew],
            &[0],
            &[KValue::I(w as i64), KValue::I(rows as i64)],
        );
    }
}
