//! Record → serialize → parse → replay round-trips.
//!
//! The event pipeline's contract: a recorded trace, replayed through a
//! fresh detector via the same checker sink the live run used, reproduces
//! the live run's race reports, detector counters, and event counters
//! exactly. These tests assert that contract over the full testsuite and
//! both evaluation mini-apps, plus byte-level determinism of the recorder.

use cusan::{replay, transcode, Flavor, Trace, TraceFormat};
use cusan_apps::testsuite::cases;
use cusan_apps::{
    kernels::AppKernels, run_jacobi_traced, run_tealeaf_traced, JacobiConfig, TeaLeafConfig,
};
use must_rt::{run_checked_world_traced, RankOutcome};
use std::sync::Arc;

/// Replay one rank's trace and assert it matches the live outcome — as
/// recorded, and again through the transcoded twin in the other format
/// (text ⇄ binary), which must replay identically and round-trip back to
/// the recorded bytes exactly.
fn assert_faithful(what: &str, rank: &RankOutcome) {
    let bytes = rank
        .trace
        .as_deref()
        .expect("traced run must carry a trace");
    let trace = Trace::from_bytes(bytes)
        .unwrap_or_else(|e| panic!("{what} rank {}: trace parse failed: {e}", rank.rank));
    let outcome = replay(&trace);
    assert_eq!(
        outcome.reports, rank.races,
        "{what} rank {}: replayed race reports diverge from live run",
        rank.rank
    );
    assert_eq!(
        outcome.stats, rank.tsan,
        "{what} rank {}: replayed detector stats diverge from live run",
        rank.rank
    );
    assert_eq!(
        outcome.counters, rank.events,
        "{what} rank {}: replayed event counters diverge from live run",
        rank.rank
    );
    // Format-twin fidelity: whichever encoding the run recorded, its
    // transcoded twin carries the identical record stream.
    let recorded = if bytes.starts_with(cusan::binio::BIN_FAMILY) {
        TraceFormat::Binary
    } else {
        TraceFormat::Text
    };
    let twin_format = match recorded {
        TraceFormat::Text => TraceFormat::Binary,
        TraceFormat::Binary => TraceFormat::Text,
    };
    let twin = transcode(bytes, twin_format)
        .unwrap_or_else(|e| panic!("{what} rank {}: transcode failed: {e}", rank.rank));
    let twin_out = replay(&Trace::from_bytes(&twin).expect("twin parses"));
    assert_eq!(
        twin_out.reports,
        outcome.reports,
        "{what} rank {}: {} twin reports diverge",
        rank.rank,
        twin_format.name()
    );
    assert_eq!(twin_out.stats, outcome.stats);
    assert_eq!(twin_out.counters, outcome.counters);
    assert_eq!(
        transcode(&twin[..], recorded).expect("transcode back"),
        bytes,
        "{what} rank {}: transcode round trip is not byte-identical",
        rank.rank
    );
}

#[test]
fn testsuite_cases_roundtrip_through_trace_replay() {
    let k = AppKernels::shared();
    for case in cases() {
        let run = case.run;
        let out = run_checked_world_traced(
            2,
            Flavor::MustCusan.config(),
            Arc::clone(&k.registry),
            move |ctx| run(ctx, k),
        );
        for rank in &out.ranks {
            assert_faithful(case.name, rank);
        }
    }
}

#[test]
fn jacobi_replay_reproduces_live_run() {
    let cfg = JacobiConfig {
        nx: 64,
        ny: 32,
        ranks: 2,
        iters: 3,
        ..JacobiConfig::default()
    };
    let run = run_jacobi_traced(&cfg, Flavor::MustCusan);
    for rank in &run.outcome.ranks {
        assert_faithful("jacobi", rank);
        // The CounterBump mirror of the device's Table-I CUDA rows must
        // agree with the device's own counters.
        assert_eq!(rank.events.named("cuda.streams"), rank.cuda.streams);
        assert_eq!(
            rank.events.named("cuda.memset_calls"),
            rank.cuda.memset_calls
        );
        assert_eq!(
            rank.events.named("cuda.memcpy_calls"),
            rank.cuda.memcpy_calls
        );
        assert_eq!(rank.events.named("cuda.sync_calls"), rank.cuda.sync_calls);
        assert_eq!(
            rank.events.named("cuda.kernel_calls"),
            rank.cuda.kernel_calls
        );
    }
}

#[test]
fn tealeaf_replay_reproduces_live_run() {
    let cfg = TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 2,
        steps: 1,
        ..TeaLeafConfig::default()
    };
    let run = run_tealeaf_traced(&cfg, Flavor::MustCusan);
    for rank in &run.outcome.ranks {
        assert_faithful("tealeaf", rank);
        assert_eq!(
            rank.events.named("cuda.kernel_calls"),
            rank.cuda.kernel_calls
        );
        assert_eq!(rank.events.named("cuda.sync_calls"), rank.cuda.sync_calls);
    }
}

#[test]
fn streaming_parse_and_replay_match_materialized() {
    // The serve path never materializes a `Trace`: it streams records
    // straight into a session. Assert the two parse paths and the two
    // replay paths agree on real app traces.
    let cfg = TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 2,
        steps: 1,
        ..TeaLeafConfig::default()
    };
    let run = run_tealeaf_traced(&cfg, Flavor::MustCusan);
    for rank in &run.outcome.ranks {
        let bytes = rank.trace.as_deref().expect("traced run");
        let materialized = Trace::from_bytes(bytes).expect("parse");
        let streamed = Trace::from_reader(bytes).expect("from_reader");
        assert_eq!(materialized.rank, streamed.rank);
        assert_eq!(materialized.events, streamed.events);
        assert_eq!(materialized.strings.len(), streamed.strings.len());

        let solo = replay(&materialized);
        let stream = cusan::replay_stream(bytes).expect("replay_stream");
        assert_eq!(stream.reports, solo.reports);
        assert_eq!(stream.stats, solo.stats);
        assert_eq!(stream.counters, solo.counters);
        // And both agree with the live run.
        assert_eq!(stream.reports, rank.races);
        assert_eq!(stream.stats, rank.tsan);
        assert_eq!(stream.counters, rank.events);
    }
}

#[test]
fn jacobi_traces_are_byte_identical_across_runs() {
    let cfg = JacobiConfig {
        nx: 32,
        ny: 16,
        ranks: 2,
        iters: 2,
        ..JacobiConfig::default()
    };
    let a = run_jacobi_traced(&cfg, Flavor::MustCusan);
    let b = run_jacobi_traced(&cfg, Flavor::MustCusan);
    for (ra, rb) in a.outcome.ranks.iter().zip(&b.outcome.ranks) {
        assert_eq!(ra.rank, rb.rank);
        assert_eq!(
            ra.trace, rb.trace,
            "rank {}: identical configs must record byte-identical traces",
            ra.rank
        );
    }
}
