//! Mini-app integration tests: numerics, decomposition-independence, and
//! race behaviour under the tool flavors.

use cusan::Flavor;
use cusan_apps::{run_jacobi, run_tealeaf, JacobiConfig, RaceMode, TeaLeafConfig};

fn small_jacobi(ranks: usize) -> JacobiConfig {
    JacobiConfig {
        nx: 64,
        ny: 32,
        ranks,
        iters: 30,
        race: RaceMode::None,
    }
}

fn small_tealeaf(ranks: usize) -> TeaLeafConfig {
    TeaLeafConfig {
        nx: 32,
        ny: 32,
        ranks,
        max_iters: 40,
        ..TeaLeafConfig::default()
    }
}

#[test]
fn jacobi_norms_decrease_and_are_finite() {
    let run = run_jacobi(&small_jacobi(2), Flavor::Vanilla);
    assert_eq!(run.norms.len(), 30);
    assert!(run.norms.iter().all(|n| n.is_finite()));
    assert!(run.norms[0] > 0.0, "boundary drives an initial update");
    assert!(
        run.final_norm < run.norms[0],
        "relaxation reduces the update norm: {} -> {}",
        run.norms[0],
        run.final_norm
    );
}

#[test]
fn jacobi_decomposition_independent() {
    let r1 = run_jacobi(&small_jacobi(1), Flavor::Vanilla);
    let r2 = run_jacobi(&small_jacobi(2), Flavor::Vanilla);
    let r4 = run_jacobi(&small_jacobi(4), Flavor::Vanilla);
    for (a, b) in r1.norms.iter().zip(&r2.norms) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "1 vs 2 ranks: {a} vs {b}"
        );
    }
    for (a, b) in r1.norms.iter().zip(&r4.norms) {
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(1.0),
            "1 vs 4 ranks: {a} vs {b}"
        );
    }
}

#[test]
fn jacobi_correct_version_race_free_under_full_stack() {
    let run = run_jacobi(&small_jacobi(2), Flavor::MustCusan);
    assert_eq!(
        run.outcome.total_races(),
        0,
        "{:#?}",
        run.outcome.all_races()
    );
    assert!(run.outcome.all_must_reports().is_empty());
    // Table I shape: Jacobi uses two streams.
    assert_eq!(run.outcome.ranks[0].cuda.streams, 2);
    assert!(
        run.outcome.ranks[0].cuda.kernel_calls >= 90,
        "3 kernels/iter"
    );
    assert!(run.outcome.ranks[0].tsan.read_bytes > 0);
}

#[test]
fn jacobi_instrumentation_does_not_change_numerics() {
    let v = run_jacobi(&small_jacobi(2), Flavor::Vanilla);
    let c = run_jacobi(&small_jacobi(2), Flavor::MustCusan);
    assert_eq!(v.norms, c.norms, "tools must be observation-only");
}

#[test]
fn jacobi_missing_sync_detected_and_corrupts() {
    let cfg = JacobiConfig {
        race: RaceMode::SkipSyncBeforeExchange,
        ..small_jacobi(2)
    };
    let run = run_jacobi(&cfg, Flavor::MustCusan);
    assert!(
        run.outcome.has_races(),
        "missing device sync must be reported"
    );
    let races = run.outcome.all_races();
    assert!(
        races
            .iter()
            .any(|(_, r)| r.current.ctx.contains("MPI_Sendrecv")
                || r.previous.ctx.contains("MPI_Sendrecv")),
        "{races:#?}"
    );
    // The bug is real: stale halos change the numerics vs the correct run.
    let good = run_jacobi(&small_jacobi(2), Flavor::Vanilla);
    assert_ne!(
        good.norms, run.norms,
        "racy run must produce different numerics"
    );
}

#[test]
fn jacobi_vanilla_misses_what_cusan_catches() {
    let cfg = JacobiConfig {
        race: RaceMode::SkipSyncBeforeExchange,
        ..small_jacobi(2)
    };
    for (flavor, expect) in [
        (Flavor::Vanilla, false),
        (Flavor::Tsan, false),
        (Flavor::Must, false),
        (Flavor::MustCusan, true),
    ] {
        let run = run_jacobi(&cfg, flavor);
        assert_eq!(run.outcome.has_races(), expect, "flavor {flavor}");
    }
}

#[test]
fn tealeaf_converges() {
    let run = run_tealeaf(&small_tealeaf(2), Flavor::Vanilla);
    assert!(run.cg.rr.is_finite());
    assert!(run.cg.bb > 0.0);
    assert!(
        run.cg.rr < 1e-6 * run.cg.bb,
        "CG must reduce the residual: rr={} bb={}",
        run.cg.rr,
        run.cg.bb
    );
    assert!(run.cg.iterations > 2);
}

#[test]
fn tealeaf_decomposition_independent() {
    let r1 = run_tealeaf(&small_tealeaf(1), Flavor::Vanilla);
    let r2 = run_tealeaf(&small_tealeaf(2), Flavor::Vanilla);
    let r4 = run_tealeaf(&small_tealeaf(4), Flavor::Vanilla);
    assert_eq!(r1.cg.iterations, r2.cg.iterations);
    assert_eq!(r1.cg.iterations, r4.cg.iterations);
    let tol = 1e-7 * r1.cg.bb;
    assert!(
        (r1.cg.rr - r2.cg.rr).abs() <= tol,
        "{} vs {}",
        r1.cg.rr,
        r2.cg.rr
    );
    assert!(
        (r1.cg.rr - r4.cg.rr).abs() <= tol,
        "{} vs {}",
        r1.cg.rr,
        r4.cg.rr
    );
}

#[test]
fn tealeaf_correct_version_race_free_under_full_stack() {
    let run = run_tealeaf(&small_tealeaf(2), Flavor::MustCusan);
    assert_eq!(
        run.outcome.total_races(),
        0,
        "{:#?}",
        run.outcome.all_races()
    );
    // Table I shape: TeaLeaf uses only the default stream, and its
    // non-blocking halo exchange creates (and retires) MPI request fibers.
    assert_eq!(run.outcome.ranks[0].cuda.streams, 1);
    let ts = &run.outcome.ranks[0].tsan;
    assert!(ts.fibers_created > u64::from(run.cg.iterations), "{ts:?}");
    assert_eq!(
        ts.fibers_destroyed,
        ts.fibers_created - 2,
        "all request fibers retired; host + stream fiber remain"
    );
}

#[test]
fn tealeaf_missing_sync_detected() {
    let cfg = TeaLeafConfig {
        race: RaceMode::SkipSyncBeforeExchange,
        ..small_tealeaf(2)
    };
    let run = run_tealeaf(&cfg, Flavor::MustCusan);
    assert!(run.outcome.has_races());
    let races = run.outcome.all_races();
    assert!(
        races.iter().any(|(_, r)| r.current.ctx.contains("MPI_I")
            || r.previous.ctx.contains("MPI_I")
            || r.current.ctx.contains("kernel")
            || r.previous.ctx.contains("kernel")),
        "{races:#?}"
    );
}

#[test]
fn tealeaf_instrumentation_does_not_change_numerics() {
    let v = run_tealeaf(&small_tealeaf(2), Flavor::Vanilla);
    let c = run_tealeaf(&small_tealeaf(2), Flavor::MustCusan);
    assert_eq!(v.cg.rr, c.cg.rr);
    assert_eq!(v.cg.iterations, c.cg.iterations);
}

#[test]
fn flavors_order_overhead_event_counts() {
    // More instrumentation => more TSan events. (Wall-clock ordering is
    // asserted by the benchmark harness, not a unit test.)
    let cfg = small_jacobi(2);
    let tsan = run_jacobi(&cfg, Flavor::Tsan);
    let must = run_jacobi(&cfg, Flavor::Must);
    let cusan = run_jacobi(&cfg, Flavor::Cusan);
    let both = run_jacobi(&cfg, Flavor::MustCusan);
    let ev = |r: &cusan_apps::JacobiRun| {
        let t = &r.outcome.ranks[0].tsan;
        t.read_bytes + t.write_bytes
    };
    assert!(ev(&must) >= ev(&tsan));
    assert!(
        ev(&cusan) > ev(&must),
        "CuSan tracks whole device allocations"
    );
    assert!(ev(&both) >= ev(&cusan));
}

mod jacobi2d_tests {
    use cusan::Flavor;
    use cusan_apps::{run_jacobi2d, Jacobi2dConfig, RaceMode};

    fn cfg(px: usize, py: usize) -> Jacobi2dConfig {
        Jacobi2dConfig {
            nx: 32,
            ny: 32,
            px,
            py,
            iters: 20,
            race: RaceMode::None,
        }
    }

    #[test]
    fn converges_and_is_finite() {
        let run = run_jacobi2d(&cfg(2, 2), Flavor::Vanilla);
        assert_eq!(run.norms.len(), 20);
        assert!(run.norms.iter().all(|n| n.is_finite()));
        assert!(run.norms[19] < run.norms[0]);
    }

    #[test]
    fn decomposition_independent_across_grids() {
        let base = run_jacobi2d(&cfg(1, 1), Flavor::Vanilla);
        for (px, py) in [(2, 1), (1, 2), (2, 2), (4, 1)] {
            let run = run_jacobi2d(&cfg(px, py), Flavor::Vanilla);
            for (a, b) in base.norms.iter().zip(&run.norms) {
                assert!(
                    (a - b).abs() <= 1e-9 * a.abs().max(1.0),
                    "{px}x{py}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn race_free_under_full_stack() {
        let run = run_jacobi2d(&cfg(2, 2), Flavor::MustCusan);
        assert_eq!(
            run.outcome.total_races(),
            0,
            "{:#?}",
            run.outcome.all_races()
        );
        assert!(run.outcome.all_must_reports().is_empty());
        // Column exchanges use pitched copies: plenty of memcpy calls.
        assert!(run.outcome.ranks[0].cuda.memcpy_calls > 40);
    }

    #[test]
    fn missing_sync_detected() {
        let c = Jacobi2dConfig {
            race: RaceMode::SkipSyncBeforeExchange,
            ..cfg(2, 2)
        };
        let run = run_jacobi2d(&c, Flavor::MustCusan);
        assert!(run.outcome.has_races());
    }

    #[test]
    fn instrumentation_does_not_change_numerics() {
        let v = run_jacobi2d(&cfg(2, 2), Flavor::Vanilla);
        let c = run_jacobi2d(&cfg(2, 2), Flavor::MustCusan);
        assert_eq!(v.norms, c.norms);
    }
}
