//! Differential sync-vs-async checking tests.
//!
//! The async backend's contract (see `crates/core/src/async_check.rs`) is
//! that moving detection onto the shared work-stealing checker pool
//! changes *nothing* observable except wall-clock placement: traces,
//! detector stats, race reports, and event counters must be bit-for-bit
//! identical to the inline backend — for any pool worker count, including
//! under injected API faults and a shadow page budget, and across
//! repeated runs (per-seed determinism).
//!
//! The mode is set through `ToolConfig::async_check` rather than the
//! `CUSAN_ASYNC_CHECK` environment knob: the knob freezes process-wide on
//! first read (so a test process can't toggle it), while the config field
//! is the same switch without the freeze. CI additionally runs the whole
//! suite with `CUSAN_ASYNC_CHECK=1`, which flips the *default* mode and
//! exercises the env path end to end. Because the env override beats the
//! config field, mode-specific assertions (sync ranks have no async stats;
//! async ranks went through the ring) are gated on `async_check_env()` —
//! the bit-for-bit differential assertions hold regardless.

use cusan::fault::FaultPlan;
use cusan::{Flavor, ToolConfig};
use cusan_apps::{
    run_chaos_jacobi, run_chaos_tealeaf, run_jacobi_traced, run_tealeaf_traced, ChaosConfig,
    JacobiConfig, TeaLeafConfig,
};
use must_rt::WorldOutcome;

fn sync_config(base: ToolConfig) -> ToolConfig {
    let mut c = base;
    c.async_check = false;
    c
}

fn async_config(base: ToolConfig) -> ToolConfig {
    let mut c = base;
    c.async_check = true;
    c
}

/// Assert two world outcomes are observably identical (modulo the
/// timing-dependent `async_check` counters, which are mode-specific by
/// design).
fn assert_outcomes_identical<A, B>(what: &str, sync: &WorldOutcome<A>, asyn: &WorldOutcome<B>) {
    assert_eq!(sync.ranks.len(), asyn.ranks.len(), "{what}: rank count");
    for (s, a) in sync.ranks.iter().zip(&asyn.ranks) {
        assert_eq!(s.rank, a.rank);
        let r = s.rank;
        assert_eq!(
            s.trace, a.trace,
            "{what} rank {r}: traces must be byte-identical across backends"
        );
        assert_eq!(s.races, a.races, "{what} rank {r}: race reports diverge");
        assert_eq!(s.race_count, a.race_count, "{what} rank {r}: race count");
        assert_eq!(s.tsan, a.tsan, "{what} rank {r}: detector stats diverge");
        assert_eq!(s.events, a.events, "{what} rank {r}: event counters");
        assert_eq!(
            s.must_reports, a.must_reports,
            "{what} rank {r}: MUST reports"
        );
        assert_eq!(
            s.tool_memory_bytes, a.tool_memory_bytes,
            "{what} rank {r}: tool memory accounting diverges"
        );
        assert_eq!(s.diagnostics, a.diagnostics, "{what} rank {r}: diagnostics");
    }
}

/// The async run must actually have gone through the ring, and the flush
/// barrier must have drained it before the outcome was collected.
/// No-op when `CUSAN_ASYNC_CHECK=0` forces the inline backend process-wide.
fn assert_async_ran<T>(what: &str, out: &WorldOutcome<T>) {
    if cusan::ctx::async_check_env() == Some(false) {
        return;
    }
    for r in &out.ranks {
        let stats = r
            .async_check
            .unwrap_or_else(|| panic!("{what} rank {}: async stats missing", r.rank));
        assert!(
            stats.events_enqueued > 0,
            "{what} rank {}: no events went through the ring",
            r.rank
        );
        assert!(stats.batches_applied > 0, "{what} rank {}", r.rank);
        assert!(stats.max_queue_depth > 0, "{what} rank {}", r.rank);
        // Occupancy-based depth is physically bounded by the ring.
        assert!(
            stats.max_queue_depth <= cusan::async_check::RING_CAPACITY as u64,
            "{what} rank {}: depth exceeds ring capacity",
            r.rank
        );
        // Batch-shape counters are internally consistent: stats() flushed
        // before reading, so every enqueued message is accounted.
        assert!(stats.min_batch >= 1, "{what} rank {}", r.rank);
        assert!(
            stats.min_batch <= stats.avg_batch && stats.avg_batch <= stats.max_batch,
            "{what} rank {}: batch-size ordering",
            r.rank
        );
        assert!(
            stats.max_batch <= cusan::async_check::BATCH_MAX as u64,
            "{what} rank {}",
            r.rank
        );
        assert_eq!(
            stats.batch_hist.iter().sum::<u64>(),
            stats.batches_applied,
            "{what} rank {}: histogram covers every batch",
            r.rank
        );
        assert!(
            stats.batches_stolen <= stats.batches_applied,
            "{what} rank {}",
            r.rank
        );
    }
}

#[test]
fn jacobi_async_matches_sync_bit_for_bit() {
    let cfg = JacobiConfig {
        nx: 64,
        ny: 32,
        ranks: 2,
        iters: 3,
        ..JacobiConfig::default()
    };
    let base = Flavor::MustCusan.config();
    let sync = run_jacobi_traced(&cfg, sync_config(base));
    let asyn = run_jacobi_traced(&cfg, async_config(base));
    if cusan::ctx::async_check_env().is_none() {
        assert!(sync.outcome.ranks.iter().all(|r| r.async_check.is_none()));
    }
    assert_async_ran("jacobi", &asyn.outcome);
    assert_outcomes_identical("jacobi", &sync.outcome, &asyn.outcome);
    assert_eq!(sync.norms, asyn.norms, "application numerics unchanged");
}

#[test]
fn tealeaf_async_matches_sync_bit_for_bit() {
    let cfg = TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 2,
        steps: 1,
        ..TeaLeafConfig::default()
    };
    let base = Flavor::MustCusan.config();
    let sync = run_tealeaf_traced(&cfg, sync_config(base));
    let asyn = run_tealeaf_traced(&cfg, async_config(base));
    assert_async_ran("tealeaf", &asyn.outcome);
    assert_outcomes_identical("tealeaf", &sync.outcome, &asyn.outcome);
}

#[test]
fn async_matches_sync_under_faults_and_budget() {
    // The hardest differential case: injected API faults change the event
    // stream (ApiFault markers, skipped calls) and a shadow page budget
    // makes the detector drop annotations — both must reproduce exactly
    // when detection runs on the checker pool.
    let mut base = Flavor::MustCusan.config();
    base.faults = FaultPlan::with_rate(42, 0.05);
    base.shadow_page_budget = Some(8);
    let cfg = ChaosConfig::default();

    let sync = run_chaos_jacobi(&cfg, sync_config(base));
    let asyn = run_chaos_jacobi(&cfg, async_config(base));
    assert_async_ran("chaos-jacobi(faults)", &asyn);
    assert_outcomes_identical("chaos-jacobi(faults)", &sync, &asyn);

    let sync = run_chaos_tealeaf(&cfg, sync_config(base));
    let asyn = run_chaos_tealeaf(&cfg, async_config(base));
    assert_async_ran("chaos-tealeaf(faults)", &asyn);
    assert_outcomes_identical("chaos-tealeaf(faults)", &sync, &asyn);
}

#[test]
fn pool_worker_count_never_changes_results() {
    // The tentpole invariant at full-application scale: the same TeaLeaf
    // world checked by 1, 2, and ranks-many pool workers produces
    // bit-for-bit identical outcomes — stealing moves *where* batches are
    // applied, never what they compute. (`ToolConfig::check_threads`
    // mirrors the CUSAN_CHECK_THREADS knob without the process-wide
    // freeze, like `async_check` vs CUSAN_ASYNC_CHECK.)
    let cfg = TeaLeafConfig {
        nx: 16,
        ny: 16,
        ranks: 4,
        steps: 1,
        ..TeaLeafConfig::default()
    };
    let base = Flavor::MustCusan.config();
    let sync = run_tealeaf_traced(&cfg, sync_config(base));
    for threads in [1usize, 2, 4] {
        let mut ac = async_config(base);
        ac.check_threads = Some(threads);
        let asyn = run_tealeaf_traced(&cfg, ac);
        let what = format!("tealeaf({threads} check threads)");
        assert_async_ran(&what, &asyn.outcome);
        assert_outcomes_identical(&what, &sync.outcome, &asyn.outcome);
    }
}

#[test]
fn pool_sharing_one_worker_across_ranks_matches_sync() {
    // 2 ranks, 1 worker: every event of at least one rank is carried by a
    // "foreign" worker, the configuration a per-rank-thread design never
    // exercises. A shadow budget rides along so detector degradation also
    // reproduces under sharing (faults need the chaos harness — the
    // traced apps treat an injected error as fatal by design).
    let cfg = JacobiConfig {
        nx: 64,
        ny: 32,
        ranks: 2,
        iters: 3,
        ..JacobiConfig::default()
    };
    let mut base = Flavor::MustCusan.config();
    base.shadow_page_budget = Some(8);
    let sync = run_jacobi_traced(&cfg, sync_config(base));
    let mut ac = async_config(base);
    ac.check_threads = Some(1);
    let asyn = run_jacobi_traced(&cfg, ac);
    assert_async_ran("jacobi(1 check thread)", &asyn.outcome);
    assert_outcomes_identical("jacobi(1 check thread)", &sync.outcome, &asyn.outcome);
    assert_eq!(sync.norms, asyn.norms, "application numerics unchanged");
}

#[test]
fn chaos_async_sweep_is_deterministic_per_seed() {
    // chaos_soak's invariants with the async backend: no panics, no
    // deadlocks (every run completes), and per-seed determinism — two
    // async runs agree with each other and with the sync run.
    let cfg = ChaosConfig::default();
    for seed in [1u64, 7, 23] {
        let mut base = Flavor::MustCusan.config();
        base.faults = FaultPlan::with_rate(seed, 0.08);
        let what = format!("chaos seed {seed}");
        let sync = run_chaos_tealeaf(&cfg, sync_config(base));
        let a1 = run_chaos_tealeaf(&cfg, async_config(base));
        let a2 = run_chaos_tealeaf(&cfg, async_config(base));
        assert_async_ran(&what, &a1);
        assert_outcomes_identical(&format!("{what} async-vs-async"), &a1, &a2);
        assert_outcomes_identical(&format!("{what} sync-vs-async"), &sync, &a1);
    }
}
