//! Schedule exploration over the deterministic simulator.
//!
//! One execution of the sim observes exactly **one** interleaving, so a
//! race that only manifests under a different stream-completion order or
//! a different `MPI_ANY_SOURCE`/`ANY_TAG` match is silently missed
//! (the RustMC direction in the roadmap). This crate closes that gap
//! without giving up determinism: the sim stays bit-for-bit
//! reproducible, and *which* interleaving it reproduces becomes an
//! explicit, enumerable input — a [`SchedulePlan`].
//!
//! ## Choice points
//!
//! The sim consults an installed [`ScheduleController`] at exactly three
//! kinds of *choice points*, each a place where the simulated platform's
//! semantics genuinely admit more than one outcome:
//!
//! | kind | site | candidates |
//! |------|------|------------|
//! | [`ChoiceKind::WildcardRecv`] | `mpi-sim` wildcard receive matching | per-`(src, tag)` oldest pending sends |
//! | [`ChoiceKind::StreamDrain`] | `cuda-sim` full-device drains | streams whose front op has all deps satisfied |
//! | [`ChoiceKind::CollectiveFold`] | `mpi-sim` reduction fold | remaining contributions (arrival order) |
//!
//! Candidates are always presented in a **canonical deterministic
//! order** with the default schedule's pick at index 0, so the empty
//! plan (choice 0 everywhere) reproduces the uncontrolled sim exactly,
//! and any plan at all is still a deterministic execution.
//!
//! ## Exploration
//!
//! [`explore`] enumerates plans depth-first under a budget: run a plan,
//! read back the [`Decision`] log (what the controller was actually
//! asked, with how many candidates), and branch one decision at a time.
//! Two cuts keep the tree tractable:
//!
//! * **Outcome dedup** — each run reports a digest of its
//!   detector-visible outcome (event stream / reports); plans that land
//!   on an already-seen digest are counted but not expanded.
//! * **Sleep-set style signature cut** — every candidate carries a
//!   stable `u64` signature; a sibling alternative whose signature
//!   equals an earlier candidate's at the same decision is provably
//!   interchangeable with it and is never queued.
//!
//! The chosen schedule itself is recorded in the trace (the
//! `ScheduleChoice` event in `cusan`), so every explored execution
//! replays bit-for-bit like any other.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

/// Which kind of commutable-op decision a controller is being asked to
/// make. See the module docs for the three sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChoiceKind {
    /// Which pending send a wildcard (`ANY_SOURCE`/`ANY_TAG`) receive
    /// matches, among the per-`(src, tag)` oldest candidates.
    WildcardRecv,
    /// Which ready stream completes its front op next during a
    /// full-device drain.
    StreamDrain,
    /// Which remaining contribution folds into the accumulator next in
    /// a commutative reduction (models participant arrival order).
    CollectiveFold,
}

impl ChoiceKind {
    /// Stable label, used for trace interning and reports.
    pub fn label(self) -> &'static str {
        match self {
            ChoiceKind::WildcardRecv => "sched.wildcard_recv",
            ChoiceKind::StreamDrain => "sched.stream_drain",
            ChoiceKind::CollectiveFold => "sched.collective_fold",
        }
    }
}

/// A schedule decision-maker. `lane` identifies the deciding context
/// (rank index for per-rank choice points; a dedicated extra lane for
/// world-global ones like collectives), `sigs` the candidates' stable
/// signatures in canonical order. Must return an index into `sigs`;
/// returning 0 everywhere reproduces the default schedule.
pub trait ScheduleController: Send + Sync {
    /// Pick which candidate fires next.
    fn choose(&self, lane: usize, kind: ChoiceKind, sigs: &[u64]) -> usize;
}

/// One recorded consultation of the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decision {
    /// Which kind of choice point this was.
    pub kind: ChoiceKind,
    /// How many candidates were presented.
    pub arity: u32,
    /// Index that was chosen.
    pub chosen: u32,
    /// The candidates' signatures, in the order presented.
    pub sigs: Vec<u64>,
}

/// Per-lane state of a plan: the scripted choices, how many decisions
/// have been consumed, and the log of what actually happened.
#[derive(Debug, Default)]
struct Lane {
    plan: Vec<u32>,
    cursor: usize,
    log: Vec<Decision>,
}

/// A seeded/scripted schedule: per-lane vectors of choice indices,
/// consumed one per consultation. Positions beyond the vector (and
/// out-of-range indices) clamp to the default choice 0 / last valid
/// candidate, so *any* plan is a legal schedule for *any* execution.
///
/// Lanes `0..n_ranks` belong to the ranks; lane `n_ranks` is the
/// world-global lane used for collective choice points (collectives are
/// serialized by the phase barrier, so one lane suffices and its log is
/// deterministic).
#[derive(Debug)]
pub struct SchedulePlan {
    lanes: Vec<Mutex<Lane>>,
}

impl SchedulePlan {
    /// The all-defaults plan for a world of `n_ranks` ranks: choice 0
    /// at every decision, i.e. exactly the uncontrolled schedule.
    pub fn defaults(n_ranks: usize) -> Arc<SchedulePlan> {
        SchedulePlan::with_choices(vec![Vec::new(); n_ranks + 1])
    }

    /// A plan from explicit per-lane choice vectors (the explorer's
    /// constructor). The vector length fixes the lane count; use
    /// `n_ranks + 1` lanes for a world of `n_ranks` ranks.
    pub fn with_choices(choices: Vec<Vec<u32>>) -> Arc<SchedulePlan> {
        Arc::new(SchedulePlan {
            lanes: choices
                .into_iter()
                .map(|plan| {
                    Mutex::new(Lane {
                        plan,
                        cursor: 0,
                        log: Vec::new(),
                    })
                })
                .collect(),
        })
    }

    /// A pseudo-random plan for a world of `n_ranks` ranks: `len`
    /// choices per lane drawn uniformly from `0..=max_choice` by a
    /// seeded xorshift. Deterministic in `seed`; used by the chaos soak
    /// to sample the schedule space instead of enumerating it.
    pub fn from_seed(n_ranks: usize, seed: u64, len: usize, max_choice: u32) -> Arc<SchedulePlan> {
        let mut s = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = || {
            // xorshift64*: cheap, deterministic, good enough to sample.
            s ^= s >> 12;
            s ^= s << 25;
            s ^= s >> 27;
            s.wrapping_mul(0x2545_f491_4f6c_dd1d)
        };
        let choices = (0..n_ranks + 1)
            .map(|_| {
                (0..len)
                    .map(|_| (next() % (u64::from(max_choice) + 1)) as u32)
                    .collect()
            })
            .collect();
        SchedulePlan::with_choices(choices)
    }

    /// Number of lanes (ranks + the world-global collective lane).
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The world-global lane index used for collective choice points.
    pub fn collective_lane(&self) -> usize {
        self.lanes.len().saturating_sub(1)
    }

    /// Clone of the decisions consulted so far on `lane`, in order.
    /// Non-destructive: the harness reads it to emit trace events, the
    /// explorer reads it again to branch.
    pub fn decisions(&self, lane: usize) -> Vec<Decision> {
        match self.lanes.get(lane) {
            Some(l) => l.lock().expect("plan lane poisoned").log.clone(),
            None => Vec::new(),
        }
    }

    /// All lanes' decision logs (the explorer's view of one run).
    pub fn decision_log(&self) -> Vec<Vec<Decision>> {
        (0..self.lanes.len()).map(|l| self.decisions(l)).collect()
    }
}

impl ScheduleController for SchedulePlan {
    fn choose(&self, lane: usize, kind: ChoiceKind, sigs: &[u64]) -> usize {
        let arity = sigs.len().max(1);
        let Some(l) = self.lanes.get(lane) else {
            return 0;
        };
        let mut l = l.lock().expect("plan lane poisoned");
        let scripted = l.plan.get(l.cursor).copied().unwrap_or(0);
        let chosen = (scripted as usize).min(arity - 1);
        l.cursor += 1;
        l.log.push(Decision {
            kind,
            arity: arity as u32,
            chosen: chosen as u32,
            sigs: sigs.to_vec(),
        });
        chosen
    }
}

/// Counters from one [`explore`] enumeration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Schedules actually executed (bounded by the budget).
    pub schedules_run: usize,
    /// Runs whose outcome digest was new.
    pub unique_outcomes: usize,
    /// Runs whose outcome digest had been seen before (not expanded).
    pub dedup_hits: usize,
    /// Sibling alternatives skipped by the signature (sleep-set) cut.
    pub cut_alternatives: usize,
    /// Whether the frontier drained before the budget ran out (the
    /// reachable schedule space was fully covered).
    pub frontier_exhausted: bool,
}

/// One executed schedule and what it produced.
#[derive(Debug, Clone)]
pub struct ExploredRun<T> {
    /// The per-lane choice vectors that were scripted for this run.
    pub plan: Vec<Vec<u32>>,
    /// The run's detector-visible outcome digest.
    pub digest: u64,
    /// Whatever the runner returned alongside the digest.
    pub value: T,
}

/// The result of an [`explore`] enumeration: every digest-unique run,
/// plus the stats.
#[derive(Debug)]
pub struct ExploreReport<T> {
    /// Digest-unique runs, in discovery order (index 0 is always the
    /// default schedule).
    pub runs: Vec<ExploredRun<T>>,
    /// Enumeration counters.
    pub stats: ExploreStats,
}

/// Depth-first budgeted enumeration. `lanes` is the plan width
/// (`n_ranks + 1` for a world of `n_ranks`); `budget` caps how many
/// schedules are executed; `run` executes one plan and returns the
/// outcome digest plus a caller-defined value.
///
/// Expansion branches one decision at a time from each digest-unique
/// run: for decision `i` on lane `l` with arity `a`, every alternative
/// in `1..a` not cut by the signature rule is queued with the executed
/// prefix before `i` kept and everything after reset to defaults.
pub fn explore<T>(
    lanes: usize,
    budget: usize,
    mut run: impl FnMut(&Arc<SchedulePlan>) -> (u64, T),
) -> ExploreReport<T> {
    let mut stats = ExploreStats::default();
    let mut runs = Vec::new();
    let mut digests = HashSet::new();
    let mut queued: HashSet<Vec<Vec<u32>>> = HashSet::new();
    let root = vec![Vec::new(); lanes];
    queued.insert(root.clone());
    let mut stack = vec![root];

    while let Some(choices) = stack.pop() {
        if stats.schedules_run >= budget {
            // Put it back so exhaustion reporting stays honest.
            stack.push(choices);
            break;
        }
        let plan = SchedulePlan::with_choices(choices.clone());
        let (digest, value) = run(&plan);
        stats.schedules_run += 1;
        if !digests.insert(digest) {
            stats.dedup_hits += 1;
            continue;
        }
        stats.unique_outcomes += 1;
        let log = plan.decision_log();
        // Branch: one changed decision per child, defaults afterwards.
        for (lane, decisions) in log.iter().enumerate() {
            for (i, d) in decisions.iter().enumerate() {
                let mut first_of_sig: HashSet<u64> = HashSet::new();
                for (alt, sig) in d.sigs.iter().enumerate() {
                    if !first_of_sig.insert(*sig) {
                        // An earlier candidate at this decision has the
                        // same signature: interchangeable, never queue.
                        if alt as u32 != d.chosen {
                            stats.cut_alternatives += 1;
                        }
                        continue;
                    }
                    if alt as u32 == d.chosen {
                        continue;
                    }
                    let mut child: Vec<Vec<u32>> = log
                        .iter()
                        .map(|ds| ds.iter().map(|d| d.chosen).collect())
                        .collect();
                    child[lane].truncate(i);
                    child[lane].push(alt as u32);
                    for c in &mut child {
                        while c.last() == Some(&0) {
                            c.pop();
                        }
                    }
                    if queued.insert(child.clone()) {
                        stack.push(child);
                    }
                }
            }
        }
        runs.push(ExploredRun {
            plan: choices,
            digest,
            value,
        });
    }
    stats.frontier_exhausted = stack.is_empty();
    ExploreReport { runs, stats }
}

/// FNV-1a over a byte stream: the digest primitive used for outcome
/// hashing and candidate signatures (stable across runs and platforms).
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

impl Fnv {
    /// Fresh hasher with the FNV offset basis.
    pub fn new() -> Fnv {
        Fnv::default()
    }

    /// Absorb raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Absorb a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) -> &mut Self {
        self.write(&v.to_le_bytes())
    }

    /// Absorb a string.
    pub fn write_str(&mut self, s: &str) -> &mut Self {
        self.write(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    Fnv::new().write(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_chooses_default() {
        let plan = SchedulePlan::defaults(2);
        assert_eq!(plan.choose(0, ChoiceKind::WildcardRecv, &[7, 8, 9]), 0);
        assert_eq!(plan.choose(1, ChoiceKind::StreamDrain, &[1]), 0);
        assert_eq!(plan.choose(2, ChoiceKind::CollectiveFold, &[4, 5]), 0);
        let log = plan.decisions(0);
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].arity, 3);
        assert_eq!(log[0].chosen, 0);
        assert_eq!(log[0].sigs, vec![7, 8, 9]);
    }

    #[test]
    fn scripted_choices_clamp_to_arity() {
        let plan = SchedulePlan::with_choices(vec![vec![1, 9, 1]]);
        assert_eq!(plan.choose(0, ChoiceKind::WildcardRecv, &[10, 20]), 1);
        assert_eq!(plan.choose(0, ChoiceKind::WildcardRecv, &[10, 20]), 1); // 9 clamps
        assert_eq!(plan.choose(0, ChoiceKind::WildcardRecv, &[10]), 0); // 1 clamps
        assert_eq!(plan.choose(0, ChoiceKind::WildcardRecv, &[10, 20]), 0); // past end
                                                                            // Out-of-range lane: default, nothing logged.
        assert_eq!(plan.choose(5, ChoiceKind::WildcardRecv, &[10, 20]), 0);
        assert!(plan.decisions(5).is_empty());
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = SchedulePlan::from_seed(2, 42, 8, 3);
        let b = SchedulePlan::from_seed(2, 42, 8, 3);
        let c = SchedulePlan::from_seed(2, 43, 8, 3);
        let draw = |p: &Arc<SchedulePlan>| {
            (0..8)
                .map(|_| p.choose(1, ChoiceKind::WildcardRecv, &[0, 1, 2, 3]))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(&a), draw(&b));
        assert_ne!(draw(&a), draw(&c), "different seeds should diverge");
    }

    /// A toy "system": two binary decisions on lane 0; the outcome is
    /// the pair of choices, digested. Exploration must cover all four
    /// outcomes and then report exhaustion.
    #[test]
    fn explorer_covers_a_two_decision_space() {
        let report = explore(1, 32, |plan| {
            let a = plan.choose(0, ChoiceKind::WildcardRecv, &[100, 200]);
            let b = plan.choose(0, ChoiceKind::StreamDrain, &[300, 400]);
            let digest = Fnv::new().write_u64(a as u64).write_u64(b as u64).finish();
            (digest, (a, b))
        });
        let mut outcomes: Vec<(usize, usize)> = report.runs.iter().map(|r| r.value).collect();
        outcomes.sort_unstable();
        assert_eq!(outcomes, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert!(report.stats.frontier_exhausted);
        assert_eq!(report.stats.unique_outcomes, 4);
        assert_eq!(report.runs[0].plan, vec![Vec::<u32>::new()]);
    }

    /// If both candidates carry the same signature the alternative is
    /// interchangeable with the default and must be cut, not run.
    #[test]
    fn equal_signatures_are_cut() {
        let report = explore(1, 32, |plan| {
            let a = plan.choose(0, ChoiceKind::WildcardRecv, &[7, 7]);
            (a as u64, a)
        });
        assert_eq!(report.stats.schedules_run, 1);
        assert_eq!(report.stats.cut_alternatives, 1);
        assert!(report.stats.frontier_exhausted);
    }

    /// Digest collisions dedup: a second run landing on a seen digest
    /// is counted but not expanded.
    #[test]
    fn dedup_counts_and_stops_expansion() {
        let report = explore(1, 32, |plan| {
            let a = plan.choose(0, ChoiceKind::WildcardRecv, &[1, 2]);
            let _ = plan.choose(0, ChoiceKind::WildcardRecv, &[3, 4]);
            // Digest ignores the second decision entirely.
            (a as u64, a)
        });
        // Runs: default (0,0) unique; children (1,_) and (0,1).
        // (0,1) digests equal to default -> dedup, not expanded.
        assert!(report.stats.dedup_hits >= 1);
        assert_eq!(report.stats.unique_outcomes, 2);
        assert!(report.stats.frontier_exhausted);
    }

    #[test]
    fn budget_is_respected() {
        let report = explore(1, 3, |plan| {
            let a = plan.choose(0, ChoiceKind::WildcardRecv, &[1, 2, 3, 4]);
            let b = plan.choose(0, ChoiceKind::WildcardRecv, &[5, 6, 7, 8]);
            (
                Fnv::new().write_u64(a as u64).write_u64(b as u64).finish(),
                (),
            )
        });
        assert_eq!(report.stats.schedules_run, 3);
        assert!(!report.stats.frontier_exhausted);
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
