//! A deadlock-safe rank barrier.
//!
//! `std::sync::Barrier` hangs forever if a rank never arrives — which is
//! exactly what happens when fault injection (or an application bug) makes
//! one rank abandon a collective. [`SimBarrier`] behaves identically in
//! the success case (generation-counted, reusable, one leader per round)
//! but converts a missing rank into [`MpiError::Timeout`]: the first
//! waiter to time out *poisons* the barrier, every current and future
//! waiter returns the error, and the world tears down instead of hanging.

use crate::error::MpiError;
use parking_lot::{Condvar, Mutex};
use std::time::Duration;

struct BarrierState {
    arrived: usize,
    generation: u64,
    poisoned: bool,
}

/// Outcome of a successful [`SimBarrier::wait`].
pub(crate) struct BarrierWait {
    leader: bool,
}

impl BarrierWait {
    /// True on exactly one rank per round (the last arrival).
    pub fn is_leader(&self) -> bool {
        self.leader
    }
}

/// A reusable `size`-rank barrier with timeout + poison semantics.
pub(crate) struct SimBarrier {
    state: Mutex<BarrierState>,
    cv: Condvar,
    size: usize,
    timeout: Duration,
    what: &'static str,
}

impl SimBarrier {
    /// Barrier for `size` ranks with the standard deadlock-detection
    /// timeout; `what` names the synchronization point in the error.
    pub fn new(size: usize, what: &'static str) -> Self {
        Self::with_timeout(size, what, crate::request::WAIT_TIMEOUT)
    }

    /// As [`SimBarrier::new`] with an explicit timeout (short-timeout
    /// tests).
    pub fn with_timeout(size: usize, what: &'static str, timeout: Duration) -> Self {
        SimBarrier {
            state: Mutex::new(BarrierState {
                arrived: 0,
                generation: 0,
                poisoned: false,
            }),
            cv: Condvar::new(),
            size,
            timeout,
            what,
        }
    }

    /// The poison timeout this barrier was built with (tests verify the
    /// config/env plumbing lands here).
    pub fn timeout(&self) -> Duration {
        self.timeout
    }

    fn timeout_err(&self) -> MpiError {
        MpiError::Timeout {
            what: self.what.to_string(),
        }
    }

    /// Block until all `size` ranks arrive. The last arrival is the
    /// round's leader and releases the others. Returns
    /// [`MpiError::Timeout`] if the round does not complete within the
    /// timeout, or immediately if an earlier round already poisoned the
    /// barrier.
    pub fn wait(&self) -> Result<BarrierWait, MpiError> {
        let mut s = self.state.lock();
        if s.poisoned {
            return Err(self.timeout_err());
        }
        s.arrived += 1;
        if s.arrived == self.size {
            s.arrived = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(BarrierWait { leader: true });
        }
        let gen = s.generation;
        while s.generation == gen && !s.poisoned {
            if self.cv.wait_for(&mut s, self.timeout).timed_out() {
                s.poisoned = true;
                self.cv.notify_all();
                return Err(self.timeout_err());
            }
        }
        if s.poisoned {
            return Err(self.timeout_err());
        }
        Ok(BarrierWait { leader: false })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn releases_all_with_one_leader_per_round() {
        let b = Arc::new(SimBarrier::new(4, "test barrier"));
        for _round in 0..5 {
            let leaders: usize = std::thread::scope(|s| {
                (0..4)
                    .map(|_| {
                        let b = Arc::clone(&b);
                        s.spawn(move || usize::from(b.wait().unwrap().is_leader()))
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .sum()
            });
            assert_eq!(leaders, 1);
        }
    }

    #[test]
    fn timeout_defaults_and_overrides() {
        // `new` uses the standard deadlock-detection timeout; an explicit
        // override (the `CUSAN_BARRIER_TIMEOUT_MS` /
        // `ToolConfig::barrier_timeout_ms` path) replaces it wholesale.
        let default = SimBarrier::new(2, "b");
        assert_eq!(default.timeout(), crate::request::WAIT_TIMEOUT);
        let short = SimBarrier::with_timeout(2, "b", Duration::from_millis(250));
        assert_eq!(short.timeout(), Duration::from_millis(250));
    }

    #[test]
    fn missing_rank_times_out_and_poisons() {
        let b = Arc::new(SimBarrier::with_timeout(
            3,
            "test barrier",
            Duration::from_millis(50),
        ));
        // Only 2 of 3 ranks arrive: both must time out rather than hang.
        std::thread::scope(|s| {
            let errs: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || b.wait())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect();
            for e in errs {
                assert!(matches!(e, Err(MpiError::Timeout { .. })));
            }
        });
        // The barrier stays poisoned: a late arrival errors immediately.
        assert!(matches!(b.wait(), Err(MpiError::Timeout { .. })));
    }
}
