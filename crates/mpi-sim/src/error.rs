//! MPI simulator errors.

use sim_mem::MemError;
use std::fmt;

/// Errors returned by simulated MPI calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MpiError {
    /// Destination or source rank outside the communicator.
    RankOutOfBounds {
        /// The offending rank value.
        rank: i64,
        /// Communicator size.
        size: usize,
    },
    /// Incoming message longer than the posted receive buffer
    /// (`MPI_ERR_TRUNCATE`).
    Truncated {
        /// Message length in bytes.
        message: u64,
        /// Receive capacity in bytes.
        capacity: u64,
    },
    /// Underlying memory failure (unmapped buffer, overrun).
    Mem(MemError),
    /// A blocking operation did not complete within the deadlock-detection
    /// timeout (an unmatched send/recv or lost completion).
    Timeout {
        /// Human-readable description of what was being waited for.
        what: String,
    },
    /// Request already completed or invalid.
    BadRequest,
    /// Failure injected by a fault plan (see `cusan::fault`); the
    /// operation was not performed.
    FaultInjected {
        /// Name of the intercepted call that was made to fail.
        call: &'static str,
    },
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::RankOutOfBounds { rank, size } => {
                write!(f, "rank {rank} out of bounds (communicator size {size})")
            }
            MpiError::Truncated { message, capacity } => {
                write!(
                    f,
                    "message truncated: {message} bytes into {capacity}-byte buffer"
                )
            }
            MpiError::Mem(e) => write!(f, "memory error: {e}"),
            MpiError::Timeout { what } => {
                write!(f, "MPI timeout (likely deadlock): waiting for {what}")
            }
            MpiError::BadRequest => write!(f, "invalid or already-completed request"),
            MpiError::FaultInjected { call } => write!(f, "injected fault in {call}"),
        }
    }
}

impl std::error::Error for MpiError {}

impl From<MemError> for MpiError {
    fn from(e: MemError) -> Self {
        MpiError::Mem(e)
    }
}
