//! The world runner, communicator, and point-to-point matching engine.
//!
//! ## Transfer protocol
//!
//! Like a real MPI library, the simulator uses two protocols:
//!
//! * **Eager** (message ≤ [`EAGER_LIMIT`] bytes): the payload is copied out
//!   of the send buffer when the send is *posted*, and the send completes
//!   immediately.
//! * **Rendezvous** (larger messages): the send registers the buffer
//!   pointer; the payload is copied directly from the sender's (possibly
//!   device) memory into the receiver's buffer when the match happens —
//!   zero-copy CUDA-aware behaviour over the shared UVA space.
//!
//! Matching follows MPI's non-overtaking rule: a receive matches the
//! earliest posted send with a matching `(source, tag)`, and an arriving
//! send matches the earliest posted matching receive.

use crate::barrier::SimBarrier;
use crate::collective::CollShared;
use crate::datatype::{MpiDatatype, ReduceOp};
use crate::error::MpiError;
use crate::request::{Flag, Request, RequestKind, Status};
use explore::{ChoiceKind, ScheduleController};
use parking_lot::Mutex;
use sim_mem::{AddressSpace, Ptr};
use std::sync::Arc;

/// Wildcard source rank (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: i32 = -1;
/// Wildcard tag (`MPI_ANY_TAG`).
pub const ANY_TAG: i32 = -1;
/// The null process (`MPI_PROC_NULL`): communication with it completes
/// immediately and moves no data — the standard idiom for fixed-boundary
/// halo exchanges.
pub const PROC_NULL: i64 = -2;
/// `PROC_NULL` as a receive-source selector.
pub const PROC_NULL_SRC: i32 = -2;

/// Messages at or below this size use the eager protocol.
pub const EAGER_LIMIT: u64 = 4096;

#[derive(Debug)]
enum SendPayload {
    /// Eager: bytes already copied out of the send buffer.
    Eager(Vec<u8>),
    /// Rendezvous: read from the sender's memory at match time.
    Zero(Ptr),
}

#[derive(Debug)]
struct PendingSend {
    seq: u64,
    src: usize,
    tag: i32,
    bytes: u64,
    payload: SendPayload,
    flag: Arc<Flag>,
}

#[derive(Debug)]
struct PostedRecv {
    seq: u64,
    src_sel: i32,
    tag_sel: i32,
    ptr: Ptr,
    cap: u64,
    flag: Arc<Flag>,
}

#[derive(Debug, Default)]
struct MailboxState {
    seq: u64,
    sends: Vec<PendingSend>,
    recvs: Vec<PostedRecv>,
}

pub(crate) struct WorldShared {
    pub space: Arc<AddressSpace>,
    pub size: usize,
    mailboxes: Vec<Mutex<MailboxState>>,
    pub barrier: SimBarrier,
    pub coll: CollShared,
    /// Installed schedule controller (None: the default schedule).
    /// Consulted at wildcard-receive matches; collectives hold their
    /// own copy inside [`CollShared`].
    sched: Option<Arc<dyn ScheduleController>>,
}

/// A communicator handle for one rank (the `MPI_COMM_WORLD` analogue).
pub struct Comm {
    rank: usize,
    shared: Arc<WorldShared>,
}

fn matches(sel_src: i32, src: usize, sel_tag: i32, tag: i32) -> bool {
    (sel_src == ANY_SOURCE || sel_src as usize == src) && (sel_tag == ANY_TAG || sel_tag == tag)
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Communicator size.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The shared UVA address space.
    pub fn space(&self) -> &Arc<AddressSpace> {
        &self.shared.space
    }

    fn check_rank(&self, r: i64) -> Result<usize, MpiError> {
        if r < 0 || r as usize >= self.shared.size {
            Err(MpiError::RankOutOfBounds {
                rank: r,
                size: self.shared.size,
            })
        } else {
            Ok(r as usize)
        }
    }

    /// Deliver a matched message into the receive buffer and complete both
    /// flags. Called with the destination mailbox lock held.
    fn deliver(space: &AddressSpace, send: PendingSend, recv: PostedRecv, dest_rank: usize) {
        if send.bytes > recv.cap {
            let err = MpiError::Truncated {
                message: send.bytes,
                capacity: recv.cap,
            };
            recv.flag.fail(err.clone());
            send.flag.fail(err);
            return;
        }
        let copy_result = match &send.payload {
            SendPayload::Eager(bytes) => space.write_bytes(recv.ptr, bytes),
            SendPayload::Zero(src_ptr) => space.copy(recv.ptr, *src_ptr, send.bytes),
        };
        match copy_result {
            Ok(()) => {
                recv.flag.complete(Status {
                    source: send.src,
                    tag: send.tag,
                    bytes: send.bytes,
                });
                send.flag.complete(Status {
                    source: dest_rank,
                    tag: send.tag,
                    bytes: send.bytes,
                });
            }
            Err(e) => {
                recv.flag.fail(MpiError::Mem(e.clone()));
                send.flag.fail(MpiError::Mem(e));
            }
        }
    }

    fn null_request(&self, kind: RequestKind, what: &str) -> Request {
        let flag = Flag::new();
        flag.complete(Status {
            source: usize::MAX,
            tag: ANY_TAG,
            bytes: 0,
        });
        Request {
            flag,
            kind,
            what: what.to_string(),
            completed: false,
        }
    }

    /// `MPI_Isend`. Sends to [`PROC_NULL`] complete immediately and move
    /// no data.
    pub fn isend(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        dest: i64,
        tag: i32,
    ) -> Result<Request, MpiError> {
        if dest == PROC_NULL {
            return Ok(self.null_request(RequestKind::Send, "Isend to PROC_NULL"));
        }
        let dest = self.check_rank(dest)?;
        let bytes = count * dtype.size();
        let flag = Flag::new();
        let payload = if bytes <= EAGER_LIMIT {
            let mut data = vec![0u8; bytes as usize];
            self.shared.space.read_bytes(buf, &mut data)?;
            SendPayload::Eager(data)
        } else {
            // Validate the buffer exists before registering it.
            self.shared.space.find_range(buf, bytes)?;
            SendPayload::Zero(buf)
        };
        let mut mb = self.shared.mailboxes[dest].lock();
        mb.seq += 1;
        let send = PendingSend {
            seq: mb.seq,
            src: self.rank,
            tag,
            bytes,
            payload,
            flag: Arc::clone(&flag),
        };
        // Match the earliest posted compatible receive.
        let candidate = mb
            .recvs
            .iter()
            .enumerate()
            .filter(|(_, r)| matches(r.src_sel, self.rank, r.tag_sel, tag))
            .min_by_key(|(_, r)| r.seq)
            .map(|(i, _)| i);
        match candidate {
            Some(i) => {
                let recv = mb.recvs.swap_remove(i);
                Self::deliver(&self.shared.space, send, recv, dest);
            }
            None => {
                // Eager sends complete as soon as the payload is buffered,
                // even with no matching receive posted yet — like a real
                // MPI eager protocol. Rendezvous sends stay pending.
                let eager = matches!(send.payload, SendPayload::Eager(_));
                mb.sends.push(send);
                if eager {
                    flag.complete(Status {
                        source: dest,
                        tag,
                        bytes,
                    });
                }
            }
        }
        drop(mb);
        Ok(Request {
            flag,
            kind: RequestKind::Send,
            what: format!("Isend to {dest} tag {tag}"),
            completed: false,
        })
    }

    /// `MPI_Irecv`. `src` may be [`ANY_SOURCE`] or [`PROC_NULL_SRC`]
    /// (immediate empty completion), `tag` may be [`ANY_TAG`].
    pub fn irecv(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        src: i32,
        tag: i32,
    ) -> Result<Request, MpiError> {
        if src == PROC_NULL_SRC {
            return Ok(self.null_request(RequestKind::Recv, "Irecv from PROC_NULL"));
        }
        if src != ANY_SOURCE {
            self.check_rank(i64::from(src))?;
        }
        let cap = count * dtype.size();
        self.shared.space.find_range(buf, cap)?;
        let flag = Flag::new();
        let mut mb = self.shared.mailboxes[self.rank].lock();
        mb.seq += 1;
        let recv = PostedRecv {
            seq: mb.seq,
            src_sel: src,
            tag_sel: tag,
            ptr: buf,
            cap,
            flag: Arc::clone(&flag),
        };
        // Match the earliest compatible pending send — by recorded
        // mailbox seq, so the winner is fixed the moment both ops are
        // stamped, never by lock-acquisition timing. Under a wildcard
        // with a schedule controller installed, *which* `(src, tag)`
        // stream wins is a genuine platform choice: the legal
        // candidates are the per-`(src, tag)` oldest pending sends
        // (non-overtaking pins the order within a stream), presented
        // seq-ascending so choice 0 is exactly the default pick.
        let wildcard = src == ANY_SOURCE || tag == ANY_TAG;
        let candidate = match &self.shared.sched {
            Some(sched) if wildcard => {
                // (send index, seq, src, tag) head of each matching stream.
                let mut heads: Vec<(usize, u64, usize, i32)> = Vec::new();
                for (i, s) in mb.sends.iter().enumerate() {
                    if !matches(src, s.src, tag, s.tag) {
                        continue;
                    }
                    match heads.iter_mut().find(|h| h.2 == s.src && h.3 == s.tag) {
                        Some(h) if s.seq < h.1 => {
                            h.0 = i;
                            h.1 = s.seq;
                        }
                        Some(_) => {}
                        None => heads.push((i, s.seq, s.src, s.tag)),
                    }
                }
                heads.sort_by_key(|h| h.1);
                if heads.len() > 1 {
                    let sigs: Vec<u64> = heads
                        .iter()
                        .map(|h| ((h.2 as u64) << 32) | u64::from(h.3 as u32))
                        .collect();
                    let k = sched
                        .choose(self.rank, ChoiceKind::WildcardRecv, &sigs)
                        .min(heads.len() - 1);
                    Some(heads[k].0)
                } else {
                    heads.first().map(|h| h.0)
                }
            }
            _ => mb
                .sends
                .iter()
                .enumerate()
                .filter(|(_, s)| matches(src, s.src, tag, s.tag))
                .min_by_key(|(_, s)| s.seq)
                .map(|(i, _)| i),
        };
        match candidate {
            Some(i) => {
                let send = mb.sends.swap_remove(i);
                Self::deliver(&self.shared.space, send, recv, self.rank);
            }
            None => mb.recvs.push(recv),
        }
        drop(mb);
        Ok(Request {
            flag,
            kind: RequestKind::Recv,
            what: format!("Irecv from {src} tag {tag}"),
            completed: false,
        })
    }

    /// `MPI_Wait`.
    pub fn wait(&self, req: &mut Request) -> Result<Status, MpiError> {
        let st = req.flag.wait(&req.what)?;
        req.completed = true;
        Ok(st)
    }

    /// `MPI_Waitall`.
    pub fn waitall(&self, reqs: &mut [Request]) -> Result<Vec<Status>, MpiError> {
        reqs.iter_mut().map(|r| self.wait(r)).collect()
    }

    /// `MPI_Waitany`: blocks until one of the *active* requests completes
    /// and returns its index and status. Already-completed requests are
    /// inactive (like `MPI_REQUEST_NULL`); if all are inactive, returns
    /// [`MpiError::BadRequest`].
    #[allow(clippy::needless_range_loop)] // the winning index is the result
    pub fn waitany(&self, reqs: &mut [Request]) -> Result<(usize, Status), MpiError> {
        if reqs.iter().all(|r| r.completed) {
            return Err(MpiError::BadRequest);
        }
        let deadline = std::time::Instant::now() + crate::request::WAIT_TIMEOUT;
        loop {
            for i in 0..reqs.len() {
                if reqs[i].completed {
                    continue;
                }
                if let Some(st) = self.test(&mut reqs[i])? {
                    return Ok((i, st));
                }
            }
            if std::time::Instant::now() > deadline {
                return Err(MpiError::Timeout {
                    what: "Waitany".to_string(),
                });
            }
            std::thread::yield_now();
        }
    }

    /// `MPI_Test`.
    pub fn test(&self, req: &mut Request) -> Result<Option<Status>, MpiError> {
        match req.flag.poll() {
            None => Ok(None),
            Some(Ok(st)) => {
                req.completed = true;
                Ok(Some(st))
            }
            Some(Err(e)) => Err(e),
        }
    }

    /// `MPI_Send` (blocking; eager below [`EAGER_LIMIT`], synchronous
    /// above).
    pub fn send(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        dest: i64,
        tag: i32,
    ) -> Result<Status, MpiError> {
        let mut req = self.isend(buf, count, dtype, dest, tag)?;
        self.wait(&mut req)
    }

    /// `MPI_Recv` (blocking).
    pub fn recv(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        src: i32,
        tag: i32,
    ) -> Result<Status, MpiError> {
        let mut req = self.irecv(buf, count, dtype, src, tag)?;
        self.wait(&mut req)
    }

    /// `MPI_Sendrecv`.
    #[allow(clippy::too_many_arguments)]
    pub fn sendrecv(
        &self,
        send_buf: Ptr,
        send_count: u64,
        dest: i64,
        send_tag: i32,
        recv_buf: Ptr,
        recv_count: u64,
        src: i32,
        recv_tag: i32,
        dtype: MpiDatatype,
    ) -> Result<Status, MpiError> {
        let mut rreq = self.irecv(recv_buf, recv_count, dtype, src, recv_tag)?;
        let mut sreq = self.isend(send_buf, send_count, dtype, dest, send_tag)?;
        self.wait(&mut sreq)?;
        self.wait(&mut rreq)
    }

    /// `MPI_Barrier`. Returns [`MpiError::Timeout`] instead of hanging if
    /// some rank never arrives (see [`SimBarrier`]).
    pub fn barrier(&self) -> Result<(), MpiError> {
        self.shared.barrier.wait().map(|_| ())
    }

    /// The poison timeout of the world barrier (and the collective phase
    /// barrier — [`run_world_with_timeout`] configures both together).
    /// For tests verifying the `CUSAN_BARRIER_TIMEOUT_MS` /
    /// `ToolConfig::barrier_timeout_ms` plumbing.
    pub fn barrier_timeout(&self) -> std::time::Duration {
        self.shared.barrier.timeout()
    }

    /// `MPI_Allreduce`.
    pub fn allreduce(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        self.shared.coll.allreduce(
            self.rank,
            &self.shared.space,
            send_buf,
            recv_buf,
            count,
            dtype,
            op,
        )
    }

    /// `MPI_Reduce` to `root`.
    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
        root: usize,
    ) -> Result<(), MpiError> {
        self.shared.coll.reduce(
            self.rank,
            root,
            &self.shared.space,
            send_buf,
            recv_buf,
            count,
            dtype,
            op,
        )
    }

    /// `MPI_Gather` to `root` (`count` elements contributed per rank;
    /// root's receive buffer holds `count * size` elements).
    #[allow(clippy::too_many_arguments)]
    pub fn gather(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.shared.coll.gather(
            self.rank,
            root,
            &self.shared.space,
            send_buf,
            recv_buf,
            count,
            dtype,
        )
    }

    /// `MPI_Allgather`.
    pub fn allgather(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        self.shared.coll.allgather(
            self.rank,
            &self.shared.space,
            send_buf,
            recv_buf,
            count,
            dtype,
        )
    }

    /// `MPI_Scatter` from `root` (root provides `count * size` elements;
    /// every rank receives `count`).
    #[allow(clippy::too_many_arguments)]
    pub fn scatter(
        &self,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.shared.coll.scatter(
            self.rank,
            root,
            &self.shared.space,
            send_buf,
            recv_buf,
            count,
            dtype,
        )
    }

    /// `MPI_Bcast` from `root`.
    pub fn bcast(
        &self,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        root: usize,
    ) -> Result<(), MpiError> {
        self.shared
            .coll
            .bcast(self.rank, root, &self.shared.space, buf, count, dtype)
    }
}

/// Run an `n`-rank world: spawns one thread per rank, invokes `f` with the
/// rank's communicator, joins all ranks, and returns their results in rank
/// order. A panicking rank propagates after the others finish or time out.
pub fn run_world<T: Send>(
    n: usize,
    space: Arc<AddressSpace>,
    f: impl Fn(Comm) -> T + Send + Sync,
) -> Vec<T> {
    run_world_with_timeout(n, space, None, f)
}

/// As [`run_world`] with an explicit poison timeout for the world
/// barrier and the collective phase barrier; `None` keeps the standard
/// deadlock-detection timeout. This is where
/// `ToolConfig::barrier_timeout_ms` / `CUSAN_BARRIER_TIMEOUT_MS` land
/// (the MUST harness resolves them and passes the result through).
pub fn run_world_with_timeout<T: Send>(
    n: usize,
    space: Arc<AddressSpace>,
    timeout: Option<std::time::Duration>,
    f: impl Fn(Comm) -> T + Send + Sync,
) -> Vec<T> {
    run_world_with_schedule(n, space, timeout, None, f)
}

/// As [`run_world_with_timeout`] with an optional schedule controller
/// deciding wildcard-receive matches and collective fold order (the
/// `explore` crate's choice points). Rank `r` consults controller lane
/// `r`; collectives use the world-global lane `n` — so a
/// `SchedulePlan` for this world needs `n + 1` lanes. `None`, or a plan
/// of all-default choices, reproduces the uncontrolled schedule
/// exactly.
pub fn run_world_with_schedule<T: Send>(
    n: usize,
    space: Arc<AddressSpace>,
    timeout: Option<std::time::Duration>,
    sched: Option<Arc<dyn ScheduleController>>,
    f: impl Fn(Comm) -> T + Send + Sync,
) -> Vec<T> {
    assert!(n > 0, "world size must be positive");
    let barrier = match timeout {
        Some(t) => SimBarrier::with_timeout(n, "Barrier", t),
        None => SimBarrier::new(n, "Barrier"),
    };
    let shared = Arc::new(WorldShared {
        space,
        size: n,
        mailboxes: (0..n)
            .map(|_| Mutex::new(MailboxState::default()))
            .collect(),
        barrier,
        coll: CollShared::with_schedule(n, timeout, sched.as_ref().map(|s| (Arc::clone(s), n))),
        sched,
    });
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                let f = &f;
                s.spawn(move || f(Comm { rank, shared }))
            })
            .collect();
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| {
                h.join().unwrap_or_else(|e| {
                    std::panic::resume_unwind(Box::new(format!("rank {r} panicked: {e:?}")))
                })
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{DeviceId, MemKind};

    fn space() -> Arc<AddressSpace> {
        Arc::new(AddressSpace::new())
    }

    #[test]
    fn blocking_send_recv_host_buffers() {
        let sp = space();
        let bufs: Vec<Ptr> = (0..2)
            .map(|_| sp.alloc_array::<f64>(MemKind::HostPageable, 8).unwrap())
            .collect();
        sp.write_slice_data::<f64>(bufs[0], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0])
            .unwrap();
        let b = bufs.clone();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                comm.send(b[0], 8, MpiDatatype::Double, 1, 7).unwrap();
            } else {
                let st = comm.recv(b[1], 8, MpiDatatype::Double, 0, 7).unwrap();
                assert_eq!(st.source, 0);
                assert_eq!(st.tag, 7);
                assert_eq!(st.bytes, 64);
            }
        });
        assert_eq!(sp.read_vec::<f64>(bufs[1], 8).unwrap()[7], 8.0);
    }

    #[test]
    fn device_to_device_cuda_aware_transfer() {
        // The CUDA-aware path: both buffers are device-resident; the
        // message moves directly between device windows.
        let sp = space();
        let d0 = sp
            .alloc_array::<f64>(MemKind::Device(DeviceId(0)), 1024)
            .unwrap();
        let d1 = sp
            .alloc_array::<f64>(MemKind::Device(DeviceId(1)), 1024)
            .unwrap();
        sp.with_slice_mut::<f64, _>(d0, 1024, |s| {
            for (i, v) in s.iter_mut().enumerate() {
                *v = i as f64;
            }
        })
        .unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                // 8 KiB > EAGER_LIMIT: rendezvous zero-copy.
                comm.send(d0, 1024, MpiDatatype::Double, 1, 0).unwrap();
            } else {
                comm.recv(d1, 1024, MpiDatatype::Double, 0, 0).unwrap();
            }
        });
        assert_eq!(sp.read_vec::<f64>(d1, 1024).unwrap()[1023], 1023.0);
    }

    #[test]
    fn eager_sends_complete_without_receiver() {
        // Small both-send-first exchange must not deadlock.
        let sp = space();
        let b: Vec<Ptr> = (0..4)
            .map(|_| sp.alloc_array::<i32>(MemKind::HostPageable, 4).unwrap())
            .collect();
        let bb = b.clone();
        run_world(2, Arc::clone(&sp), move |comm| {
            let me = comm.rank();
            let peer = 1 - me as i64;
            let sbuf = bb[me];
            let rbuf = bb[2 + me];
            comm.send(sbuf, 4, MpiDatatype::Int, peer, 1).unwrap();
            comm.recv(rbuf, 4, MpiDatatype::Int, peer as i32, 1)
                .unwrap();
        });
    }

    #[test]
    fn isend_irecv_waitall() {
        let sp = space();
        let tx = sp.alloc_array::<f64>(MemKind::HostPageable, 4).unwrap();
        let rx = sp.alloc_array::<f64>(MemKind::HostPageable, 4).unwrap();
        sp.write_slice_data::<f64>(tx, &[9.0; 4]).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                let mut reqs = vec![comm.isend(tx, 4, MpiDatatype::Double, 1, 3).unwrap()];
                comm.waitall(&mut reqs).unwrap();
            } else {
                let mut r = comm.irecv(rx, 4, MpiDatatype::Double, 0, 3).unwrap();
                let st = comm.wait(&mut r).unwrap();
                assert!(r.is_completed());
                assert_eq!(st.bytes, 32);
            }
        });
        assert_eq!(sp.read_vec::<f64>(rx, 4).unwrap(), vec![9.0; 4]);
    }

    #[test]
    fn tag_matching_keeps_streams_separate() {
        let sp = space();
        let a = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let b = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let ra = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let rb = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        sp.write_at::<i32>(a, 100).unwrap();
        sp.write_at::<i32>(b, 200).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                comm.send(a, 1, MpiDatatype::Int, 1, 10).unwrap();
                comm.send(b, 1, MpiDatatype::Int, 1, 20).unwrap();
            } else {
                // Receive in reverse tag order.
                comm.recv(rb, 1, MpiDatatype::Int, 0, 20).unwrap();
                comm.recv(ra, 1, MpiDatatype::Int, 0, 10).unwrap();
            }
        });
        assert_eq!(sp.read_at::<i32>(ra).unwrap(), 100);
        assert_eq!(sp.read_at::<i32>(rb).unwrap(), 200);
    }

    #[test]
    fn non_overtaking_same_tag() {
        let sp = space();
        let a = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let b = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let r1 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let r2 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        sp.write_at::<i32>(a, 1).unwrap();
        sp.write_at::<i32>(b, 2).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                comm.send(a, 1, MpiDatatype::Int, 1, 0).unwrap();
                comm.send(b, 1, MpiDatatype::Int, 1, 0).unwrap();
            } else {
                comm.recv(r1, 1, MpiDatatype::Int, 0, 0).unwrap();
                comm.recv(r2, 1, MpiDatatype::Int, 0, 0).unwrap();
            }
        });
        assert_eq!(sp.read_at::<i32>(r1).unwrap(), 1, "FIFO per (src, tag)");
        assert_eq!(sp.read_at::<i32>(r2).unwrap(), 2);
    }

    #[test]
    fn any_source_any_tag() {
        let sp = space();
        let tx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let rx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        sp.write_at::<i32>(tx, 42).unwrap();
        run_world(3, Arc::clone(&sp), move |comm| match comm.rank() {
            2 => {
                let st = comm
                    .recv(rx, 1, MpiDatatype::Int, ANY_SOURCE, ANY_TAG)
                    .unwrap();
                assert_eq!(st.source, 1);
                assert_eq!(st.tag, 5);
            }
            1 => {
                comm.send(tx, 1, MpiDatatype::Int, 2, 5).unwrap();
            }
            _ => {}
        });
        assert_eq!(sp.read_at::<i32>(rx).unwrap(), 42);
    }

    #[test]
    fn truncation_detected() {
        let sp = space();
        let big = sp.alloc_array::<f64>(MemKind::HostPageable, 8).unwrap();
        let small = sp.alloc_array::<f64>(MemKind::HostPageable, 2).unwrap();
        let results = run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                comm.send(big, 8, MpiDatatype::Double, 1, 0)
            } else {
                comm.recv(small, 2, MpiDatatype::Double, 0, 0)
            }
        });
        assert!(matches!(
            results[1],
            Err(MpiError::Truncated {
                message: 64,
                capacity: 16
            })
        ));
    }

    #[test]
    fn sendrecv_exchange() {
        let sp = space();
        let bufs: Vec<Ptr> = (0..4)
            .map(|_| sp.alloc_array::<f64>(MemKind::HostPageable, 2).unwrap())
            .collect();
        sp.write_slice_data::<f64>(bufs[0], &[10.0, 11.0]).unwrap();
        sp.write_slice_data::<f64>(bufs[1], &[20.0, 21.0]).unwrap();
        let b = bufs.clone();
        run_world(2, Arc::clone(&sp), move |comm| {
            let me = comm.rank();
            let peer = 1 - me as i64;
            comm.sendrecv(
                b[me],
                2,
                peer,
                0,
                b[2 + me],
                2,
                peer as i32,
                0,
                MpiDatatype::Double,
            )
            .unwrap();
        });
        assert_eq!(sp.read_vec::<f64>(bufs[2], 2).unwrap(), vec![20.0, 21.0]);
        assert_eq!(sp.read_vec::<f64>(bufs[3], 2).unwrap(), vec![10.0, 11.0]);
    }

    #[test]
    fn waitany_returns_first_completion() {
        let sp = space();
        let rx1 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let rx2 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let tx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        sp.write_at::<i32>(tx, 7).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                let mut reqs = vec![
                    comm.irecv(rx1, 1, MpiDatatype::Int, 1, 1).unwrap(),
                    comm.irecv(rx2, 1, MpiDatatype::Int, 1, 2).unwrap(),
                ];
                // Only tag 2 is ever sent: waitany must return index 1.
                let (i, st) = comm.waitany(&mut reqs).unwrap();
                assert_eq!(i, 1);
                assert_eq!(st.tag, 2);
                // The other request stays pending; a second send completes it.
                comm.barrier().unwrap();
                let (i, _) = comm.waitany(&mut reqs).unwrap();
                assert_eq!(i, 0);
                // All done: further waitany is an error.
                assert!(matches!(comm.waitany(&mut reqs), Err(MpiError::BadRequest)));
            } else {
                comm.send(tx, 1, MpiDatatype::Int, 0, 2).unwrap();
                comm.barrier().unwrap();
                comm.send(tx, 1, MpiDatatype::Int, 0, 1).unwrap();
            }
        });
    }

    #[test]
    fn proc_null_completes_immediately_with_no_data() {
        let sp = space();
        let buf = sp.alloc_array::<f64>(MemKind::HostPageable, 4).unwrap();
        sp.write_slice_data::<f64>(buf, &[1.0, 2.0, 3.0, 4.0])
            .unwrap();
        run_world(1, Arc::clone(&sp), move |comm| {
            let st = comm
                .send(buf, 4, MpiDatatype::Double, PROC_NULL, 0)
                .unwrap();
            assert_eq!(st.bytes, 0);
            let st = comm
                .recv(buf, 4, MpiDatatype::Double, PROC_NULL_SRC, 0)
                .unwrap();
            assert_eq!(st.bytes, 0);
            // sendrecv against PROC_NULL on both sides: pure no-op.
            comm.sendrecv(
                buf,
                4,
                PROC_NULL,
                0,
                buf,
                4,
                PROC_NULL_SRC,
                0,
                MpiDatatype::Double,
            )
            .unwrap();
        });
        // Data untouched.
        assert_eq!(
            sp.read_vec::<f64>(buf, 4).unwrap(),
            vec![1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn rank_out_of_bounds() {
        let sp = space();
        let b = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let results = run_world(1, Arc::clone(&sp), move |comm| {
            comm.send(b, 1, MpiDatatype::Int, 5, 0)
        });
        assert!(matches!(
            results[0],
            Err(MpiError::RankOutOfBounds { rank: 5, size: 1 })
        ));
    }

    #[test]
    fn test_polls_without_blocking() {
        let sp = space();
        let rx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let tx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        sp.write_at::<i32>(tx, 3).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                let mut r = comm.irecv(rx, 1, MpiDatatype::Int, 1, 0).unwrap();
                // Poll until completion.
                loop {
                    if let Some(st) = comm.test(&mut r).unwrap() {
                        assert_eq!(st.source, 1);
                        break;
                    }
                    std::thread::yield_now();
                }
            } else {
                comm.send(tx, 1, MpiDatatype::Int, 0, 0).unwrap();
            }
        });
    }

    #[test]
    fn barrier_timeout_flows_to_both_barriers() {
        use std::time::Duration;
        let sp = space();
        let t = Duration::from_millis(321);
        run_world_with_timeout(2, Arc::clone(&sp), Some(t), move |comm| {
            assert_eq!(comm.barrier_timeout(), t);
            assert_eq!(comm.shared.coll.phase_timeout(), t);
            comm.barrier().unwrap();
        });
        // `None` (and plain run_world) keep the standard timeout.
        run_world(1, sp, |comm| {
            assert_eq!(comm.barrier_timeout(), crate::request::WAIT_TIMEOUT);
            assert_eq!(
                comm.shared.coll.phase_timeout(),
                crate::request::WAIT_TIMEOUT
            );
        });
    }

    #[test]
    fn rendezvous_reads_sender_buffer_at_match_time() {
        // Demonstrates WHY unsynchronized writes between Isend and Wait
        // corrupt data: the payload is read at match time.
        let sp = space();
        let tx = sp.alloc_array::<f64>(MemKind::HostPageable, 1024).unwrap();
        let rx = sp.alloc_array::<f64>(MemKind::HostPageable, 1024).unwrap();
        run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 0 {
                sp_fill(comm.space(), tx, 1.0);
                let mut req = comm.isend(tx, 1024, MpiDatatype::Double, 1, 0).unwrap();
                // Overwrite the buffer BEFORE the receiver matched: the
                // user-visible corruption of a missing wait (the receiver
                // delays its recv until after our write via a barrier).
                sp_fill(comm.space(), tx, 2.0);
                comm.barrier().unwrap();
                comm.wait(&mut req).unwrap();
            } else {
                comm.barrier().unwrap(); // let rank 0 overwrite first
                comm.recv(rx, 1024, MpiDatatype::Double, 0, 0).unwrap();
                assert_eq!(
                    comm.space().read_at::<f64>(rx).unwrap(),
                    2.0,
                    "stale overwrite visible"
                );
            }
        });
    }

    fn sp_fill(space: &AddressSpace, p: Ptr, v: f64) {
        space
            .with_slice_mut::<f64, _>(p, 1024, |s| s.fill(v))
            .unwrap();
    }

    /// Satellite regression: a completing `irecv` and a blocking `recv`
    /// racing for the same pending sends must resolve by recorded
    /// mailbox seq (post order), never by completion-wait timing. Two
    /// threads share rank 0's communicator; their post order is pinned
    /// by a handshake, so the irecv (posted first) must take the
    /// first-seq send and the blocking recv the second — on every run.
    #[test]
    fn concurrent_irecv_and_recv_resolve_by_seq() {
        for _ in 0..64 {
            let sp = space();
            let a = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            let b = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            let tx1 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            let tx2 = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            sp.write_at::<i32>(tx1, 111).unwrap();
            sp.write_at::<i32>(tx2, 222).unwrap();
            run_world(2, Arc::clone(&sp), move |comm| {
                if comm.rank() == 1 {
                    comm.send(tx1, 1, MpiDatatype::Int, 0, 0).unwrap();
                    comm.send(tx2, 1, MpiDatatype::Int, 0, 0).unwrap();
                    comm.barrier().unwrap();
                } else {
                    comm.barrier().unwrap(); // both sends are now pending
                    let (sig_tx, sig_rx) = std::sync::mpsc::channel::<()>();
                    std::thread::scope(|s| {
                        let comm = &comm;
                        let helper = s.spawn(move || {
                            let mut req = comm.irecv(a, 1, MpiDatatype::Int, 1, 0).unwrap();
                            sig_tx.send(()).unwrap(); // posted (and seq-stamped)
                            comm.wait(&mut req).unwrap()
                        });
                        sig_rx.recv().unwrap();
                        let st2 = comm.recv(b, 1, MpiDatatype::Int, 1, 0).unwrap();
                        let st1 = helper.join().unwrap();
                        assert_eq!(st1.bytes, 4);
                        assert_eq!(st2.bytes, 4);
                    });
                }
            });
            assert_eq!(sp.read_at::<i32>(a).unwrap(), 111, "irecv posted first");
            assert_eq!(sp.read_at::<i32>(b).unwrap(), 222, "recv posted second");
        }
    }

    /// Satellite regression: an eager send's flag settles at post time;
    /// a later truncating receive failing both sides of the match must
    /// not flip the sender's already-settled success (first settlement
    /// wins, regardless of lock-acquisition timing).
    #[test]
    fn eager_send_flag_survives_truncating_recv() {
        let sp = space();
        let tx = sp.alloc_array::<i32>(MemKind::HostPageable, 4).unwrap();
        let small = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
        let results = run_world(2, Arc::clone(&sp), move |comm| {
            if comm.rank() == 1 {
                // Eager: completes at post, before any receive exists.
                let mut req = comm.isend(tx, 4, MpiDatatype::Int, 0, 0).unwrap();
                comm.barrier().unwrap();
                comm.barrier().unwrap(); // rank 0's truncating recv ran
                comm.wait(&mut req)
            } else {
                comm.barrier().unwrap();
                let r = comm.recv(small, 1, MpiDatatype::Int, 1, 0);
                assert!(matches!(r, Err(MpiError::Truncated { .. })));
                comm.barrier().unwrap();
                Ok(Status {
                    source: 1,
                    tag: 0,
                    bytes: 0,
                })
            }
        });
        assert!(
            results[0].is_ok(),
            "settled eager send flipped to {:?}",
            results[0]
        );
    }

    /// The wildcard choice point: under the default schedule an
    /// `ANY_TAG` receive matches the minimum-seq pending send; a plan
    /// choosing candidate 1 matches the other `(src, tag)` stream.
    /// Non-wildcard matching never consults the controller.
    #[test]
    fn wildcard_choice_point_follows_the_plan() {
        use explore::SchedulePlan;
        for (rank0_choices, want, want_tag) in
            [(vec![], 100, 10), (vec![0], 100, 10), (vec![1], 200, 20)]
        {
            let sp = space();
            let a = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            let b = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            let rx = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
            sp.write_at::<i32>(a, 100).unwrap();
            sp.write_at::<i32>(b, 200).unwrap();
            let plan = SchedulePlan::with_choices(vec![rank0_choices, vec![], vec![]]);
            let sched: Arc<dyn ScheduleController> = Arc::clone(&plan) as _;
            run_world_with_schedule(2, Arc::clone(&sp), None, Some(sched), move |comm| {
                if comm.rank() == 1 {
                    comm.send(a, 1, MpiDatatype::Int, 0, 10).unwrap();
                    comm.send(b, 1, MpiDatatype::Int, 0, 20).unwrap();
                    comm.barrier().unwrap();
                } else {
                    comm.barrier().unwrap(); // both streams pending
                    let st = comm.recv(rx, 1, MpiDatatype::Int, 1, ANY_TAG).unwrap();
                    assert_eq!(st.tag, want_tag);
                    // Drain the other message; a unique (src, tag) head
                    // never consults the controller.
                    let other = if want_tag == 10 { 20 } else { 10 };
                    comm.recv(rx, 1, MpiDatatype::Int, 1, other).unwrap();
                }
            });
            assert_eq!(
                sp.read_at::<i32>(rx).unwrap(),
                if want == 100 { 200 } else { 100 }
            );
            let decisions = plan.decisions(0);
            assert_eq!(decisions.len(), 1, "one wildcard consultation");
            assert_eq!(decisions[0].arity, 2);
            assert_eq!(decisions[0].kind, explore::ChoiceKind::WildcardRecv);
        }
    }
}
