//! Collective operations: barrier-phased reference implementations.
//!
//! Every collective runs in three barrier-separated phases over a shared
//! slot table: (1) contribute, (2) compute/read, (3) leader cleanup. This
//! is deliberately the simplest correct scheme — collectives are not on
//! the overhead-critical path of the evaluation; their MPI-semantic
//! surface (buffer reads/writes) is what MUST annotates.

use crate::barrier::SimBarrier;
use crate::datatype::{reduce_bytes, MpiDatatype, ReduceOp};
use crate::error::MpiError;
use explore::{ChoiceKind, ScheduleController};
use parking_lot::Mutex;
use sim_mem::{AddressSpace, Ptr};
use std::sync::Arc;

struct Slots {
    contribs: Vec<Option<Vec<u8>>>,
    result: Option<Result<Vec<u8>, MpiError>>,
}

pub(crate) struct CollShared {
    slots: Mutex<Slots>,
    phase: SimBarrier,
    size: usize,
    /// Schedule controller plus the world-global lane it is consulted
    /// on for reduction fold order (participant "arrival" order).
    /// `None`: ascending rank order, the default schedule.
    sched: Option<(Arc<dyn ScheduleController>, usize)>,
}

impl CollShared {
    /// Shared collective state for `size` ranks with an explicit
    /// phase-barrier poison timeout (`None` keeps the standard
    /// deadlock-detection timeout) and an optional schedule controller
    /// deciding reduction fold order on the given lane.
    pub fn with_schedule(
        size: usize,
        timeout: Option<std::time::Duration>,
        sched: Option<(Arc<dyn ScheduleController>, usize)>,
    ) -> Self {
        let phase = match timeout {
            Some(t) => SimBarrier::with_timeout(size, "collective phase", t),
            None => SimBarrier::new(size, "collective phase"),
        };
        CollShared {
            slots: Mutex::new(Slots {
                contribs: vec![None; size],
                result: None,
            }),
            phase,
            size,
            sched,
        }
    }

    /// The phase barrier's poison timeout (config/env plumbing tests).
    #[cfg(test)]
    pub fn phase_timeout(&self) -> std::time::Duration {
        self.phase.timeout()
    }

    /// The 3-phase skeleton: `contribute` fills this rank's slot, `compute`
    /// runs on exactly one rank after all contributions, every rank then
    /// receives the result, and the leader clears the table.
    fn run<T>(
        &self,
        rank: usize,
        contribute: impl FnOnce(&mut Vec<Option<Vec<u8>>>),
        compute: impl FnOnce(&mut Slots),
        consume: impl FnOnce(&Slots) -> Result<T, MpiError>,
    ) -> Result<T, MpiError> {
        {
            let mut s = self.slots.lock();
            contribute(&mut s.contribs);
        }
        // A missing rank (fault injection, application bug) poisons the
        // phase barrier and every participant returns Timeout instead of
        // hanging the world.
        let r1 = self.phase.wait()?;
        if r1.is_leader() {
            let mut s = self.slots.lock();
            compute(&mut s);
        }
        self.phase.wait()?;
        let out = {
            let s = self.slots.lock();
            consume(&s)
        };
        let r3 = self.phase.wait()?;
        if r3.is_leader() {
            let mut s = self.slots.lock();
            s.contribs.iter_mut().for_each(|c| *c = None);
            s.result = None;
        }
        self.phase.wait()?;
        let _ = rank;
        out
    }

    #[allow(clippy::too_many_arguments)]
    pub fn allreduce(
        &self,
        rank: usize,
        space: &AddressSpace,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        let bytes = count * dtype.size();
        let mut mine = vec![0u8; bytes as usize];
        space.read_bytes(send_buf, &mut mine)?;
        let result = self.run(
            rank,
            |contribs| contribs[rank] = Some(mine),
            |slots| slots.result = Some(fold(&slots.contribs, dtype, op, self.sched.as_ref())),
            |slots| slots.result.clone().expect("result computed"),
        )?;
        space.write_bytes(recv_buf, &result)?;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    pub fn reduce(
        &self,
        rank: usize,
        root: usize,
        space: &AddressSpace,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
        op: ReduceOp,
    ) -> Result<(), MpiError> {
        assert!(root < self.size, "invalid root {root}");
        let bytes = count * dtype.size();
        let mut mine = vec![0u8; bytes as usize];
        space.read_bytes(send_buf, &mut mine)?;
        let result = self.run(
            rank,
            |contribs| contribs[rank] = Some(mine),
            |slots| slots.result = Some(fold(&slots.contribs, dtype, op, self.sched.as_ref())),
            |slots| slots.result.clone().expect("result computed"),
        )?;
        if rank == root {
            space.write_bytes(recv_buf, &result)?;
        }
        Ok(())
    }

    pub fn bcast(
        &self,
        rank: usize,
        root: usize,
        space: &AddressSpace,
        buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        assert!(root < self.size, "invalid root {root}");
        let bytes = count * dtype.size();
        let mine = if rank == root {
            let mut data = vec![0u8; bytes as usize];
            space.read_bytes(buf, &mut data)?;
            Some(data)
        } else {
            None
        };
        let result = self.run(
            rank,
            |contribs| {
                if let Some(data) = mine {
                    contribs[root] = Some(data);
                }
            },
            |slots| {
                slots.result = Some(match slots.contribs[root].clone() {
                    Some(d) => Ok(d),
                    None => Err(MpiError::BadRequest),
                });
            },
            |slots| slots.result.clone().expect("result computed"),
        )?;
        if rank != root {
            space.write_bytes(buf, &result)?;
        }
        Ok(())
    }
}

impl CollShared {
    /// `MPI_Gather`: rank slices concatenated at `root` in rank order.
    #[allow(clippy::too_many_arguments)]
    pub fn gather(
        &self,
        rank: usize,
        root: usize,
        space: &AddressSpace,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        assert!(root < self.size, "invalid root {root}");
        let bytes = count * dtype.size();
        let mut mine = vec![0u8; bytes as usize];
        space.read_bytes(send_buf, &mut mine)?;
        let result = self.run(
            rank,
            |contribs| contribs[rank] = Some(mine),
            |slots| slots.result = Some(concat(&slots.contribs)),
            |slots| slots.result.clone().expect("result computed"),
        )?;
        if rank == root {
            space.write_bytes(recv_buf, &result)?;
        }
        Ok(())
    }

    /// `MPI_Allgather`: every rank receives the concatenation.
    pub fn allgather(
        &self,
        rank: usize,
        space: &AddressSpace,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        let bytes = count * dtype.size();
        let mut mine = vec![0u8; bytes as usize];
        space.read_bytes(send_buf, &mut mine)?;
        let result = self.run(
            rank,
            |contribs| contribs[rank] = Some(mine),
            |slots| slots.result = Some(concat(&slots.contribs)),
            |slots| slots.result.clone().expect("result computed"),
        )?;
        space.write_bytes(recv_buf, &result)?;
        Ok(())
    }

    /// `MPI_Scatter`: `root`'s buffer is split into per-rank slices.
    #[allow(clippy::too_many_arguments)]
    pub fn scatter(
        &self,
        rank: usize,
        root: usize,
        space: &AddressSpace,
        send_buf: Ptr,
        recv_buf: Ptr,
        count: u64,
        dtype: MpiDatatype,
    ) -> Result<(), MpiError> {
        assert!(root < self.size, "invalid root {root}");
        let slice = count * dtype.size();
        let mine = if rank == root {
            let mut data = vec![0u8; (slice * self.size as u64) as usize];
            space.read_bytes(send_buf, &mut data)?;
            Some(data)
        } else {
            None
        };
        let result = self.run(
            rank,
            |contribs| {
                if let Some(data) = mine {
                    contribs[root] = Some(data);
                }
            },
            |slots| {
                slots.result = Some(match slots.contribs[root].clone() {
                    Some(d) => Ok(d),
                    None => Err(MpiError::BadRequest),
                });
            },
            |slots| slots.result.clone().expect("result computed"),
        )?;
        let off = rank as u64 * slice;
        space.write_bytes(recv_buf, &result[off as usize..(off + slice) as usize])?;
        Ok(())
    }
}

/// Concatenate per-rank contributions in rank order.
fn concat(contribs: &[Option<Vec<u8>>]) -> Result<Vec<u8>, MpiError> {
    let mut out = Vec::new();
    for c in contribs {
        match c {
            Some(d) => out.extend_from_slice(d),
            None => return Err(MpiError::BadRequest),
        }
    }
    Ok(out)
}

/// Fold the contributions into one reduction result. The default order
/// is ascending rank; under a schedule controller the order models the
/// (unordered) arrival of participants — candidates are the remaining
/// ranks, seq-ascending with signature = rank, so choice 0 at every
/// step reproduces the ascending default exactly.
fn fold(
    contribs: &[Option<Vec<u8>>],
    dtype: MpiDatatype,
    op: ReduceOp,
    sched: Option<&(Arc<dyn ScheduleController>, usize)>,
) -> Result<Vec<u8>, MpiError> {
    let mut order: Vec<usize> = (0..contribs.len()).collect();
    if let Some((ctrl, lane)) = sched {
        let mut remaining = order;
        order = Vec::with_capacity(contribs.len());
        while !remaining.is_empty() {
            let k = if remaining.len() > 1 {
                let sigs: Vec<u64> = remaining.iter().map(|r| *r as u64).collect();
                ctrl.choose(*lane, ChoiceKind::CollectiveFold, &sigs)
                    .min(remaining.len() - 1)
            } else {
                0
            };
            order.push(remaining.remove(k));
        }
    }
    let mut acc: Option<Vec<u8>> = None;
    for r in order {
        let Some(c) = &contribs[r] else {
            return Err(MpiError::BadRequest);
        };
        match &mut acc {
            None => acc = Some(c.clone()),
            Some(acc) => {
                if c.len() != acc.len() {
                    return Err(MpiError::Truncated {
                        message: c.len() as u64,
                        capacity: acc.len() as u64,
                    });
                }
                reduce_bytes(dtype, op, acc, c);
            }
        }
    }
    acc.ok_or(MpiError::BadRequest)
}

#[cfg(test)]
mod tests {
    use crate::datatype::{MpiDatatype, ReduceOp};
    use crate::world::run_world;
    use sim_mem::{AddressSpace, MemKind, Ptr};
    use std::sync::Arc;

    fn space() -> Arc<AddressSpace> {
        Arc::new(AddressSpace::new())
    }

    #[test]
    fn allreduce_sum() {
        let sp = space();
        let n = 4;
        let send: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<f64>(MemKind::HostPageable, 2).unwrap())
            .collect();
        let recv: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<f64>(MemKind::HostPageable, 2).unwrap())
            .collect();
        for (r, p) in send.iter().enumerate() {
            sp.write_slice_data::<f64>(*p, &[r as f64, 10.0 * r as f64])
                .unwrap();
        }
        let (s, rc) = (send.clone(), recv.clone());
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.allreduce(
                s[comm.rank()],
                rc[comm.rank()],
                2,
                MpiDatatype::Double,
                ReduceOp::Sum,
            )
            .unwrap();
        });
        for p in &recv {
            assert_eq!(sp.read_vec::<f64>(*p, 2).unwrap(), vec![6.0, 60.0]);
        }
    }

    #[test]
    fn allreduce_repeated_generations() {
        // Back-to-back collectives must not leak state between rounds.
        let sp = space();
        let n = 3;
        let bufs: Vec<(Ptr, Ptr)> = (0..n)
            .map(|_| {
                (
                    sp.alloc_array::<i64>(MemKind::HostPageable, 1).unwrap(),
                    sp.alloc_array::<i64>(MemKind::HostPageable, 1).unwrap(),
                )
            })
            .collect();
        let b = bufs.clone();
        run_world(n, Arc::clone(&sp), move |comm| {
            let (s, r) = b[comm.rank()];
            for round in 0..10i64 {
                comm.space()
                    .write_at::<i64>(s, round + comm.rank() as i64)
                    .unwrap();
                comm.allreduce(s, r, 1, MpiDatatype::Long, ReduceOp::Max)
                    .unwrap();
                let got = comm.space().read_at::<i64>(r).unwrap();
                assert_eq!(got, round + 2, "round {round}");
            }
        });
    }

    #[test]
    fn reduce_only_root_receives() {
        let sp = space();
        let n = 3;
        let send: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap())
            .collect();
        let recv: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap())
            .collect();
        for (r, p) in send.iter().enumerate() {
            sp.write_at::<i32>(*p, (r + 1) as i32).unwrap();
        }
        let (s, rc) = (send.clone(), recv.clone());
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.reduce(
                s[comm.rank()],
                rc[comm.rank()],
                1,
                MpiDatatype::Int,
                ReduceOp::Prod,
                1,
            )
            .unwrap();
        });
        assert_eq!(sp.read_at::<i32>(recv[1]).unwrap(), 6);
        assert_eq!(sp.read_at::<i32>(recv[0]).unwrap(), 0, "non-root untouched");
    }

    #[test]
    fn bcast_from_root() {
        let sp = space();
        let n = 4;
        let bufs: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<f64>(MemKind::HostPageable, 3).unwrap())
            .collect();
        sp.write_slice_data::<f64>(bufs[2], &[7.0, 8.0, 9.0])
            .unwrap();
        let b = bufs.clone();
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.bcast(b[comm.rank()], 3, MpiDatatype::Double, 2)
                .unwrap();
        });
        for p in &bufs {
            assert_eq!(sp.read_vec::<f64>(*p, 3).unwrap(), vec![7.0, 8.0, 9.0]);
        }
    }

    /// The collective fold choice point: a plan permuting the fold
    /// order is consulted on the world-global lane, and for a
    /// commutative reduction every explored order gives the identical
    /// result (the detector-visible outcome is schedule-independent).
    #[test]
    fn fold_order_plans_are_consulted_and_commute() {
        use explore::{ChoiceKind, ScheduleController, SchedulePlan};
        let n = 3;
        for coll_choices in [vec![], vec![2, 1], vec![1, 0]] {
            let sp = space();
            let send: Vec<Ptr> = (0..n)
                .map(|r| {
                    let p = sp.alloc_array::<i64>(MemKind::HostPageable, 1).unwrap();
                    sp.write_at::<i64>(p, (r as i64 + 1) * 10).unwrap();
                    p
                })
                .collect();
            let recv: Vec<Ptr> = (0..n)
                .map(|_| sp.alloc_array::<i64>(MemKind::HostPageable, 1).unwrap())
                .collect();
            let plan =
                SchedulePlan::with_choices(vec![vec![], vec![], vec![], coll_choices.clone()]);
            let sched: Arc<dyn ScheduleController> = Arc::clone(&plan) as _;
            let (s, rc) = (send.clone(), recv.clone());
            crate::world::run_world_with_schedule(
                n,
                Arc::clone(&sp),
                None,
                Some(sched),
                move |comm| {
                    comm.allreduce(
                        s[comm.rank()],
                        rc[comm.rank()],
                        1,
                        MpiDatatype::Long,
                        ReduceOp::Sum,
                    )
                    .unwrap();
                },
            );
            for p in &recv {
                assert_eq!(sp.read_at::<i64>(*p).unwrap(), 60, "sum commutes");
            }
            let log = plan.decisions(3);
            assert_eq!(log.len(), n - 1, "n-1 fold consultations");
            assert!(log.iter().all(|d| d.kind == ChoiceKind::CollectiveFold));
            assert_eq!(log[0].arity, 3);
            assert_eq!(log[1].arity, 2);
        }
    }

    #[test]
    fn barrier_separates_phases() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sp = space();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        run_world(4, sp, move |comm| {
            c.fetch_add(1, Ordering::SeqCst);
            comm.barrier().unwrap();
            // After the barrier every rank must observe all increments.
            assert_eq!(c.load(Ordering::SeqCst), 4);
        });
    }
}

#[cfg(test)]
mod gather_tests {
    use crate::datatype::MpiDatatype;
    use crate::world::run_world;
    use sim_mem::{AddressSpace, MemKind, Ptr};
    use std::sync::Arc;

    fn space() -> Arc<AddressSpace> {
        Arc::new(AddressSpace::new())
    }

    #[test]
    fn gather_concatenates_in_rank_order() {
        let sp = space();
        let n = 4;
        let send: Vec<Ptr> = (0..n)
            .map(|r| {
                let p = sp.alloc_array::<i32>(MemKind::HostPageable, 2).unwrap();
                sp.write_slice_data::<i32>(p, &[r as i32, 10 * r as i32])
                    .unwrap();
                p
            })
            .collect();
        let recv = sp
            .alloc_array::<i32>(MemKind::HostPageable, 2 * n as u64)
            .unwrap();
        let s = send.clone();
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.gather(s[comm.rank()], recv, 2, MpiDatatype::Int, 1)
                .unwrap();
        });
        assert_eq!(
            sp.read_vec::<i32>(recv, 8).unwrap(),
            vec![0, 0, 1, 10, 2, 20, 3, 30]
        );
    }

    #[test]
    fn allgather_gives_everyone_the_concatenation() {
        let sp = space();
        let n = 3;
        let bufs: Vec<(Ptr, Ptr)> = (0..n)
            .map(|r| {
                let s = sp.alloc_array::<f64>(MemKind::HostPageable, 1).unwrap();
                sp.write_at::<f64>(s, r as f64 + 0.5).unwrap();
                let d = sp
                    .alloc_array::<f64>(MemKind::HostPageable, n as u64)
                    .unwrap();
                (s, d)
            })
            .collect();
        let b = bufs.clone();
        run_world(n, Arc::clone(&sp), move |comm| {
            let (s, d) = b[comm.rank()];
            comm.allgather(s, d, 1, MpiDatatype::Double).unwrap();
        });
        for (_, d) in &bufs {
            assert_eq!(sp.read_vec::<f64>(*d, 3).unwrap(), vec![0.5, 1.5, 2.5]);
        }
    }

    #[test]
    fn scatter_splits_root_buffer() {
        let sp = space();
        let n = 4;
        let root_buf = sp
            .alloc_array::<i64>(MemKind::HostPageable, n as u64)
            .unwrap();
        sp.write_slice_data::<i64>(root_buf, &[100, 200, 300, 400])
            .unwrap();
        let recvs: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<i64>(MemKind::HostPageable, 1).unwrap())
            .collect();
        let rc = recvs.clone();
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.scatter(root_buf, rc[comm.rank()], 1, MpiDatatype::Long, 0)
                .unwrap();
        });
        for (r, p) in recvs.iter().enumerate() {
            assert_eq!(sp.read_at::<i64>(*p).unwrap(), (r as i64 + 1) * 100);
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let sp = space();
        let n = 3;
        let ins: Vec<Ptr> = (0..n)
            .map(|r| {
                let p = sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap();
                sp.write_at::<i32>(p, r as i32 * 7).unwrap();
                p
            })
            .collect();
        let mid = sp
            .alloc_array::<i32>(MemKind::HostPageable, n as u64)
            .unwrap();
        let outs: Vec<Ptr> = (0..n)
            .map(|_| sp.alloc_array::<i32>(MemKind::HostPageable, 1).unwrap())
            .collect();
        let (i2, o2) = (ins.clone(), outs.clone());
        run_world(n, Arc::clone(&sp), move |comm| {
            comm.gather(i2[comm.rank()], mid, 1, MpiDatatype::Int, 0)
                .unwrap();
            comm.scatter(mid, o2[comm.rank()], 1, MpiDatatype::Int, 0)
                .unwrap();
        });
        for (inp, out) in ins.iter().zip(&outs) {
            assert_eq!(
                sp.read_at::<i32>(*inp).unwrap(),
                sp.read_at::<i32>(*out).unwrap()
            );
        }
    }
}
