//! # mpi-sim — a thread-per-rank, CUDA-aware MPI simulator
//!
//! The substrate standing in for OpenMPI/MVAPICH in `cusan-rs`. Each MPI
//! rank is a thread; all ranks share the simulated UVA
//! [`sim_mem::AddressSpace`],
//! so communication buffers are plain [`sim_mem::Ptr`]s that may point to
//! host **or device** memory — exactly the CUDA-aware MPI contract (paper
//! §III-D): the library resolves the pointer's location through UVA
//! attributes and transfers directly, no staging copies.
//!
//! ## Semantics modeled
//!
//! * Blocking and non-blocking point-to-point (`send`/`recv`/`isend`/
//!   `irecv`/`sendrecv`) with tag and source matching, `ANY_SOURCE` /
//!   `ANY_TAG`, and per-pair non-overtaking order.
//! * Requests with `wait`/`waitall`/`test` completion.
//! * **Rendezvous transfer**: message payloads move from the sender's
//!   memory to the receiver's at *match time*, by whichever rank completes
//!   the match. A racing write to a send buffer between `isend` and the
//!   match therefore genuinely corrupts the message — the bug class MUST's
//!   fiber model (Fig. 1) exists to detect.
//! * Collectives: `barrier`, `bcast`, `reduce`, `allreduce`.
//! * Truncation errors when a message exceeds the posted receive buffer.
//!
//! Deadlocks (e.g. an `irecv` that is never matched) are detected with a
//! timeout and reported as [`MpiError::Timeout`] instead of hanging the
//! test suite.

mod barrier;
pub mod collective;
pub mod datatype;
pub mod error;
pub mod request;
pub mod world;

pub use datatype::{MpiDatatype, ReduceOp};
pub use error::MpiError;
pub use request::{Request, Status};
pub use world::{
    run_world, run_world_with_schedule, run_world_with_timeout, Comm, ANY_SOURCE, ANY_TAG,
    PROC_NULL, PROC_NULL_SRC,
};
