//! Non-blocking requests and completion flags.

use crate::error::MpiError;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

/// Deadlock-detection timeout for blocking waits.
pub(crate) const WAIT_TIMEOUT: Duration = Duration::from_secs(20);

/// Completion status of a receive (source/tag are meaningful for
/// `ANY_SOURCE`/`ANY_TAG` receives; sends report their own parameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// Rank the message came from (or went to, for sends).
    pub source: usize,
    /// Message tag.
    pub tag: i32,
    /// Transferred bytes.
    pub bytes: u64,
}

#[derive(Debug)]
pub(crate) enum FlagState {
    Pending,
    Done(Status),
    Failed(MpiError),
}

/// Shared completion flag between the two sides of a match.
#[derive(Debug)]
pub(crate) struct Flag {
    pub state: Mutex<FlagState>,
    pub cv: Condvar,
}

impl Flag {
    pub fn new() -> Arc<Flag> {
        Arc::new(Flag {
            state: Mutex::new(FlagState::Pending),
            cv: Condvar::new(),
        })
    }

    /// Settle the flag as completed. First settlement wins: an eager
    /// send's flag is completed at post time, and a later delivery path
    /// (e.g. a truncating receive failing both sides of the match) must
    /// never flip an outcome the poster may already have observed —
    /// whichever thread settles first by mailbox order, not whichever
    /// acquires this lock last.
    pub fn complete(&self, status: Status) {
        let mut st = self.state.lock();
        if matches!(*st, FlagState::Pending) {
            *st = FlagState::Done(status);
            drop(st);
            self.cv.notify_all();
        }
    }

    /// Settle the flag as failed (first settlement wins; see
    /// [`Flag::complete`]).
    pub fn fail(&self, err: MpiError) {
        let mut st = self.state.lock();
        if matches!(*st, FlagState::Pending) {
            *st = FlagState::Failed(err);
            drop(st);
            self.cv.notify_all();
        }
    }

    pub fn wait(&self, what: &str) -> Result<Status, MpiError> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                FlagState::Done(s) => return Ok(*s),
                FlagState::Failed(e) => return Err(e.clone()),
                FlagState::Pending => {
                    if self.cv.wait_for(&mut st, WAIT_TIMEOUT).timed_out() {
                        return Err(MpiError::Timeout {
                            what: what.to_string(),
                        });
                    }
                }
            }
        }
    }

    pub fn poll(&self) -> Option<Result<Status, MpiError>> {
        match &*self.state.lock() {
            FlagState::Pending => None,
            FlagState::Done(s) => Some(Ok(*s)),
            FlagState::Failed(e) => Some(Err(e.clone())),
        }
    }
}

/// What kind of operation a request tracks (diagnostics + MUST labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// `MPI_Isend`.
    Send,
    /// `MPI_Irecv`.
    Recv,
}

/// A non-blocking communication request.
#[derive(Debug)]
pub struct Request {
    pub(crate) flag: Arc<Flag>,
    pub(crate) kind: RequestKind,
    pub(crate) what: String,
    pub(crate) completed: bool,
}

impl Request {
    /// The operation kind.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Human-readable description ("Isend to 1 tag 7").
    pub fn describe(&self) -> &str {
        &self.what
    }

    /// True once `wait`/successful `test` observed completion.
    pub fn is_completed(&self) -> bool {
        self.completed
    }
}
