//! MPI datatypes and reduction operators.

use sim_mem::pod;

/// The MPI basic datatypes used by the mini-apps and the testsuite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpiDatatype {
    /// `MPI_DOUBLE`.
    Double,
    /// `MPI_FLOAT`.
    Float,
    /// `MPI_INT`.
    Int,
    /// `MPI_LONG` (64-bit).
    Long,
    /// `MPI_BYTE`.
    Byte,
}

impl MpiDatatype {
    /// Size of one element in bytes.
    pub fn size(self) -> u64 {
        match self {
            MpiDatatype::Double | MpiDatatype::Long => 8,
            MpiDatatype::Float | MpiDatatype::Int => 4,
            MpiDatatype::Byte => 1,
        }
    }

    /// The TypeART type name this datatype is layout-compatible with
    /// (used by MUST's datatype check).
    pub fn type_name(self) -> &'static str {
        match self {
            MpiDatatype::Double => "f64",
            MpiDatatype::Float => "f32",
            MpiDatatype::Int => "i32",
            MpiDatatype::Long => "i64",
            MpiDatatype::Byte => "u8",
        }
    }
}

/// Reduction operators for `reduce`/`allreduce`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// `MPI_SUM`.
    Sum,
    /// `MPI_MIN`.
    Min,
    /// `MPI_MAX`.
    Max,
    /// `MPI_PROD`.
    Prod,
}

macro_rules! reduce_typed {
    ($t:ty, $op:expr, $acc:expr, $inc:expr) => {{
        let a = pod::cast_slice_mut::<$t>($acc);
        let b = pod::cast_slice::<$t>($inc);
        for (x, y) in a.iter_mut().zip(b) {
            *x = match $op {
                ReduceOp::Sum => *x + *y,
                ReduceOp::Prod => *x * *y,
                ReduceOp::Min => {
                    if *y < *x {
                        *y
                    } else {
                        *x
                    }
                }
                ReduceOp::Max => {
                    if *y > *x {
                        *y
                    } else {
                        *x
                    }
                }
            };
        }
    }};
}

/// Elementwise `acc = op(acc, inc)` over raw little-endian native buffers.
pub(crate) fn reduce_bytes(dtype: MpiDatatype, op: ReduceOp, acc: &mut [u8], inc: &[u8]) {
    debug_assert_eq!(acc.len(), inc.len());
    match dtype {
        MpiDatatype::Double => reduce_typed!(f64, op, acc, inc),
        MpiDatatype::Float => reduce_typed!(f32, op, acc, inc),
        MpiDatatype::Int => reduce_typed!(i32, op, acc, inc),
        MpiDatatype::Long => reduce_typed!(i64, op, acc, inc),
        MpiDatatype::Byte => reduce_typed!(u8, op, acc, inc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_names() {
        assert_eq!(MpiDatatype::Double.size(), 8);
        assert_eq!(MpiDatatype::Int.size(), 4);
        assert_eq!(MpiDatatype::Byte.size(), 1);
        assert_eq!(MpiDatatype::Double.type_name(), "f64");
        assert_eq!(MpiDatatype::Long.type_name(), "i64");
    }

    #[test]
    fn reduce_sum_doubles() {
        let mut acc = Vec::new();
        for v in [1.0f64, 2.0] {
            acc.extend_from_slice(&v.to_ne_bytes());
        }
        let mut inc = Vec::new();
        for v in [10.0f64, 20.0] {
            inc.extend_from_slice(&v.to_ne_bytes());
        }
        reduce_bytes(MpiDatatype::Double, ReduceOp::Sum, &mut acc, &inc);
        assert_eq!(f64::from_ne_bytes(acc[0..8].try_into().unwrap()), 11.0);
        assert_eq!(f64::from_ne_bytes(acc[8..16].try_into().unwrap()), 22.0);
    }

    #[test]
    fn reduce_min_max_ints() {
        let mut acc = 5i32.to_ne_bytes().to_vec();
        reduce_bytes(
            MpiDatatype::Int,
            ReduceOp::Min,
            &mut acc,
            &3i32.to_ne_bytes(),
        );
        assert_eq!(i32::from_ne_bytes(acc[..].try_into().unwrap()), 3);
        reduce_bytes(
            MpiDatatype::Int,
            ReduceOp::Max,
            &mut acc,
            &9i32.to_ne_bytes(),
        );
        assert_eq!(i32::from_ne_bytes(acc[..].try_into().unwrap()), 9);
    }

    #[test]
    fn reduce_prod() {
        let mut acc = 3.0f32.to_ne_bytes().to_vec();
        reduce_bytes(
            MpiDatatype::Float,
            ReduceOp::Prod,
            &mut acc,
            &4.0f32.to_ne_bytes(),
        );
        assert_eq!(f32::from_ne_bytes(acc[..].try_into().unwrap()), 12.0);
    }
}
