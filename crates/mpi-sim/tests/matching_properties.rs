//! Property tests for MPI message matching: random message sets must be
//! delivered exactly once, to the right receive, with per-`(source, tag)`
//! FIFO order preserved — under random posting orders and mixed
//! eager/rendezvous sizes.

use mpi_sim::{run_world, MpiDatatype, ANY_SOURCE, ANY_TAG};
use proptest::prelude::*;
use sim_mem::{AddressSpace, MemKind, Ptr};
use std::sync::Arc;

/// One message from rank 1 to rank 0.
#[derive(Debug, Clone)]
struct Msg {
    tag: i32,
    /// Payload length in i64 elements; > 512 elements crosses the
    /// 4096-byte eager limit into rendezvous.
    len: u64,
    seed: i64,
}

fn msg_strategy() -> impl Strategy<Value = Msg> {
    (0i32..3, prop_oneof![1u64..16, 500u64..560], any::<i64>()).prop_map(|(tag, len, seed)| Msg {
        tag,
        len,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Tag-targeted receives: every message arrives on the matching tag in
    /// per-tag FIFO order, with the correct payload.
    #[test]
    fn random_message_sets_delivered_fifo(msgs in proptest::collection::vec(msg_strategy(), 1..12)) {
        let space = Arc::new(AddressSpace::new());
        // Pre-allocate send and receive buffers.
        let sends: Vec<Ptr> = msgs
            .iter()
            .map(|m| {
                let p = space.alloc_array::<i64>(MemKind::HostPageable, m.len).unwrap();
                let data: Vec<i64> =
                    (0..m.len as i64).map(|i| m.seed.wrapping_add(i)).collect();
                space.write_slice_data::<i64>(p, &data).unwrap();
                p
            })
            .collect();
        let recvs: Vec<Ptr> = msgs
            .iter()
            .map(|m| space.alloc_array::<i64>(MemKind::HostPageable, m.len).unwrap())
            .collect();

        // Per-tag FIFO: receives for tag t must observe sends for tag t in
        // posting order.
        let msgs2 = msgs.clone();
        let (sends2, recvs2) = (sends.clone(), recvs.clone());
        run_world(2, Arc::clone(&space), move |comm| {
            if comm.rank() == 1 {
                // Non-blocking sends: the receive posting order below is
                // tag-grouped, which would deadlock rendezvous blocking
                // sends posted in message order (a genuinely unsafe MPI
                // pattern).
                let mut reqs: Vec<_> = msgs2
                    .iter()
                    .zip(&sends2)
                    .map(|(m, p)| comm.isend(*p, m.len, MpiDatatype::Long, 0, m.tag).unwrap())
                    .collect();
                comm.waitall(&mut reqs).unwrap();
            } else {
                // Post receives grouped by tag, in per-tag message order.
                for tag in 0..3 {
                    for (m, r) in msgs2.iter().zip(&recvs2) {
                        if m.tag == tag {
                            let st = comm.recv(*r, m.len, MpiDatatype::Long, 1, tag).unwrap();
                            assert_eq!(st.bytes, m.len * 8);
                        }
                    }
                }
            }
        });

        for (m, r) in msgs.iter().zip(&recvs) {
            let got = space.read_vec::<i64>(*r, m.len).unwrap();
            let want: Vec<i64> = (0..m.len as i64).map(|i| m.seed.wrapping_add(i)).collect();
            prop_assert_eq!(got, want, "tag {} len {}", m.tag, m.len);
        }
    }

    /// Wildcard receives drain everything exactly once: the multiset of
    /// received (tag, first-element) pairs equals the multiset sent.
    #[test]
    fn any_source_any_tag_drains_all(msgs in proptest::collection::vec(msg_strategy(), 1..10)) {
        let space = Arc::new(AddressSpace::new());
        let sends: Vec<Ptr> = msgs
            .iter()
            .map(|m| {
                let p = space.alloc_array::<i64>(MemKind::HostPageable, m.len).unwrap();
                space.write_at::<i64>(p, m.seed).unwrap();
                p
            })
            .collect();
        let max_len = msgs.iter().map(|m| m.len).max().unwrap();
        let scratch = space.alloc_array::<i64>(MemKind::HostPageable, max_len).unwrap();

        let msgs2 = msgs.clone();
        let received = run_world(2, Arc::clone(&space), move |comm| {
            let mut got = Vec::new();
            if comm.rank() == 1 {
                let mut reqs: Vec<_> = msgs2
                    .iter()
                    .zip(&sends)
                    .map(|(m, p)| comm.isend(*p, m.len, MpiDatatype::Long, 0, m.tag).unwrap())
                    .collect();
                comm.waitall(&mut reqs).unwrap();
            } else {
                for _ in 0..msgs2.len() {
                    let st = comm
                        .recv(scratch, max_len, MpiDatatype::Long, ANY_SOURCE, ANY_TAG)
                        .unwrap();
                    let first = comm.space().read_at::<i64>(scratch).unwrap();
                    got.push((st.tag, st.bytes, first));
                }
            }
            got
        });

        let mut want: Vec<(i32, u64, i64)> =
            msgs.iter().map(|m| (m.tag, m.len * 8, m.seed)).collect();
        let mut got = received[0].clone();
        want.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
