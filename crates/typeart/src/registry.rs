//! Compile-time type information: stable type ids and layouts.
//!
//! The real TypeART pass serializes the type layouts it finds in LLVM IR to
//! a file consumed by the runtime. Here the registry plays that role: apps
//! and the checked CUDA API register the element types of their buffers
//! and receive stable [`TypeId`]s. Built-in numeric types are pre-registered
//! with fixed ids so MPI-datatype compatibility checks (MUST) can match
//! against them without lookups.

use std::collections::HashMap;
use std::fmt;

/// Stable identifier of a registered type layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeId(pub u32);

impl TypeId {
    /// Unknown / untracked type.
    pub const UNKNOWN: TypeId = TypeId(0);
    /// `f64` (pre-registered).
    pub const F64: TypeId = TypeId(1);
    /// `f32` (pre-registered).
    pub const F32: TypeId = TypeId(2);
    /// `i32` (pre-registered).
    pub const I32: TypeId = TypeId(3);
    /// `i64` (pre-registered).
    pub const I64: TypeId = TypeId(4);
    /// `u8` (pre-registered).
    pub const U8: TypeId = TypeId(5);
}

/// Layout description of a registered type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeInfo {
    /// Human-readable name (`"f64"`, `"struct cell"`, …).
    pub name: String,
    /// Element size in bytes.
    pub size: u64,
}

/// The type registry ("compile-time type info", Fig. 2 step 1).
#[derive(Debug, Clone)]
pub struct TypeRegistry {
    types: Vec<TypeInfo>,
    by_name: HashMap<String, TypeId>,
}

impl Default for TypeRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeRegistry {
    /// Registry with the built-in numeric types pre-registered.
    pub fn new() -> Self {
        let mut r = TypeRegistry {
            types: Vec::new(),
            by_name: HashMap::new(),
        };
        for (name, size) in [
            ("<unknown>", 0u64),
            ("f64", 8),
            ("f32", 4),
            ("i32", 4),
            ("i64", 8),
            ("u8", 1),
        ] {
            r.register(name, size);
        }
        debug_assert_eq!(r.id_of("f64"), Some(TypeId::F64));
        debug_assert_eq!(r.id_of("u8"), Some(TypeId::U8));
        r
    }

    /// Register a type layout (idempotent per name).
    ///
    /// # Panics
    ///
    /// Panics if the same name is re-registered with a different size —
    /// that would corrupt every downstream extent computation.
    pub fn register(&mut self, name: &str, size: u64) -> TypeId {
        if let Some(&id) = self.by_name.get(name) {
            assert_eq!(
                self.types[id.0 as usize].size, size,
                "type {name:?} re-registered with a different size"
            );
            return id;
        }
        let id = TypeId(self.types.len() as u32);
        self.types.push(TypeInfo {
            name: name.to_string(),
            size,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Info for an id.
    pub fn info(&self, id: TypeId) -> Option<&TypeInfo> {
        self.types.get(id.0 as usize)
    }

    /// Element size for an id (0 for unknown ids).
    pub fn size_of(&self, id: TypeId) -> u64 {
        self.info(id).map(|t| t.size).unwrap_or(0)
    }

    /// Lookup id by name.
    pub fn id_of(&self, name: &str) -> Option<TypeId> {
        self.by_name.get(name).copied()
    }

    /// Number of registered types.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Always false: the built-ins are pre-registered.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Serialize to the line format `id<TAB>size<TAB>name`, the analogue of
    /// TypeART's serialized type file.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.types.iter().enumerate() {
            out.push_str(&format!("{}\t{}\t{}\n", i, t.size, t.name));
        }
        out
    }

    /// Parse the serialized form produced by [`Self::to_text`].
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut types = Vec::new();
        let mut by_name = HashMap::new();
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            let id: usize = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing id"))?
                .parse()
                .map_err(|e| format!("line {lineno}: bad id: {e}"))?;
            let size: u64 = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing size"))?
                .parse()
                .map_err(|e| format!("line {lineno}: bad size: {e}"))?;
            let name = parts
                .next()
                .ok_or_else(|| format!("line {lineno}: missing name"))?;
            if id != types.len() {
                return Err(format!("line {lineno}: non-contiguous id {id}"));
            }
            by_name.insert(name.to_string(), TypeId(id as u32));
            types.push(TypeInfo {
                name: name.to_string(),
                size,
            });
        }
        if types.is_empty() {
            return Err("empty type table".to_string());
        }
        Ok(TypeRegistry { types, by_name })
    }
}

impl fmt::Display for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_have_fixed_ids() {
        let r = TypeRegistry::new();
        assert_eq!(r.id_of("f64"), Some(TypeId::F64));
        assert_eq!(r.id_of("f32"), Some(TypeId::F32));
        assert_eq!(r.id_of("i32"), Some(TypeId::I32));
        assert_eq!(r.id_of("i64"), Some(TypeId::I64));
        assert_eq!(r.id_of("u8"), Some(TypeId::U8));
        assert_eq!(r.size_of(TypeId::F64), 8);
        assert_eq!(r.size_of(TypeId::I32), 4);
    }

    #[test]
    fn register_is_idempotent() {
        let mut r = TypeRegistry::new();
        let a = r.register("struct cell", 24);
        let b = r.register("struct cell", 24);
        assert_eq!(a, b);
        assert_eq!(r.info(a).unwrap().name, "struct cell");
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn conflicting_size_panics() {
        let mut r = TypeRegistry::new();
        r.register("x", 8);
        r.register("x", 16);
    }

    #[test]
    fn unknown_id_size_zero() {
        let r = TypeRegistry::new();
        assert_eq!(r.size_of(TypeId(999)), 0);
        assert_eq!(r.size_of(TypeId::UNKNOWN), 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let mut r = TypeRegistry::new();
        r.register("struct halo_cell", 32);
        let text = r.to_text();
        let r2 = TypeRegistry::from_text(&text).unwrap();
        assert_eq!(r2.len(), r.len());
        assert_eq!(r2.id_of("struct halo_cell"), r.id_of("struct halo_cell"));
        assert_eq!(r2.size_of(TypeId::F64), 8);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TypeRegistry::from_text("not-a-table").is_err());
        assert!(TypeRegistry::from_text("").is_err());
        assert!(
            TypeRegistry::from_text("5\t8\tf64\n").is_err(),
            "non-contiguous id"
        );
    }
}
