//! # typeart-rt — allocation type tracking (TypeART analogue)
//!
//! TypeART (paper §II-C) is an LLVM extension that instruments memory
//! allocations, records their *type layout* and *runtime extent*, and lets
//! MUST query the type of the `void*` buffers passed to MPI calls. CuSan
//! uses the same runtime to obtain the **extent** of device allocations so
//! it can annotate whole-buffer kernel accesses in TSan (paper §IV, §IV-C).
//!
//! In `cusan-rs` the "compiler instrumentation" is the allocation shims in
//! the CuSan-checked CUDA API and host-allocation helpers: every allocation
//! reports `(address, element count, type id)` to a per-rank
//! [`TypeartRuntime`], every free removes the record — mirroring Fig. 2 of
//! the paper. The compile-time side is modeled by [`TypeRegistry`], which
//! assigns stable ids to type layouts and can be serialized/parsed (the
//! paper's "serialized compile-time type info" file).

pub mod registry;
pub mod runtime;

pub use registry::{TypeId, TypeInfo, TypeRegistry};
pub use runtime::{AllocRecord, TypeQuery, TypeartError, TypeartRuntime, TypeartStats};
