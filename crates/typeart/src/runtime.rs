//! The TypeART runtime: allocation tracking and pointer queries (Fig. 2).
//!
//! One runtime per simulated MPI rank. The checked CUDA API and the host
//! allocation helpers invoke [`TypeartRuntime::on_alloc`] /
//! [`TypeartRuntime::on_free`]; MUST queries datatype compatibility and
//! CuSan queries allocation extents.

use crate::registry::{TypeId, TypeRegistry};
use sim_mem::{MemKind, Ptr};
use std::collections::BTreeMap;
use std::fmt;

/// A tracked allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocRecord {
    /// Base pointer.
    pub base: Ptr,
    /// Element type.
    pub type_id: TypeId,
    /// Number of elements ("runtime allocation extent").
    pub count: u64,
    /// Total length in bytes.
    pub bytes: u64,
    /// Memory kind (host/pinned/managed/device) — the CUDA extension of
    /// TypeART (paper §IV-C) tracks this to distinguish pointer classes.
    pub kind: MemKind,
}

/// Result of a pointer query: which allocation contains the pointer and
/// where inside it the pointer lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeQuery {
    /// The containing allocation.
    pub record: AllocRecord,
    /// Byte offset of the queried pointer from the base.
    pub offset_bytes: u64,
    /// Element index of the queried pointer (offset / element size).
    pub elem_index: u64,
    /// True if the pointer is element-aligned within the allocation.
    pub element_aligned: bool,
}

impl TypeQuery {
    /// Bytes from the queried pointer to the end of the allocation — the
    /// extent CuSan passes to `tsan_read/write_range`.
    pub fn remaining_bytes(&self) -> u64 {
        self.record.bytes - self.offset_bytes
    }

    /// Elements from the queried pointer to the end of the allocation.
    pub fn remaining_elems(&self, elem_size: u64) -> u64 {
        self.remaining_bytes().checked_div(elem_size).unwrap_or(0)
    }
}

/// Errors from allocation bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeartError {
    /// Free of a pointer that is not a tracked base.
    UntrackedFree(Ptr),
    /// New allocation overlaps an existing tracked allocation.
    Overlap(Ptr),
}

impl fmt::Display for TypeartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeartError::UntrackedFree(p) => write!(f, "free of untracked pointer {p}"),
            TypeartError::Overlap(p) => {
                write!(f, "allocation at {p} overlaps a tracked allocation")
            }
        }
    }
}

impl std::error::Error for TypeartError {}

/// Counters for the runtime (diagnostics + memory accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TypeartStats {
    /// `on_alloc` events observed.
    pub allocs: u64,
    /// `on_free` events observed.
    pub frees: u64,
    /// Currently tracked allocations.
    pub live: u64,
    /// High-water mark of tracked allocations.
    pub peak_live: u64,
    /// Pointer queries served.
    pub queries: u64,
}

/// The per-rank TypeART runtime.
#[derive(Debug)]
pub struct TypeartRuntime {
    registry: TypeRegistry,
    table: BTreeMap<u64, AllocRecord>,
    stats: TypeartStats,
}

impl Default for TypeartRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeartRuntime {
    /// Runtime with a fresh registry (built-ins registered).
    pub fn new() -> Self {
        TypeartRuntime {
            registry: TypeRegistry::new(),
            table: BTreeMap::new(),
            stats: TypeartStats::default(),
        }
    }

    /// The compile-time type registry.
    pub fn registry(&self) -> &TypeRegistry {
        &self.registry
    }

    /// Mutable registry access (registering app-specific types).
    pub fn registry_mut(&mut self) -> &mut TypeRegistry {
        &mut self.registry
    }

    /// Record an allocation callback: `(address, count, type)` (Fig. 2
    /// step 2). `kind` records where the memory lives.
    pub fn on_alloc(
        &mut self,
        base: Ptr,
        type_id: TypeId,
        count: u64,
        kind: MemKind,
    ) -> Result<(), TypeartError> {
        let bytes = count * self.registry.size_of(type_id);
        // Overlap check against neighbours (the simulated allocator never
        // overlaps, but the runtime must not rely on that).
        if let Some((_, prev)) = self.table.range(..=base.0).next_back() {
            if base.0 < prev.base.0 + prev.bytes {
                return Err(TypeartError::Overlap(base));
            }
        }
        if let Some((&next_base, _)) = self.table.range(base.0..).next() {
            if next_base < base.0 + bytes {
                return Err(TypeartError::Overlap(base));
            }
        }
        self.table.insert(
            base.0,
            AllocRecord {
                base,
                type_id,
                count,
                bytes,
                kind,
            },
        );
        self.stats.allocs += 1;
        self.stats.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        Ok(())
    }

    /// Record a de-allocation callback.
    pub fn on_free(&mut self, base: Ptr) -> Result<AllocRecord, TypeartError> {
        match self.table.remove(&base.0) {
            Some(r) => {
                self.stats.frees += 1;
                self.stats.live -= 1;
                Ok(r)
            }
            None => Err(TypeartError::UntrackedFree(base)),
        }
    }

    /// Query the allocation containing `ptr` (Fig. 2 step 4).
    pub fn query(&mut self, ptr: Ptr) -> Option<TypeQuery> {
        self.stats.queries += 1;
        let (_, record) = self.table.range(..=ptr.0).next_back()?;
        if ptr.0 >= record.base.0 + record.bytes {
            return None;
        }
        let offset_bytes = ptr.0 - record.base.0;
        let elem_size = self.registry.size_of(record.type_id).max(1);
        Some(TypeQuery {
            record: *record,
            offset_bytes,
            elem_index: offset_bytes / elem_size,
            element_aligned: offset_bytes.is_multiple_of(elem_size),
        })
    }

    /// Extent in bytes from `ptr` to the end of its allocation — CuSan's
    /// "allocation size query" used for kernel-argument range annotations.
    pub fn extent_of(&mut self, ptr: Ptr) -> Option<u64> {
        self.query(ptr).map(|q| q.remaining_bytes())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> TypeartStats {
        self.stats
    }

    /// Approximate heap bytes of the lookup table (Fig. 11 contribution).
    pub fn memory_bytes(&self) -> u64 {
        // BTreeMap node overhead approximation: key + record + ~32B/entry.
        self.table.len() as u64 * (std::mem::size_of::<AllocRecord>() as u64 + 40)
    }

    /// Number of live tracked allocations.
    pub fn live_allocs(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_mem::{AddressSpace, DeviceId};

    fn dev() -> MemKind {
        MemKind::Device(DeviceId(0))
    }

    #[test]
    fn alloc_query_free_roundtrip() {
        let space = AddressSpace::new();
        let mut ta = TypeartRuntime::new();
        let p = space.alloc_array::<f64>(dev(), 100).unwrap();
        ta.on_alloc(p, TypeId::F64, 100, dev()).unwrap();
        let q = ta.query(p.offset(16)).unwrap();
        assert_eq!(q.record.type_id, TypeId::F64);
        assert_eq!(q.record.count, 100);
        assert_eq!(q.elem_index, 2);
        assert!(q.element_aligned);
        assert_eq!(q.remaining_bytes(), 800 - 16);
        assert_eq!(q.remaining_elems(8), 98);
        let r = ta.on_free(p).unwrap();
        assert_eq!(r.count, 100);
        assert!(ta.query(p).is_none());
    }

    #[test]
    fn extent_of_interior_pointer() {
        let mut ta = TypeartRuntime::new();
        let base = Ptr(0x1000_0000);
        ta.on_alloc(base, TypeId::I32, 10, MemKind::HostPageable)
            .unwrap();
        assert_eq!(ta.extent_of(base), Some(40));
        assert_eq!(ta.extent_of(base.offset(12)), Some(28));
        assert_eq!(ta.extent_of(base.offset(40)), None, "one past the end");
    }

    #[test]
    fn misaligned_interior_pointer_flagged() {
        let mut ta = TypeartRuntime::new();
        let base = Ptr(0x1000);
        ta.on_alloc(base, TypeId::F64, 4, dev()).unwrap();
        let q = ta.query(base.offset(3)).unwrap();
        assert!(!q.element_aligned);
        assert_eq!(q.elem_index, 0);
    }

    #[test]
    fn untracked_free_is_error() {
        let mut ta = TypeartRuntime::new();
        assert_eq!(
            ta.on_free(Ptr(0x2000)),
            Err(TypeartError::UntrackedFree(Ptr(0x2000)))
        );
    }

    #[test]
    fn overlap_rejected() {
        let mut ta = TypeartRuntime::new();
        ta.on_alloc(Ptr(0x1000), TypeId::F64, 8, dev()).unwrap(); // [0x1000,0x1040)
        assert_eq!(
            ta.on_alloc(Ptr(0x1020), TypeId::F64, 8, dev()),
            Err(TypeartError::Overlap(Ptr(0x1020)))
        );
        assert_eq!(
            ta.on_alloc(Ptr(0x0fe0), TypeId::F64, 8, dev()),
            Err(TypeartError::Overlap(Ptr(0x0fe0))),
            "new allocation running into an existing one"
        );
        // Adjacent is fine.
        ta.on_alloc(Ptr(0x1040), TypeId::F64, 2, dev()).unwrap();
    }

    #[test]
    fn kind_is_recorded() {
        let mut ta = TypeartRuntime::new();
        ta.on_alloc(Ptr(0x1000), TypeId::U8, 16, MemKind::Managed)
            .unwrap();
        assert_eq!(ta.query(Ptr(0x1008)).unwrap().record.kind, MemKind::Managed);
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut ta = TypeartRuntime::new();
        ta.on_alloc(Ptr(0x1000), TypeId::F64, 1, dev()).unwrap();
        ta.on_alloc(Ptr(0x2000), TypeId::F64, 1, dev()).unwrap();
        ta.on_free(Ptr(0x1000)).unwrap();
        let s = ta.stats();
        assert_eq!(s.allocs, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(s.live, 1);
        assert_eq!(s.peak_live, 2);
        assert!(ta.memory_bytes() > 0);
    }

    #[test]
    fn custom_type_registration() {
        let mut ta = TypeartRuntime::new();
        let cell = ta.registry_mut().register("struct cell", 24);
        ta.on_alloc(Ptr(0x1000), cell, 10, dev()).unwrap();
        let q = ta.query(Ptr(0x1000 + 48)).unwrap();
        assert_eq!(q.elem_index, 2);
        assert_eq!(q.record.bytes, 240);
    }
}
