//! Pointer newtype, memory kinds, and pointer attributes.
//!
//! The simulated address space mimics CUDA's unified virtual addressing:
//! disjoint address windows are reserved per memory kind (and per device),
//! so the kind of memory a pointer refers to can be recovered from the
//! address alone — the analogue of `cuPointerGetAttribute`.

use std::fmt;

/// Identifier of a simulated CUDA device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cuda:{}", self.0)
    }
}

/// The kind of memory an allocation lives in.
///
/// The kind determines implicit synchronization behaviour of CUDA memory
/// operations (paper §III-C): e.g. `cudaMemset` on pinned memory
/// synchronizes with the host while on pageable memory it does not, and
/// managed memory requires explicit synchronization around host accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemKind {
    /// Ordinary host memory (`malloc`). Pageable: DMA engines must stage
    /// transfers through a pinned bounce buffer, which makes the
    /// corresponding copy calls host-synchronous.
    HostPageable,
    /// Page-locked host memory (`cudaHostAlloc`). Directly DMA-able.
    HostPinned,
    /// CUDA managed memory (`cudaMallocManaged`): migrates between host and
    /// device; host accesses require explicit synchronization.
    Managed,
    /// Device-resident memory (`cudaMalloc`) on a specific device.
    Device(DeviceId),
}

impl MemKind {
    /// True for both host-resident kinds.
    pub fn is_host(self) -> bool {
        matches!(self, MemKind::HostPageable | MemKind::HostPinned)
    }

    /// True if the pointer is usable on a device (device, managed, pinned).
    pub fn device_accessible(self) -> bool {
        !matches!(self, MemKind::HostPageable)
    }

    /// True for device-resident memory.
    pub fn is_device(self) -> bool {
        matches!(self, MemKind::Device(_))
    }
}

impl fmt::Display for MemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemKind::HostPageable => write!(f, "host-pageable"),
            MemKind::HostPinned => write!(f, "host-pinned"),
            MemKind::Managed => write!(f, "managed"),
            MemKind::Device(d) => write!(f, "device({})", d.0),
        }
    }
}

/// Address-window layout of the simulated UVA space.
///
/// | window                     | base                  |
/// |----------------------------|-----------------------|
/// | host pageable              | `0x0000_1000_0000_0000` |
/// | host pinned                | `0x0000_2000_0000_0000` |
/// | managed                    | `0x0000_3000_0000_0000` |
/// | device *d*                 | `0x0001_0000_0000_0000 + (d << 40)` |
///
/// Each window is 2^40 bytes, far more than any simulation will allocate.
pub mod layout {
    use super::{DeviceId, MemKind};

    /// Base address of the host-pageable window.
    pub const HOST_PAGEABLE_BASE: u64 = 0x0000_1000_0000_0000;
    /// Base address of the host-pinned window.
    pub const HOST_PINNED_BASE: u64 = 0x0000_2000_0000_0000;
    /// Base address of the managed-memory window.
    pub const MANAGED_BASE: u64 = 0x0000_3000_0000_0000;
    /// Base address of the first device window.
    pub const DEVICE_BASE: u64 = 0x0001_0000_0000_0000;
    /// Size of each per-kind (and per-device) window.
    pub const WINDOW: u64 = 1 << 40;
    /// log2 of the span of one allocation shard inside a window (see
    /// [`crate::AddressSpace::alloc_in_shard`]): 4 GiB per shard, 256
    /// shards per window.
    pub const SHARD_BITS: u32 = 32;

    /// The base address of the window for a memory kind.
    pub fn window_base(kind: MemKind) -> u64 {
        match kind {
            MemKind::HostPageable => HOST_PAGEABLE_BASE,
            MemKind::HostPinned => HOST_PINNED_BASE,
            MemKind::Managed => MANAGED_BASE,
            MemKind::Device(DeviceId(d)) => DEVICE_BASE + (u64::from(d) << 40),
        }
    }

    /// Recover the memory kind from a raw address, if it falls in a window.
    pub fn kind_of(addr: u64) -> Option<MemKind> {
        if (HOST_PAGEABLE_BASE..HOST_PAGEABLE_BASE + WINDOW).contains(&addr) {
            Some(MemKind::HostPageable)
        } else if (HOST_PINNED_BASE..HOST_PINNED_BASE + WINDOW).contains(&addr) {
            Some(MemKind::HostPinned)
        } else if (MANAGED_BASE..MANAGED_BASE + WINDOW).contains(&addr) {
            Some(MemKind::Managed)
        } else if addr >= DEVICE_BASE {
            let d = (addr - DEVICE_BASE) >> 40;
            if d <= u64::from(u32::MAX) {
                Some(MemKind::Device(DeviceId(d as u32)))
            } else {
                None
            }
        } else {
            None
        }
    }
}

/// A pointer into the simulated UVA space.
///
/// `Ptr` is `Copy`, comparable, and supports byte-offset arithmetic; it is
/// deliberately *untyped* — exactly like the `void*` buffers handed to MPI —
/// so that the TypeART analogue has a real job recovering type and extent.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Ptr(pub u64);

impl Ptr {
    /// The null pointer.
    pub const NULL: Ptr = Ptr(0);

    /// True if this is the null pointer.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Raw address value.
    pub fn addr(self) -> u64 {
        self.0
    }

    /// Pointer advanced by `bytes` bytes.
    #[must_use]
    pub fn offset(self, bytes: u64) -> Ptr {
        Ptr(self.0 + bytes)
    }

    /// Pointer advanced by `n` elements of size `elem` bytes.
    #[must_use]
    pub fn offset_elems(self, n: u64, elem: usize) -> Ptr {
        Ptr(self.0 + n * elem as u64)
    }

    /// Memory kind derived from the address window, if any.
    pub fn kind(self) -> Option<MemKind> {
        layout::kind_of(self.0)
    }
}

impl fmt::Debug for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ptr({:#x})", self.0)
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Result of a pointer-attribute query (`cuPointerGetAttribute` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PointerAttr {
    /// Memory kind of the containing allocation.
    pub kind: MemKind,
    /// Base pointer of the containing allocation.
    pub base: Ptr,
    /// Total length of the containing allocation in bytes.
    pub len: u64,
    /// Offset of the queried pointer within the allocation.
    pub offset: u64,
    /// Unique id of the allocation.
    pub alloc_id: u64,
}

impl PointerAttr {
    /// Bytes remaining from the queried pointer to the end of the
    /// allocation — the extent CuSan asks TypeART for.
    pub fn remaining(&self) -> u64 {
        self.len - self.offset
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_roundtrip_host_kinds() {
        for kind in [MemKind::HostPageable, MemKind::HostPinned, MemKind::Managed] {
            let base = layout::window_base(kind);
            assert_eq!(layout::kind_of(base), Some(kind));
            assert_eq!(layout::kind_of(base + 12345), Some(kind));
        }
    }

    #[test]
    fn window_roundtrip_devices() {
        for d in [0u32, 1, 2, 7, 255] {
            let kind = MemKind::Device(DeviceId(d));
            let base = layout::window_base(kind);
            assert_eq!(layout::kind_of(base), Some(kind));
            assert_eq!(layout::kind_of(base + (1 << 39)), Some(kind));
        }
    }

    #[test]
    fn null_and_low_addresses_have_no_kind() {
        assert_eq!(layout::kind_of(0), None);
        assert_eq!(layout::kind_of(0xfff), None);
        assert!(Ptr::NULL.is_null());
    }

    #[test]
    fn ptr_offset_arithmetic() {
        let p = Ptr(layout::HOST_PAGEABLE_BASE);
        assert_eq!(p.offset(16).addr(), p.addr() + 16);
        assert_eq!(p.offset_elems(4, 8).addr(), p.addr() + 32);
        assert_eq!(p.offset(0), p);
    }

    #[test]
    fn kind_predicates() {
        assert!(MemKind::HostPageable.is_host());
        assert!(MemKind::HostPinned.is_host());
        assert!(!MemKind::Managed.is_host());
        assert!(!MemKind::HostPageable.device_accessible());
        assert!(MemKind::HostPinned.device_accessible());
        assert!(MemKind::Device(DeviceId(0)).is_device());
        assert!(!MemKind::Managed.is_device());
    }

    #[test]
    fn display_formats() {
        assert_eq!(MemKind::Device(DeviceId(3)).to_string(), "device(3)");
        assert_eq!(MemKind::Managed.to_string(), "managed");
        assert_eq!(format!("{}", Ptr(0x10)), "0x10");
    }
}
