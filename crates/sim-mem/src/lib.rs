//! # sim-mem — simulated unified virtual address space
//!
//! This crate provides the memory substrate for `cusan-rs`: a simulated
//! 64-bit **unified virtual address space (UVA)** shared by all simulated
//! MPI ranks and CUDA devices, mirroring the UVA design CUDA-aware MPI
//! libraries rely on (paper §III-D).
//!
//! Addresses are plain `u64` values wrapped in [`Ptr`]. The address layout
//! encodes the memory kind (host pageable / pinned / managed / per-device),
//! so [`AddressSpace::attributes`] can answer the equivalent of
//! `cuPointerGetAttribute`: given any pointer, which memory does it live in?
//! That query is what lets the simulated CUDA-aware MPI library accept
//! device pointers directly.
//!
//! The space is shared (`Arc<AddressSpace>`) between every rank thread so
//! message transfers can read the sender's memory in place — the synthetic
//! equivalent of GPUDirect/zero-copy transfers.
//!
//! ## Structure
//!
//! * [`ptr`] — pointer newtype, memory kinds, pointer attributes
//! * [`pod`] — safe byte-level casts for plain-old-data element types
//! * [`space`] — the allocator, allocation table, and data access API
//! * [`error`] — error types

pub mod error;
pub mod pod;
pub mod ptr;
pub mod space;

pub use error::MemError;
pub use pod::Pod;
pub use ptr::{DeviceId, MemKind, PointerAttr, Ptr};
pub use space::{AddressSpace, AllocationInfo, SpaceStats};
