//! Plain-old-data element types and safe byte-slice casts.
//!
//! Simulated memory is stored as raw bytes (like real device memory); apps
//! and kernels view it as slices of `f64`, `i32`, … . The casts here check
//! alignment and size at runtime so the `unsafe` is locally justified.

/// Marker for types that are valid for any bit pattern and contain no
/// padding, so `&[u8] <-> &[T]` casts are sound when aligned and sized.
///
/// # Safety
///
/// Implementors must be `Copy`, have no padding bytes, no niches and no
/// invalid bit patterns (primitive numeric types only).
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// Element size in bytes (= `std::mem::size_of::<Self>()`).
    const SIZE: usize;
    /// Short type name used in diagnostics and the TypeART type registry.
    const NAME: &'static str;
}

macro_rules! impl_pod {
    ($($t:ty => $name:literal),* $(,)?) => {
        $(unsafe impl Pod for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;
        })*
    };
}

impl_pod! {
    u8 => "u8",
    i8 => "i8",
    u16 => "u16",
    i16 => "i16",
    u32 => "u32",
    i32 => "i32",
    u64 => "u64",
    i64 => "i64",
    f32 => "f32",
    f64 => "f64",
}

/// View a byte slice as a slice of `T`.
///
/// # Panics
///
/// Panics if `bytes` is misaligned for `T` or its length is not a multiple
/// of `T::SIZE`. Allocations in the simulated space are 16-byte aligned, so
/// views at element-aligned offsets never panic.
pub fn cast_slice<T: Pod>(bytes: &[u8]) -> &[T] {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length {} is not a multiple of {} ({})",
        bytes.len(),
        T::SIZE,
        T::NAME
    );
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "misaligned cast to {}",
        T::NAME
    );
    // SAFETY: alignment and size checked above; T is Pod (no invalid bit
    // patterns, no padding).
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / T::SIZE) }
}

/// View a mutable byte slice as a mutable slice of `T`.
///
/// # Panics
///
/// Same conditions as [`cast_slice`].
pub fn cast_slice_mut<T: Pod>(bytes: &mut [u8]) -> &mut [T] {
    assert_eq!(
        bytes.len() % T::SIZE,
        0,
        "byte length {} is not a multiple of {} ({})",
        bytes.len(),
        T::SIZE,
        T::NAME
    );
    assert_eq!(
        bytes.as_ptr() as usize % std::mem::align_of::<T>(),
        0,
        "misaligned cast to {}",
        T::NAME
    );
    // SAFETY: as in `cast_slice`, plus exclusive access via &mut.
    unsafe { std::slice::from_raw_parts_mut(bytes.as_mut_ptr().cast::<T>(), bytes.len() / T::SIZE) }
}

/// Copy a value of `T` out of little-endian-independent native bytes.
pub fn read_scalar<T: Pod>(bytes: &[u8]) -> T {
    assert!(bytes.len() >= T::SIZE, "scalar read out of bounds");
    cast_slice::<T>(&bytes[..T::SIZE])[0]
}

/// Write a value of `T` into native bytes.
pub fn write_scalar<T: Pod>(bytes: &mut [u8], value: T) {
    assert!(bytes.len() >= T::SIZE, "scalar write out of bounds");
    cast_slice_mut::<T>(&mut bytes[..T::SIZE])[0] = value;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cast_roundtrip_f64() {
        let mut bytes = vec![0u8; 64];
        {
            let s = cast_slice_mut::<f64>(&mut bytes);
            for (i, v) in s.iter_mut().enumerate() {
                *v = i as f64 * 1.5;
            }
        }
        let s = cast_slice::<f64>(&bytes);
        assert_eq!(s.len(), 8);
        assert_eq!(s[3], 4.5);
    }

    #[test]
    fn cast_roundtrip_i32() {
        let mut bytes = vec![0u8; 16];
        cast_slice_mut::<i32>(&mut bytes)[2] = -7;
        assert_eq!(cast_slice::<i32>(&bytes), &[0, 0, -7, 0]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn cast_rejects_ragged_length() {
        let bytes = vec![0u8; 10];
        let _ = cast_slice::<f64>(&bytes);
    }

    #[test]
    fn scalar_read_write() {
        let mut bytes = vec![0u8; 8];
        write_scalar::<f64>(&mut bytes, 2.25);
        assert_eq!(read_scalar::<f64>(&bytes), 2.25);
    }

    #[test]
    fn pod_metadata() {
        assert_eq!(<f64 as Pod>::SIZE, 8);
        assert_eq!(<i32 as Pod>::NAME, "i32");
    }
}
