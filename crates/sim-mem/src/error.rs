//! Error types for the simulated address space.

use crate::ptr::Ptr;
use std::fmt;

/// Errors raised by [`crate::AddressSpace`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The pointer does not fall inside any live allocation.
    Unmapped(Ptr),
    /// The access `[ptr, ptr+len)` runs past the end of its allocation.
    OutOfBounds {
        /// Start of the faulting access.
        ptr: Ptr,
        /// Length of the faulting access in bytes.
        len: u64,
        /// Base of the containing allocation.
        base: Ptr,
        /// Size of the containing allocation in bytes.
        alloc_len: u64,
    },
    /// `free` called with a pointer that is not an allocation base.
    NotABase(Ptr),
    /// An operation spanned two different allocations.
    CrossesAllocations {
        /// Start of the faulting range.
        ptr: Ptr,
        /// Length of the faulting range.
        len: u64,
    },
    /// Allocation of zero bytes was requested.
    ZeroSized,
    /// Failure injected by a fault plan (see `cusan::fault`); the
    /// operation was not performed.
    FaultInjected {
        /// Name of the intercepted call that was made to fail.
        call: &'static str,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped(p) => write!(f, "pointer {p} is not mapped"),
            MemError::OutOfBounds {
                ptr,
                len,
                base,
                alloc_len,
            } => write!(
                f,
                "access [{ptr}, +{len}) overruns allocation [{base}, +{alloc_len})"
            ),
            MemError::NotABase(p) => {
                write!(f, "free of {p}, which is not an allocation base")
            }
            MemError::CrossesAllocations { ptr, len } => {
                write!(f, "range [{ptr}, +{len}) crosses allocation boundaries")
            }
            MemError::ZeroSized => write!(f, "zero-sized allocation requested"),
            MemError::FaultInjected { call } => {
                write!(f, "injected fault in {call}")
            }
        }
    }
}

impl std::error::Error for MemError {}
