//! The simulated address space: allocator, allocation table, data access.
//!
//! All memory of the simulated program — host buffers, pinned buffers,
//! managed memory, and per-device memory — lives here as real byte storage,
//! addressed through simulated [`Ptr`] values. Rank threads share one
//! `Arc<AddressSpace>`; per-allocation `RwLock`s serialize byte access so a
//! receiving rank can copy directly out of a sender's (device) memory.
//!
//! Note the locking is *storage* consistency only: it deliberately does
//! **not** impose the synchronization the CUDA/MPI programming model
//! requires. A racy simulated program still observes stale data (because
//! device operations execute deferred), which is what the race detector is
//! for.

use crate::error::MemError;
use crate::pod::{self, Pod};
use crate::ptr::{layout, MemKind, PointerAttr, Ptr};
use parking_lot::{
    MappedRwLockReadGuard, MappedRwLockWriteGuard, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Alignment of every allocation, in bytes. 16 covers all [`Pod`] types.
pub const ALLOC_ALIGN: u64 = 16;

/// How long a guard acquisition waits out *cross-thread* contention before
/// declaring a conflict. Rank threads legitimately touch each other's
/// allocations for short, bounded copies (CUDA-aware sends deliver straight
/// into the receiver's buffer), so contention from another thread resolves
/// in microseconds; only a guard the *same* thread already holds can outlast
/// this.
const GUARD_WAIT: std::time::Duration = std::time::Duration::from_millis(200);

/// One live allocation: metadata plus backing bytes.
#[derive(Debug)]
pub struct Allocation {
    base: Ptr,
    len: u64,
    kind: MemKind,
    id: u64,
    data: RwLock<Box<[u8]>>,
}

impl Allocation {
    /// Base pointer of the allocation.
    pub fn base(&self) -> Ptr {
        self.base
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if the allocation is zero-length (never constructed).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Memory kind.
    pub fn kind(&self) -> MemKind {
        self.kind
    }

    /// Unique allocation id (monotonically increasing per space).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Shared read guard over the backing bytes.
    pub fn read_guard(&self) -> RwLockReadGuard<'_, Box<[u8]>> {
        self.data.read()
    }

    /// Exclusive write guard over the backing bytes. Waits out transient
    /// contention from other rank threads (bounded by [`GUARD_WAIT`]).
    ///
    /// # Panics
    ///
    /// Panics (rather than deadlocking) if the calling thread already holds
    /// a guard on this allocation — the simulated analogue of a kernel
    /// taking the same buffer as two conflicting arguments.
    pub fn write_guard(&self) -> RwLockWriteGuard<'_, Box<[u8]>> {
        self.data.try_write_for(GUARD_WAIT).unwrap_or_else(|| {
            panic!(
                "conflicting simultaneous access to allocation {} (base {}): \
                 a guard is already held on this thread or another thread",
                self.id, self.base
            )
        })
    }

    /// Typed read view over a sub-range (offsets in elements of `T`).
    pub fn read_slice<T: Pod>(&self, byte_off: u64, n: u64) -> MappedRwLockReadGuard<'_, [T]> {
        let g = self.data.read();
        RwLockReadGuard::map(g, |b| {
            let start = byte_off as usize;
            let end = start + (n as usize) * T::SIZE;
            pod::cast_slice::<T>(&b[start..end])
        })
    }

    /// Typed write view over a sub-range (offsets in bytes, length in elements).
    pub fn write_slice<T: Pod>(&self, byte_off: u64, n: u64) -> MappedRwLockWriteGuard<'_, [T]> {
        let g = self.data.try_write_for(GUARD_WAIT).unwrap_or_else(|| {
            panic!(
                "conflicting simultaneous access to allocation {} (base {})",
                self.id, self.base
            )
        });
        RwLockWriteGuard::map(g, |b| {
            let start = byte_off as usize;
            let end = start + (n as usize) * T::SIZE;
            pod::cast_slice_mut::<T>(&mut b[start..end])
        })
    }
}

/// Lightweight metadata snapshot of an allocation (returned by `free`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationInfo {
    /// Base pointer.
    pub base: Ptr,
    /// Length in bytes.
    pub len: u64,
    /// Memory kind.
    pub kind: MemKind,
    /// Unique allocation id.
    pub id: u64,
}

/// Aggregate accounting for the space (drives the Fig. 11 reproduction).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpaceStats {
    /// Currently-live bytes across all kinds.
    pub live_bytes: u64,
    /// High-water mark of live bytes.
    pub peak_bytes: u64,
    /// Currently-live allocation count.
    pub live_allocs: u64,
    /// Total allocations ever made.
    pub total_allocs: u64,
    /// Total frees.
    pub total_frees: u64,
}

#[derive(Debug, Default)]
struct BumpState {
    next: BTreeMap<u64, u64>, // window base -> next offset
}

/// The simulated UVA address space. See module docs.
#[derive(Debug)]
pub struct AddressSpace {
    table: RwLock<BTreeMap<u64, Arc<Allocation>>>,
    bump: Mutex<BumpState>,
    next_id: AtomicU64,
    stats: Mutex<SpaceStats>,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Create an empty address space.
    pub fn new() -> Self {
        AddressSpace {
            table: RwLock::new(BTreeMap::new()),
            bump: Mutex::new(BumpState::default()),
            next_id: AtomicU64::new(1),
            stats: Mutex::new(SpaceStats::default()),
        }
    }

    /// Allocate `len` bytes of `kind` memory, zero-initialized.
    pub fn alloc(&self, kind: MemKind, len: u64) -> Result<Ptr, MemError> {
        self.alloc_in_shard(kind, 0, len)
    }

    /// Allocate inside a per-`shard` sub-window of `kind`'s window, each
    /// shard with its own bump cursor. Concurrent allocators (e.g. one
    /// simulated device per rank thread) that use distinct shards get
    /// addresses independent of thread interleaving, which keeps recorded
    /// event traces byte-deterministic across runs.
    pub fn alloc_in_shard(&self, kind: MemKind, shard: u32, len: u64) -> Result<Ptr, MemError> {
        if len == 0 {
            return Err(MemError::ZeroSized);
        }
        let window = layout::window_base(kind) + (u64::from(shard) << layout::SHARD_BITS);
        let base = {
            let mut bump = self.bump.lock();
            let next = bump.next.entry(window).or_insert(ALLOC_ALIGN);
            let base = window + *next;
            // Round the next cursor up to alignment, leaving a one-align
            // guard gap so adjacent allocations are never contiguous and
            // off-by-one overruns are caught as Unmapped.
            let advance = len.div_ceil(ALLOC_ALIGN) * ALLOC_ALIGN + ALLOC_ALIGN;
            *next += advance;
            base
        };
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let alloc = Arc::new(Allocation {
            base: Ptr(base),
            len,
            kind,
            id,
            data: RwLock::new(vec![0u8; len as usize].into_boxed_slice()),
        });
        self.table.write().insert(base, alloc);
        let mut st = self.stats.lock();
        st.live_bytes += len;
        st.peak_bytes = st.peak_bytes.max(st.live_bytes);
        st.live_allocs += 1;
        st.total_allocs += 1;
        Ok(Ptr(base))
    }

    /// Allocate room for `n` elements of `T`.
    pub fn alloc_array<T: Pod>(&self, kind: MemKind, n: u64) -> Result<Ptr, MemError> {
        self.alloc(kind, n * T::SIZE as u64)
    }

    /// Free the allocation starting exactly at `ptr`.
    pub fn free(&self, ptr: Ptr) -> Result<AllocationInfo, MemError> {
        let removed = self.table.write().remove(&ptr.0);
        match removed {
            Some(a) => {
                let mut st = self.stats.lock();
                st.live_bytes -= a.len;
                st.live_allocs -= 1;
                st.total_frees += 1;
                Ok(AllocationInfo {
                    base: a.base,
                    len: a.len,
                    kind: a.kind,
                    id: a.id,
                })
            }
            None => {
                // Distinguish interior pointer from unmapped for diagnostics.
                if self.find(ptr).is_ok() {
                    Err(MemError::NotABase(ptr))
                } else {
                    Err(MemError::Unmapped(ptr))
                }
            }
        }
    }

    /// Check that `ptr` is a valid `free` target (the base of a live
    /// allocation) without freeing anything. Checker-side precondition: a
    /// free that will fail must not run its synchronize-and-annotate
    /// protocol first.
    pub fn free_validate(&self, ptr: Ptr) -> Result<(), MemError> {
        match self.find(ptr) {
            Ok(a) if a.base() == ptr => Ok(()),
            Ok(_) => Err(MemError::NotABase(ptr)),
            Err(e) => Err(e),
        }
    }

    /// Find the live allocation containing `ptr`.
    pub fn find(&self, ptr: Ptr) -> Result<Arc<Allocation>, MemError> {
        let table = self.table.read();
        let (_, alloc) = table
            .range(..=ptr.0)
            .next_back()
            .ok_or(MemError::Unmapped(ptr))?;
        if ptr.0 < alloc.base.0 + alloc.len {
            Ok(Arc::clone(alloc))
        } else {
            Err(MemError::Unmapped(ptr))
        }
    }

    /// Find the allocation containing the whole range `[ptr, ptr+len)`.
    pub fn find_range(&self, ptr: Ptr, len: u64) -> Result<Arc<Allocation>, MemError> {
        let alloc = self.find(ptr)?;
        let end = ptr.0 + len;
        if end > alloc.base.0 + alloc.len {
            Err(MemError::OutOfBounds {
                ptr,
                len,
                base: alloc.base,
                alloc_len: alloc.len,
            })
        } else {
            Ok(alloc)
        }
    }

    /// Pointer attribute query (the `cuPointerGetAttribute` analogue).
    pub fn attributes(&self, ptr: Ptr) -> Result<PointerAttr, MemError> {
        let a = self.find(ptr)?;
        Ok(PointerAttr {
            kind: a.kind,
            base: a.base,
            len: a.len,
            offset: ptr.0 - a.base.0,
            alloc_id: a.id,
        })
    }

    /// Copy `out.len()` bytes starting at `ptr` into `out`.
    pub fn read_bytes(&self, ptr: Ptr, out: &mut [u8]) -> Result<(), MemError> {
        let a = self.find_range(ptr, out.len() as u64)?;
        let off = (ptr.0 - a.base.0) as usize;
        let g = a.read_guard();
        out.copy_from_slice(&g[off..off + out.len()]);
        Ok(())
    }

    /// Write `data` into memory starting at `ptr`.
    pub fn write_bytes(&self, ptr: Ptr, data: &[u8]) -> Result<(), MemError> {
        let a = self.find_range(ptr, data.len() as u64)?;
        let off = (ptr.0 - a.base.0) as usize;
        let mut g = a.write_guard();
        g[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Set `len` bytes starting at `ptr` to `value` (the `cudaMemset` data
    /// effect).
    pub fn fill(&self, ptr: Ptr, len: u64, value: u8) -> Result<(), MemError> {
        let a = self.find_range(ptr, len)?;
        let off = (ptr.0 - a.base.0) as usize;
        let mut g = a.write_guard();
        g[off..off + len as usize].fill(value);
        Ok(())
    }

    /// Copy `len` bytes from `src` to `dst` (the data effect of `cudaMemcpy`
    /// and of message transfer). Handles same-allocation overlap like
    /// `memmove`.
    pub fn copy(&self, dst: Ptr, src: Ptr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let da = self.find_range(dst, len)?;
        let sa = self.find_range(src, len)?;
        let doff = (dst.0 - da.base.0) as usize;
        let soff = (src.0 - sa.base.0) as usize;
        let n = len as usize;
        if da.id == sa.id {
            let mut g = da.write_guard();
            g.copy_within(soff..soff + n, doff);
        } else {
            // Acquire the two guards in global allocation-id order. Two
            // rank threads running symmetric exchanges (each copying into
            // the other's buffer, as in a halo sendrecv) would otherwise
            // take src-then-dst in opposite orders and form an ABBA cycle.
            let (sg, mut dg) = if sa.id < da.id {
                let sg = sa.read_guard();
                (sg, da.write_guard())
            } else {
                let dg = da.write_guard();
                (sa.read_guard(), dg)
            };
            dg[doff..doff + n].copy_from_slice(&sg[soff..soff + n]);
        }
        Ok(())
    }

    /// Read `n` elements of `T` starting at `ptr` into a fresh `Vec`.
    pub fn read_vec<T: Pod>(&self, ptr: Ptr, n: u64) -> Result<Vec<T>, MemError> {
        let a = self.find_range(ptr, n * T::SIZE as u64)?;
        let off = ptr.0 - a.base.0;
        let g = a.read_slice::<T>(off, n);
        Ok(g.to_vec())
    }

    /// Write a slice of `T` starting at `ptr`.
    pub fn write_slice_data<T: Pod>(&self, ptr: Ptr, data: &[T]) -> Result<(), MemError> {
        let a = self.find_range(ptr, (data.len() * T::SIZE) as u64)?;
        let off = ptr.0 - a.base.0;
        let mut g = a.write_slice::<T>(off, data.len() as u64);
        g.copy_from_slice(data);
        Ok(())
    }

    /// Read a single element of `T` at `ptr`.
    pub fn read_at<T: Pod>(&self, ptr: Ptr) -> Result<T, MemError> {
        let mut buf = [0u8; 16];
        self.read_bytes(ptr, &mut buf[..T::SIZE])?;
        Ok(pod::read_scalar::<T>(&buf[..T::SIZE]))
    }

    /// Write a single element of `T` at `ptr`.
    pub fn write_at<T: Pod>(&self, ptr: Ptr, value: T) -> Result<(), MemError> {
        let mut buf = [0u8; 16];
        pod::write_scalar::<T>(&mut buf[..T::SIZE], value);
        self.write_bytes(ptr, &buf[..T::SIZE])
    }

    /// Run `f` over an immutable typed view of `[ptr, ptr + n*size_of::<T>())`.
    pub fn with_slice<T: Pod, R>(
        &self,
        ptr: Ptr,
        n: u64,
        f: impl FnOnce(&[T]) -> R,
    ) -> Result<R, MemError> {
        let a = self.find_range(ptr, n * T::SIZE as u64)?;
        let off = ptr.0 - a.base.0;
        let g = a.read_slice::<T>(off, n);
        Ok(f(&g))
    }

    /// Run `f` over a mutable typed view of `[ptr, ptr + n*size_of::<T>())`.
    pub fn with_slice_mut<T: Pod, R>(
        &self,
        ptr: Ptr,
        n: u64,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Result<R, MemError> {
        let a = self.find_range(ptr, n * T::SIZE as u64)?;
        let off = ptr.0 - a.base.0;
        let mut g = a.write_slice::<T>(off, n);
        Ok(f(&mut g))
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> SpaceStats {
        *self.stats.lock()
    }

    /// Currently-live bytes of a specific memory kind.
    pub fn live_bytes_of_kind(&self, want: MemKind) -> u64 {
        self.table
            .read()
            .values()
            .filter(|a| a.kind == want)
            .map(|a| a.len)
            .sum()
    }

    /// Number of live allocations.
    pub fn live_allocs(&self) -> u64 {
        self.table.read().len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ptr::DeviceId;

    fn space() -> AddressSpace {
        AddressSpace::new()
    }

    #[test]
    fn alloc_assigns_window_by_kind() {
        let s = space();
        let h = s.alloc(MemKind::HostPageable, 64).unwrap();
        let p = s.alloc(MemKind::HostPinned, 64).unwrap();
        let m = s.alloc(MemKind::Managed, 64).unwrap();
        let d = s.alloc(MemKind::Device(DeviceId(2)), 64).unwrap();
        assert_eq!(h.kind(), Some(MemKind::HostPageable));
        assert_eq!(p.kind(), Some(MemKind::HostPinned));
        assert_eq!(m.kind(), Some(MemKind::Managed));
        assert_eq!(d.kind(), Some(MemKind::Device(DeviceId(2))));
    }

    #[test]
    fn alloc_is_aligned_and_zeroed() {
        let s = space();
        let p = s.alloc(MemKind::HostPageable, 100).unwrap();
        assert_eq!(p.addr() % ALLOC_ALIGN, 0);
        let v = s.read_vec::<u8>(p, 100).unwrap();
        assert!(v.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        assert_eq!(space().alloc(MemKind::Managed, 0), Err(MemError::ZeroSized));
    }

    #[test]
    fn read_write_roundtrip() {
        let s = space();
        let p = s.alloc(MemKind::Device(DeviceId(0)), 64).unwrap();
        s.write_slice_data::<f64>(p, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(s.read_vec::<f64>(p, 3).unwrap(), vec![1.0, 2.0, 3.0]);
        // Offset access.
        let p1 = p.offset(8);
        assert_eq!(s.read_at::<f64>(p1).unwrap(), 2.0);
        s.write_at::<f64>(p1, 9.5).unwrap();
        assert_eq!(s.read_vec::<f64>(p, 3).unwrap(), vec![1.0, 9.5, 3.0]);
    }

    #[test]
    fn out_of_bounds_detected() {
        let s = space();
        let p = s.alloc(MemKind::HostPageable, 16).unwrap();
        let mut buf = [0u8; 32];
        let err = s.read_bytes(p, &mut buf).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }), "{err:?}");
    }

    #[test]
    fn unmapped_pointer_detected() {
        let s = space();
        let err = s
            .read_at::<f64>(Ptr(layout::HOST_PAGEABLE_BASE + 0x100))
            .unwrap_err();
        assert!(matches!(err, MemError::Unmapped(_)));
    }

    #[test]
    fn guard_gap_between_allocations() {
        let s = space();
        let a = s.alloc(MemKind::HostPageable, 16).unwrap();
        let _b = s.alloc(MemKind::HostPageable, 16).unwrap();
        // One past the end of `a` must be unmapped (guard gap), not silently
        // part of `b`.
        let err = s.read_at::<u8>(a.offset(16)).unwrap_err();
        assert!(matches!(err, MemError::Unmapped(_)));
    }

    #[test]
    fn free_then_use_detected() {
        let s = space();
        let p = s.alloc(MemKind::Device(DeviceId(0)), 32).unwrap();
        let info = s.free(p).unwrap();
        assert_eq!(info.len, 32);
        assert!(matches!(s.read_at::<f64>(p), Err(MemError::Unmapped(_))));
        assert!(matches!(s.free(p), Err(MemError::Unmapped(_))));
    }

    #[test]
    fn free_interior_pointer_rejected() {
        let s = space();
        let p = s.alloc(MemKind::HostPageable, 32).unwrap();
        assert_eq!(s.free(p.offset(8)), Err(MemError::NotABase(p.offset(8))));
    }

    #[test]
    fn attributes_reports_offset_and_remaining() {
        let s = space();
        let p = s.alloc(MemKind::Managed, 128).unwrap();
        let attr = s.attributes(p.offset(40)).unwrap();
        assert_eq!(attr.kind, MemKind::Managed);
        assert_eq!(attr.base, p);
        assert_eq!(attr.offset, 40);
        assert_eq!(attr.remaining(), 88);
    }

    #[test]
    fn copy_between_allocations() {
        let s = space();
        let a = s.alloc(MemKind::Device(DeviceId(0)), 64).unwrap();
        let b = s.alloc(MemKind::HostPageable, 64).unwrap();
        s.write_slice_data::<f64>(a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        s.copy(b, a, 32).unwrap();
        assert_eq!(s.read_vec::<f64>(b, 4).unwrap(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn copy_within_allocation_overlapping() {
        let s = space();
        let a = s.alloc(MemKind::HostPageable, 40).unwrap();
        s.write_slice_data::<f64>(a, &[1.0, 2.0, 3.0, 4.0, 5.0])
            .unwrap();
        // Overlapping shift by one element (memmove semantics).
        s.copy(a.offset(8), a, 32).unwrap();
        assert_eq!(
            s.read_vec::<f64>(a, 5).unwrap(),
            vec![1.0, 1.0, 2.0, 3.0, 4.0]
        );
    }

    #[test]
    fn fill_sets_bytes() {
        let s = space();
        let p = s.alloc(MemKind::Device(DeviceId(1)), 16).unwrap();
        s.fill(p, 16, 0xAB).unwrap();
        assert!(s.read_vec::<u8>(p, 16).unwrap().iter().all(|&b| b == 0xAB));
    }

    #[test]
    fn stats_track_live_and_peak() {
        let s = space();
        let a = s.alloc(MemKind::HostPageable, 100).unwrap();
        let b = s.alloc(MemKind::Device(DeviceId(0)), 200).unwrap();
        assert_eq!(s.stats().live_bytes, 300);
        assert_eq!(s.stats().peak_bytes, 300);
        s.free(a).unwrap();
        assert_eq!(s.stats().live_bytes, 200);
        assert_eq!(s.stats().peak_bytes, 300);
        assert_eq!(s.live_bytes_of_kind(MemKind::Device(DeviceId(0))), 200);
        s.free(b).unwrap();
        assert_eq!(s.live_allocs(), 0);
        assert_eq!(s.stats().total_allocs, 2);
        assert_eq!(s.stats().total_frees, 2);
    }

    #[test]
    fn with_slice_mut_applies_changes() {
        let s = space();
        let p = s.alloc(MemKind::Device(DeviceId(0)), 32).unwrap();
        s.with_slice_mut::<f64, _>(p, 4, |sl| {
            for (i, v) in sl.iter_mut().enumerate() {
                *v = i as f64;
            }
        })
        .unwrap();
        let sum = s
            .with_slice::<f64, _>(p, 4, |sl| sl.iter().sum::<f64>())
            .unwrap();
        assert_eq!(sum, 6.0);
    }

    #[test]
    fn cross_thread_visibility() {
        let s = Arc::new(space());
        let p = s.alloc(MemKind::Device(DeviceId(0)), 8).unwrap();
        let s2 = Arc::clone(&s);
        std::thread::spawn(move || s2.write_at::<f64>(p, 42.0).unwrap())
            .join()
            .unwrap();
        assert_eq!(s.read_at::<f64>(p).unwrap(), 42.0);
    }
}

#[cfg(test)]
mod guard_tests {
    use super::*;
    use crate::ptr::DeviceId;

    #[test]
    #[should_panic(expected = "conflicting simultaneous access")]
    fn conflicting_guards_panic_instead_of_deadlocking() {
        let s = AddressSpace::new();
        let p = s.alloc(MemKind::Device(DeviceId(0)), 64).unwrap();
        let a = s.find(p).unwrap();
        let _w = a.write_slice::<f64>(0, 4);
        // A second exclusive view of the same allocation on the same
        // thread must panic with a diagnostic, not hang.
        let _w2 = a.write_slice::<f64>(32, 4);
    }

    #[test]
    fn symmetric_cross_allocation_copies_do_not_conflict() {
        // Two threads running a symmetric exchange — each copying out of
        // the other's allocation into its own, like a halo sendrecv —
        // must never trip the conflicting-access panic: guards are taken
        // in allocation-id order, so the opposing copies only ever
        // contend transiently.
        let s = Arc::new(AddressSpace::new());
        let a = s.alloc(MemKind::Device(DeviceId(0)), 8192).unwrap();
        let b = s.alloc(MemKind::Device(DeviceId(1)), 8192).unwrap();
        let mk = |dst: Ptr, src: Ptr| {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for _ in 0..2000 {
                    s.copy(dst, src, 4096).unwrap();
                }
            })
        };
        let t1 = mk(a, b);
        let t2 = mk(b, a);
        t1.join().unwrap();
        t2.join().unwrap();
    }

    #[test]
    fn two_read_guards_coexist() {
        let s = AddressSpace::new();
        let p = s.alloc(MemKind::Device(DeviceId(0)), 64).unwrap();
        let a = s.find(p).unwrap();
        let r1 = a.read_slice::<f64>(0, 4);
        let r2 = a.read_slice::<f64>(32, 4);
        assert_eq!(r1.len(), 4);
        assert_eq!(r2.len(), 4);
    }
}
