//! Property tests for the simulated address space: a random program of
//! alloc / free / write / fill / copy / read operations is executed both
//! against the [`AddressSpace`] and against a trivial reference model
//! (a map of byte vectors); contents must agree at every read, and the
//! accounting invariants must hold throughout.

use proptest::prelude::*;
use sim_mem::{AddressSpace, DeviceId, MemError, MemKind, Ptr};

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        kind: u8,
        len: u64,
    },
    Free {
        slot: usize,
    },
    Write {
        slot: usize,
        off: u64,
        data: Vec<u8>,
    },
    Fill {
        slot: usize,
        off: u64,
        len: u64,
        value: u8,
    },
    Copy {
        dst: usize,
        dst_off: u64,
        src: usize,
        src_off: u64,
        len: u64,
    },
    Read {
        slot: usize,
        off: u64,
        len: u64,
    },
}

fn kind_of(code: u8) -> MemKind {
    match code % 4 {
        0 => MemKind::HostPageable,
        1 => MemKind::HostPinned,
        2 => MemKind::Managed,
        _ => MemKind::Device(DeviceId(u32::from(code) % 3)),
    }
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u64..256).prop_map(|(kind, len)| Op::Alloc { kind, len }),
        (0usize..8).prop_map(|slot| Op::Free { slot }),
        (
            0usize..8,
            0u64..256,
            proptest::collection::vec(any::<u8>(), 1..64)
        )
            .prop_map(|(slot, off, data)| Op::Write { slot, off, data }),
        (0usize..8, 0u64..256, 1u64..128, any::<u8>()).prop_map(|(slot, off, len, value)| {
            Op::Fill {
                slot,
                off,
                len,
                value,
            }
        }),
        (0usize..8, 0u64..128, 0usize..8, 0u64..128, 1u64..128).prop_map(
            |(dst, dst_off, src, src_off, len)| Op::Copy {
                dst,
                dst_off,
                src,
                src_off,
                len
            }
        ),
        (0usize..8, 0u64..256, 1u64..128).prop_map(|(slot, off, len)| Op::Read { slot, off, len }),
    ]
}

/// Reference model: slot -> (base, bytes). Mirrors live allocations.
#[derive(Default)]
struct Model {
    slots: Vec<Option<(Ptr, Vec<u8>)>>,
}

impl Model {
    fn live(&self, slot: usize) -> Option<(Ptr, &Vec<u8>)> {
        self.slots
            .get(slot)
            .and_then(|o| o.as_ref())
            .map(|(p, v)| (*p, v))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn space_agrees_with_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..80)
    ) {
        let space = AddressSpace::new();
        let mut model = Model::default();
        let mut live_bytes = 0u64;

        for op in ops {
            match op {
                Op::Alloc { kind, len } => {
                    let p = space.alloc(kind_of(kind), len).unwrap();
                    model.slots.push(Some((p, vec![0u8; len as usize])));
                    live_bytes += len;
                }
                Op::Free { slot } => {
                    if let Some((p, v)) = model.live(slot) {
                        let bytes = v.len() as u64;
                        let info = space.free(p).unwrap();
                        prop_assert_eq!(info.len, bytes);
                        model.slots[slot] = None;
                        live_bytes -= bytes;
                    }
                }
                // Offsets/lengths are clamped into bounds: wild pointers
                // may legally land inside *neighbouring* allocations (UVA
                // is one address space), so out-of-bounds behaviour is
                // covered by dedicated probes, not the model comparison.
                Op::Write { slot, off, mut data } => {
                    if let Some((p, v)) = model.live(slot) {
                        let off = off % v.len() as u64;
                        data.truncate((v.len() as u64 - off) as usize);
                        if data.is_empty() {
                            continue;
                        }
                        let end = off as usize + data.len();
                        space.write_bytes(p.offset(off), &data).unwrap();
                        let vm = model.slots[slot].as_mut().unwrap();
                        vm.1[off as usize..end].copy_from_slice(&data);
                    }
                }
                Op::Fill { slot, off, len, value } => {
                    if let Some((p, v)) = model.live(slot) {
                        let off = off % v.len() as u64;
                        let len = len.min(v.len() as u64 - off);
                        if len == 0 {
                            continue;
                        }
                        space.fill(p.offset(off), len, value).unwrap();
                        let vm = model.slots[slot].as_mut().unwrap();
                        vm.1[off as usize..(off + len) as usize].fill(value);
                    }
                }
                Op::Copy { dst, dst_off, src, src_off, len } => {
                    let (Some((dp, dv)), Some((sp, sv))) = (model.live(dst), model.live(src))
                    else {
                        continue;
                    };
                    let dst_off = dst_off % dv.len() as u64;
                    let src_off = src_off % sv.len() as u64;
                    let len = len
                        .min(dv.len() as u64 - dst_off)
                        .min(sv.len() as u64 - src_off);
                    if len == 0 {
                        continue;
                    }
                    space.copy(dp.offset(dst_off), sp.offset(src_off), len).unwrap();
                    let data: Vec<u8> =
                        sv[src_off as usize..(src_off + len) as usize].to_vec();
                    let vm = model.slots[dst].as_mut().unwrap();
                    vm.1[dst_off as usize..(dst_off + len) as usize].copy_from_slice(&data);
                }
                Op::Read { slot, off, len } => {
                    if let Some((p, v)) = model.live(slot) {
                        let off = off % v.len() as u64;
                        let len = len.min(v.len() as u64 - off);
                        if len == 0 {
                            continue;
                        }
                        let mut buf = vec![0u8; len as usize];
                        space.read_bytes(p.offset(off), &mut buf).unwrap();
                        prop_assert_eq!(
                            &buf,
                            &v[off as usize..(off + len) as usize],
                            "contents diverged at slot {} off {}",
                            slot,
                            off
                        );
                    }
                }
            }
            prop_assert_eq!(space.stats().live_bytes, live_bytes);
        }

        // Every live slot is still fully readable and matches the model.
        for slot in 0..model.slots.len() {
            if let Some((p, v)) = model.live(slot) {
                let got = space.read_vec::<u8>(p, v.len() as u64).unwrap();
                prop_assert_eq!(&got, v);
            }
        }
    }

    /// Dangling pointers into freed allocations always fault.
    #[test]
    fn freed_memory_is_unreachable(len in 1u64..512, probe in 0u64..512) {
        let space = AddressSpace::new();
        let p = space.alloc(MemKind::Managed, len).unwrap();
        space.free(p).unwrap();
        let r = space.read_at::<u8>(p.offset(probe.min(len - 1)));
        prop_assert!(matches!(r, Err(MemError::Unmapped(_))));
    }

    /// Allocations never overlap, whatever the size mix.
    #[test]
    fn allocations_are_disjoint(lens in proptest::collection::vec(1u64..4096, 1..32)) {
        let space = AddressSpace::new();
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for len in lens {
            let p = space.alloc(MemKind::Device(DeviceId(0)), len).unwrap();
            for &(b, l) in &ranges {
                let disjoint = p.addr() + len <= b || b + l <= p.addr();
                prop_assert!(disjoint, "overlap: [{:#x},+{}) vs [{:#x},+{})", p.addr(), len, b, l);
            }
            ranges.push((p.addr(), len));
        }
    }
}
