//! Shadow memory: packed access epochs, 4 slots per 8-byte word.
//!
//! Mirrors ThreadSanitizer's shadow layout: every 8 bytes of application
//! memory map to a small fixed number of *shadow slots*, each recording one
//! recent access as a packed epoch. On a new access, the stored slots are
//! checked for conflicts under the happens-before relation.
//!
//! ## Packed epoch layout (64 bits)
//!
//! ```text
//! | 63    | 62..52       | 51..20        | 19..0        |
//! | write | fiber (11 b) | clock (32 b)  | ctx (20 b)   |
//! ```
//!
//! A slot is empty iff it is zero; real accesses always carry clock ≥ 1.
//! The 11-bit fiber field bounds live fibers to 2048 (see
//! [`crate::fiber::MAX_FIBERS`]); the 20-bit ctx field bounds interned
//! access contexts to ~1M.

use crate::clock::VectorClock;
use crate::fiber::FiberId;
use crate::fxhash::FxHashMap;
use crate::report::CtxId;

/// Application bytes covered by one shadow word.
pub const WORD_BYTES: u64 = 8;
/// Shadow slots per word (TSan uses 4).
pub const SLOTS_PER_WORD: usize = 4;
/// Application bytes covered by one shadow page.
pub const PAGE_BYTES: u64 = 4096;
const WORDS_PER_PAGE: usize = (PAGE_BYTES / WORD_BYTES) as usize;
const SLOTS_PER_PAGE: usize = WORDS_PER_PAGE * SLOTS_PER_WORD;

const CTX_BITS: u32 = 20;
const CLOCK_BITS: u32 = 32;
const FIBER_BITS: u32 = 11;
const CTX_MASK: u64 = (1 << CTX_BITS) - 1;
const CLOCK_MASK: u64 = (1 << CLOCK_BITS) - 1;
const FIBER_MASK: u64 = (1 << FIBER_BITS) - 1;
const CLOCK_SHIFT: u32 = CTX_BITS;
const FIBER_SHIFT: u32 = CTX_BITS + CLOCK_BITS;
const WRITE_SHIFT: u32 = 63;

/// One recorded access, unpacked from a shadow slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowAccess {
    /// Fiber that performed the access.
    pub fiber: FiberId,
    /// The fiber's clock component at access time.
    pub clock: u32,
    /// Interned access-context id.
    pub ctx: CtxId,
    /// Whether the access was a write.
    pub write: bool,
}

/// Pack an access into a shadow slot.
#[inline]
pub fn pack(a: ShadowAccess) -> u64 {
    debug_assert!(a.clock >= 1, "real accesses have clock >= 1");
    debug_assert!((a.fiber.index() as u64) <= FIBER_MASK);
    debug_assert!((a.ctx.0 as u64) <= CTX_MASK);
    (u64::from(a.write) << WRITE_SHIFT)
        | ((a.fiber.index() as u64 & FIBER_MASK) << FIBER_SHIFT)
        | ((u64::from(a.clock) & CLOCK_MASK) << CLOCK_SHIFT)
        | (u64::from(a.ctx.0) & CTX_MASK)
}

/// Unpack a non-empty shadow slot.
#[inline]
pub fn unpack(raw: u64) -> ShadowAccess {
    ShadowAccess {
        fiber: FiberId::from_index(((raw >> FIBER_SHIFT) & FIBER_MASK) as usize),
        clock: ((raw >> CLOCK_SHIFT) & CLOCK_MASK) as u32,
        ctx: CtxId(((raw) & CTX_MASK) as u32),
        write: (raw >> WRITE_SHIFT) & 1 == 1,
    }
}

struct Page {
    slots: Box<[u64; SLOTS_PER_PAGE]>,
}

impl Page {
    fn new() -> Page {
        Page {
            slots: vec![0u64; SLOTS_PER_PAGE].try_into().expect("page size"),
        }
    }
}

/// A race discovered while recording an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawConflict {
    /// Word-aligned application address of the conflicting word.
    pub word_addr: u64,
    /// The previously recorded access.
    pub prev: ShadowAccess,
}

/// The shadow memory of one [`crate::TsanRuntime`].
pub struct ShadowMemory {
    pages: FxHashMap<u64, Page>,
    evict_rotor: u32,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowMemory {
    /// Fresh, empty shadow memory.
    pub fn new() -> Self {
        ShadowMemory {
            pages: FxHashMap::default(),
            evict_rotor: 0,
        }
    }

    /// Record an access of `[addr, addr+len)` by `fiber` (whose clock
    /// component is `clock` and full vector clock is `fiber_clock`).
    /// Invokes `on_conflict` for each word where a conflicting prior access
    /// is found. Cost is linear in `len` — this is the effect behind the
    /// paper's Fig. 12.
    #[allow(clippy::too_many_arguments)]
    pub fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        fiber: FiberId,
        clock: u32,
        ctx: CtxId,
        fiber_clock: &VectorClock,
        mut on_conflict: impl FnMut(RawConflict),
    ) {
        if len == 0 {
            return;
        }
        let new_raw = pack(ShadowAccess {
            fiber,
            clock,
            ctx,
            write,
        });
        let first_word = addr / WORD_BYTES;
        let last_word = (addr + len - 1) / WORD_BYTES;
        let mut word = first_word;
        while word <= last_word {
            let page_base = word * WORD_BYTES / PAGE_BYTES;
            let page_last_word = (page_base + 1) * (PAGE_BYTES / WORD_BYTES) - 1;
            let end_word = last_word.min(page_last_word);
            let rotor = &mut self.evict_rotor;
            let page = self.pages.entry(page_base).or_insert_with(Page::new);
            let mut w = word;
            while w <= end_word {
                let slot_base = ((w % (PAGE_BYTES / WORD_BYTES)) as usize) * SLOTS_PER_WORD;
                let slots = &mut page.slots[slot_base..slot_base + SLOTS_PER_WORD];
                let mut store_at: Option<usize> = None;
                let mut skip_store = false;
                let mut empty_at: Option<usize> = None;
                for (i, s) in slots.iter().enumerate() {
                    let raw = *s;
                    if raw == 0 {
                        if empty_at.is_none() {
                            empty_at = Some(i);
                        }
                        continue;
                    }
                    let prev = unpack(raw);
                    if prev.fiber == fiber {
                        // Same fiber: ordered by program order; never a race.
                        if write || !prev.write {
                            // New access subsumes the old entry.
                            store_at = Some(i);
                        } else {
                            // Old write subsumes this read: keep the write,
                            // recording the read adds no conflict coverage.
                            skip_store = true;
                        }
                        continue;
                    }
                    // Different fiber: conflicting iff at least one write and
                    // the recorded epoch is not in our happens-before past.
                    if (write || prev.write) && fiber_clock.get(prev.fiber) < prev.clock {
                        on_conflict(RawConflict {
                            word_addr: w * WORD_BYTES,
                            prev,
                        });
                    }
                }
                if !skip_store {
                    let idx = match (store_at, empty_at) {
                        (Some(i), _) => i,
                        (None, Some(i)) => i,
                        (None, None) => {
                            let i = (*rotor as usize) % SLOTS_PER_WORD;
                            *rotor = rotor.wrapping_add(1);
                            i
                        }
                    };
                    slots[idx] = new_raw;
                }
                w += 1;
            }
            word = end_word + 1;
        }
    }

    /// All recorded accesses for the word containing `addr` (test/debug).
    pub fn word_accesses(&self, addr: u64) -> Vec<ShadowAccess> {
        let word = addr / WORD_BYTES;
        let page_base = word * WORD_BYTES / PAGE_BYTES;
        let Some(page) = self.pages.get(&page_base) else {
            return Vec::new();
        };
        let slot_base = ((word % (PAGE_BYTES / WORD_BYTES)) as usize) * SLOTS_PER_WORD;
        page.slots[slot_base..slot_base + SLOTS_PER_WORD]
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| unpack(s))
            .collect()
    }

    /// Number of shadow pages allocated so far.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Approximate heap bytes used by the shadow (drives Fig. 11).
    pub fn heap_bytes(&self) -> u64 {
        (self.pages.len() * (SLOTS_PER_PAGE * 8 + 32)) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(i: u32) -> CtxId {
        CtxId(i)
    }

    fn fid(i: usize) -> FiberId {
        FiberId::from_index(i)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let a = ShadowAccess {
            fiber: fid(1234),
            clock: 0xDEAD_BEEF,
            ctx: ctx(77),
            write: true,
        };
        assert_eq!(unpack(pack(a)), a);
        let b = ShadowAccess {
            fiber: fid(0),
            clock: 1,
            ctx: ctx(0),
            write: false,
        };
        assert_eq!(unpack(pack(b)), b);
    }

    #[test]
    fn empty_slot_is_zero_and_real_access_is_not() {
        let a = ShadowAccess {
            fiber: fid(0),
            clock: 1,
            ctx: ctx(0),
            write: false,
        };
        assert_ne!(pack(a), 0);
    }

    fn no_conflict_expected(c: RawConflict) {
        panic!("unexpected conflict: {c:?}");
    }

    #[test]
    fn same_fiber_never_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn read_read_never_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            5,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(2),
            5,
            ctx(1),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn write_write_unordered_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new(); // knows nothing about fiber 1
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            5,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut hits = Vec::new();
        sh.access_range(0x1000, 8, true, fid(2), 5, ctx(1), &clk, |c| hits.push(c));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].prev.fiber, fid(1));
        assert_eq!(hits[0].prev.clock, 5);
        assert!(hits[0].prev.write);
    }

    #[test]
    fn happens_before_suppresses_conflict() {
        let mut sh = ShadowMemory::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            5,
            ctx(0),
            &VectorClock::new(),
            no_conflict_expected,
        );
        // Fiber 2 has synchronized with fiber 1 up to clock 5.
        let mut clk = VectorClock::new();
        clk.set(fid(1), 5);
        sh.access_range(
            0x1000,
            8,
            true,
            fid(2),
            1,
            ctx(1),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn stale_sync_still_conflicts() {
        let mut sh = ShadowMemory::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            7,
            ctx(0),
            &VectorClock::new(),
            no_conflict_expected,
        );
        // Fiber 2 only synchronized with fiber 1 up to clock 6 < 7.
        let mut clk = VectorClock::new();
        clk.set(fid(1), 6);
        let mut hits = 0;
        sh.access_range(0x1000, 8, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn range_conflict_reported_per_word() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            64,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut hits = 0;
        sh.access_range(0x1000, 64, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 8, "one conflict per 8-byte word");
    }

    #[test]
    fn partial_overlap_detected() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            32,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut words = Vec::new();
        // Overlaps only the last two words of the previous range.
        sh.access_range(0x1010, 32, true, fid(2), 1, ctx(1), &clk, |c| {
            words.push(c.word_addr)
        });
        assert_eq!(words, vec![0x1010, 0x1018]);
    }

    #[test]
    fn unaligned_range_covers_touched_words() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        // 4 bytes starting at 0x1006 touch words 0x1000 and 0x1008.
        sh.access_range(
            0x1006,
            4,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.word_accesses(0x1000).len(), 1);
        assert_eq!(sh.word_accesses(0x1008).len(), 1);
        assert_eq!(sh.word_accesses(0x1010).len(), 0);
    }

    #[test]
    fn crossing_page_boundary() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        let addr = PAGE_BYTES - 16;
        sh.access_range(
            addr,
            32,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 2);
        let mut hits = 0;
        sh.access_range(addr, 32, true, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 4);
    }

    #[test]
    fn eviction_keeps_detecting_new_accessors() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        // Five distinct reading fibers exhaust the 4 slots.
        for f in 1..=5 {
            sh.access_range(
                0x1000,
                8,
                false,
                fid(f),
                1,
                ctx(f as u32),
                &clk,
                no_conflict_expected,
            );
        }
        // A writer still conflicts with whatever remains recorded.
        let mut hits = 0;
        sh.access_range(0x1000, 8, true, fid(9), 1, ctx(9), &clk, |_| hits += 1);
        assert!(
            hits >= 3,
            "expected conflicts with surviving slots, got {hits}"
        );
    }

    #[test]
    fn same_fiber_read_after_write_keeps_write_entry() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let acc = sh.word_accesses(0x1000);
        assert_eq!(acc.len(), 1);
        assert!(acc[0].write, "write entry must survive the subsequent read");
    }

    #[test]
    fn zero_length_range_is_noop() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            0,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 0);
    }

    #[test]
    fn heap_accounting_grows_with_pages() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        let before = sh.heap_bytes();
        sh.access_range(
            0,
            4 * PAGE_BYTES,
            false,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert!(sh.heap_bytes() >= before + 4 * (PAGE_BYTES * 4));
    }
}
