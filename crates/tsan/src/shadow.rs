//! Shadow memory: packed access epochs, 4 slots per 8-byte word, with a
//! page-summary tier and a same-state fast path on top.
//!
//! Mirrors ThreadSanitizer's shadow layout: every 8 bytes of application
//! memory map to a small fixed number of *shadow slots*, each recording one
//! recent access as a packed epoch. On a new access, the stored slots are
//! checked for conflicts under the happens-before relation.
//!
//! ## Packed epoch layout (64 bits)
//!
//! ```text
//! | 63    | 62..52       | 51..20        | 19..0        |
//! | write | fiber (11 b) | clock (32 b)  | ctx (20 b)   |
//! ```
//!
//! A slot is empty iff it is zero; real accesses always carry clock ≥ 1.
//! The 11-bit fiber field bounds live fibers to 2048 (see
//! [`crate::fiber::MAX_FIBERS`]); the 20-bit ctx field bounds interned
//! access contexts to ~1M.
//!
//! ## Tiers
//!
//! The instrumentation layers above (CuSan kernel arguments, MUST MPI
//! buffers, memcpy spans) overwhelmingly annotate *whole buffers* with a
//! single (fiber, epoch, ctx) — the effect behind the paper's Fig. 12,
//! where checker cost grows linearly with tracked bytes. Two tiers
//! collapse that cost for the dominant shapes while preserving the exact
//! per-word detection semantics of the flat shadow:
//!
//! 1. **Page summaries.** A shadow page whose words all hold identical
//!    slot contents is stored as one `[u64; 4]` *summary* instead of 512
//!    word slot-arrays. An access covering every word of a page runs the
//!    slot state machine **once** against the summary — O(1) per 4 KiB
//!    instead of 512 word walks — and conflicts found there are re-emitted
//!    per word so the [`RawConflict`] surface (word-aligned addresses) is
//!    unchanged. A partial overlap, or a store that would evict (eviction
//!    is word-local, so words would diverge), lazily *unfolds* the summary
//!    into the flat word representation first.
//! 2. **Same-state fast path.** The single most common pattern in
//!    iteration loops (Jacobi, TeaLeaf) is re-annotating an identical
//!    range with an identical packed epoch — same fiber, clock, ctx, and
//!    direction. Recording it again is a no-op by construction (the store
//!    is idempotent and any conflict it would report was already reported
//!    by the previous call), so a one-entry last-access cache skips the
//!    entire walk.
//!
//! Both tiers can be disabled ([`ShadowMemory::with_tiering`]) to recover
//! the flat O(bytes) walk for A/B measurements; detection results are
//! identical either way (see `tests/shadow_differential.rs`).

use crate::clock::VectorClock;
use crate::fiber::FiberId;
use crate::fxhash::FxHashMap;
use crate::report::CtxId;
use crate::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

/// Application bytes covered by one shadow word.
pub const WORD_BYTES: u64 = 8;
/// Shadow slots per word (TSan uses 4).
pub const SLOTS_PER_WORD: usize = 4;
/// Application bytes covered by one shadow page.
pub const PAGE_BYTES: u64 = 4096;
const WORDS_PER_PAGE: usize = (PAGE_BYTES / WORD_BYTES) as usize;
const SLOTS_PER_PAGE: usize = WORDS_PER_PAGE * SLOTS_PER_WORD;

const CTX_BITS: u32 = 20;
const CLOCK_BITS: u32 = 32;
const FIBER_BITS: u32 = 11;
const CTX_MASK: u64 = (1 << CTX_BITS) - 1;
const CLOCK_MASK: u64 = (1 << CLOCK_BITS) - 1;
const FIBER_MASK: u64 = (1 << FIBER_BITS) - 1;
const CLOCK_SHIFT: u32 = CTX_BITS;
const FIBER_SHIFT: u32 = CTX_BITS + CLOCK_BITS;
const WRITE_SHIFT: u32 = 63;

/// One recorded access, unpacked from a shadow slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowAccess {
    /// Fiber that performed the access.
    pub fiber: FiberId,
    /// The fiber's clock component at access time.
    pub clock: u32,
    /// Interned access-context id.
    pub ctx: CtxId,
    /// Whether the access was a write.
    pub write: bool,
}

/// Pack an access into a shadow slot.
#[inline]
pub fn pack(a: ShadowAccess) -> u64 {
    debug_assert!(a.clock >= 1, "real accesses have clock >= 1");
    debug_assert!((a.fiber.index() as u64) <= FIBER_MASK);
    debug_assert!((a.ctx.0 as u64) <= CTX_MASK);
    (u64::from(a.write) << WRITE_SHIFT)
        | ((a.fiber.index() as u64 & FIBER_MASK) << FIBER_SHIFT)
        | ((u64::from(a.clock) & CLOCK_MASK) << CLOCK_SHIFT)
        | (u64::from(a.ctx.0) & CTX_MASK)
}

/// Unpack a non-empty shadow slot.
#[inline]
pub fn unpack(raw: u64) -> ShadowAccess {
    ShadowAccess {
        fiber: FiberId::from_index(((raw >> FIBER_SHIFT) & FIBER_MASK) as usize),
        clock: ((raw >> CLOCK_SHIFT) & CLOCK_MASK) as u32,
        ctx: CtxId(((raw) & CTX_MASK) as u32),
        write: (raw >> WRITE_SHIFT) & 1 == 1,
    }
}

/// A race discovered while recording an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawConflict {
    /// Word-aligned application address of the conflicting word.
    pub word_addr: u64,
    /// The previously recorded access.
    pub prev: ShadowAccess,
}

/// Event counters for the tiered shadow (surfaced through
/// [`crate::TsanStats`] and Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShadowCounters {
    /// Whole accesses skipped by the same-state last-access cache.
    pub fastpath_hits: u64,
    /// Whole-page accesses recorded at the summary tier (one packed store
    /// instead of a 512-word walk).
    pub page_summaries_stored: u64,
    /// Summaries expanded into flat word slots (partial overlap or a
    /// store that needed word-local eviction).
    pub page_unfolds: u64,
    /// Page-sized annotation chunks dropped because the shadow reached
    /// its page budget (best-effort mode; see
    /// [`ShadowMemory::set_page_budget`]).
    pub dropped_annotations: u64,
    /// Page blocks recycled from the arena free list (0 with the arena
    /// off or while nothing was discarded).
    pub arena_pages_reused: u64,
    /// Arena slabs allocated (logarithmic in unfolded page count thanks
    /// to geometric slab growth).
    pub arena_slabs_allocated: u64,
    /// Arena page blocks returned to the free list by page discard or
    /// whole-shadow eviction ([`ShadowMemory::evict_all_pages`]).
    pub arena_pages_evicted: u64,
}

/// Pages in the first arena slab; subsequent slabs double up to
/// [`ARENA_MAX_SLAB_PAGES`], keeping slab count logarithmic while
/// bounding the worst-case over-allocation.
const ARENA_FIRST_SLAB_PAGES: usize = 4;
const ARENA_MAX_SLAB_PAGES: usize = 256;

/// Handle of one page block inside the arena: slab index + block index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BlockId {
    slab: u32,
    block: u32,
}

/// Slab arena carving [`SLOTS_PER_PAGE`]-word page blocks out of
/// geometrically grown slabs, with a LIFO free list for recycled blocks.
///
/// Unfolding a summary used to pay a fresh 16 KiB zeroed allocation per
/// page; with the arena it pays one `Vec` allocation per *slab* (4 pages
/// doubling to 256) and otherwise just bumps a cursor. `vec![0u64; n]`
/// lowers to `alloc_zeroed`, so large slabs come from lazily-zeroed OS
/// pages — carving never eagerly zeroes slab memory ahead of use.
///
/// Recycling discipline: freshly carved blocks are guaranteed all-zero
/// (never written since slab allocation); recycled blocks carry stale
/// slots and are either fully overwritten ([`Self::alloc_filled`]) or
/// explicitly re-zeroed ([`Self::alloc_zeroed`]) before reuse, so stale
/// epochs can never resurrect in a recycled page.
struct PageArena {
    slabs: Vec<Box<[u64]>>,
    free: Vec<BlockId>,
    /// Blocks already carved from the newest slab.
    carved: usize,
    next_slab_pages: usize,
    /// Blocks handed out and not yet freed; when it hits zero the slabs
    /// themselves can be released ([`Self::trim_if_idle`]).
    live_blocks: usize,
    pages_reused: u64,
    slabs_allocated: u64,
    pages_evicted: u64,
}

impl PageArena {
    fn new() -> Self {
        PageArena {
            slabs: Vec::new(),
            free: Vec::new(),
            carved: 0,
            next_slab_pages: ARENA_FIRST_SLAB_PAGES,
            live_blocks: 0,
            pages_reused: 0,
            slabs_allocated: 0,
            pages_evicted: 0,
        }
    }

    /// Pop a block: recycled (stale contents!) or freshly carved
    /// (guaranteed all-zero). The bool is `true` for a fresh carve.
    fn pop(&mut self) -> (BlockId, bool) {
        self.live_blocks += 1;
        if let Some(id) = self.free.pop() {
            self.pages_reused += 1;
            return (id, false);
        }
        let cap = self.slabs.last().map_or(0, |s| s.len() / SLOTS_PER_PAGE);
        if self.carved == cap {
            self.slabs
                .push(vec![0u64; self.next_slab_pages * SLOTS_PER_PAGE].into_boxed_slice());
            self.slabs_allocated += 1;
            self.carved = 0;
            self.next_slab_pages = (self.next_slab_pages * 2).min(ARENA_MAX_SLAB_PAGES);
        }
        let id = BlockId {
            slab: (self.slabs.len() - 1) as u32,
            block: self.carved as u32,
        };
        self.carved += 1;
        (id, true)
    }

    /// Pop a block holding all-empty slots.
    fn alloc_zeroed(&mut self) -> BlockId {
        let (id, fresh) = self.pop();
        if !fresh {
            self.block_mut(id).fill(0);
        }
        id
    }

    /// Pop a block and fill every word with `summary` — the unfold fill.
    /// Fresh blocks only need the live prefix stored (the tail is already
    /// zero); recycled blocks are fully overwritten by doubling copies,
    /// zero slots included.
    fn alloc_filled(&mut self, summary: &[u64; SLOTS_PER_WORD]) -> BlockId {
        let (id, fresh) = self.pop();
        let slots = self.block_mut(id);
        if fresh {
            // Live slots form a prefix (the store machine fills the first
            // empty slot), but a rear scan stays correct even if an
            // interior slot were zero.
            let live = SLOTS_PER_WORD - summary.iter().rev().take_while(|&&s| s == 0).count();
            if live > 0 {
                for w in 0..WORDS_PER_PAGE {
                    let base = w * SLOTS_PER_WORD;
                    slots[base..base + live].copy_from_slice(&summary[..live]);
                }
            }
        } else {
            slots[..SLOTS_PER_WORD].copy_from_slice(summary);
            let mut filled = SLOTS_PER_WORD;
            while filled < SLOTS_PER_PAGE {
                let n = filled.min(SLOTS_PER_PAGE - filled);
                slots.copy_within(..n, filled);
                filled += n;
            }
        }
        id
    }

    /// Return a block to the free list. The stale contents stay in place
    /// until the block is reallocated (and then overwritten/zeroed).
    fn free_block(&mut self, id: BlockId) {
        self.live_blocks -= 1;
        self.pages_evicted += 1;
        self.free.push(id);
    }

    /// Release the slabs themselves once no block is live. Plain per-page
    /// discard deliberately does NOT trim — steady-state discard/unfold
    /// cycles are exactly what the free list accelerates — but a finished
    /// session's whole-shadow eviction must actually return the bytes
    /// (the slab growth point is kept, so a resurrected arena re-grows
    /// geometrically from where it left off).
    fn trim_if_idle(&mut self) {
        if self.live_blocks == 0 && !self.slabs.is_empty() {
            self.slabs = Vec::new();
            self.free = Vec::new();
            self.carved = 0;
        }
    }

    fn block(&self, id: BlockId) -> &[u64; SLOTS_PER_PAGE] {
        let base = id.block as usize * SLOTS_PER_PAGE;
        (&self.slabs[id.slab as usize][base..base + SLOTS_PER_PAGE])
            .try_into()
            .expect("block size")
    }

    fn block_mut(&mut self, id: BlockId) -> &mut [u64; SLOTS_PER_PAGE] {
        let base = id.block as usize * SLOTS_PER_PAGE;
        (&mut self.slabs[id.slab as usize][base..base + SLOTS_PER_PAGE])
            .try_into()
            .expect("block size")
    }

    /// All slab bytes, carved or not — budget accounting must count what
    /// the arena actually holds from the allocator, not just live blocks.
    fn heap_bytes(&self) -> u64 {
        self.slabs.iter().map(|s| (s.len() * 8) as u64).sum::<u64>()
            + (self.free.capacity() * std::mem::size_of::<BlockId>()) as u64
    }

    /// True if `id` names a block that has actually been carved — the
    /// bounds check for block handles decoded from snapshots.
    fn is_carved(&self, id: BlockId) -> bool {
        let slab = id.slab as usize;
        let Some(s) = self.slabs.get(slab) else {
            return false;
        };
        let cap = s.len() / SLOTS_PER_PAGE;
        let limit = if slab + 1 == self.slabs.len() {
            self.carved
        } else {
            cap
        };
        (id.block as usize) < limit
    }

    /// Serialize the arena's exact shape: slab capacities, carve cursor,
    /// growth point, and the free list verbatim. Block *contents* are
    /// serialized with the pages that own them; free-listed blocks hold
    /// stale data by contract (always overwritten or re-zeroed before
    /// reuse), so restoring them as zeros is behavior-identical.
    fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.slabs.len());
        for s in &self.slabs {
            w.put_u64((s.len() / SLOTS_PER_PAGE) as u64);
        }
        w.put_u64(self.carved as u64);
        w.put_u64(self.next_slab_pages as u64);
        w.put_u64(self.live_blocks as u64);
        w.put_len(self.free.len());
        for id in &self.free {
            w.put_u32(id.slab);
            w.put_u32(id.block);
        }
        w.put_u64(self.pages_reused);
        w.put_u64(self.slabs_allocated);
        w.put_u64(self.pages_evicted);
    }

    /// Rebuild from [`Self::write_snapshot`] output, slabs zeroed (live
    /// block contents are filled in by the page decoder).
    fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let n_slabs = r.get_len()?;
        let mut slabs = Vec::with_capacity(n_slabs);
        for _ in 0..n_slabs {
            let pages = r.get_u64()? as usize;
            if pages == 0 || pages > ARENA_MAX_SLAB_PAGES {
                return Err(SnapshotError::Corrupt(format!("slab of {pages} pages")));
            }
            slabs.push(vec![0u64; pages * SLOTS_PER_PAGE].into_boxed_slice());
        }
        let carved = r.get_u64()? as usize;
        let last_cap = slabs.last().map_or(0, |s| s.len() / SLOTS_PER_PAGE);
        if carved > last_cap {
            return Err(SnapshotError::Corrupt(format!(
                "carve cursor {carved} past slab capacity {last_cap}"
            )));
        }
        let next_slab_pages = r.get_u64()? as usize;
        if next_slab_pages == 0 || next_slab_pages > ARENA_MAX_SLAB_PAGES {
            return Err(SnapshotError::Corrupt(format!(
                "slab growth point {next_slab_pages}"
            )));
        }
        let live_blocks = r.get_u64()? as usize;
        let n_free = r.get_len()?;
        let mut arena = PageArena {
            slabs,
            free: Vec::with_capacity(n_free),
            carved,
            next_slab_pages,
            live_blocks,
            pages_reused: 0,
            slabs_allocated: 0,
            pages_evicted: 0,
        };
        for _ in 0..n_free {
            let id = BlockId {
                slab: r.get_u32()?,
                block: r.get_u32()?,
            };
            if !arena.is_carved(id) {
                return Err(SnapshotError::Corrupt(format!(
                    "free-listed block {id:?} was never carved"
                )));
            }
            arena.free.push(id);
        }
        arena.pages_reused = r.get_u64()?;
        arena.slabs_allocated = r.get_u64()?;
        arena.pages_evicted = r.get_u64()?;
        Ok(arena)
    }
}

/// Storage of one unfolded page: an arena block, or a boxed array when
/// the arena is disabled (`CUSAN_SHADOW_ARENA=0` A/B mode).
enum PageSlots {
    Owned(Box<[u64; SLOTS_PER_PAGE]>),
    Arena(BlockId),
}

impl PageSlots {
    fn zeroed(arena: &mut PageArena, use_arena: bool) -> PageSlots {
        if use_arena {
            PageSlots::Arena(arena.alloc_zeroed())
        } else {
            PageSlots::Owned(vec![0u64; SLOTS_PER_PAGE].try_into().expect("page size"))
        }
    }

    fn unfolded(
        summary: [u64; SLOTS_PER_WORD],
        arena: &mut PageArena,
        use_arena: bool,
    ) -> PageSlots {
        if use_arena {
            PageSlots::Arena(arena.alloc_filled(&summary))
        } else {
            let mut slots: Box<[u64; SLOTS_PER_PAGE]> =
                vec![0u64; SLOTS_PER_PAGE].try_into().expect("page size");
            let live = SLOTS_PER_WORD - summary.iter().rev().take_while(|&&s| s == 0).count();
            if live > 0 {
                for w in 0..WORDS_PER_PAGE {
                    let base = w * SLOTS_PER_WORD;
                    slots[base..base + live].copy_from_slice(&summary[..live]);
                }
            }
            PageSlots::Owned(slots)
        }
    }

    fn resolve<'a>(&'a self, arena: &'a PageArena) -> &'a [u64; SLOTS_PER_PAGE] {
        match self {
            PageSlots::Owned(b) => b,
            PageSlots::Arena(id) => arena.block(*id),
        }
    }

    fn resolve_mut<'a>(&'a mut self, arena: &'a mut PageArena) -> &'a mut [u64; SLOTS_PER_PAGE] {
        match self {
            PageSlots::Owned(b) => b,
            PageSlots::Arena(id) => arena.block_mut(*id),
        }
    }
}

/// One shadow page: either a summary (all words identical) or flat slots.
enum PageState {
    /// Invariant: a flat page with these slots replicated into every word
    /// behaves identically. Maintained by unfolding before any operation
    /// that would make words diverge.
    Summary([u64; SLOTS_PER_WORD]),
    Unfolded(PageSlots),
}

/// What the slot state machine decided to do with the incoming access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StoreDecision {
    /// Overwrite the slot at this index (same-fiber subsumption or an
    /// empty slot).
    At(usize),
    /// Do not store: an own write already subsumes this read.
    Skip,
    /// All slots are occupied by other fibers — evict the word-local
    /// victim.
    Evict,
}

/// Scan one word's slots against an incoming access: emit each conflicting
/// prior access and decide where (whether) to store. Pure with respect to
/// the slots; the caller applies the decision.
#[inline]
fn scan_slots(
    slots: &[u64],
    fiber: FiberId,
    write: bool,
    fiber_clock: &VectorClock,
    mut emit: impl FnMut(ShadowAccess),
) -> StoreDecision {
    let mut store_at: Option<usize> = None;
    let mut skip_store = false;
    let mut empty_at: Option<usize> = None;
    for (i, &raw) in slots.iter().enumerate() {
        if raw == 0 {
            if empty_at.is_none() {
                empty_at = Some(i);
            }
            continue;
        }
        let prev = unpack(raw);
        if prev.fiber == fiber {
            // Same fiber: ordered by program order; never a race.
            if write || !prev.write {
                // New access subsumes the old entry.
                store_at = Some(i);
            } else {
                // Old write subsumes this read: keep the write, recording
                // the read adds no conflict coverage.
                skip_store = true;
            }
            continue;
        }
        // Different fiber: conflicting iff at least one write and the
        // recorded epoch is not in our happens-before past.
        if (write || prev.write) && fiber_clock.get(prev.fiber) < prev.clock {
            emit(prev);
        }
    }
    if skip_store {
        StoreDecision::Skip
    } else {
        match (store_at, empty_at) {
            (Some(i), _) => StoreDecision::At(i),
            (None, Some(i)) => StoreDecision::At(i),
            (None, None) => StoreDecision::Evict,
        }
    }
}

/// Word-local deterministic eviction victim. Depends only on the word
/// index and the incoming fiber — unrelated words no longer share a
/// global rotor, so eviction at one address cannot bias another, and
/// identical schedules always evict identically. Mixing in the fiber
/// spreads repeated evictions at one word across slots.
#[inline]
fn victim_slot(word: u64, fiber: FiberId) -> usize {
    (word as usize ^ fiber.index()) % SLOTS_PER_WORD
}

/// Key of the same-state fast path: `raw` packs (write, fiber, clock,
/// ctx), so two equal keys describe fully identical accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LastAccess {
    addr: u64,
    len: u64,
    raw: u64,
}

/// The shadow memory of one [`crate::TsanRuntime`].
pub struct ShadowMemory {
    pages: FxHashMap<u64, PageState>,
    arena: PageArena,
    use_arena: bool,
    tiered: bool,
    last: Option<LastAccess>,
    counters: ShadowCounters,
    page_budget: Option<usize>,
}

impl Default for ShadowMemory {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowMemory {
    /// Fresh, empty shadow memory with tiering and the page arena enabled.
    pub fn new() -> Self {
        Self::with_tiering(true)
    }

    /// Fresh shadow with the page-summary/fast-path tiers on or off.
    /// Untiered, every access walks one slot array per touched word — the
    /// flat O(bytes) behavior measured in the paper's Fig. 12.
    pub fn with_tiering(tiered: bool) -> Self {
        Self::with_options(tiered, true)
    }

    /// Fresh shadow choosing both the tier mode and whether unfolded
    /// pages live in the slab arena (`arena = false` reproduces the
    /// one-`Box`-per-page allocator for A/B benchmarking; detection
    /// behavior is bit-for-bit identical either way).
    pub fn with_options(tiered: bool, arena: bool) -> Self {
        ShadowMemory {
            pages: FxHashMap::default(),
            arena: PageArena::new(),
            use_arena: arena,
            tiered,
            last: None,
            counters: ShadowCounters::default(),
            page_budget: None,
        }
    }

    /// Whether the summary/fast-path tiers are active.
    pub fn tiering_enabled(&self) -> bool {
        self.tiered
    }

    /// Whether unfolded pages are carved from the slab arena.
    pub fn arena_enabled(&self) -> bool {
        self.use_arena
    }

    /// Forget all shadow state for the page containing `addr`, returning
    /// whether a page was tracked there. An arena-backed slot block goes
    /// back on the free list for recycling. Used by allocation-lifetime
    /// hooks (free/device-reset paths) so long runs can give pages back.
    pub fn discard_page(&mut self, addr: u64) -> bool {
        let page_base = (addr / WORD_BYTES) / WORDS_PER_PAGE as u64;
        let Some(state) = self.pages.remove(&page_base) else {
            return false;
        };
        if let PageState::Unfolded(PageSlots::Arena(id)) = state {
            self.arena.free_block(id);
        }
        // The last-access cache may describe a range inside the discarded
        // page; the next identical access must re-walk, not fast-path.
        self.last = None;
        true
    }

    /// Forget *every* tracked page — a finished session's whole-shadow
    /// eviction (the serve path's global-budget reclaim). Arena blocks
    /// return to the free list and, with nothing left live, the slabs
    /// themselves are released, so the evicted session's bytes actually
    /// leave [`ShadowMemory::heap_bytes`] (per-page discard recycles
    /// blocks but keeps slab memory charged for reuse). Returns the
    /// number of pages evicted. Sound only when no further accesses will
    /// be recorded: eviction forgets access history.
    pub fn evict_all_pages(&mut self) -> usize {
        let n = self.pages.len();
        for (_, state) in self.pages.drain() {
            if let PageState::Unfolded(PageSlots::Arena(id)) = state {
                self.arena.free_block(id);
            }
        }
        self.last = None;
        self.arena.trim_if_idle();
        n
    }

    /// Cap the number of shadow pages. Once the budget is reached the
    /// shadow degrades to **counted best-effort mode**: accesses touching
    /// already-tracked pages keep full detection, but annotation chunks
    /// that would allocate a *new* page are dropped and counted in
    /// [`ShadowCounters::dropped_annotations`] instead of growing the
    /// shadow. The drop sequence is a pure function of the access stream,
    /// so degraded runs stay deterministic and replayable. `None` (the
    /// default) is unlimited.
    pub fn set_page_budget(&mut self, budget: Option<usize>) {
        self.page_budget = budget;
    }

    /// The configured page budget (`None` = unlimited).
    pub fn page_budget(&self) -> Option<usize> {
        self.page_budget
    }

    /// Tier event counters, with the arena's own tallies merged in.
    pub fn counters(&self) -> ShadowCounters {
        let mut c = self.counters;
        c.arena_pages_reused = self.arena.pages_reused;
        c.arena_slabs_allocated = self.arena.slabs_allocated;
        c.arena_pages_evicted = self.arena.pages_evicted;
        c
    }

    /// Record an access of `[addr, addr+len)` by `fiber` (whose clock
    /// component is `clock` and full vector clock is `fiber_clock`).
    /// Invokes `on_conflict` for each word where a conflicting prior
    /// access is found. Cost is O(pages) for page-covering ranges with
    /// tiering on, O(len) otherwise.
    #[allow(clippy::too_many_arguments)]
    pub fn access_range(
        &mut self,
        addr: u64,
        len: u64,
        write: bool,
        fiber: FiberId,
        clock: u32,
        ctx: CtxId,
        fiber_clock: &VectorClock,
        mut on_conflict: impl FnMut(RawConflict),
    ) {
        if len == 0 {
            return;
        }
        let new_raw = pack(ShadowAccess {
            fiber,
            clock,
            ctx,
            write,
        });
        if self.tiered {
            // Same-state fast path: the immediately preceding access was
            // byte-for-byte identical (same range, fiber, epoch, ctx,
            // direction). The store is idempotent — the previous call
            // left our own entry (or skipped, leaving our own write) in
            // every touched word — and no shadow or conflict state
            // changed in between, so any conflict this walk would emit
            // was already emitted then. Skip the whole walk.
            let key = LastAccess {
                addr,
                len,
                raw: new_raw,
            };
            if self.last == Some(key) {
                self.counters.fastpath_hits += 1;
                return;
            }
            self.last = Some(key);
        }
        let first_word = addr / WORD_BYTES;
        let last_word = (addr + len - 1) / WORD_BYTES;
        let words_per_page = WORDS_PER_PAGE as u64;
        // Split borrows: the map entry, the arena, and the counters are
        // touched together in every arm below.
        let Self {
            pages,
            arena,
            use_arena,
            tiered,
            counters,
            page_budget,
            ..
        } = self;
        let (use_arena, tiered, page_budget) = (*use_arena, *tiered, *page_budget);
        let mut word = first_word;
        while word <= last_word {
            let page_base = word / words_per_page;
            let page_first_word = page_base * words_per_page;
            let page_last_word = page_first_word + words_per_page - 1;
            let end_word = last_word.min(page_last_word);
            // The chunk covers the whole page iff it starts at the page's
            // first word and ends at its last (bytes may still be ragged
            // at the edges — word coverage is what the flat walk stores).
            let whole_page = tiered && word == page_first_word && end_word == page_last_word;
            let under_budget = page_budget.is_none_or(|b| pages.len() < b);
            match pages.entry(page_base) {
                std::collections::hash_map::Entry::Vacant(_) if !under_budget => {
                    // Budget reached: best-effort mode. The chunk would
                    // need a new shadow page — drop it, count it, keep
                    // going. Existing pages (the Occupied arm) retain
                    // full detection.
                    counters.dropped_annotations += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    if whole_page {
                        // First touch by a page-covering access: one
                        // packed store for 4 KiB.
                        let mut summary = [0u64; SLOTS_PER_WORD];
                        summary[0] = new_raw;
                        v.insert(PageState::Summary(summary));
                        counters.page_summaries_stored += 1;
                    } else {
                        // Partial first touch: pop a zeroed block from the
                        // arena instead of a fresh 16 KiB allocation.
                        let page =
                            v.insert(PageState::Unfolded(PageSlots::zeroed(arena, use_arena)));
                        let PageState::Unfolded(ps) = page else {
                            unreachable!()
                        };
                        walk_words(
                            ps.resolve_mut(arena),
                            word,
                            end_word,
                            new_raw,
                            fiber,
                            write,
                            fiber_clock,
                            &mut on_conflict,
                        );
                    }
                }
                std::collections::hash_map::Entry::Occupied(mut o) => {
                    let state = o.get_mut();
                    match state {
                        PageState::Summary(summary) => {
                            let mut need_unfold = true;
                            if whole_page {
                                // Run the slot state machine once against
                                // the summary. Conflicts are buffered and
                                // re-emitted per word below so reports
                                // stay word-addressed, exactly like the
                                // flat walk (each word held identical
                                // slots, so each word conflicts
                                // identically).
                                let mut conflicts = [ShadowAccess {
                                    fiber: FiberId::HOST,
                                    clock: 0,
                                    ctx: CtxId(0),
                                    write: false,
                                };
                                    SLOTS_PER_WORD];
                                let mut n_conflicts = 0usize;
                                let decision =
                                    scan_slots(&summary[..], fiber, write, fiber_clock, |prev| {
                                        conflicts[n_conflicts] = prev;
                                        n_conflicts += 1;
                                    });
                                // Eviction is word-local: applying it at
                                // the summary tier would evict the same
                                // slot in all 512 words while the flat
                                // walk would diverge per word. Unfold and
                                // take the slow path instead (rare: needs
                                // 4 live foreign epochs).
                                if decision != StoreDecision::Evict {
                                    for w in page_first_word..=page_last_word {
                                        for prev in conflicts.iter().take(n_conflicts) {
                                            on_conflict(RawConflict {
                                                word_addr: w * WORD_BYTES,
                                                prev: *prev,
                                            });
                                        }
                                    }
                                    if let StoreDecision::At(i) = decision {
                                        summary[i] = new_raw;
                                    }
                                    counters.page_summaries_stored += 1;
                                    need_unfold = false;
                                }
                            }
                            if need_unfold {
                                // Unfold = pop a block + replicate the live
                                // prefix (arena) or allocate a fresh boxed
                                // array (arena off).
                                *state = PageState::Unfolded(PageSlots::unfolded(
                                    *summary, arena, use_arena,
                                ));
                                counters.page_unfolds += 1;
                                let PageState::Unfolded(ps) = state else {
                                    unreachable!()
                                };
                                walk_words(
                                    ps.resolve_mut(arena),
                                    word,
                                    end_word,
                                    new_raw,
                                    fiber,
                                    write,
                                    fiber_clock,
                                    &mut on_conflict,
                                );
                            }
                        }
                        PageState::Unfolded(ps) => {
                            walk_words(
                                ps.resolve_mut(arena),
                                word,
                                end_word,
                                new_raw,
                                fiber,
                                write,
                                fiber_clock,
                                &mut on_conflict,
                            );
                        }
                    }
                }
            }
            word = end_word + 1;
        }
    }

    /// All recorded accesses for the word containing `addr` (test/debug).
    pub fn word_accesses(&self, addr: u64) -> Vec<ShadowAccess> {
        let word = addr / WORD_BYTES;
        let page_base = word / WORDS_PER_PAGE as u64;
        let Some(page) = self.pages.get(&page_base) else {
            return Vec::new();
        };
        let slots: &[u64] = match page {
            PageState::Summary(summary) => &summary[..],
            PageState::Unfolded(ps) => {
                let slot_base = (word % WORDS_PER_PAGE as u64) as usize * SLOTS_PER_WORD;
                &ps.resolve(&self.arena)[slot_base..slot_base + SLOTS_PER_WORD]
            }
        };
        slots
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| unpack(s))
            .collect()
    }

    /// Number of shadow pages allocated so far (summaries included).
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages currently held as summaries.
    pub fn summary_page_count(&self) -> usize {
        self.pages
            .values()
            .filter(|p| matches!(p, PageState::Summary(_)))
            .count()
    }

    /// Approximate heap bytes used by the shadow (drives Fig. 11).
    /// Summary pages cost a fixed few words; owned unfolded pages cost
    /// the full slot array; arena-backed pages cost only their map entry
    /// here because every slab byte — carved, free-listed, or not yet
    /// carved — is charged via [`PageArena::heap_bytes`]. This keeps the
    /// page-budget machinery honest about what the arena really holds.
    pub fn heap_bytes(&self) -> u64 {
        self.pages
            .values()
            .map(|p| match p {
                PageState::Summary(_) => (SLOTS_PER_WORD * 8 + 32) as u64,
                PageState::Unfolded(PageSlots::Owned(_)) => (SLOTS_PER_PAGE * 8 + 32) as u64,
                PageState::Unfolded(PageSlots::Arena(_)) => 32,
            })
            .sum::<u64>()
            + self.arena.heap_bytes()
    }

    /// Serialize the entire shadow — mode flags, the same-state cache,
    /// the tier counters, the arena shape, and every page (sorted by
    /// page key so repeated snapshots of one state are byte-identical).
    pub(crate) fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.tiered);
        w.put_bool(self.use_arena);
        w.put_bool(self.page_budget.is_some());
        if let Some(b) = self.page_budget {
            w.put_u64(b as u64);
        }
        w.put_bool(self.last.is_some());
        if let Some(la) = self.last {
            w.put_u64(la.addr);
            w.put_u64(la.len);
            w.put_u64(la.raw);
        }
        // Own counters only — the arena carries its tallies itself.
        w.put_u64(self.counters.fastpath_hits);
        w.put_u64(self.counters.page_summaries_stored);
        w.put_u64(self.counters.page_unfolds);
        w.put_u64(self.counters.dropped_annotations);
        self.arena.write_snapshot(w);
        let mut keys: Vec<u64> = self.pages.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for key in keys {
            w.put_u64(key);
            match &self.pages[&key] {
                PageState::Summary(s) => {
                    w.put_u8(0);
                    for &v in s {
                        w.put_u64(v);
                    }
                }
                PageState::Unfolded(PageSlots::Owned(slots)) => {
                    w.put_u8(1);
                    write_sparse_slots(w, slots);
                }
                PageState::Unfolded(PageSlots::Arena(id)) => {
                    w.put_u8(2);
                    w.put_u32(id.slab);
                    w.put_u32(id.block);
                    write_sparse_slots(w, self.arena.block(*id));
                }
            }
        }
    }

    /// Rebuild a shadow from [`Self::write_snapshot`] output. Arena
    /// pages are written back into their original block handles, so
    /// subsequent carve/recycle order — and with it every arena counter
    /// — evolves exactly as in the snapshotted shadow.
    pub(crate) fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let tiered = r.get_bool()?;
        let use_arena = r.get_bool()?;
        let page_budget = if r.get_bool()? {
            Some(r.get_u64()? as usize)
        } else {
            None
        };
        let last = if r.get_bool()? {
            Some(LastAccess {
                addr: r.get_u64()?,
                len: r.get_u64()?,
                raw: r.get_u64()?,
            })
        } else {
            None
        };
        let counters = ShadowCounters {
            fastpath_hits: r.get_u64()?,
            page_summaries_stored: r.get_u64()?,
            page_unfolds: r.get_u64()?,
            dropped_annotations: r.get_u64()?,
            ..ShadowCounters::default()
        };
        let mut arena = PageArena::read_snapshot(r)?;
        let n_pages = r.get_len()?;
        let mut pages = FxHashMap::default();
        pages.reserve(n_pages);
        let mut arena_blocks = 0usize;
        let mut prev_key: Option<u64> = None;
        for _ in 0..n_pages {
            let key = r.get_u64()?;
            if prev_key.is_some_and(|p| key <= p) {
                return Err(SnapshotError::Corrupt(format!(
                    "page keys not strictly ascending at {key:#x}"
                )));
            }
            prev_key = Some(key);
            let state = match r.get_u8()? {
                0 => {
                    let mut s = [0u64; SLOTS_PER_WORD];
                    for v in &mut s {
                        *v = r.get_u64()?;
                    }
                    PageState::Summary(s)
                }
                1 => {
                    let mut slots: Box<[u64; SLOTS_PER_PAGE]> =
                        vec![0u64; SLOTS_PER_PAGE].try_into().expect("page size");
                    read_sparse_slots(r, &mut slots)?;
                    PageState::Unfolded(PageSlots::Owned(slots))
                }
                2 => {
                    let id = BlockId {
                        slab: r.get_u32()?,
                        block: r.get_u32()?,
                    };
                    if !arena.is_carved(id) {
                        return Err(SnapshotError::Corrupt(format!(
                            "page block {id:?} was never carved"
                        )));
                    }
                    if arena.free.contains(&id) {
                        return Err(SnapshotError::Corrupt(format!(
                            "page block {id:?} is also on the free list"
                        )));
                    }
                    let slots = arena.block_mut(id);
                    if slots.iter().any(|&s| s != 0) {
                        return Err(SnapshotError::Corrupt(format!(
                            "block {id:?} claimed by two pages"
                        )));
                    }
                    read_sparse_slots(r, slots)?;
                    arena_blocks += 1;
                    PageState::Unfolded(PageSlots::Arena(id))
                }
                t => {
                    return Err(SnapshotError::Corrupt(format!("page state tag {t}")));
                }
            };
            pages.insert(key, state);
        }
        if arena_blocks != arena.live_blocks {
            return Err(SnapshotError::Corrupt(format!(
                "{arena_blocks} arena-backed pages but {} live blocks recorded",
                arena.live_blocks
            )));
        }
        Ok(ShadowMemory {
            pages,
            arena,
            use_arena,
            tiered,
            last,
            counters,
            page_budget,
        })
    }
}

/// Encode one page's slot array as (index, value) pairs of its nonzero
/// slots — spilled shadows are dominated by sparsely-touched pages, and
/// zero slots reconstruct for free.
fn write_sparse_slots(w: &mut SnapshotWriter, slots: &[u64; SLOTS_PER_PAGE]) {
    let n = slots.iter().filter(|&&s| s != 0).count();
    w.put_len(n);
    for (i, &s) in slots.iter().enumerate() {
        if s != 0 {
            w.put_u32(i as u32);
            w.put_u64(s);
        }
    }
}

/// Decode [`write_sparse_slots`] output into an all-zero slot array.
fn read_sparse_slots(
    r: &mut SnapshotReader<'_>,
    slots: &mut [u64; SLOTS_PER_PAGE],
) -> Result<(), SnapshotError> {
    let n = r.get_len()?;
    if n > SLOTS_PER_PAGE {
        return Err(SnapshotError::Corrupt(format!("{n} slots in one page")));
    }
    let mut prev: Option<u32> = None;
    for _ in 0..n {
        let i = r.get_u32()?;
        if i as usize >= SLOTS_PER_PAGE {
            return Err(SnapshotError::Corrupt(format!("slot index {i}")));
        }
        if prev.is_some_and(|p| i <= p) {
            return Err(SnapshotError::Corrupt(format!(
                "slot indices not strictly ascending at {i}"
            )));
        }
        let v = r.get_u64()?;
        if v == 0 {
            return Err(SnapshotError::Corrupt("zero slot in sparse list".into()));
        }
        slots[i as usize] = v;
        prev = Some(i);
    }
    Ok(())
}

/// Flat walk over `[word, end_word]` within one page's slot array:
/// per-word conflict scan + store.
#[allow(clippy::too_many_arguments)]
#[inline]
fn walk_words(
    page_slots: &mut [u64; SLOTS_PER_PAGE],
    word: u64,
    end_word: u64,
    new_raw: u64,
    fiber: FiberId,
    write: bool,
    fiber_clock: &VectorClock,
    on_conflict: &mut impl FnMut(RawConflict),
) {
    let mut w = word;
    while w <= end_word {
        let slot_base = (w % WORDS_PER_PAGE as u64) as usize * SLOTS_PER_WORD;
        let slots = &mut page_slots[slot_base..slot_base + SLOTS_PER_WORD];
        let decision = scan_slots(slots, fiber, write, fiber_clock, |prev| {
            on_conflict(RawConflict {
                word_addr: w * WORD_BYTES,
                prev,
            })
        });
        match decision {
            StoreDecision::Skip => {}
            StoreDecision::At(i) => slots[i] = new_raw,
            StoreDecision::Evict => slots[victim_slot(w, fiber)] = new_raw,
        }
        w += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(i: u32) -> CtxId {
        CtxId(i)
    }

    fn fid(i: usize) -> FiberId {
        FiberId::from_index(i)
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let a = ShadowAccess {
            fiber: fid(1234),
            clock: 0xDEAD_BEEF,
            ctx: ctx(77),
            write: true,
        };
        assert_eq!(unpack(pack(a)), a);
        let b = ShadowAccess {
            fiber: fid(0),
            clock: 1,
            ctx: ctx(0),
            write: false,
        };
        assert_eq!(unpack(pack(b)), b);
    }

    #[test]
    fn empty_slot_is_zero_and_real_access_is_not() {
        let a = ShadowAccess {
            fiber: fid(0),
            clock: 1,
            ctx: ctx(0),
            write: false,
        };
        assert_ne!(pack(a), 0);
    }

    fn no_conflict_expected(c: RawConflict) {
        panic!("unexpected conflict: {c:?}");
    }

    #[test]
    fn same_fiber_never_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn read_read_never_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            5,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(2),
            5,
            ctx(1),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn write_write_unordered_conflicts() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new(); // knows nothing about fiber 1
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            5,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut hits = Vec::new();
        sh.access_range(0x1000, 8, true, fid(2), 5, ctx(1), &clk, |c| hits.push(c));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].prev.fiber, fid(1));
        assert_eq!(hits[0].prev.clock, 5);
        assert!(hits[0].prev.write);
    }

    #[test]
    fn happens_before_suppresses_conflict() {
        let mut sh = ShadowMemory::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            5,
            ctx(0),
            &VectorClock::new(),
            no_conflict_expected,
        );
        // Fiber 2 has synchronized with fiber 1 up to clock 5.
        let mut clk = VectorClock::new();
        clk.set(fid(1), 5);
        sh.access_range(
            0x1000,
            8,
            true,
            fid(2),
            1,
            ctx(1),
            &clk,
            no_conflict_expected,
        );
    }

    #[test]
    fn stale_sync_still_conflicts() {
        let mut sh = ShadowMemory::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            7,
            ctx(0),
            &VectorClock::new(),
            no_conflict_expected,
        );
        // Fiber 2 only synchronized with fiber 1 up to clock 6 < 7.
        let mut clk = VectorClock::new();
        clk.set(fid(1), 6);
        let mut hits = 0;
        sh.access_range(0x1000, 8, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 1);
    }

    #[test]
    fn range_conflict_reported_per_word() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            64,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut hits = 0;
        sh.access_range(0x1000, 64, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 8, "one conflict per 8-byte word");
    }

    #[test]
    fn partial_overlap_detected() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            32,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut words = Vec::new();
        // Overlaps only the last two words of the previous range.
        sh.access_range(0x1010, 32, true, fid(2), 1, ctx(1), &clk, |c| {
            words.push(c.word_addr)
        });
        assert_eq!(words, vec![0x1010, 0x1018]);
    }

    #[test]
    fn unaligned_range_covers_touched_words() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        // 4 bytes starting at 0x1006 touch words 0x1000 and 0x1008.
        sh.access_range(
            0x1006,
            4,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.word_accesses(0x1000).len(), 1);
        assert_eq!(sh.word_accesses(0x1008).len(), 1);
        assert_eq!(sh.word_accesses(0x1010).len(), 0);
    }

    #[test]
    fn crossing_page_boundary() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        let addr = PAGE_BYTES - 16;
        sh.access_range(
            addr,
            32,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 2);
        let mut hits = 0;
        sh.access_range(addr, 32, true, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 4);
    }

    #[test]
    fn eviction_keeps_detecting_new_accessors() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        // Five distinct reading fibers exhaust the 4 slots.
        for f in 1..=5 {
            sh.access_range(
                0x1000,
                8,
                false,
                fid(f),
                1,
                ctx(f as u32),
                &clk,
                no_conflict_expected,
            );
        }
        // A writer still conflicts with whatever remains recorded.
        let mut hits = 0;
        sh.access_range(0x1000, 8, true, fid(9), 1, ctx(9), &clk, |_| hits += 1);
        assert!(
            hits >= 3,
            "expected conflicts with surviving slots, got {hits}"
        );
    }

    #[test]
    fn eviction_is_word_local_and_deterministic() {
        // Two far-apart words see the same schedule; interleaving
        // evictions at other words must not change either outcome.
        let survivors = |interleave: bool| {
            let mut sh = ShadowMemory::new();
            let clk = VectorClock::new();
            for f in 1..=5 {
                sh.access_range(0x1000, 8, false, fid(f), 1, ctx(0), &clk, |_| {});
                if interleave {
                    // Unrelated word under eviction pressure — with a
                    // shared rotor this advanced the victim for 0x1000.
                    sh.access_range(0x8_0000, 8, false, fid(f + 20), 1, ctx(0), &clk, |_| {});
                }
            }
            let mut s: Vec<usize> = sh
                .word_accesses(0x1000)
                .iter()
                .map(|a| a.fiber.index())
                .collect();
            s.sort_unstable();
            s
        };
        assert_eq!(survivors(false), survivors(true));
    }

    #[test]
    fn same_fiber_read_after_write_keeps_write_entry() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            8,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            0x1000,
            8,
            false,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let acc = sh.word_accesses(0x1000);
        assert_eq!(acc.len(), 1);
        assert!(acc[0].write, "write entry must survive the subsequent read");
    }

    #[test]
    fn zero_length_range_is_noop() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0x1000,
            0,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 0);
    }

    #[test]
    fn heap_accounting_grows_with_pages_untiered() {
        let mut sh = ShadowMemory::with_tiering(false);
        let clk = VectorClock::new();
        let before = sh.heap_bytes();
        sh.access_range(
            0,
            4 * PAGE_BYTES,
            false,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert!(sh.heap_bytes() >= before + 4 * (PAGE_BYTES * 4));
    }

    // ---- tier behavior -----------------------------------------------------

    #[test]
    fn whole_page_access_stores_a_summary() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0,
            4 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 4);
        assert_eq!(sh.summary_page_count(), 4);
        assert_eq!(sh.counters().page_summaries_stored, 4);
        // Summaries are 4 KiB of coverage for a few words of heap.
        assert!(sh.heap_bytes() < 4 * PAGE_BYTES);
        // Detection still sees the access on every word.
        assert_eq!(sh.word_accesses(2 * PAGE_BYTES + 64).len(), 1);
    }

    #[test]
    fn summary_conflicts_reported_per_word() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0,
            PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let mut words = Vec::new();
        sh.access_range(0, PAGE_BYTES, false, fid(2), 1, ctx(1), &clk, |c| {
            words.push(c.word_addr)
        });
        assert_eq!(words.len(), WORDS_PER_PAGE, "one conflict per word");
        assert_eq!(words[0], 0);
        assert_eq!(words[511], 511 * WORD_BYTES);
        // The page stays summarized: both epochs fit the summary slots.
        assert_eq!(sh.summary_page_count(), 1);
    }

    #[test]
    fn partial_access_unfolds_summary() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(
            0,
            PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.summary_page_count(), 1);
        let mut hits = 0;
        sh.access_range(64, 128, true, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, 16, "conflicts on the 16 overlapped words");
        assert_eq!(sh.summary_page_count(), 0, "summary unfolded");
        assert_eq!(sh.counters().page_unfolds, 1);
        // Words outside the partial overlap kept the summarized epoch.
        assert_eq!(sh.word_accesses(PAGE_BYTES - 8).len(), 1);
        assert_eq!(sh.word_accesses(64).len(), 2);
    }

    #[test]
    fn fastpath_skips_identical_reannotation() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        for _ in 0..10 {
            sh.access_range(
                0,
                PAGE_BYTES,
                true,
                fid(1),
                1,
                ctx(0),
                &clk,
                no_conflict_expected,
            );
        }
        assert_eq!(sh.counters().fastpath_hits, 9);
        assert_eq!(sh.counters().page_summaries_stored, 1);
        // A different epoch misses the cache and is recorded.
        sh.access_range(
            0,
            PAGE_BYTES,
            true,
            fid(1),
            2,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.counters().fastpath_hits, 9);
        assert_eq!(sh.word_accesses(0)[0].clock, 2);
    }

    #[test]
    fn fastpath_does_not_mask_interleaved_writer() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        sh.access_range(0, PAGE_BYTES, false, fid(1), 1, ctx(0), &clk, |_| {});
        // Another fiber writes: invalidates the cache by being different.
        let mut hits = 0;
        sh.access_range(0, PAGE_BYTES, true, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, WORDS_PER_PAGE);
        // Fiber 1 re-issues its identical read — the previous access was
        // fiber 2's write, so this must walk and conflict again.
        hits = 0;
        sh.access_range(0, PAGE_BYTES, false, fid(1), 1, ctx(0), &clk, |_| hits += 1);
        assert_eq!(hits, WORDS_PER_PAGE);
    }

    #[test]
    fn summary_eviction_pressure_unfolds_and_keeps_detecting() {
        let mut sh = ShadowMemory::new();
        let clk = VectorClock::new();
        // Four distinct reader fibers fill the summary slots.
        for f in 1..=4 {
            sh.access_range(
                0,
                PAGE_BYTES,
                false,
                fid(f),
                1,
                ctx(f as u32),
                &clk,
                no_conflict_expected,
            );
        }
        assert_eq!(sh.summary_page_count(), 1);
        // A fifth reader forces eviction — which is word-local, so the
        // summary must unfold rather than evict uniformly.
        sh.access_range(
            0,
            PAGE_BYTES,
            false,
            fid(5),
            1,
            ctx(5),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.summary_page_count(), 0);
        assert_eq!(sh.counters().page_unfolds, 1);
        let mut hits = 0;
        sh.access_range(0, PAGE_BYTES, true, fid(9), 1, ctx(9), &clk, |_| hits += 1);
        assert!(hits >= 3 * WORDS_PER_PAGE as u64, "still detecting");
    }

    // ---- budget / best-effort mode -----------------------------------------

    #[test]
    fn budget_caps_pages_and_counts_drops() {
        let mut sh = ShadowMemory::new();
        sh.set_page_budget(Some(2));
        assert_eq!(sh.page_budget(), Some(2));
        let clk = VectorClock::new();
        sh.access_range(
            0,
            4 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 2, "growth stops at the budget");
        assert_eq!(sh.counters().dropped_annotations, 2);
        // Tracked pages keep full detection...
        let mut hits = 0;
        sh.access_range(0, PAGE_BYTES, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, WORDS_PER_PAGE);
        // ...while dropped pages are best-effort: no record, no conflict.
        let mut hits = 0;
        sh.access_range(
            3 * PAGE_BYTES,
            PAGE_BYTES,
            false,
            fid(2),
            1,
            ctx(1),
            &clk,
            |_| hits += 1,
        );
        assert_eq!(hits, 0);
        assert_eq!(sh.counters().dropped_annotations, 3);
        assert_eq!(sh.page_count(), 2);
    }

    #[test]
    fn budget_applies_untiered_too() {
        let mut sh = ShadowMemory::with_tiering(false);
        sh.set_page_budget(Some(1));
        let clk = VectorClock::new();
        sh.access_range(
            0,
            3 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 1);
        assert_eq!(sh.counters().dropped_annotations, 2);
    }

    #[test]
    fn budget_degradation_is_deterministic() {
        let run = || {
            let mut sh = ShadowMemory::new();
            sh.set_page_budget(Some(3));
            let clk = VectorClock::new();
            let mut conflicts = Vec::new();
            for i in 0..8u64 {
                sh.access_range(
                    i * PAGE_BYTES,
                    PAGE_BYTES,
                    true,
                    fid(1),
                    1,
                    ctx(0),
                    &clk,
                    |_| {},
                );
                sh.access_range(
                    i * PAGE_BYTES,
                    PAGE_BYTES,
                    true,
                    fid(2),
                    1,
                    ctx(1),
                    &clk,
                    |c| conflicts.push(c),
                );
            }
            (sh.counters(), sh.page_count(), conflicts)
        };
        assert_eq!(run(), run());
        let (counters, pages, _) = run();
        assert_eq!(pages, 3);
        assert!(counters.dropped_annotations > 0);
    }

    #[test]
    fn no_budget_means_no_drops() {
        let mut sh = ShadowMemory::new();
        assert_eq!(sh.page_budget(), None);
        let clk = VectorClock::new();
        sh.access_range(
            0,
            64 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 64);
        assert_eq!(sh.counters().dropped_annotations, 0);
    }

    #[test]
    fn untiered_matches_flat_behavior() {
        let mut sh = ShadowMemory::with_tiering(false);
        let clk = VectorClock::new();
        for _ in 0..3 {
            sh.access_range(0, PAGE_BYTES, true, fid(1), 1, ctx(0), &clk, |_| {});
        }
        // No tier events fire untiered; the arena still backs the flat
        // page with one slab.
        let c = sh.counters();
        assert_eq!(c.fastpath_hits, 0);
        assert_eq!(c.page_summaries_stored, 0);
        assert_eq!(c.page_unfolds, 0);
        assert_eq!(c.dropped_annotations, 0);
        assert_eq!(c.arena_slabs_allocated, 1);
        assert_eq!(sh.summary_page_count(), 0);
        let mut hits = 0;
        sh.access_range(0, PAGE_BYTES, false, fid(2), 1, ctx(1), &clk, |_| hits += 1);
        assert_eq!(hits, WORDS_PER_PAGE);
    }

    #[test]
    fn arena_slabs_grow_geometrically() {
        let mut sh = ShadowMemory::with_tiering(false);
        let clk = VectorClock::new();
        // 28 flat pages = 4 + 8 + 16 block capacity → exactly 3 slabs.
        sh.access_range(
            0,
            28 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        let c = sh.counters();
        assert_eq!(c.arena_slabs_allocated, 3);
        assert_eq!(c.arena_pages_reused, 0);
        // Slab bytes dominate: (4+8+16) pages * 16 KiB of slots each.
        assert!(sh.heap_bytes() >= 28 * (SLOTS_PER_PAGE as u64) * 8);
    }

    #[test]
    fn discarded_pages_recycle_and_rezero() {
        let mut sh = ShadowMemory::new();
        let mut clk = VectorClock::new();
        clk.set(fid(1), 1);
        clk.set(fid(2), 1);
        clk.set(fid(3), 1);
        // Fill page 0's words with three concurrent readers so every word
        // holds 3 live slots — recognizable stale payload.
        for f in 1..=3u32 {
            let (ff, fc) = (fid(f as usize), ctx(f));
            sh.access_range(0, PAGE_BYTES, false, ff, 1, fc, &clk, no_conflict_expected);
            // Partial poke forces (and keeps) the page unfolded.
            sh.access_range(16, 8, false, ff, 1, fc, &clk, no_conflict_expected);
        }
        assert_eq!(sh.word_accesses(128).len(), 3);
        assert!(sh.discard_page(0));
        assert!(!sh.discard_page(0), "already discarded");
        assert_eq!(sh.word_accesses(128).len(), 0);

        // Next partial first-touch (zeroed-block path) must pop the
        // recycled block and see no stale slots anywhere.
        sh.access_range(
            PAGE_BYTES + 8,
            8,
            true,
            fid(4),
            1,
            ctx(9),
            &clk,
            no_conflict_expected,
        );
        let c = sh.counters();
        assert_eq!(c.arena_pages_reused, 1);
        assert_eq!(sh.word_accesses(PAGE_BYTES + 8).len(), 1);
        for w in 0..WORDS_PER_PAGE as u64 {
            if w == 1 {
                continue;
            }
            assert!(
                sh.word_accesses(PAGE_BYTES + w * WORD_BYTES).is_empty(),
                "stale slot leaked into recycled zeroed block at word {w}"
            );
        }
    }

    #[test]
    fn evict_all_pages_releases_slabs_and_counts() {
        let mut sh = ShadowMemory::with_tiering(false);
        let clk = VectorClock::new();
        // 6 flat pages → 2 slabs (4 + 8).
        sh.access_range(
            0,
            6 * PAGE_BYTES,
            true,
            fid(1),
            1,
            ctx(0),
            &clk,
            no_conflict_expected,
        );
        assert_eq!(sh.page_count(), 6);
        assert!(sh.heap_bytes() > 0);

        // Per-page discard recycles the block but keeps slab bytes
        // charged (that's the free list working as intended).
        assert!(sh.discard_page(0));
        let bytes_after_discard = sh.heap_bytes();
        assert!(bytes_after_discard >= 12 * (SLOTS_PER_PAGE as u64) * 8);
        assert_eq!(sh.counters().arena_pages_evicted, 1);

        // Whole-shadow eviction returns every block AND the slabs.
        assert_eq!(sh.evict_all_pages(), 5);
        assert_eq!(sh.page_count(), 0);
        assert_eq!(sh.heap_bytes(), 0);
        let c = sh.counters();
        assert_eq!(c.arena_pages_evicted, 6);
        assert_eq!(c.arena_slabs_allocated, 2);

        // The arena still works after a trim (re-grows from scratch) and
        // keeps cumulative counters.
        sh.access_range(0, PAGE_BYTES, true, fid(1), 1, ctx(0), &clk, |_| {});
        assert_eq!(sh.page_count(), 1);
        assert_eq!(sh.counters().arena_slabs_allocated, 3);
        assert!(sh.heap_bytes() > 0);
    }

    #[test]
    fn recycled_unfold_overwrites_stale_tail() {
        let mut sh = ShadowMemory::new();
        let mut clk = VectorClock::new();
        clk.set(fid(1), 1);
        clk.set(fid(2), 1);
        clk.set(fid(3), 1);
        // Page 0: 3 live slots per word, unfolded, then discarded — the
        // freed block is dense with stale epochs.
        for f in 1..=3u32 {
            let (ff, fc) = (fid(f as usize), ctx(f));
            sh.access_range(0, PAGE_BYTES, false, ff, 1, fc, &clk, no_conflict_expected);
        }
        sh.access_range(16, 8, false, fid(1), 1, ctx(1), &clk, no_conflict_expected);
        assert!(sh.discard_page(0));

        // Page 1: whole-page summary with ONE live slot, then a partial
        // write unfolds it through the recycled block (alloc_filled). If
        // the fill skipped the zero tail, words would show the stale
        // 3-reader slots from page 0.
        let base = PAGE_BYTES;
        sh.access_range(
            base,
            PAGE_BYTES,
            false,
            fid(5),
            1,
            ctx(5),
            &clk,
            no_conflict_expected,
        );
        sh.access_range(
            base + 32,
            8,
            false,
            fid(5),
            1,
            ctx(5),
            &clk,
            no_conflict_expected,
        );
        let c = sh.counters();
        assert_eq!(c.arena_pages_reused, 1);
        assert_eq!(c.page_unfolds, 2, "page 0 then page 1 each unfolded once");
        for w in 0..WORDS_PER_PAGE as u64 {
            let acc = sh.word_accesses(base + w * WORD_BYTES);
            assert_eq!(
                acc.len(),
                1,
                "recycled unfold left stale slots at word {w}: {acc:?}"
            );
            assert_eq!(acc[0].fiber, fid(5));
        }
    }

    #[test]
    fn arena_onoff_shadow_states_agree() {
        let run = |arena: bool| {
            let mut sh = ShadowMemory::with_options(true, arena);
            let mut clk = VectorClock::new();
            clk.set(fid(1), 1);
            let mut conflicts = Vec::new();
            // Mixed schedule: summaries, unfolds, evictions, partials.
            for f in 1..=5u32 {
                let (ff, fc) = (fid(f as usize), ctx(f));
                sh.access_range(0, 2 * PAGE_BYTES, false, ff, 1, fc, &clk, |c| {
                    conflicts.push(c)
                });
                sh.access_range(40, 16, true, ff, 2, fc, &clk, |c| conflicts.push(c));
            }
            let words: Vec<Vec<ShadowAccess>> = (0..2 * WORDS_PER_PAGE as u64)
                .map(|w| sh.word_accesses(w * WORD_BYTES))
                .collect();
            (words, conflicts, sh.page_count())
        };
        let (w_on, c_on, p_on) = run(true);
        let (w_off, c_off, p_off) = run(false);
        assert_eq!(w_on, w_off);
        assert_eq!(c_on, c_off);
        assert_eq!(p_on, p_off);
    }
}
