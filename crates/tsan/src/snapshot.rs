//! Byte-exact snapshot/restore of a live [`crate::TsanRuntime`].
//!
//! The serve path needs to evict *unfinished* sessions under memory
//! pressure and transparently resume them later — possibly in a freshly
//! restarted server process. That only preserves the detector's verdict
//! if the restored runtime is observationally identical to the one that
//! was spilled: same future race set, same counters, same fiber
//! numbering, same eviction victims. This module provides the codec
//! ([`SnapshotWriter`] / [`SnapshotReader`]) and the per-subsystem
//! serialization rules that make that guarantee hold:
//!
//! * **Vector clocks** are stored component-for-component (capacity is
//!   not observable — only `heap_bytes`, which no summary includes).
//! * **The fiber table** keeps its free list verbatim, so LIFO slot
//!   reuse — and with it replayed fiber numbering — continues exactly
//!   where it left off.
//! * **Shadow pages** are stored sorted by page key; arena-backed pages
//!   record their exact [`crate::shadow`] block handle so the restored
//!   arena re-carves and recycles in the same order as a never-spilled
//!   run (the arena counters are part of the summary surface).
//! * **Hash-ordered state** (sync vars, report-dedup keys) is sorted
//!   before writing; map iteration order is not observable downstream,
//!   so sorted re-insertion is safe.
//!
//! Everything is little-endian, length-prefixed, and versioned. The
//! format is a *process-lifetime* interchange format for spill files,
//! not a long-term archival format: [`SNAPSHOT_VERSION`] may move
//! without migration support.

use std::fmt;

/// Magic prefix of a [`crate::TsanRuntime::snapshot_bytes`] blob.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"cusansnp";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Why a snapshot blob could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The blob ended before the decoder was done.
    Truncated,
    /// The magic prefix did not match [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The version field is one this build cannot read.
    UnsupportedVersion(u32),
    /// A structurally invalid value (bad index, non-UTF-8 string, ...).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic => write!(f, "not a cusan snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v}")
            }
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Little-endian append-only encoder for snapshot blobs.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0/1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a collection length as u64.
    pub fn put_len(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append raw bytes without a length prefix (magic prefixes).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append length-prefixed bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_len(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor-based decoder over a snapshot blob.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        SnapshotReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Read a bool, rejecting anything but 0/1.
    pub fn get_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(SnapshotError::Corrupt(format!("bad bool byte {b:#x}"))),
        }
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Read a collection length, bounding it by the bytes actually left
    /// (each element costs ≥ 1 byte) so a corrupt length can never
    /// drive a pre-allocation of gigabytes.
    pub fn get_len(&mut self) -> Result<usize, SnapshotError> {
        let v = self.get_u64()?;
        let v = usize::try_from(v).map_err(|_| SnapshotError::Corrupt(format!("length {v}")))?;
        if v > self.remaining() {
            return Err(SnapshotError::Truncated);
        }
        Ok(v)
    }

    /// Read `n` raw bytes (magic prefixes).
    pub fn get_raw(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        self.take(n)
    }

    /// Read length-prefixed bytes.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| SnapshotError::Corrupt(format!("invalid UTF-8 string: {e}")))
    }

    /// Error unless every byte was consumed — a trailing-garbage guard
    /// for top-level blobs.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() != 0 {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after snapshot",
                self.remaining()
            )));
        }
        Ok(())
    }
}

pub(crate) fn write_clock(w: &mut SnapshotWriter, clock: &crate::clock::VectorClock) {
    let c = clock.components();
    w.put_len(c.len());
    for &v in c {
        w.put_u32(v);
    }
}

pub(crate) fn read_clock(
    r: &mut SnapshotReader<'_>,
) -> Result<crate::clock::VectorClock, SnapshotError> {
    let n = r.get_len()?;
    let mut c = Vec::with_capacity(n);
    for _ in 0..n {
        c.push(r.get_u32()?);
    }
    Ok(crate::clock::VectorClock::from_components(c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_primitives() {
        let mut w = SnapshotWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_bool(false);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_bytes(b"abc");
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_bytes().unwrap(), b"abc");
        assert_eq!(r.get_str().unwrap(), "héllo");
        r.expect_end().unwrap();
    }

    #[test]
    fn reader_reports_truncation() {
        let mut w = SnapshotWriter::new();
        w.put_u64(5);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes[..3]);
        assert_eq!(r.get_u64(), Err(SnapshotError::Truncated));
    }

    #[test]
    fn reader_rejects_bad_bool_and_oversized_len() {
        let mut r = SnapshotReader::new(&[2]);
        assert!(matches!(r.get_bool(), Err(SnapshotError::Corrupt(_))));
        // A length claiming more elements than bytes remain is truncation,
        // caught before any allocation happens.
        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.get_len().is_err());
    }

    #[test]
    fn expect_end_flags_trailing_bytes() {
        let mut w = SnapshotWriter::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        r.get_u8().unwrap();
        assert!(matches!(r.expect_end(), Err(SnapshotError::Corrupt(_))));
        r.get_u8().unwrap();
        r.expect_end().unwrap();
    }

    #[test]
    fn clock_roundtrip() {
        use crate::clock::VectorClock;
        use crate::fiber::FiberId;
        let mut c = VectorClock::new();
        c.set(FiberId::from_index(0), 3);
        c.set(FiberId::from_index(5), 9);
        let mut w = SnapshotWriter::new();
        write_clock(&mut w, &c);
        let bytes = w.into_bytes();
        let mut r = SnapshotReader::new(&bytes);
        let back = read_clock(&mut r).unwrap();
        assert_eq!(back, c);
        assert_eq!(back.len(), c.len());
    }
}
