//! Event counters and memory accounting.
//!
//! These counters back the reproduction of the paper's Table I (TSan rows:
//! fiber switches, happens-before/after annotations, read/write range
//! counts and tracked byte volumes) and contribute the tool share of the
//! Fig. 11 memory-overhead reproduction.

/// Counters maintained by a [`crate::TsanRuntime`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TsanStats {
    /// `switch_to_fiber` calls (Table I: "Switch To Fiber").
    pub fiber_switches: u64,
    /// Fibers created (host fiber included).
    pub fibers_created: u64,
    /// Fibers destroyed.
    pub fibers_destroyed: u64,
    /// `annotate_happens_before` calls (Table I).
    pub happens_before: u64,
    /// `annotate_happens_after` calls (Table I).
    pub happens_after: u64,
    /// `read_range` calls (Table I: "Memory Read Range").
    pub read_range_calls: u64,
    /// `write_range` calls (Table I: "Memory Write Range").
    pub write_range_calls: u64,
    /// Total bytes covered by `read_range` calls.
    pub read_bytes: u64,
    /// Total bytes covered by `write_range` calls.
    pub write_bytes: u64,
    /// Races reported (after dedup, before suppression).
    pub races_reported: u64,
    /// Races suppressed by the suppression list.
    pub races_suppressed: u64,
    /// Conflicts dropped because an identical (ctx, ctx) pair was already
    /// reported.
    pub races_deduped: u64,
    /// Whole range annotations skipped by the shadow's same-state
    /// last-access cache (identical range re-annotated in the same epoch).
    pub fastpath_hits: u64,
    /// Whole-page accesses recorded at the page-summary tier (one packed
    /// store instead of a 512-word walk).
    pub page_summaries_stored: u64,
    /// Page summaries expanded into flat word slots by a partial overlap
    /// or eviction pressure.
    pub page_unfolds: u64,
    /// Page-sized annotation chunks the shadow dropped after reaching its
    /// page budget (best-effort degradation; 0 unless a budget is set).
    pub dropped_annotations: u64,
    /// Acquire-side joins skipped by the scalar epoch fast paths: repeat
    /// acquires and own-release acquires on `annotate_happens_after`,
    /// plus sync fiber switches whose source clock is provably unchanged.
    pub epoch_fast_acquires: u64,
    /// Release-side joins collapsed to a single-component update because
    /// the releaser's clock was unchanged since its previous release on
    /// the same sync variable.
    pub epoch_fast_releases: u64,
    /// Full O(fibers) vector-clock joins performed (release, acquire, and
    /// sync-switch slow paths). The epoch fast-path hit rate is
    /// `epoch_fast_acquires + epoch_fast_releases` against this.
    pub full_clock_joins: u64,
    /// Shadow page blocks recycled from the arena free list instead of
    /// freshly carved.
    pub arena_pages_reused: u64,
    /// Arena slabs allocated (geometric growth: 4 pages doubling to the
    /// cap, so this stays logarithmic in the unfolded page count).
    pub arena_slabs_allocated: u64,
    /// Arena page blocks returned to the free list by page discard or
    /// whole-shadow eviction (the serve path's global-budget reclaim).
    pub arena_pages_evicted: u64,
}

impl TsanStats {
    /// Average bytes per `read_range` call in KiB (Table I: "Memory Read
    /// Size [avg KB]").
    pub fn avg_read_kb(&self) -> f64 {
        if self.read_range_calls == 0 {
            0.0
        } else {
            self.read_bytes as f64 / self.read_range_calls as f64 / 1024.0
        }
    }

    /// Average bytes per `write_range` call in KiB.
    pub fn avg_write_kb(&self) -> f64 {
        if self.write_range_calls == 0 {
            0.0
        } else {
            self.write_bytes as f64 / self.write_range_calls as f64 / 1024.0
        }
    }

    /// Elementwise sum (for aggregating over ranks).
    pub fn merged(&self, other: &TsanStats) -> TsanStats {
        TsanStats {
            fiber_switches: self.fiber_switches + other.fiber_switches,
            fibers_created: self.fibers_created + other.fibers_created,
            fibers_destroyed: self.fibers_destroyed + other.fibers_destroyed,
            happens_before: self.happens_before + other.happens_before,
            happens_after: self.happens_after + other.happens_after,
            read_range_calls: self.read_range_calls + other.read_range_calls,
            write_range_calls: self.write_range_calls + other.write_range_calls,
            read_bytes: self.read_bytes + other.read_bytes,
            write_bytes: self.write_bytes + other.write_bytes,
            races_reported: self.races_reported + other.races_reported,
            races_suppressed: self.races_suppressed + other.races_suppressed,
            races_deduped: self.races_deduped + other.races_deduped,
            fastpath_hits: self.fastpath_hits + other.fastpath_hits,
            page_summaries_stored: self.page_summaries_stored + other.page_summaries_stored,
            page_unfolds: self.page_unfolds + other.page_unfolds,
            dropped_annotations: self.dropped_annotations + other.dropped_annotations,
            epoch_fast_acquires: self.epoch_fast_acquires + other.epoch_fast_acquires,
            epoch_fast_releases: self.epoch_fast_releases + other.epoch_fast_releases,
            full_clock_joins: self.full_clock_joins + other.full_clock_joins,
            arena_pages_reused: self.arena_pages_reused + other.arena_pages_reused,
            arena_slabs_allocated: self.arena_slabs_allocated + other.arena_slabs_allocated,
            arena_pages_evicted: self.arena_pages_evicted + other.arena_pages_evicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_kb_handles_zero_calls() {
        let s = TsanStats::default();
        assert_eq!(s.avg_read_kb(), 0.0);
        assert_eq!(s.avg_write_kb(), 0.0);
    }

    #[test]
    fn avg_kb_computes_mean() {
        let s = TsanStats {
            read_range_calls: 2,
            read_bytes: 4096,
            write_range_calls: 4,
            write_bytes: 8192,
            ..TsanStats::default()
        };
        assert_eq!(s.avg_read_kb(), 2.0);
        assert_eq!(s.avg_write_kb(), 2.0);
    }

    #[test]
    fn merged_sums_fields() {
        let a = TsanStats {
            happens_before: 3,
            read_bytes: 10,
            ..TsanStats::default()
        };
        let b = TsanStats {
            happens_before: 4,
            read_bytes: 5,
            ..TsanStats::default()
        };
        let m = a.merged(&b);
        assert_eq!(m.happens_before, 7);
        assert_eq!(m.read_bytes, 15);
    }
}
