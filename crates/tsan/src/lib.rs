//! # tsan-rt — a ThreadSanitizer-style happens-before race detection engine
//!
//! This crate reimplements, in safe Rust, the part of ThreadSanitizer that
//! CuSan and MUST build on (paper §II-A):
//!
//! * **Vector-clock happens-before analysis**: every execution context
//!   carries a vector clock; synchronization is expressed as release
//!   ([`TsanRuntime::annotate_happens_before`]) / acquire
//!   ([`TsanRuntime::annotate_happens_after`]) pairs keyed by an address-like
//!   [`SyncKey`], exactly mirroring TSan's annotation API.
//! * **Fibers** ([`TsanRuntime::create_fiber`], `switch_to_fiber`): TSan's
//!   abstraction for user-defined concurrency, adopted by MUST for
//!   non-blocking MPI operations and by CuSan for CUDA streams. Fiber
//!   switches do *not* imply synchronization.
//! * **Shadow memory**: 4 shadow slots per 8-byte application word (the
//!   same shape as TSan's shadow), storing packed epochs of recent accesses.
//!   New accesses are checked against the stored slots; two accesses
//!   conflict when they touch the same word from different fibers, at least
//!   one is a write, and neither happens-before the other.
//! * **Range annotations** ([`TsanRuntime::read_range`] /
//!   [`TsanRuntime::write_range`]): the `tsan_read/write_range` calls CuSan
//!   issues for kernel arguments and MUST issues for MPI buffers. Their cost
//!   is proportional to the range length — the effect the paper measures in
//!   Fig. 12.
//!
//! The runtime is intentionally **single-threaded**: the paper runs one
//! TSan instance per MPI process, and `cusan-rs` runs one `TsanRuntime` per
//! simulated rank. Cross-rank interactions are MPI's concern, not TSan's.
//!
//! ## Differences from the real TSan, and why they don't matter here
//!
//! * Shadow cells are evicted round-robin (TSan evicts randomly); both can
//!   drop history and miss races, but deterministic eviction keeps tests
//!   reproducible.
//! * The simulated allocator never reuses addresses, so shadow is never
//!   recycled and no allocation "sweeping" is needed.
//! * Stack traces are replaced by interned *access context* labels supplied
//!   at annotation sites.

pub mod clock;
pub mod fiber;
mod fxhash;
pub mod report;
pub mod runtime;
pub mod shadow;
pub mod snapshot;
pub mod stats;

pub use clock::VectorClock;
pub use fiber::FiberId;
pub use report::{CtxId, RaceReport};
pub use runtime::{SyncKey, TsanRuntime};
pub use snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
pub use stats::TsanStats;
