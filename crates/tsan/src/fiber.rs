//! Fibers: user-defined execution contexts (TSan's fiber API).
//!
//! MUST models each non-blocking MPI operation as a fiber; CuSan models
//! each CUDA stream as a fiber (paper §IV-A). The host thread itself is
//! fiber 0. Switching fibers changes which vector clock subsequent accesses
//! are attributed to and implies **no** synchronization.

use crate::clock::VectorClock;
use crate::snapshot::{read_clock, write_clock, SnapshotError, SnapshotReader, SnapshotWriter};

/// Identifier of a fiber. Ids index densely into the runtime's fiber table;
/// slots of destroyed fibers are reused (with a monotonically growing clock,
/// so stale shadow epochs can only cause conservative results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiberId(u32);

impl FiberId {
    /// The host thread's fiber (always present).
    pub const HOST: FiberId = FiberId(0);

    /// Construct from a raw index (used by tests and the shadow codec).
    pub fn from_index(i: usize) -> FiberId {
        FiberId(i as u32)
    }

    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Maximum number of simultaneously-live fibers; bounded by the 11-bit
/// fiber field in the packed shadow epoch (see [`crate::shadow`]).
pub const MAX_FIBERS: usize = 1 << 11;

/// Identifies one fiber clock value without comparing the clock itself:
/// within one slot incarnation, `gen` bumps on every clock change that is
/// *not* an own-component bump, and the own component (the epoch) covers
/// the rest — so two equal `(incarnation, gen, epoch)` triples for one
/// slot prove the underlying clocks were equal. The epoch-compression
/// fast paths in [`crate::TsanRuntime`] stamp and compare these.
pub(crate) type ClockStamp = (FiberId, u32, u64, u32); // (fiber, incarnation, gen, epoch)

#[derive(Debug)]
pub(crate) struct Fiber {
    pub clock: VectorClock,
    pub name: String,
    pub alive: bool,
    /// Bumped each time this slot is reused for a new fiber. Guards every
    /// scalar fast path against stale stamps referring to a previous
    /// incarnation (whose clock the current one does not dominate).
    pub incarnation: u32,
    /// Clock-generation counter: bumped whenever this fiber's clock
    /// changes other than by bumping its own component (i.e. on acquire
    /// joins and sync switches that grew the clock, and on slot reuse).
    /// Never reset, so `(incarnation, gen, epoch)` triples stay unique.
    pub gen: u64,
    /// Stamp of the source clock this fiber last sync-switch-joined, if
    /// still known-valid. While the source clock is provably unchanged
    /// (same stamp) the join can be skipped: this clock already dominates
    /// it. Cleared on slot reuse.
    pub last_sync: Option<ClockStamp>,
    /// Sole-source window: if `Some((f, inc))`, every foreign change to
    /// this clock in generations `(sole_since_gen, gen]` came from joining
    /// snapshots of fiber slot `f` at incarnation `inc`. Lets a sync
    /// switch *onto* `f` skip its join even though `gen` moved: the only
    /// things acquired since the recorded stamp were `f`'s own past
    /// clocks, which `f` still dominates. The host-syncs-on-one-stream
    /// loop (TeaLeaf) lives in this window. Cleared (window emptied) on
    /// slot reuse and on any join from a different or unidentifiable
    /// source.
    pub sole_source: Option<(FiberId, u32)>,
    /// Start of the sole-source window (exclusive); see [`Self::sole_source`].
    pub sole_since_gen: u64,
}

impl Fiber {
    /// Record a foreign clock change sourced from `src` (the identity of
    /// the snapshot joined, if it was a pure snapshot of one fiber slot):
    /// extends the sole-source window when the source repeats, restarts
    /// it otherwise, and bumps `gen`.
    pub fn note_foreign_join(&mut self, src: Option<(FiberId, u32)>) {
        if src.is_none() || self.sole_source != src {
            self.sole_since_gen = self.gen;
            self.sole_source = src;
        }
        self.gen += 1;
    }
}

/// The fiber table: creation, destruction with slot reuse, lookup.
#[derive(Debug)]
pub(crate) struct FiberTable {
    fibers: Vec<Fiber>,
    free: Vec<u32>,
    pub created: u64,
    pub destroyed: u64,
}

impl FiberTable {
    pub fn new(host_name: &str) -> Self {
        let mut host_clock = VectorClock::new();
        host_clock.set(FiberId::HOST, 1);
        FiberTable {
            fibers: vec![Fiber {
                clock: host_clock,
                name: host_name.to_string(),
                alive: true,
                incarnation: 0,
                gen: 0,
                last_sync: None,
                sole_source: None,
                sole_since_gen: 0,
            }],
            free: Vec::new(),
            created: 1,
            destroyed: 0,
        }
    }

    /// Create a fiber whose clock inherits `creator_clock` (fiber creation
    /// synchronizes with the creator, like thread creation in TSan).
    /// Reference implementation for [`Self::create_child`], which is the
    /// clone-free path the runtime uses; tests assert their equivalence.
    #[cfg(test)]
    pub fn create(&mut self, name: &str, creator_clock: &VectorClock) -> FiberId {
        self.created += 1;
        if let Some(idx) = self.free.pop() {
            let id = FiberId(idx);
            let old_time = self.fibers[id.index()].clock.get(id);
            let fiber = &mut self.fibers[id.index()];
            fiber.clock = creator_clock.clone();
            // Keep own time strictly monotonic across reuse so stale shadow
            // epochs from a previous incarnation never look concurrent with
            // themselves.
            fiber.clock.set(id, old_time.max(creator_clock.get(id)) + 1);
            fiber.name = name.to_string();
            fiber.alive = true;
            fiber.incarnation += 1;
            fiber.gen += 1;
            fiber.last_sync = None;
            fiber.sole_source = None;
            fiber.sole_since_gen = fiber.gen;
            id
        } else {
            assert!(self.fibers.len() < MAX_FIBERS, "fiber table exhausted");
            let id = FiberId(self.fibers.len() as u32);
            let mut clock = creator_clock.clone();
            clock.set(id, 1);
            self.fibers.push(Fiber {
                clock,
                name: name.to_string(),
                alive: true,
                incarnation: 0,
                gen: 0,
                last_sync: None,
                sole_source: None,
                sole_since_gen: 0,
            });
            id
        }
    }

    /// Create a fiber as a child of live fiber `creator`: bumps the
    /// creator's own component (the release edge of fiber creation), then
    /// gives the child the creator's *pre-bump* clock — equivalent to
    /// snapshotting the creator, bumping it, and calling [`Self::create`]
    /// with the snapshot, but without the temporary clone. Slot-reuse
    /// copies into the retired fiber's existing clock allocation.
    pub fn create_child(&mut self, name: &str, creator: FiberId) -> FiberId {
        self.created += 1;
        if let Some(idx) = self.free.pop() {
            let id = FiberId(idx);
            debug_assert_ne!(id, creator, "creator fiber cannot be on the free list");
            let (child, parent) = self.pair_mut(id, creator);
            let old_time = child.clock.get(id);
            child.clock.copy_from(&parent.clock);
            // Keep own time strictly monotonic across reuse so stale shadow
            // epochs from a previous incarnation never look concurrent with
            // themselves.
            child.clock.set(id, old_time.max(parent.clock.get(id)) + 1);
            child.name.clear();
            child.name.push_str(name);
            child.alive = true;
            child.incarnation += 1;
            child.gen += 1;
            child.last_sync = None;
            child.sole_source = None;
            child.sole_since_gen = child.gen;
            parent.clock.bump(creator);
            id
        } else {
            assert!(self.fibers.len() < MAX_FIBERS, "fiber table exhausted");
            let id = FiberId(self.fibers.len() as u32);
            let parent = &mut self.fibers[creator.index()];
            let mut clock = parent.clock.clone();
            clock.set(id, 1);
            parent.clock.bump(creator);
            self.fibers.push(Fiber {
                clock,
                name: name.to_string(),
                alive: true,
                incarnation: 0,
                gen: 0,
                last_sync: None,
                sole_source: None,
                sole_since_gen: 0,
            });
            id
        }
    }

    /// Mutable references to two *distinct* fibers at once.
    pub fn pair_mut(&mut self, a: FiberId, b: FiberId) -> (&mut Fiber, &mut Fiber) {
        let (ai, bi) = (a.index(), b.index());
        assert_ne!(ai, bi, "pair_mut requires distinct fibers");
        if ai < bi {
            let (lo, hi) = self.fibers.split_at_mut(bi);
            (&mut lo[ai], &mut hi[0])
        } else {
            let (lo, hi) = self.fibers.split_at_mut(ai);
            (&mut hi[0], &mut lo[bi])
        }
    }

    /// The id the next [`Self::create`] call will return (slots of
    /// destroyed fibers are reused LIFO). Lets callers that reify fiber
    /// creation as an event know the id before applying the event.
    pub fn peek_next(&self) -> FiberId {
        match self.free.last() {
            Some(&idx) => FiberId(idx),
            None => FiberId(self.fibers.len() as u32),
        }
    }

    pub fn destroy(&mut self, id: FiberId) {
        assert!(id != FiberId::HOST, "cannot destroy the host fiber");
        let f = &mut self.fibers[id.index()];
        assert!(f.alive, "double destroy of fiber {:?} ({})", id, f.name);
        f.alive = false;
        self.destroyed += 1;
        self.free.push(id.0);
    }

    #[inline]
    pub fn get(&self, id: FiberId) -> &Fiber {
        &self.fibers[id.index()]
    }

    #[inline]
    pub fn get_mut(&mut self, id: FiberId) -> &mut Fiber {
        &mut self.fibers[id.index()]
    }

    pub fn name(&self, id: FiberId) -> &str {
        &self.fibers[id.index()].name
    }

    pub fn is_alive(&self, id: FiberId) -> bool {
        self.fibers
            .get(id.index())
            .map(|f| f.alive)
            .unwrap_or(false)
    }

    pub fn live_count(&self) -> usize {
        self.fibers.len() - self.free.len()
    }

    pub fn heap_bytes(&self) -> u64 {
        self.fibers
            .iter()
            .map(|f| f.clock.heap_bytes() + f.name.capacity() as u64)
            .sum::<u64>()
            + (self.fibers.capacity() * std::mem::size_of::<Fiber>()) as u64
    }

    /// Total slots (live + retired) in the table — bounds-checks ids
    /// decoded from snapshots.
    pub(crate) fn slot_count(&self) -> usize {
        self.fibers.len()
    }

    /// Serialize the whole table, free list verbatim: LIFO slot reuse —
    /// and with it replayed fiber numbering — must continue exactly
    /// where the snapshotted table left off.
    pub(crate) fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.created);
        w.put_u64(self.destroyed);
        w.put_len(self.free.len());
        for &idx in &self.free {
            w.put_u32(idx);
        }
        w.put_len(self.fibers.len());
        for f in &self.fibers {
            write_clock(w, &f.clock);
            w.put_str(&f.name);
            w.put_bool(f.alive);
            w.put_u32(f.incarnation);
            w.put_u64(f.gen);
            w.put_bool(f.last_sync.is_some());
            if let Some((sf, inc, gen, epoch)) = f.last_sync {
                w.put_u32(sf.index() as u32);
                w.put_u32(inc);
                w.put_u64(gen);
                w.put_u32(epoch);
            }
            w.put_bool(f.sole_source.is_some());
            if let Some((sf, inc)) = f.sole_source {
                w.put_u32(sf.index() as u32);
                w.put_u32(inc);
            }
            w.put_u64(f.sole_since_gen);
        }
    }

    /// Rebuild a table from [`Self::write_snapshot`] output.
    pub(crate) fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let created = r.get_u64()?;
        let destroyed = r.get_u64()?;
        let n_free = r.get_len()?;
        let mut free = Vec::with_capacity(n_free);
        for _ in 0..n_free {
            free.push(r.get_u32()?);
        }
        let n_fibers = r.get_len()?;
        if n_fibers == 0 || n_fibers > MAX_FIBERS {
            return Err(SnapshotError::Corrupt(format!(
                "fiber table of {n_fibers} slots"
            )));
        }
        if let Some(&idx) = free.iter().find(|&&idx| idx as usize >= n_fibers) {
            return Err(SnapshotError::Corrupt(format!(
                "free-list slot {idx} out of range"
            )));
        }
        let mut fibers = Vec::with_capacity(n_fibers);
        for _ in 0..n_fibers {
            let clock = read_clock(r)?;
            let name = r.get_str()?;
            let alive = r.get_bool()?;
            let incarnation = r.get_u32()?;
            let gen = r.get_u64()?;
            let last_sync = if r.get_bool()? {
                Some((
                    FiberId::from_index(r.get_u32()? as usize),
                    r.get_u32()?,
                    r.get_u64()?,
                    r.get_u32()?,
                ))
            } else {
                None
            };
            let sole_source = if r.get_bool()? {
                Some((FiberId::from_index(r.get_u32()? as usize), r.get_u32()?))
            } else {
                None
            };
            let sole_since_gen = r.get_u64()?;
            fibers.push(Fiber {
                clock,
                name,
                alive,
                incarnation,
                gen,
                last_sync,
                sole_source,
                sole_since_gen,
            });
        }
        Ok(FiberTable {
            fibers,
            free,
            created,
            destroyed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_fiber_exists() {
        let t = FiberTable::new("host");
        assert!(t.is_alive(FiberId::HOST));
        assert_eq!(t.name(FiberId::HOST), "host");
        assert_eq!(t.live_count(), 1);
    }

    #[test]
    fn create_inherits_creator_clock() {
        let mut t = FiberTable::new("host");
        let mut creator = VectorClock::new();
        creator.set(FiberId::HOST, 5);
        let f = t.create("stream0", &creator);
        assert_eq!(t.get(f).clock.get(FiberId::HOST), 5);
        assert!(t.get(f).clock.get(f) >= 1);
    }

    #[test]
    fn destroy_and_reuse_keeps_time_monotonic() {
        let mut t = FiberTable::new("host");
        let creator = VectorClock::new();
        let f1 = t.create("req1", &creator);
        let time1 = t.get(f1).clock.get(f1);
        t.destroy(f1);
        let f2 = t.create("req2", &creator);
        assert_eq!(f1, f2, "slot should be reused");
        assert!(t.get(f2).clock.get(f2) > time1);
        assert_eq!(t.name(f2), "req2");
        assert_eq!(t.created, 3);
        assert_eq!(t.destroyed, 1);
    }

    #[test]
    fn peek_next_predicts_creation() {
        let mut t = FiberTable::new("host");
        let creator = VectorClock::new();
        assert_eq!(t.peek_next(), FiberId(1));
        let f1 = t.create("a", &creator);
        assert_eq!(f1, FiberId(1));
        let _f2 = t.create("b", &creator);
        t.destroy(f1);
        // Freed slots are reused LIFO, and peek must predict that too.
        assert_eq!(t.peek_next(), f1);
        assert_eq!(t.create("c", &creator), f1);
        assert_eq!(t.peek_next(), FiberId(3));
    }

    #[test]
    fn create_child_matches_snapshot_create() {
        // create_child must behave exactly like: snapshot creator clock,
        // bump creator, create(snapshot) — including across slot reuse.
        let drive = |child_path: bool| {
            let mut t = FiberTable::new("host");
            let mk = |t: &mut FiberTable, name: &str| {
                if child_path {
                    t.create_child(name, FiberId::HOST)
                } else {
                    let snap = t.get(FiberId::HOST).clock.clone();
                    t.get_mut(FiberId::HOST).clock.bump(FiberId::HOST);
                    t.create(name, &snap)
                }
            };
            let a = mk(&mut t, "a");
            let b = mk(&mut t, "b");
            t.destroy(a);
            let c = mk(&mut t, "c"); // reuses a's slot
            assert_eq!(a, c);
            let ids = [FiberId::HOST, a, b];
            let clocks: Vec<Vec<u32>> = [FiberId::HOST, c, b]
                .iter()
                .map(|&f| ids.iter().map(|&g| t.get(f).clock.get(g)).collect())
                .collect();
            (clocks, t.created, t.destroyed, t.name(c).to_string())
        };
        assert_eq!(drive(true), drive(false));
    }

    #[test]
    fn pair_mut_returns_distinct_fibers_in_order() {
        let mut t = FiberTable::new("host");
        let f = t.create_child("x", FiberId::HOST);
        let (a, b) = t.pair_mut(FiberId::HOST, f);
        a.clock.set(FiberId::HOST, 41);
        b.clock.set(f, 17);
        assert_eq!(t.get(FiberId::HOST).clock.get(FiberId::HOST), 41);
        assert_eq!(t.get(f).clock.get(f), 17);
        // Order of arguments maps to order of returns in both directions.
        let (b2, a2) = t.pair_mut(f, FiberId::HOST);
        assert_eq!(b2.name, "x");
        assert_eq!(a2.name, "host");
    }

    #[test]
    fn slot_reuse_bumps_incarnation_and_gen_and_clears_stamp() {
        let mut t = FiberTable::new("host");
        let f1 = t.create_child("req1", FiberId::HOST);
        assert_eq!(t.get(f1).incarnation, 0);
        let gen0 = t.get(f1).gen;
        t.get_mut(f1).last_sync = Some((FiberId::HOST, 0, 0, 1));
        t.destroy(f1);
        let f2 = t.create_child("req2", FiberId::HOST);
        assert_eq!(f1, f2, "slot should be reused");
        assert_eq!(t.get(f2).incarnation, 1);
        assert!(t.get(f2).gen > gen0);
        assert_eq!(t.get(f2).last_sync, None);
        // Fresh slots always start at incarnation 0.
        let f3 = t.create_child("fresh", FiberId::HOST);
        assert_ne!(f3, f2);
        assert_eq!(t.get(f3).incarnation, 0);
        assert_eq!(t.get(f3).gen, 0);
    }

    #[test]
    #[should_panic(expected = "double destroy")]
    fn double_destroy_panics() {
        let mut t = FiberTable::new("host");
        let f = t.create("x", &VectorClock::new());
        t.destroy(f);
        t.destroy(f);
    }

    #[test]
    #[should_panic(expected = "host fiber")]
    fn destroy_host_panics() {
        let mut t = FiberTable::new("host");
        t.destroy(FiberId::HOST);
    }
}
