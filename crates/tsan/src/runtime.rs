//! The TSan-style runtime: fibers + shadow + sync vars + reporting.

use crate::clock::VectorClock;
use crate::fiber::{FiberId, FiberTable};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::report::{CtxId, CtxTable, RaceReport, RaceSide, Suppressions};
use crate::shadow::ShadowMemory;
use crate::snapshot::{
    read_clock, write_clock, SnapshotError, SnapshotReader, SnapshotWriter, SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
};
use crate::stats::TsanStats;

/// Key identifying a synchronization variable — the analogue of the memory
/// address passed to `AnnotateHappensBefore/After`. CuSan derives keys from
/// stream/event identities; MUST derives them from MPI request identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyncKey(pub u64);

/// Default cap on retained race reports (detection continues counting
/// after the cap; only report storage stops growing).
pub const DEFAULT_MAX_REPORTS: usize = 256;

/// One synchronization variable: the full released clock plus the scalar
/// epoch cache the compressed fast paths compare against.
///
/// `compressed` means `clock` is exactly the releaser's clock as of the
/// stamp `(releaser, rel_inc, rel_gen, epoch)` — not a join of several
/// fibers' clocks — which is what makes the two-word scalar comparisons
/// below sound (see DESIGN.md "Shadow arena & epoch clocks").
struct SyncVar {
    clock: VectorClock,
    /// Fiber that last released on this variable.
    releaser: FiberId,
    /// The releaser slot's incarnation at release time. Slot reuse gives
    /// a recycled [`FiberId`] a clock the old incarnation's stamps say
    /// nothing about, so every fast path requires an incarnation match.
    rel_inc: u32,
    /// The releaser's clock-generation counter at release time.
    rel_gen: u64,
    /// The releaser's own clock component at release time.
    epoch: u32,
    /// Whether `clock` is a pure snapshot of the releaser's clock.
    compressed: bool,
    /// `(fiber, incarnation)` of the last acquirer, invalidated by every
    /// release: while valid, that fiber's clock still dominates `clock`
    /// (its clock only grew since the join), so a repeat acquire is a
    /// no-op.
    last_acq: Option<(FiberId, u32)>,
}

/// A per-rank ThreadSanitizer-style runtime. See crate docs.
///
/// Not `Sync` on purpose: one runtime per simulated MPI process, used from
/// that rank's thread only.
pub struct TsanRuntime {
    fibers: FiberTable,
    current: FiberId,
    shadow: ShadowMemory,
    sync_vars: FxHashMap<u64, SyncVar>,
    ctxs: CtxTable,
    reports: Vec<RaceReport>,
    report_keys: FxHashSet<(u32, u32)>,
    suppressions: Suppressions,
    stats: TsanStats,
    max_reports: usize,
    /// Scalar epoch fast paths on release/acquire/sync-switch. Purely a
    /// performance representation — detection results are bit-for-bit
    /// identical either way (`tests/epoch_differential.rs`); `false`
    /// recovers the join-always reference behavior.
    epoch_clocks: bool,
}

impl TsanRuntime {
    /// New runtime; the calling context becomes the host fiber. Shadow
    /// tiering (page summaries + same-state fast path) is on by default;
    /// see [`Self::with_shadow_tiering`].
    pub fn new(host_name: &str) -> Self {
        Self::with_shadow_tiering(host_name, true)
    }

    /// New runtime with explicit control over shadow tiering — `false`
    /// recovers the flat per-word walk for A/B measurements
    /// (`CUSAN_SHADOW_TIERED=0`). Detection results are identical.
    pub fn with_shadow_tiering(host_name: &str, tiered: bool) -> Self {
        Self::with_options(host_name, tiered, true, true)
    }

    /// New runtime with every performance representation knob explicit:
    /// shadow tiering, the shadow page arena (`CUSAN_SHADOW_ARENA` knob;
    /// `false` recovers per-page boxed allocations), and epoch-compressed
    /// clocks (`false` recovers join-always sync vars — the reference the
    /// differential tests compare against). All three are pure perf
    /// representations; detection results are identical in every
    /// combination.
    pub fn with_options(host_name: &str, tiered: bool, arena: bool, epoch_clocks: bool) -> Self {
        let mut rt = TsanRuntime {
            fibers: FiberTable::new(host_name),
            current: FiberId::HOST,
            shadow: ShadowMemory::with_options(tiered, arena),
            sync_vars: FxHashMap::default(),
            ctxs: CtxTable::new(),
            reports: Vec::new(),
            report_keys: FxHashSet::default(),
            suppressions: Suppressions::default(),
            stats: TsanStats::default(),
            max_reports: DEFAULT_MAX_REPORTS,
            epoch_clocks,
        };
        rt.stats.fibers_created = 1;
        rt
    }

    // ---- fibers -----------------------------------------------------------

    /// The host fiber id.
    pub fn host_fiber(&self) -> FiberId {
        FiberId::HOST
    }

    /// The currently active fiber.
    pub fn current_fiber(&self) -> FiberId {
        self.current
    }

    /// Create a fiber; its clock inherits the *current* fiber's clock
    /// (creation synchronizes creator → new fiber, as in TSan).
    pub fn create_fiber(&mut self, name: &str) -> FiberId {
        self.stats.fibers_created += 1;
        // Creation is a release: accesses the creator performs *after* the
        // creation must not appear ordered before the new fiber's work.
        // `create_child` snapshots the creator's pre-bump clock in place,
        // avoiding the per-creation temporary clone this op used to make.
        self.fibers.create_child(name, self.current)
    }

    /// Sink-facing apply API: the id the next [`Self::create_fiber`] call
    /// will return. Event pipelines use this to stamp a `FiberCreate`
    /// event with its id *before* the creating sink applies it, so a
    /// recorded trace replayed against a fresh runtime reproduces the
    /// exact same fiber numbering (asserted by the checker sink).
    pub fn peek_next_fiber(&self) -> FiberId {
        self.fibers.peek_next()
    }

    /// Destroy a fiber. Must not be the current fiber or the host fiber.
    pub fn destroy_fiber(&mut self, f: FiberId) {
        assert!(f != self.current, "cannot destroy the active fiber");
        self.stats.fibers_destroyed += 1;
        self.fibers.destroy(f);
    }

    /// Switch the active fiber. **No synchronization implied** (paper
    /// §II-A: "Such fiber switches do not imply a synchronization") — the
    /// analogue of `__tsan_switch_to_fiber(f, TSAN_SWITCH_FIBER_NO_SYNC)`.
    pub fn switch_to_fiber(&mut self, f: FiberId) {
        assert!(self.fibers.is_alive(f), "switch to dead fiber {f:?}");
        self.stats.fiber_switches += 1;
        self.current = f;
    }

    /// Switch the active fiber, establishing happens-before from the
    /// current fiber to the target — `__tsan_switch_to_fiber(f, 0)`.
    /// CuSan uses this when entering a stream fiber for a device
    /// operation: the operation is ordered after everything the host did
    /// before submitting it, while nothing flows back on the return
    /// switch.
    pub fn switch_to_fiber_sync(&mut self, f: FiberId) {
        assert!(self.fibers.is_alive(f), "switch to dead fiber {f:?}");
        self.stats.fiber_switches += 1;
        if f != self.current {
            let cur = self.current;
            let (to, from) = self.fibers.pair_mut(f, cur);
            let epoch = from.clock.get(cur);
            // The stamped join can be skipped when the source clock
            // provably grew past the already-joined value in no way this
            // clock does not dominate:
            //  * exact stamp match — same incarnation, generation and own
            //    epoch, i.e. the source clock is bit-identical to the one
            //    last joined. Back-to-back device ops on one stream hit
            //    this on every op after the first; or
            //  * same incarnation and own epoch, older generation, but the
            //    source's only foreign joins since the stamped generation
            //    were snapshots of *this* fiber (the sole-source window),
            //    which this clock dominates by monotonicity. The
            //    host-syncs-on-one-stream cadence (TeaLeaf) lands here:
            //    the host's acquire of the stream's release bumps the
            //    host generation but adds nothing the stream lacks.
            let fast = self.epoch_clocks
                && match to.last_sync {
                    Some((sf, s_inc, s_gen, s_ep))
                        if sf == cur && s_inc == from.incarnation && s_ep == epoch =>
                    {
                        s_gen == from.gen
                            || (from.sole_source == Some((f, to.incarnation))
                                && from.sole_since_gen <= s_gen)
                    }
                    _ => false,
                };
            if fast {
                self.stats.epoch_fast_acquires += 1;
            } else {
                self.stats.full_clock_joins += 1;
                if to.clock.join_changed(&from.clock) {
                    // The joined clock is a pure snapshot of `cur`'s
                    // current incarnation — an identifiable sole source.
                    to.note_foreign_join(Some((cur, from.incarnation)));
                }
            }
            to.last_sync = Some((cur, from.incarnation, from.gen, epoch));
        }
        self.current = f;
    }

    /// Name of a fiber (for diagnostics).
    pub fn fiber_name(&self, f: FiberId) -> &str {
        self.fibers.name(f)
    }

    // ---- synchronization annotations -------------------------------------

    /// `AnnotateHappensBefore(key)`: release the current fiber's clock into
    /// the sync variable, then advance the fiber's own epoch.
    pub fn annotate_happens_before(&mut self, key: SyncKey) {
        self.stats.happens_before += 1;
        let cur = self.current;
        // Split borrows: `sync_vars` and `fibers` are disjoint fields, so
        // the release can join by reference; the steady-state path (the
        // sync var already exists) performs no clock allocation at all.
        let f = self.fibers.get(cur);
        let clock = &f.clock;
        let epoch = clock.get(cur);
        match self.sync_vars.entry(key.0) {
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(SyncVar {
                    clock: clock.clone(),
                    releaser: cur,
                    rel_inc: f.incarnation,
                    rel_gen: f.gen,
                    epoch,
                    compressed: true,
                    last_acq: None,
                });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let sv = o.get_mut();
                if self.epoch_clocks
                    && sv.compressed
                    && sv.releaser == cur
                    && sv.rel_inc == f.incarnation
                    && sv.rel_gen == f.gen
                {
                    // Repeated release with an unchanged clock (same
                    // generation ⇒ only own-component bumps happened
                    // since the stamp): the join collapses to updating
                    // the one component that moved.
                    sv.clock.set(cur, epoch);
                    self.stats.epoch_fast_releases += 1;
                } else {
                    self.stats.full_clock_joins += 1;
                    if self.epoch_clocks && clock.dominates(&sv.clock) {
                        // The join result is exactly this clock, so the
                        // sync var becomes a pure snapshot again and
                        // stays eligible for the scalar fast paths.
                        sv.clock.copy_from(clock);
                        sv.compressed = true;
                    } else {
                        sv.clock.join(clock);
                        sv.compressed = false;
                    }
                }
                sv.releaser = cur;
                sv.rel_inc = f.incarnation;
                sv.rel_gen = f.gen;
                sv.epoch = epoch;
                sv.last_acq = None;
            }
        }
        self.fibers.get_mut(cur).clock.bump(cur);
    }

    /// `AnnotateHappensAfter(key)`: acquire the sync variable into the
    /// current fiber's clock. Returns `false` if no release was ever issued
    /// on `key` (the annotation is then a no-op, as in TSan).
    pub fn annotate_happens_after(&mut self, key: SyncKey) -> bool {
        self.stats.happens_after += 1;
        let cur = self.current;
        let Some(sv) = self.sync_vars.get_mut(&key.0) else {
            return false;
        };
        let f = self.fibers.get_mut(cur);
        if self.epoch_clocks {
            // Acquiring a variable we last released ourselves (and whose
            // clock is still our own snapshot), or re-acquiring one that
            // has not been released since our last acquire: the sync
            // clock is already dominated by this fiber's clock, which
            // only grew in the meantime. Two-word compare, no join.
            let own_release = sv.compressed && sv.releaser == cur && sv.rel_inc == f.incarnation;
            let repeat_acquire = sv.last_acq == Some((cur, f.incarnation));
            if own_release || repeat_acquire {
                self.stats.epoch_fast_acquires += 1;
                return true;
            }
        }
        self.stats.full_clock_joins += 1;
        if f.clock.join_changed(&sv.clock) {
            // A compressed sync clock is a pure snapshot of its releaser,
            // so the join has an identifiable sole source; a decompressed
            // (joined) clock does not.
            f.note_foreign_join(sv.compressed.then_some((sv.releaser, sv.rel_inc)));
        }
        sv.last_acq = Some((cur, f.incarnation));
        true
    }

    /// True if some fiber released on `key` at least once.
    pub fn has_release(&self, key: SyncKey) -> bool {
        self.sync_vars.contains_key(&key.0)
    }

    // ---- memory access annotations ----------------------------------------

    /// Intern an access-context label for use with range annotations.
    pub fn intern_ctx(&mut self, label: &str) -> CtxId {
        self.ctxs.intern(label)
    }

    /// Label of an interned context.
    pub fn ctx_label(&self, id: CtxId) -> &str {
        self.ctxs.label(id)
    }

    /// `tsan_read_range(addr, len)` with an access context.
    pub fn read_range(&mut self, addr: u64, len: u64, ctx: CtxId) {
        self.stats.read_range_calls += 1;
        self.stats.read_bytes += len;
        self.access(addr, len, false, ctx);
    }

    /// `tsan_write_range(addr, len)` with an access context.
    pub fn write_range(&mut self, addr: u64, len: u64, ctx: CtxId) {
        self.stats.write_range_calls += 1;
        self.stats.write_bytes += len;
        self.access(addr, len, true, ctx);
    }

    fn access(&mut self, addr: u64, len: u64, write: bool, ctx: CtxId) {
        let cur = self.current;
        let clock_val = self.fibers.get(cur).clock.get(cur);
        let Self {
            fibers,
            shadow,
            ctxs,
            reports,
            report_keys,
            suppressions,
            stats,
            max_reports,
            ..
        } = self;
        let fibers: &FiberTable = fibers;
        let fiber_clock = &fibers.get(cur).clock;
        shadow.access_range(addr, len, write, cur, clock_val, ctx, fiber_clock, |c| {
            let key = (ctx.0, c.prev.ctx.0);
            if !report_keys.insert(key) {
                stats.races_deduped += 1;
                return;
            }
            let report = RaceReport {
                addr: c.word_addr,
                current: RaceSide {
                    write,
                    fiber: fibers.name(cur).to_string(),
                    ctx: ctxs.label(ctx).to_string(),
                },
                previous: RaceSide {
                    write: c.prev.write,
                    fiber: fibers.name(c.prev.fiber).to_string(),
                    ctx: ctxs.label(c.prev.ctx).to_string(),
                },
            };
            if suppressions.matches(&report) {
                stats.races_suppressed += 1;
            } else {
                stats.races_reported += 1;
                if reports.len() < *max_reports {
                    reports.push(report);
                }
            }
        });
    }

    // ---- reporting ---------------------------------------------------------

    /// Retained race reports.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Drain retained reports.
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    /// Total races reported (post-dedup, pre-cap).
    pub fn race_count(&self) -> u64 {
        self.stats.races_reported
    }

    /// Install a suppression pattern.
    pub fn add_suppression(&mut self, pattern: &str) {
        self.suppressions.add(pattern);
    }

    // ---- accounting --------------------------------------------------------

    /// Counter snapshot.
    pub fn stats(&self) -> TsanStats {
        let mut s = self.stats;
        s.fibers_created = self.fibers.created;
        s.fibers_destroyed = self.fibers.destroyed;
        let c = self.shadow.counters();
        s.fastpath_hits = c.fastpath_hits;
        s.page_summaries_stored = c.page_summaries_stored;
        s.page_unfolds = c.page_unfolds;
        s.dropped_annotations = c.dropped_annotations;
        s.arena_pages_reused = c.arena_pages_reused;
        s.arena_slabs_allocated = c.arena_slabs_allocated;
        s.arena_pages_evicted = c.arena_pages_evicted;
        s
    }

    /// The current vector clock of a fiber (tests and differential
    /// harnesses; the epoch-vs-reference proptest compares `dominates`
    /// outcomes across runtimes through this).
    pub fn fiber_clock(&self, f: FiberId) -> &VectorClock {
        &self.fibers.get(f).clock
    }

    /// Whether the scalar epoch fast paths are active.
    pub fn epoch_clocks_enabled(&self) -> bool {
        self.epoch_clocks
    }

    /// Cap the shadow's page count; past the budget the detector runs in
    /// counted best-effort mode (see
    /// [`crate::shadow::ShadowMemory::set_page_budget`]). `None` =
    /// unlimited (the default).
    pub fn set_shadow_page_budget(&mut self, budget: Option<usize>) {
        self.shadow.set_page_budget(budget);
    }

    /// The configured shadow page budget.
    pub fn shadow_page_budget(&self) -> Option<usize> {
        self.shadow.page_budget()
    }

    /// Whether the shadow's summary/fast-path tiers are active.
    pub fn shadow_tiering_enabled(&self) -> bool {
        self.shadow.tiering_enabled()
    }

    /// Whether the shadow's page arena is active.
    pub fn shadow_arena_enabled(&self) -> bool {
        self.shadow.arena_enabled()
    }

    /// Drop the shadow page covering `addr`, recycling its slot block
    /// into the arena free list (see
    /// [`crate::shadow::ShadowMemory::discard_page`]). Returns whether a
    /// page was discarded.
    pub fn discard_shadow_page(&mut self, addr: u64) -> bool {
        self.shadow.discard_page(addr)
    }

    /// Evict the entire shadow — every page, plus the arena slabs once
    /// nothing stays live — returning the number of pages evicted (see
    /// [`crate::shadow::ShadowMemory::evict_all_pages`]). Reports, sync
    /// state, and counters are untouched; only legal once no further
    /// accesses will be recorded (a finished session), since eviction
    /// forgets access history.
    pub fn evict_shadow_pages(&mut self) -> usize {
        self.shadow.evict_all_pages()
    }

    /// Approximate heap bytes owned by the detector: shadow pages, vector
    /// clocks, sync variables, context table. Drives Fig. 11.
    pub fn memory_bytes(&self) -> u64 {
        let sync: u64 = self
            .sync_vars
            .values()
            .map(|sv| sv.clock.heap_bytes() + std::mem::size_of::<SyncVar>() as u64 + 16)
            .sum();
        self.shadow.heap_bytes() + self.fibers.heap_bytes() + sync + self.ctxs.heap_bytes()
    }

    /// Shadow pages allocated (diagnostics / benches).
    pub fn shadow_pages(&self) -> usize {
        self.shadow.page_count()
    }

    /// Number of currently-live fibers (host + streams + in-flight
    /// requests).
    pub fn live_fibers(&self) -> usize {
        self.fibers.live_count()
    }

    // ---- snapshot/restore --------------------------------------------------

    /// Serialize the complete runtime state into `w` (no magic/version
    /// framing — [`Self::snapshot_bytes`] adds it; embedders like the
    /// session spill format frame the stream themselves).
    ///
    /// The encoding is *canonical*: hash-ordered state (sync variables,
    /// report-dedup keys, shadow pages) is sorted before writing, so two
    /// runtimes in the same observable state produce byte-identical
    /// snapshots, and `snapshot(restore(snapshot(x))) == snapshot(x)`.
    pub fn write_snapshot(&self, w: &mut SnapshotWriter) {
        w.put_bool(self.epoch_clocks);
        w.put_u32(self.current.index() as u32);
        w.put_u64(self.max_reports as u64);
        self.fibers.write_snapshot(w);
        self.shadow.write_snapshot(w);
        let mut keys: Vec<u64> = self.sync_vars.keys().copied().collect();
        keys.sort_unstable();
        w.put_len(keys.len());
        for key in keys {
            let sv = &self.sync_vars[&key];
            w.put_u64(key);
            write_clock(w, &sv.clock);
            w.put_u32(sv.releaser.index() as u32);
            w.put_u32(sv.rel_inc);
            w.put_u64(sv.rel_gen);
            w.put_u32(sv.epoch);
            w.put_bool(sv.compressed);
            w.put_bool(sv.last_acq.is_some());
            if let Some((f, inc)) = sv.last_acq {
                w.put_u32(f.index() as u32);
                w.put_u32(inc);
            }
        }
        self.ctxs.write_snapshot(w);
        w.put_len(self.reports.len());
        for rep in &self.reports {
            w.put_u64(rep.addr);
            for side in [&rep.current, &rep.previous] {
                w.put_bool(side.write);
                w.put_str(&side.fiber);
                w.put_str(&side.ctx);
            }
        }
        let mut dedup: Vec<(u32, u32)> = self.report_keys.iter().copied().collect();
        dedup.sort_unstable();
        w.put_len(dedup.len());
        for (a, b) in dedup {
            w.put_u32(a);
            w.put_u32(b);
        }
        self.suppressions.write_snapshot(w);
        // The raw (unmerged) counter struct: the derived fields are
        // recomputed from the fiber/shadow sections on every `stats()`
        // call, so serializing them here too would double state.
        for v in [
            self.stats.fiber_switches,
            self.stats.fibers_created,
            self.stats.fibers_destroyed,
            self.stats.happens_before,
            self.stats.happens_after,
            self.stats.read_range_calls,
            self.stats.write_range_calls,
            self.stats.read_bytes,
            self.stats.write_bytes,
            self.stats.races_reported,
            self.stats.races_suppressed,
            self.stats.races_deduped,
            self.stats.fastpath_hits,
            self.stats.page_summaries_stored,
            self.stats.page_unfolds,
            self.stats.dropped_annotations,
            self.stats.epoch_fast_acquires,
            self.stats.epoch_fast_releases,
            self.stats.full_clock_joins,
            self.stats.arena_pages_reused,
            self.stats.arena_slabs_allocated,
            self.stats.arena_pages_evicted,
        ] {
            w.put_u64(v);
        }
    }

    /// Rebuild a runtime from [`Self::write_snapshot`] output. The
    /// restored runtime is observationally identical to the snapshotted
    /// one: applying any event suffix to both yields bit-for-bit equal
    /// reports, stats, and shadow evolution.
    pub fn read_snapshot(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let epoch_clocks = r.get_bool()?;
        let current = FiberId::from_index(r.get_u32()? as usize);
        let max_reports = r.get_u64()? as usize;
        let fibers = FiberTable::read_snapshot(r)?;
        if current.index() >= fibers.slot_count() {
            return Err(SnapshotError::Corrupt(format!(
                "current fiber {} out of range",
                current.index()
            )));
        }
        let shadow = ShadowMemory::read_snapshot(r)?;
        let n_sync = r.get_len()?;
        let mut sync_vars = FxHashMap::default();
        sync_vars.reserve(n_sync);
        let mut prev_key: Option<u64> = None;
        for _ in 0..n_sync {
            let key = r.get_u64()?;
            if prev_key.is_some_and(|p| key <= p) {
                return Err(SnapshotError::Corrupt(format!(
                    "sync keys not strictly ascending at {key:#x}"
                )));
            }
            prev_key = Some(key);
            let clock = read_clock(r)?;
            let releaser = FiberId::from_index(r.get_u32()? as usize);
            let rel_inc = r.get_u32()?;
            let rel_gen = r.get_u64()?;
            let epoch = r.get_u32()?;
            let compressed = r.get_bool()?;
            let last_acq = if r.get_bool()? {
                Some((FiberId::from_index(r.get_u32()? as usize), r.get_u32()?))
            } else {
                None
            };
            sync_vars.insert(
                key,
                SyncVar {
                    clock,
                    releaser,
                    rel_inc,
                    rel_gen,
                    epoch,
                    compressed,
                    last_acq,
                },
            );
        }
        let ctxs = CtxTable::read_snapshot(r)?;
        let n_reports = r.get_len()?;
        let mut reports = Vec::with_capacity(n_reports);
        for _ in 0..n_reports {
            let addr = r.get_u64()?;
            let mut sides = Vec::with_capacity(2);
            for _ in 0..2 {
                sides.push(RaceSide {
                    write: r.get_bool()?,
                    fiber: r.get_str()?,
                    ctx: r.get_str()?,
                });
            }
            let previous = sides.pop().expect("two sides");
            let current = sides.pop().expect("two sides");
            reports.push(RaceReport {
                addr,
                current,
                previous,
            });
        }
        let n_dedup = r.get_len()?;
        let mut report_keys = FxHashSet::default();
        report_keys.reserve(n_dedup);
        for _ in 0..n_dedup {
            report_keys.insert((r.get_u32()?, r.get_u32()?));
        }
        let suppressions = Suppressions::read_snapshot(r)?;
        let mut raw = [0u64; 22];
        for v in &mut raw {
            *v = r.get_u64()?;
        }
        let stats = TsanStats {
            fiber_switches: raw[0],
            fibers_created: raw[1],
            fibers_destroyed: raw[2],
            happens_before: raw[3],
            happens_after: raw[4],
            read_range_calls: raw[5],
            write_range_calls: raw[6],
            read_bytes: raw[7],
            write_bytes: raw[8],
            races_reported: raw[9],
            races_suppressed: raw[10],
            races_deduped: raw[11],
            fastpath_hits: raw[12],
            page_summaries_stored: raw[13],
            page_unfolds: raw[14],
            dropped_annotations: raw[15],
            epoch_fast_acquires: raw[16],
            epoch_fast_releases: raw[17],
            full_clock_joins: raw[18],
            arena_pages_reused: raw[19],
            arena_slabs_allocated: raw[20],
            arena_pages_evicted: raw[21],
        };
        Ok(TsanRuntime {
            fibers,
            current,
            shadow,
            sync_vars,
            ctxs,
            reports,
            report_keys,
            suppressions,
            stats,
            max_reports,
            epoch_clocks,
        })
    }

    /// [`Self::write_snapshot`] framed with [`SNAPSHOT_MAGIC`] and
    /// [`SNAPSHOT_VERSION`] — the standalone blob format.
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        self.write_snapshot(&mut w);
        w.into_bytes()
    }

    /// Decode a [`Self::snapshot_bytes`] blob.
    pub fn restore_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = SnapshotReader::new(bytes);
        if r.get_raw(SNAPSHOT_MAGIC.len())? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let rt = Self::read_snapshot(&mut r)?;
        r.expect_end()?;
        Ok(rt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 0x1_0000;

    fn rt() -> TsanRuntime {
        TsanRuntime::new("host")
    }

    #[test]
    fn unsynchronized_fiber_write_host_read_races() {
        // Abstract Fig. 6B: kernel writes on a stream fiber, host reads
        // without synchronization.
        let mut t = rt();
        let stream = t.create_fiber("cuda stream 0");
        let ctx_k = t.intern_ctx("kernel write");
        let ctx_h = t.intern_ctx("host read");
        t.switch_to_fiber(stream);
        t.write_range(A, 64, ctx_k);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 64, ctx_h);
        assert_eq!(t.race_count(), 1, "deduped to one report for the range");
        let r = &t.reports()[0];
        assert!(r.previous.write);
        assert!(!r.current.write);
        assert_eq!(r.previous.fiber, "cuda stream 0");
    }

    #[test]
    fn release_acquire_orders_accesses() {
        // Abstract Fig. 6B with a cudaDeviceSynchronize: no race.
        let mut t = rt();
        let stream = t.create_fiber("cuda stream 0");
        let key = SyncKey(7);
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(stream);
        t.write_range(A, 64, ctx);
        t.annotate_happens_before(key);
        t.switch_to_fiber(FiberId::HOST);
        assert!(t.annotate_happens_after(key));
        t.read_range(A, 64, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn acquire_without_release_is_noop() {
        let mut t = rt();
        assert!(!t.annotate_happens_after(SyncKey(99)));
        assert!(!t.has_release(SyncKey(99)));
    }

    #[test]
    fn fiber_switch_does_not_synchronize() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let ctx = t.intern_ctx("x");
        // Host writes BEFORE creating... note: creation syncs creator->fiber,
        // so write after creation is needed to get concurrency.
        t.write_range(A, 8, ctx);
        // f was created before the write? No - created above, then host wrote.
        // f's clock does not include the host write; and switching is not
        // an acquire, so accessing from f must race.
        t.switch_to_fiber(f);
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 1);
    }

    #[test]
    fn creation_synchronizes_creator_to_fiber() {
        let mut t = rt();
        let ctx = t.intern_ctx("x");
        t.write_range(A, 8, ctx);
        let f = t.create_fiber("f"); // inherits host clock incl. the write
        t.switch_to_fiber(f);
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn transitive_synchronization_via_two_keys() {
        // stream1 -> (k1) -> stream2 -> (k2) -> host; host may then access
        // data written by stream1 without a direct arc (Fig. 3 semantics).
        let mut t = rt();
        let s1 = t.create_fiber("s1");
        let s2 = t.create_fiber("s2");
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(s1);
        t.write_range(A, 8, ctx);
        t.annotate_happens_before(SyncKey(1));
        t.switch_to_fiber(s2);
        t.annotate_happens_after(SyncKey(1));
        t.annotate_happens_before(SyncKey(2));
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_after(SyncKey(2));
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn release_before_access_does_not_cover_it() {
        // An access AFTER the fiber's release is not ordered by that arc.
        let mut t = rt();
        let f = t.create_fiber("f");
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(f);
        t.annotate_happens_before(SyncKey(1));
        t.write_range(A, 8, ctx); // after the release: epoch advanced
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_after(SyncKey(1));
        t.read_range(A, 8, ctx);
        assert_eq!(t.race_count(), 1);
    }

    #[test]
    fn non_blocking_mpi_pattern_fig1() {
        // Fig. 1: Irecv(buf) ... compute reads buf ... Wait. The concurrent
        // region between Irecv and Wait is modeled by an MPI fiber writing
        // the buffer.
        let mut t = rt();
        let ctx_mpi = t.intern_ctx("MPI_Irecv buffer [write]");
        let ctx_cmp = t.intern_ctx("compute read");
        let req = t.create_fiber("mpi req#1 (Irecv)");
        let key = SyncKey(0x100);
        t.switch_to_fiber(req);
        t.write_range(A, 1024, ctx_mpi);
        t.annotate_happens_before(key);
        t.switch_to_fiber(FiberId::HOST);
        // compute(buf) before MPI_Wait -> race
        t.read_range(A, 1024, ctx_cmp);
        assert_eq!(t.race_count(), 1);
        // After Wait (HA) further accesses are fine.
        t.annotate_happens_after(key);
        t.read_range(A, 1024, ctx_cmp);
        assert_eq!(t.race_count(), 1, "no new race after wait");
    }

    #[test]
    fn dedupe_by_context_pair() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("w");
        let cr = t.intern_ctx("r");
        t.switch_to_fiber(f);
        t.write_range(A, 4096, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 4096, cr);
        // 512 conflicting words but a single (r,w) report.
        assert_eq!(t.race_count(), 1);
        assert_eq!(t.stats().races_deduped, 511);
    }

    #[test]
    fn distinct_context_pairs_reported_separately() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("w");
        let cr1 = t.intern_ctx("r1");
        let cr2 = t.intern_ctx("r2");
        t.switch_to_fiber(f);
        t.write_range(A, 8, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 8, cr1);
        t.read_range(A + 8, 8, cr2); // different word, no conflict
        t.read_range(A, 8, cr2); // same word, different ctx
        assert_eq!(t.race_count(), 2);
    }

    #[test]
    fn suppression_suppresses() {
        let mut t = rt();
        t.add_suppression("openmpi-internal");
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("openmpi-internal progress thread");
        let cr = t.intern_ctx("host");
        t.switch_to_fiber(f);
        t.write_range(A, 8, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 8, cr);
        assert_eq!(t.race_count(), 0);
        assert_eq!(t.stats().races_suppressed, 1);
    }

    #[test]
    fn stats_count_events() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let c = t.intern_ctx("x");
        t.switch_to_fiber(f);
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_before(SyncKey(1));
        t.annotate_happens_after(SyncKey(1));
        t.read_range(A, 100, c);
        t.write_range(A, 50, c);
        assert_eq!(t.live_fibers(), 2);
        let s = t.stats();
        assert_eq!(s.fiber_switches, 2);
        assert_eq!(s.happens_before, 1);
        assert_eq!(s.happens_after, 1);
        assert_eq!(s.read_range_calls, 1);
        assert_eq!(s.read_bytes, 100);
        assert_eq!(s.write_range_calls, 1);
        assert_eq!(s.write_bytes, 50);
        assert_eq!(s.fibers_created, 2);
        assert_eq!(f, FiberId::from_index(1));
    }

    #[test]
    fn report_cap_limits_storage_not_counting() {
        let mut t = rt();
        t.max_reports = 2;
        let f = t.create_fiber("f");
        t.switch_to_fiber(f);
        for i in 0..5 {
            let c = t.intern_ctx(&format!("w{i}"));
            t.write_range(A, 8, c);
        }
        t.switch_to_fiber(FiberId::HOST);
        for i in 0..5 {
            let c = t.intern_ctx(&format!("r{i}"));
            t.write_range(A, 8, c);
        }
        assert!(t.race_count() > 2);
        assert_eq!(t.reports().len(), 2);
    }

    #[test]
    fn memory_accounting_nonzero_after_accesses() {
        // Tiered: a whole-buffer write is stored as page summaries, so the
        // shadow costs a few words per 4 KiB instead of 4x the tracked size.
        let mut t = rt();
        let c = t.intern_ctx("x");
        t.write_range(0, 1 << 16, c);
        assert!(t.memory_bytes() > 0);
        assert!(t.memory_bytes() < (1 << 16), "summaries stay compact");
        assert!(t.shadow_pages() >= 16);
        // Untiered: the flat shadow costs 4 slot words per application word.
        let mut t = TsanRuntime::with_shadow_tiering("host", false);
        let c = t.intern_ctx("x");
        t.write_range(0, 1 << 16, c);
        assert!(t.memory_bytes() > (1 << 16));
        assert!(t.shadow_pages() >= 16);
    }

    #[test]
    fn stats_surface_shadow_tier_counters() {
        let mut t = rt();
        let c = t.intern_ctx("x");
        t.write_range(0, 4096, c);
        t.write_range(0, 4096, c); // identical re-annotation: fast path
        t.write_range(64, 128, c); // partial overlap: unfold
        let s = t.stats();
        assert_eq!(s.page_summaries_stored, 1);
        assert_eq!(s.fastpath_hits, 1);
        assert_eq!(s.page_unfolds, 1);
        assert!(t.shadow_tiering_enabled());
        assert!(!TsanRuntime::with_shadow_tiering("h", false).shadow_tiering_enabled());
    }

    #[test]
    fn shadow_budget_degrades_and_surfaces_in_stats() {
        let mut t = rt();
        assert_eq!(t.shadow_page_budget(), None);
        t.set_shadow_page_budget(Some(2));
        assert_eq!(t.shadow_page_budget(), Some(2));
        let c = t.intern_ctx("big write");
        t.write_range(0, 8 << 12, c); // 8 pages, budget 2
        assert_eq!(t.shadow_pages(), 2);
        let s = t.stats();
        assert_eq!(s.dropped_annotations, 6);
        assert_eq!(s.write_range_calls, 1, "call still counted");
        // No budget → the counter stays zero.
        let mut u = rt();
        let c = u.intern_ctx("w");
        u.write_range(0, 8 << 12, c);
        assert_eq!(u.stats().dropped_annotations, 0);
    }

    #[test]
    fn destroyed_request_fiber_pattern() {
        // MUST pattern: fiber per request, destroyed after wait; a second
        // request reuses the slot without false positives.
        let mut t = rt();
        let c = t.intern_ctx("isend read");
        for i in 0..3 {
            let req = t.create_fiber(&format!("req#{i}"));
            let key = SyncKey(0x200 + i);
            t.switch_to_fiber(req);
            t.read_range(A, 256, c);
            t.annotate_happens_before(key);
            t.switch_to_fiber(FiberId::HOST);
            t.annotate_happens_after(key);
            t.destroy_fiber(req);
            // Host writes the buffer after wait — must never race.
            let cw = t.intern_ctx("host write after wait");
            t.write_range(A, 256, cw);
        }
        assert_eq!(t.race_count(), 0);
    }
}
