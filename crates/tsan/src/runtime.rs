//! The TSan-style runtime: fibers + shadow + sync vars + reporting.

use crate::clock::VectorClock;
use crate::fiber::{FiberId, FiberTable};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::report::{CtxId, CtxTable, RaceReport, RaceSide, Suppressions};
use crate::shadow::ShadowMemory;
use crate::stats::TsanStats;

/// Key identifying a synchronization variable — the analogue of the memory
/// address passed to `AnnotateHappensBefore/After`. CuSan derives keys from
/// stream/event identities; MUST derives them from MPI request identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SyncKey(pub u64);

/// Default cap on retained race reports (detection continues counting
/// after the cap; only report storage stops growing).
pub const DEFAULT_MAX_REPORTS: usize = 256;

/// A per-rank ThreadSanitizer-style runtime. See crate docs.
///
/// Not `Sync` on purpose: one runtime per simulated MPI process, used from
/// that rank's thread only.
pub struct TsanRuntime {
    fibers: FiberTable,
    current: FiberId,
    shadow: ShadowMemory,
    sync_vars: FxHashMap<u64, VectorClock>,
    ctxs: CtxTable,
    reports: Vec<RaceReport>,
    report_keys: FxHashSet<(u32, u32)>,
    suppressions: Suppressions,
    stats: TsanStats,
    max_reports: usize,
}

impl TsanRuntime {
    /// New runtime; the calling context becomes the host fiber. Shadow
    /// tiering (page summaries + same-state fast path) is on by default;
    /// see [`Self::with_shadow_tiering`].
    pub fn new(host_name: &str) -> Self {
        Self::with_shadow_tiering(host_name, true)
    }

    /// New runtime with explicit control over shadow tiering — `false`
    /// recovers the flat per-word walk for A/B measurements
    /// (`CUSAN_SHADOW_TIERED=0`). Detection results are identical.
    pub fn with_shadow_tiering(host_name: &str, tiered: bool) -> Self {
        let mut rt = TsanRuntime {
            fibers: FiberTable::new(host_name),
            current: FiberId::HOST,
            shadow: ShadowMemory::with_tiering(tiered),
            sync_vars: FxHashMap::default(),
            ctxs: CtxTable::new(),
            reports: Vec::new(),
            report_keys: FxHashSet::default(),
            suppressions: Suppressions::default(),
            stats: TsanStats::default(),
            max_reports: DEFAULT_MAX_REPORTS,
        };
        rt.stats.fibers_created = 1;
        rt
    }

    // ---- fibers -----------------------------------------------------------

    /// The host fiber id.
    pub fn host_fiber(&self) -> FiberId {
        FiberId::HOST
    }

    /// The currently active fiber.
    pub fn current_fiber(&self) -> FiberId {
        self.current
    }

    /// Create a fiber; its clock inherits the *current* fiber's clock
    /// (creation synchronizes creator → new fiber, as in TSan).
    pub fn create_fiber(&mut self, name: &str) -> FiberId {
        self.stats.fibers_created += 1;
        // Creation is a release: accesses the creator performs *after* the
        // creation must not appear ordered before the new fiber's work.
        // `create_child` snapshots the creator's pre-bump clock in place,
        // avoiding the per-creation temporary clone this op used to make.
        self.fibers.create_child(name, self.current)
    }

    /// Sink-facing apply API: the id the next [`Self::create_fiber`] call
    /// will return. Event pipelines use this to stamp a `FiberCreate`
    /// event with its id *before* the creating sink applies it, so a
    /// recorded trace replayed against a fresh runtime reproduces the
    /// exact same fiber numbering (asserted by the checker sink).
    pub fn peek_next_fiber(&self) -> FiberId {
        self.fibers.peek_next()
    }

    /// Destroy a fiber. Must not be the current fiber or the host fiber.
    pub fn destroy_fiber(&mut self, f: FiberId) {
        assert!(f != self.current, "cannot destroy the active fiber");
        self.stats.fibers_destroyed += 1;
        self.fibers.destroy(f);
    }

    /// Switch the active fiber. **No synchronization implied** (paper
    /// §II-A: "Such fiber switches do not imply a synchronization") — the
    /// analogue of `__tsan_switch_to_fiber(f, TSAN_SWITCH_FIBER_NO_SYNC)`.
    pub fn switch_to_fiber(&mut self, f: FiberId) {
        assert!(self.fibers.is_alive(f), "switch to dead fiber {f:?}");
        self.stats.fiber_switches += 1;
        self.current = f;
    }

    /// Switch the active fiber, establishing happens-before from the
    /// current fiber to the target — `__tsan_switch_to_fiber(f, 0)`.
    /// CuSan uses this when entering a stream fiber for a device
    /// operation: the operation is ordered after everything the host did
    /// before submitting it, while nothing flows back on the return
    /// switch.
    pub fn switch_to_fiber_sync(&mut self, f: FiberId) {
        assert!(self.fibers.is_alive(f), "switch to dead fiber {f:?}");
        self.stats.fiber_switches += 1;
        if f != self.current {
            let (to, from) = self.fibers.pair_mut(f, self.current);
            to.clock.join(&from.clock);
        }
        self.current = f;
    }

    /// Name of a fiber (for diagnostics).
    pub fn fiber_name(&self, f: FiberId) -> &str {
        self.fibers.name(f)
    }

    // ---- synchronization annotations -------------------------------------

    /// `AnnotateHappensBefore(key)`: release the current fiber's clock into
    /// the sync variable, then advance the fiber's own epoch.
    pub fn annotate_happens_before(&mut self, key: SyncKey) {
        self.stats.happens_before += 1;
        let cur = self.current;
        // Split borrows: `sync_vars` and `fibers` are disjoint fields, so
        // the release can join by reference; the steady-state path (the
        // sync var already exists) performs no clock allocation at all.
        let clock = &self.fibers.get(cur).clock;
        self.sync_vars
            .entry(key.0)
            .and_modify(|sv| sv.join(clock))
            .or_insert_with(|| clock.clone());
        self.fibers.get_mut(cur).clock.bump(cur);
    }

    /// `AnnotateHappensAfter(key)`: acquire the sync variable into the
    /// current fiber's clock. Returns `false` if no release was ever issued
    /// on `key` (the annotation is then a no-op, as in TSan).
    pub fn annotate_happens_after(&mut self, key: SyncKey) -> bool {
        self.stats.happens_after += 1;
        let cur = self.current;
        match self.sync_vars.get(&key.0) {
            Some(sv) => {
                // Clone keeps borrowck simple; sync vars are tiny dense
                // clocks and HA is orders of magnitude rarer than accesses.
                let sv = sv.clone();
                self.fibers.get_mut(cur).clock.join(&sv);
                true
            }
            None => false,
        }
    }

    /// True if some fiber released on `key` at least once.
    pub fn has_release(&self, key: SyncKey) -> bool {
        self.sync_vars.contains_key(&key.0)
    }

    // ---- memory access annotations ----------------------------------------

    /// Intern an access-context label for use with range annotations.
    pub fn intern_ctx(&mut self, label: &str) -> CtxId {
        self.ctxs.intern(label)
    }

    /// Label of an interned context.
    pub fn ctx_label(&self, id: CtxId) -> &str {
        self.ctxs.label(id)
    }

    /// `tsan_read_range(addr, len)` with an access context.
    pub fn read_range(&mut self, addr: u64, len: u64, ctx: CtxId) {
        self.stats.read_range_calls += 1;
        self.stats.read_bytes += len;
        self.access(addr, len, false, ctx);
    }

    /// `tsan_write_range(addr, len)` with an access context.
    pub fn write_range(&mut self, addr: u64, len: u64, ctx: CtxId) {
        self.stats.write_range_calls += 1;
        self.stats.write_bytes += len;
        self.access(addr, len, true, ctx);
    }

    fn access(&mut self, addr: u64, len: u64, write: bool, ctx: CtxId) {
        let cur = self.current;
        let clock_val = self.fibers.get(cur).clock.get(cur);
        let Self {
            fibers,
            shadow,
            ctxs,
            reports,
            report_keys,
            suppressions,
            stats,
            max_reports,
            ..
        } = self;
        let fibers: &FiberTable = fibers;
        let fiber_clock = &fibers.get(cur).clock;
        shadow.access_range(addr, len, write, cur, clock_val, ctx, fiber_clock, |c| {
            let key = (ctx.0, c.prev.ctx.0);
            if !report_keys.insert(key) {
                stats.races_deduped += 1;
                return;
            }
            let report = RaceReport {
                addr: c.word_addr,
                current: RaceSide {
                    write,
                    fiber: fibers.name(cur).to_string(),
                    ctx: ctxs.label(ctx).to_string(),
                },
                previous: RaceSide {
                    write: c.prev.write,
                    fiber: fibers.name(c.prev.fiber).to_string(),
                    ctx: ctxs.label(c.prev.ctx).to_string(),
                },
            };
            if suppressions.matches(&report) {
                stats.races_suppressed += 1;
            } else {
                stats.races_reported += 1;
                if reports.len() < *max_reports {
                    reports.push(report);
                }
            }
        });
    }

    // ---- reporting ---------------------------------------------------------

    /// Retained race reports.
    pub fn reports(&self) -> &[RaceReport] {
        &self.reports
    }

    /// Drain retained reports.
    pub fn take_reports(&mut self) -> Vec<RaceReport> {
        std::mem::take(&mut self.reports)
    }

    /// Total races reported (post-dedup, pre-cap).
    pub fn race_count(&self) -> u64 {
        self.stats.races_reported
    }

    /// Install a suppression pattern.
    pub fn add_suppression(&mut self, pattern: &str) {
        self.suppressions.add(pattern);
    }

    // ---- accounting --------------------------------------------------------

    /// Counter snapshot.
    pub fn stats(&self) -> TsanStats {
        let mut s = self.stats;
        s.fibers_created = self.fibers.created;
        s.fibers_destroyed = self.fibers.destroyed;
        let c = self.shadow.counters();
        s.fastpath_hits = c.fastpath_hits;
        s.page_summaries_stored = c.page_summaries_stored;
        s.page_unfolds = c.page_unfolds;
        s.dropped_annotations = c.dropped_annotations;
        s
    }

    /// Cap the shadow's page count; past the budget the detector runs in
    /// counted best-effort mode (see
    /// [`crate::shadow::ShadowMemory::set_page_budget`]). `None` =
    /// unlimited (the default).
    pub fn set_shadow_page_budget(&mut self, budget: Option<usize>) {
        self.shadow.set_page_budget(budget);
    }

    /// The configured shadow page budget.
    pub fn shadow_page_budget(&self) -> Option<usize> {
        self.shadow.page_budget()
    }

    /// Whether the shadow's summary/fast-path tiers are active.
    pub fn shadow_tiering_enabled(&self) -> bool {
        self.shadow.tiering_enabled()
    }

    /// Approximate heap bytes owned by the detector: shadow pages, vector
    /// clocks, sync variables, context table. Drives Fig. 11.
    pub fn memory_bytes(&self) -> u64 {
        let sync: u64 = self.sync_vars.values().map(|c| c.heap_bytes() + 48).sum();
        self.shadow.heap_bytes() + self.fibers.heap_bytes() + sync + self.ctxs.heap_bytes()
    }

    /// Shadow pages allocated (diagnostics / benches).
    pub fn shadow_pages(&self) -> usize {
        self.shadow.page_count()
    }

    /// Number of currently-live fibers (host + streams + in-flight
    /// requests).
    pub fn live_fibers(&self) -> usize {
        self.fibers.live_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: u64 = 0x1_0000;

    fn rt() -> TsanRuntime {
        TsanRuntime::new("host")
    }

    #[test]
    fn unsynchronized_fiber_write_host_read_races() {
        // Abstract Fig. 6B: kernel writes on a stream fiber, host reads
        // without synchronization.
        let mut t = rt();
        let stream = t.create_fiber("cuda stream 0");
        let ctx_k = t.intern_ctx("kernel write");
        let ctx_h = t.intern_ctx("host read");
        t.switch_to_fiber(stream);
        t.write_range(A, 64, ctx_k);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 64, ctx_h);
        assert_eq!(t.race_count(), 1, "deduped to one report for the range");
        let r = &t.reports()[0];
        assert!(r.previous.write);
        assert!(!r.current.write);
        assert_eq!(r.previous.fiber, "cuda stream 0");
    }

    #[test]
    fn release_acquire_orders_accesses() {
        // Abstract Fig. 6B with a cudaDeviceSynchronize: no race.
        let mut t = rt();
        let stream = t.create_fiber("cuda stream 0");
        let key = SyncKey(7);
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(stream);
        t.write_range(A, 64, ctx);
        t.annotate_happens_before(key);
        t.switch_to_fiber(FiberId::HOST);
        assert!(t.annotate_happens_after(key));
        t.read_range(A, 64, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn acquire_without_release_is_noop() {
        let mut t = rt();
        assert!(!t.annotate_happens_after(SyncKey(99)));
        assert!(!t.has_release(SyncKey(99)));
    }

    #[test]
    fn fiber_switch_does_not_synchronize() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let ctx = t.intern_ctx("x");
        // Host writes BEFORE creating... note: creation syncs creator->fiber,
        // so write after creation is needed to get concurrency.
        t.write_range(A, 8, ctx);
        // f was created before the write? No - created above, then host wrote.
        // f's clock does not include the host write; and switching is not
        // an acquire, so accessing from f must race.
        t.switch_to_fiber(f);
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 1);
    }

    #[test]
    fn creation_synchronizes_creator_to_fiber() {
        let mut t = rt();
        let ctx = t.intern_ctx("x");
        t.write_range(A, 8, ctx);
        let f = t.create_fiber("f"); // inherits host clock incl. the write
        t.switch_to_fiber(f);
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn transitive_synchronization_via_two_keys() {
        // stream1 -> (k1) -> stream2 -> (k2) -> host; host may then access
        // data written by stream1 without a direct arc (Fig. 3 semantics).
        let mut t = rt();
        let s1 = t.create_fiber("s1");
        let s2 = t.create_fiber("s2");
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(s1);
        t.write_range(A, 8, ctx);
        t.annotate_happens_before(SyncKey(1));
        t.switch_to_fiber(s2);
        t.annotate_happens_after(SyncKey(1));
        t.annotate_happens_before(SyncKey(2));
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_after(SyncKey(2));
        t.write_range(A, 8, ctx);
        assert_eq!(t.race_count(), 0);
    }

    #[test]
    fn release_before_access_does_not_cover_it() {
        // An access AFTER the fiber's release is not ordered by that arc.
        let mut t = rt();
        let f = t.create_fiber("f");
        let ctx = t.intern_ctx("x");
        t.switch_to_fiber(f);
        t.annotate_happens_before(SyncKey(1));
        t.write_range(A, 8, ctx); // after the release: epoch advanced
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_after(SyncKey(1));
        t.read_range(A, 8, ctx);
        assert_eq!(t.race_count(), 1);
    }

    #[test]
    fn non_blocking_mpi_pattern_fig1() {
        // Fig. 1: Irecv(buf) ... compute reads buf ... Wait. The concurrent
        // region between Irecv and Wait is modeled by an MPI fiber writing
        // the buffer.
        let mut t = rt();
        let ctx_mpi = t.intern_ctx("MPI_Irecv buffer [write]");
        let ctx_cmp = t.intern_ctx("compute read");
        let req = t.create_fiber("mpi req#1 (Irecv)");
        let key = SyncKey(0x100);
        t.switch_to_fiber(req);
        t.write_range(A, 1024, ctx_mpi);
        t.annotate_happens_before(key);
        t.switch_to_fiber(FiberId::HOST);
        // compute(buf) before MPI_Wait -> race
        t.read_range(A, 1024, ctx_cmp);
        assert_eq!(t.race_count(), 1);
        // After Wait (HA) further accesses are fine.
        t.annotate_happens_after(key);
        t.read_range(A, 1024, ctx_cmp);
        assert_eq!(t.race_count(), 1, "no new race after wait");
    }

    #[test]
    fn dedupe_by_context_pair() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("w");
        let cr = t.intern_ctx("r");
        t.switch_to_fiber(f);
        t.write_range(A, 4096, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 4096, cr);
        // 512 conflicting words but a single (r,w) report.
        assert_eq!(t.race_count(), 1);
        assert_eq!(t.stats().races_deduped, 511);
    }

    #[test]
    fn distinct_context_pairs_reported_separately() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("w");
        let cr1 = t.intern_ctx("r1");
        let cr2 = t.intern_ctx("r2");
        t.switch_to_fiber(f);
        t.write_range(A, 8, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 8, cr1);
        t.read_range(A + 8, 8, cr2); // different word, no conflict
        t.read_range(A, 8, cr2); // same word, different ctx
        assert_eq!(t.race_count(), 2);
    }

    #[test]
    fn suppression_suppresses() {
        let mut t = rt();
        t.add_suppression("openmpi-internal");
        let f = t.create_fiber("f");
        let cw = t.intern_ctx("openmpi-internal progress thread");
        let cr = t.intern_ctx("host");
        t.switch_to_fiber(f);
        t.write_range(A, 8, cw);
        t.switch_to_fiber(FiberId::HOST);
        t.read_range(A, 8, cr);
        assert_eq!(t.race_count(), 0);
        assert_eq!(t.stats().races_suppressed, 1);
    }

    #[test]
    fn stats_count_events() {
        let mut t = rt();
        let f = t.create_fiber("f");
        let c = t.intern_ctx("x");
        t.switch_to_fiber(f);
        t.switch_to_fiber(FiberId::HOST);
        t.annotate_happens_before(SyncKey(1));
        t.annotate_happens_after(SyncKey(1));
        t.read_range(A, 100, c);
        t.write_range(A, 50, c);
        assert_eq!(t.live_fibers(), 2);
        let s = t.stats();
        assert_eq!(s.fiber_switches, 2);
        assert_eq!(s.happens_before, 1);
        assert_eq!(s.happens_after, 1);
        assert_eq!(s.read_range_calls, 1);
        assert_eq!(s.read_bytes, 100);
        assert_eq!(s.write_range_calls, 1);
        assert_eq!(s.write_bytes, 50);
        assert_eq!(s.fibers_created, 2);
        assert_eq!(f, FiberId::from_index(1));
    }

    #[test]
    fn report_cap_limits_storage_not_counting() {
        let mut t = rt();
        t.max_reports = 2;
        let f = t.create_fiber("f");
        t.switch_to_fiber(f);
        for i in 0..5 {
            let c = t.intern_ctx(&format!("w{i}"));
            t.write_range(A, 8, c);
        }
        t.switch_to_fiber(FiberId::HOST);
        for i in 0..5 {
            let c = t.intern_ctx(&format!("r{i}"));
            t.write_range(A, 8, c);
        }
        assert!(t.race_count() > 2);
        assert_eq!(t.reports().len(), 2);
    }

    #[test]
    fn memory_accounting_nonzero_after_accesses() {
        // Tiered: a whole-buffer write is stored as page summaries, so the
        // shadow costs a few words per 4 KiB instead of 4x the tracked size.
        let mut t = rt();
        let c = t.intern_ctx("x");
        t.write_range(0, 1 << 16, c);
        assert!(t.memory_bytes() > 0);
        assert!(t.memory_bytes() < (1 << 16), "summaries stay compact");
        assert!(t.shadow_pages() >= 16);
        // Untiered: the flat shadow costs 4 slot words per application word.
        let mut t = TsanRuntime::with_shadow_tiering("host", false);
        let c = t.intern_ctx("x");
        t.write_range(0, 1 << 16, c);
        assert!(t.memory_bytes() > (1 << 16));
        assert!(t.shadow_pages() >= 16);
    }

    #[test]
    fn stats_surface_shadow_tier_counters() {
        let mut t = rt();
        let c = t.intern_ctx("x");
        t.write_range(0, 4096, c);
        t.write_range(0, 4096, c); // identical re-annotation: fast path
        t.write_range(64, 128, c); // partial overlap: unfold
        let s = t.stats();
        assert_eq!(s.page_summaries_stored, 1);
        assert_eq!(s.fastpath_hits, 1);
        assert_eq!(s.page_unfolds, 1);
        assert!(t.shadow_tiering_enabled());
        assert!(!TsanRuntime::with_shadow_tiering("h", false).shadow_tiering_enabled());
    }

    #[test]
    fn shadow_budget_degrades_and_surfaces_in_stats() {
        let mut t = rt();
        assert_eq!(t.shadow_page_budget(), None);
        t.set_shadow_page_budget(Some(2));
        assert_eq!(t.shadow_page_budget(), Some(2));
        let c = t.intern_ctx("big write");
        t.write_range(0, 8 << 12, c); // 8 pages, budget 2
        assert_eq!(t.shadow_pages(), 2);
        let s = t.stats();
        assert_eq!(s.dropped_annotations, 6);
        assert_eq!(s.write_range_calls, 1, "call still counted");
        // No budget → the counter stays zero.
        let mut u = rt();
        let c = u.intern_ctx("w");
        u.write_range(0, 8 << 12, c);
        assert_eq!(u.stats().dropped_annotations, 0);
    }

    #[test]
    fn destroyed_request_fiber_pattern() {
        // MUST pattern: fiber per request, destroyed after wait; a second
        // request reuses the slot without false positives.
        let mut t = rt();
        let c = t.intern_ctx("isend read");
        for i in 0..3 {
            let req = t.create_fiber(&format!("req#{i}"));
            let key = SyncKey(0x200 + i);
            t.switch_to_fiber(req);
            t.read_range(A, 256, c);
            t.annotate_happens_before(key);
            t.switch_to_fiber(FiberId::HOST);
            t.annotate_happens_after(key);
            t.destroy_fiber(req);
            // Host writes the buffer after wait — must never race.
            let cw = t.intern_ctx("host write after wait");
            t.write_range(A, 256, cw);
        }
        assert_eq!(t.race_count(), 0);
    }
}
